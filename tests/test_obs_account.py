"""Tests for ``repro.obs.account``: per-VP / per-tenant accounting."""

import tracemalloc

import pytest

import repro.obs as obs
from repro.core import SigmaVP
from repro.exec.jobs import scenario_summary
from repro.kernels.functional import FunctionalRegistry
from repro.obs.account import (
    coalesce_share,
    collect_accounts,
    compute_usage,
    jain_index,
    render_accounts,
)
from repro.obs.metrics import MetricsRegistry
from repro.sched import SchedulerConfig
from repro.workloads import get_workload


def _run_framework(n_vps=2, **kwargs):
    framework = SigmaVP(
        n_vps=n_vps, registry=FunctionalRegistry(), **kwargs
    )
    framework.run_workload(get_workload("vectorAdd"))
    return framework


class TestJainIndex:
    def test_empty_population_is_vacuously_fair(self):
        assert jain_index([]) == 1.0

    def test_all_zero_population_is_vacuously_fair(self):
        assert jain_index([0.0, 0.0]) == 1.0

    def test_equal_shares_are_perfectly_fair(self):
        assert jain_index([3.0, 3.0, 3.0]) == pytest.approx(1.0)

    def test_monopoly_is_one_over_n(self):
        assert jain_index([1.0, 0.0, 0.0, 0.0]) == pytest.approx(0.25)


class TestComputeUsage:
    def test_every_vp_accounted_and_jobs_sum_to_completed(self):
        framework = _run_framework(n_vps=4)
        usage = compute_usage(framework)
        assert sorted(usage) == sorted(framework.sessions)
        per_vp_completions = [
            job
            for job in framework.dispatcher.completed_log
            if job.vp in framework.sessions
        ]
        assert sum(u.jobs for u in usage.values()) == len(per_vp_completions)
        for account in usage.values():
            assert account.busy_ms >= 0.0
            assert account.wait_ms >= 0.0
            assert account.total_ms == account.busy_ms + account.wait_ms

    def test_coalesced_members_are_flagged(self):
        framework = _run_framework(n_vps=4)  # coalescing on by default
        usage = compute_usage(framework)
        assert sum(u.coalesced_jobs for u in usage.values()) > 0
        assert 0.0 < coalesce_share(usage) < 1.0

    def test_no_coalescing_means_zero_share(self):
        framework = _run_framework(n_vps=2, coalescing=False)
        usage = compute_usage(framework)
        assert coalesce_share(usage) == 0.0

    def test_usage_is_a_pure_read(self):
        framework = _run_framework(n_vps=2)
        first = compute_usage(framework)
        second = compute_usage(framework)
        assert first == second


class TestDeadlineAccounting:
    def test_priority_deadline_policy_scores_every_job(self):
        framework = SigmaVP(
            n_vps=2,
            registry=FunctionalRegistry(),
            sched=SchedulerConfig.from_names("priority-deadline"),
        )
        framework.run_workload(get_workload("vectorAdd"))
        usage = compute_usage(framework)
        scored = sum(
            u.deadline_hits + u.deadline_misses for u in usage.values()
        )
        assert scored == sum(u.jobs for u in usage.values())

    def test_policies_without_budgets_skip_deadline_accounting(self):
        framework = _run_framework(n_vps=2)
        usage = compute_usage(framework)
        assert all(
            u.deadline_hits == 0 and u.deadline_misses == 0
            for u in usage.values()
        )


class TestCollectAccounts:
    def test_emits_account_metrics(self):
        framework = _run_framework(n_vps=2)
        registry = MetricsRegistry()
        usage = collect_accounts(framework, registry)
        snapshot = registry.snapshot()
        assert "account.coalesce.share" in snapshot
        assert "account.fairness.jain" in snapshot
        for name in framework.sessions:
            assert snapshot[f"account.vp.{name}.busy_ms"]["value"] == (
                pytest.approx(usage[name].busy_ms)
            )
            assert snapshot[f"account.vp.{name}.jobs"]["value"] == (
                usage[name].jobs
            )

    def test_captured_scenario_includes_account_family(self):
        with obs.capture() as cap:
            scenario_summary(app="vectorAdd", n_vps=2)
        names = list(cap.metrics_payload())
        assert any(name.startswith("account.vp.") for name in names)
        assert "account.fairness.jain" in names
        # The live dispatcher-side counter rode along too.
        assert "account.completed" in names

    def test_render_accounts_lists_every_vp(self):
        framework = _run_framework(n_vps=2)
        report = render_accounts(framework)
        for name in framework.sessions:
            assert name in report
        assert "coalesce share" in report
        assert "Jain fairness" in report


class TestDisabledCost:
    def test_disabled_run_allocates_nothing_in_account_module(self):
        scenario_summary(app="vectorAdd", n_vps=2)  # warm
        account_file = tracemalloc.Filter(True, "*/repro/obs/account.py")
        tracemalloc.start()
        try:
            scenario_summary(app="vectorAdd", n_vps=2)
            snapshot = tracemalloc.take_snapshot().filter_traces(
                [account_file]
            )
        finally:
            tracemalloc.stop()
        stats = snapshot.statistics("filename")
        assert stats == [], (
            "account module allocated while disabled: "
            + ", ".join(f"{s.traceback}: {s.size}B" for s in stats)
        )
