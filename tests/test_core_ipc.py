"""Tests for the IPC manager, transports, and VP control."""

import pytest

from repro.core.ipc import IPCManager, IPCTransport, SHARED_MEMORY, SOCKET, VPControl
from repro.core.jobs import Job, JobKind, JobQueue
from repro.sim import Environment
from repro.vp import VirtualPlatform


def _job(env):
    return Job(vp="vp0", seq=0, kind=JobKind.MALLOC, completion=env.event(), size=64)


# -- transports ----------------------------------------------------------------


def test_transport_latency_only_for_empty_payload():
    assert SOCKET.transfer_ms(0) == SOCKET.latency_ms


def test_transport_payload_adds_bandwidth_time():
    one_mb = 1_000_000
    expected = SOCKET.latency_ms + (one_mb / 1e9) / SOCKET.bandwidth_gbps * 1e3
    assert SOCKET.transfer_ms(one_mb) == pytest.approx(expected)


def test_shared_memory_is_zero_copy():
    """Payloads never cross the shm channel: descriptors only."""
    assert SHARED_MEMORY.zero_copy
    assert SHARED_MEMORY.transfer_ms(10**9) == SHARED_MEMORY.latency_ms


def test_socket_streams_payloads():
    assert not SOCKET.zero_copy
    assert SOCKET.transfer_ms(10**9) > 100 * SOCKET.latency_ms


def test_transport_validation():
    with pytest.raises(ValueError):
        IPCTransport(name="bad", latency_ms=-1, bandwidth_gbps=1)
    with pytest.raises(ValueError):
        IPCTransport(name="bad", latency_ms=0, bandwidth_gbps=0)
    with pytest.raises(ValueError):
        SOCKET.transfer_ms(-1)


def test_shared_memory_much_faster_than_socket():
    assert SHARED_MEMORY.latency_ms < SOCKET.latency_ms / 5


# -- IPCManager ------------------------------------------------------------------


def test_submit_delivers_after_transport_delay():
    env = Environment()
    queue = JobQueue(env)
    ipc = IPCManager(env, queue, transport=SOCKET)
    job = _job(env)

    def sender():
        yield from ipc.submit(job)
        return env.now

    finish = env.run(env.process(sender()))
    assert finish == pytest.approx(SOCKET.latency_ms)
    assert queue.jobs == [job]


def test_submit_with_payload_takes_longer():
    env = Environment()
    queue = JobQueue(env)
    ipc = IPCManager(env, queue, transport=SOCKET)

    def sender():
        yield from ipc.submit(_job(env), payload_bytes=4_000_000)
        return env.now

    finish = env.run(env.process(sender()))
    assert finish == pytest.approx(SOCKET.latency_ms + 2.0)  # 4MB @ 2GB/s


def test_respond_models_return_path():
    env = Environment()
    ipc = IPCManager(env, JobQueue(env), transport=SOCKET)

    def receiver():
        yield from ipc.respond()
        return env.now

    assert env.run(env.process(receiver())) == pytest.approx(SOCKET.latency_ms)


def test_message_and_byte_counters():
    env = Environment()
    queue = JobQueue(env)
    ipc = IPCManager(env, queue, transport=SOCKET)

    def traffic():
        yield from ipc.submit(_job(env), payload_bytes=1000)
        yield from ipc.respond(payload_bytes=500)

    env.process(traffic())
    env.run()
    assert ipc.messages_sent == 2
    assert ipc.bytes_transferred == 1500


# -- VP control -------------------------------------------------------------------


def test_vp_control_registration():
    env = Environment()
    control = VPControl()
    vp = VirtualPlatform(env, "vp0")
    control.register(vp)
    assert control.registered() == ["vp0"]
    with pytest.raises(ValueError):
        control.register(vp)


def test_vp_control_stop_resume():
    env = Environment()
    control = VPControl()
    vp = VirtualPlatform(env, "vp0")
    control.register(vp)

    control.stop("vp0")
    assert control.is_stopped("vp0")
    assert vp.paused

    control.resume("vp0")
    assert not control.is_stopped("vp0")
    assert not vp.paused


def test_vp_control_stop_idempotent():
    env = Environment()
    control = VPControl()
    vp = VirtualPlatform(env, "vp0")
    control.register(vp)
    control.stop("vp0")
    control.stop("vp0")
    assert vp.stop_count == 1


def test_vp_control_unknown_vp():
    control = VPControl()
    with pytest.raises(KeyError):
        control.stop("ghost")


def test_vp_control_resume_all():
    env = Environment()
    control = VPControl()
    vps = [VirtualPlatform(env, f"vp{i}") for i in range(3)]
    for vp in vps:
        control.register(vp)
        control.stop(vp.name)
    control.resume_all()
    assert all(not vp.paused for vp in vps)


def test_stopped_vp_delays_guest_work():
    """Stop/resume actually freezes guest progress (Fig. 4b mechanics)."""
    env = Environment()
    control = VPControl()
    vp = VirtualPlatform(env, "vp0")
    control.register(vp)

    def app():
        yield from vp.execute_ops(vp.cpu.ops_per_ms)  # 1 ms of work
        return env.now

    control.stop("vp0")
    process = vp.run_app(app)

    def resumer():
        yield env.timeout(7.0)
        control.resume("vp0")

    env.process(resumer())
    assert env.run(process) == pytest.approx(8.0)
