"""Tests for multi-GPU host multiplexing.

"SigmaVP multiplexes the host GPUs" (paper Section 2, plural): a host
machine may carry several GPUs — the Grid K520 board itself is two GK104
devices.  VPs get a device affinity round-robin on first use; coalescing
merges only within a device.
"""

import numpy as np
import pytest

from repro.core import SHARED_MEMORY, SigmaVP
from repro.workloads.linalg import make_vectoradd_spec
from repro.workloads.synthetic import make_phase_workload


def test_single_gpu_by_default():
    framework = SigmaVP()
    assert len(framework.gpus) == 1
    assert framework.gpu is framework.gpus[0]


def test_n_host_gpus_validation():
    with pytest.raises(ValueError):
        SigmaVP(n_host_gpus=0)


def test_round_robin_vp_affinity():
    framework = SigmaVP(n_host_gpus=2, n_vps=4, transport=SHARED_MEMORY)
    spec = make_vectoradd_spec(elements=4096, iterations=1)
    framework.run_workload(spec)
    devices = {
        name: framework.dispatcher.device_index_for(name)
        for name in framework.sessions
    }
    assert sorted(devices.values()) == [0, 0, 1, 1]


def test_both_gpus_execute_kernels():
    framework = SigmaVP(n_host_gpus=2, n_vps=4, transport=SHARED_MEMORY,
                        coalescing=False)
    spec = make_vectoradd_spec(elements=4096, iterations=2)
    framework.run_workload(spec)
    for gpu in framework.gpus:
        assert len(gpu.compute_engine.timeline) > 0


def test_two_gpus_scale_compute_bound_throughput():
    """Doubling the host GPUs roughly halves total time for a
    compute-engine-bound fleet."""
    spec = make_phase_workload(t_kernel_ms=6.0, t_copy_ms=1.0, iterations=2)

    def total(n_gpus):
        framework = SigmaVP(n_host_gpus=n_gpus, n_vps=8,
                            transport=SHARED_MEMORY, coalescing=False)
        return framework.run_workload(spec)

    one = total(1)
    two = total(2)
    assert two < one * 0.65


def test_coalescing_stays_within_device():
    framework = SigmaVP(n_host_gpus=2, n_vps=4, transport=SHARED_MEMORY)
    spec = make_vectoradd_spec(elements=4096, iterations=1)
    framework.run_workload(spec)
    stats = framework.coalescer.stats
    # Four VPs over two devices: merges happen in per-device pairs,
    # never as a cross-device batch of four.
    assert stats.merges >= 1
    assert all(size <= 2 for size in stats.batch_sizes)


def test_functional_results_correct_on_two_gpus():
    from repro.kernels.functional import REGISTRY

    framework = SigmaVP(n_host_gpus=2, n_vps=4, transport=SHARED_MEMORY,
                        registry=REGISTRY)
    spec = make_vectoradd_spec(elements=2048, iterations=1)
    framework.run_workload(spec)
    a, b = spec.build_inputs(0)
    for name in framework.sessions:
        seed = sorted(framework.sessions).index(name)
        expected = np.add(*spec.build_inputs(seed))
        result = framework.session(name).processes[0].value
        np.testing.assert_allclose(result, expected)


def test_memory_isolated_per_device():
    framework = SigmaVP(n_host_gpus=2, n_vps=2, transport=SHARED_MEMORY,
                        coalescing=False)
    spec = make_vectoradd_spec(elements=4096, iterations=1)
    framework.run_workload(spec)
    # Each VP allocated three buffers on its own device.
    used = [gpu.memory.used_bytes for gpu in framework.gpus]
    assert used[0] > 0 and used[1] > 0
    assert used[0] == used[1]
