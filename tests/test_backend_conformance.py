"""Cross-backend conformance: every backend computes the same thing.

Property-based, reikna ``test_cluda_basics`` style: every *available*
registered execution backend, over the reference kernel suite, across
random dtypes and shapes, must produce outputs bit-identical to a direct
call of the registered numpy implementation — and ``launch_batched``
must return exactly the per-launch outputs, row for row.  The capstone
is digest interchangeability: a pinned scenario simulated under
``backend_scope("numpy")`` and ``backend_scope("numpy-batched")``
produces byte-identical summaries.

Comparisons use ``np.array_equal`` / ``tobytes()``, never ``approx``:
scenario digests are pinned on exact float results, so approximate
equality would hide exactly the bugs this suite exists to catch.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.backend import (
    available_backends,
    backend_scope,
    make_backend,
)
from repro.exec.farm import FarmJob, ScenarioFarm, results_digest
from repro.kernels.functional import REGISTRY

#: (name, backend) for every backend usable in this environment — the
#: conformance property is universally quantified over this list (cupy
#: joins automatically wherever the package exists).
AVAILABLE = [
    (name, make_backend(name))
    for name, _ in available_backends()
    if make_backend(name).available()
]

DTYPES = (np.float32, np.float64, np.int32, np.int64)


def _ids(pairs):
    return [name for name, _ in pairs]


def arrays(data, shape, dtype):
    """A deterministic-per-example random array of ``shape``/``dtype``."""
    seed = data.draw(st.integers(min_value=0, max_value=2**32 - 1))
    rng = np.random.default_rng(seed)
    if np.issubdtype(dtype, np.integer):
        return rng.integers(-1000, 1000, size=shape).astype(dtype)
    return rng.standard_normal(shape).astype(dtype)


@pytest.mark.parametrize(("name", "backend"), AVAILABLE, ids=_ids(AVAILABLE))
class TestLaunchConformance:
    """backend.launch == the registered implementation, bit for bit."""

    @settings(max_examples=25, deadline=None)
    @given(data=st.data())
    def test_vector_add(self, name, backend, data):
        dtype = data.draw(st.sampled_from(DTYPES))
        n = data.draw(st.integers(min_value=1, max_value=512))
        a, b = arrays(data, n, dtype), arrays(data, n, dtype)
        out = backend.d2h(
            backend.launch("vectorAdd", [backend.h2d(a), backend.h2d(b)])
        )
        expected = REGISTRY.require("vectorAdd")(a, b)
        assert out.dtype == expected.dtype
        assert np.asarray(out).tobytes() == expected.tobytes()

    @settings(max_examples=25, deadline=None)
    @given(data=st.data())
    def test_saxpy_with_params(self, name, backend, data):
        dtype = data.draw(st.sampled_from((np.float32, np.float64)))
        n = data.draw(st.integers(min_value=1, max_value=512))
        alpha = data.draw(st.floats(
            min_value=-8.0, max_value=8.0, allow_nan=False, width=32
        ))
        x, y = arrays(data, n, dtype), arrays(data, n, dtype)
        out = backend.d2h(backend.launch(
            "saxpy", [backend.h2d(x), backend.h2d(y)], {"alpha": alpha}
        ))
        expected = REGISTRY.require("saxpy")(x, y, alpha=alpha)
        assert np.asarray(out).tobytes() == expected.tobytes()

    @settings(max_examples=15, deadline=None)
    @given(data=st.data())
    def test_matrix_mul(self, name, backend, data):
        dtype = data.draw(st.sampled_from((np.float32, np.float64)))
        d = data.draw(st.integers(min_value=1, max_value=24))
        a, b = arrays(data, (d, d), dtype), arrays(data, (d, d), dtype)
        out = backend.d2h(
            backend.launch("matrixMul", [backend.h2d(a), backend.h2d(b)])
        )
        expected = REGISTRY.require("matrixMul")(a, b)
        assert np.asarray(out).tobytes() == expected.tobytes()


@pytest.mark.parametrize(("name", "backend"), AVAILABLE, ids=_ids(AVAILABLE))
class TestBatchedConformance:
    """launch_batched rows == per-launch outputs, or None (fallback)."""

    @settings(max_examples=20, deadline=None)
    @given(data=st.data())
    def test_rows_match_per_launch(self, name, backend, data):
        signature = data.draw(st.sampled_from(("vectorAdd", "matrixMul")))
        dtype = data.draw(st.sampled_from(DTYPES))
        members = data.draw(st.integers(min_value=1, max_value=6))
        if signature == "matrixMul":
            d = data.draw(st.integers(min_value=1, max_value=12))
            shape = (d, d)
        else:
            shape = (data.draw(st.integers(min_value=1, max_value=128)),)
        inputs_list = [
            (arrays(data, shape, dtype), arrays(data, shape, dtype))
            for _ in range(members)
        ]
        rows = backend.launch_batched(signature, inputs_list)
        per_launch = [
            backend.d2h(backend.launch(signature, list(inputs)))
            for inputs in inputs_list
        ]
        if rows is None:
            assert not backend.supports_batched or members == 0
            return
        assert len(rows) == members
        for row, expected in zip(rows, per_launch):
            host_row = np.asarray(backend.d2h(row))
            assert host_row.tobytes() == np.asarray(expected).tobytes()

    def test_empty_batch_is_fallback(self, name, backend):
        assert backend.launch_batched("vectorAdd", []) is None

    def test_single_element_batch(self, name, backend):
        a = np.arange(16, dtype=np.float32)
        rows = backend.launch_batched("vectorAdd", [(a, a)])
        if backend.supports_batched:
            assert rows is not None and len(rows) == 1
            assert np.asarray(backend.d2h(rows[0])).tobytes() == (a + a).tobytes()
        else:
            assert rows is None

    def test_mixed_shapes_fall_back(self, name, backend):
        rows = backend.launch_batched("vectorAdd", [
            (np.ones(4, dtype=np.float32), np.ones(4, dtype=np.float32)),
            (np.ones(8, dtype=np.float32), np.ones(8, dtype=np.float32)),
        ])
        assert rows is None

    def test_mixed_dtypes_fall_back(self, name, backend):
        rows = backend.launch_batched("vectorAdd", [
            (np.ones(4, dtype=np.float32), np.ones(4, dtype=np.float32)),
            (np.ones(4, dtype=np.float64), np.ones(4, dtype=np.float64)),
        ])
        assert rows is None


#: Pinned digest-interchangeability scenarios.  Functional, so the
#: backends actually execute; VP counts avoid the known pre-existing
#: 2-VP coalescer edge (broken identically on every backend).
PINNED_JOBS = [
    FarmJob(fn="repro.exec.jobs:scenario_summary", label="conf:vectorAdd4",
            kwargs={"app": "vectorAdd", "n_vps": 4, "functional": True,
                    "scale_elements": 2048, "scale_iterations": 2}),
    FarmJob(fn="repro.exec.jobs:scenario_summary", label="conf:matrixMul4",
            kwargs={"app": "matrixMul", "n_vps": 4, "functional": True}),
]


def _digest_under(backend_name):
    from repro.caching import clear_all_caches

    clear_all_caches()
    with backend_scope(backend_name):
        results = ScenarioFarm(workers=1, warmup=False).map(PINNED_JOBS)
    return results_digest(results), [r.value for r in results]


def test_scenario_digests_interchangeable_across_backends():
    """The acceptance bar: one digest, whatever available backend ran."""
    digests = {}
    values = {}
    for name, _ in AVAILABLE:
        digests[name], values[name] = _digest_under(name)
    assert len(set(digests.values())) == 1, digests
    # The values themselves are equal too (the digest is not a collision).
    reference = values[AVAILABLE[0][0]]
    for name, _ in AVAILABLE[1:]:
        assert values[name] == reference


def test_explicit_backend_kwarg_matches_scoped_default():
    """backend= in job kwargs and backend_scope agree on results."""
    from repro.caching import clear_all_caches
    from repro.exec.jobs import scenario_summary

    kwargs = dict(PINNED_JOBS[0].kwargs)
    clear_all_caches()
    explicit = scenario_summary(backend="numpy", **kwargs)
    clear_all_caches()
    with backend_scope("numpy"):
        scoped = scenario_summary(**kwargs)
    assert explicit == scoped
