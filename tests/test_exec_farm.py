"""Tests for the scenario farm: job identity, seeds, and determinism.

The load-bearing guarantee is the last test class: running the same job
list with ``workers=1`` and ``workers=4`` must produce byte-identical
result sets (compared as sorted-key canonical-JSON digests), because the
farm is pure plumbing around independent simulations.
"""

import json
import multiprocessing
import os

import pytest

from repro.exec import (
    FarmJob,
    FarmResult,
    ScenarioFarm,
    canonical_json,
    results_digest,
)
from repro.exec.farm import run_job

HAS_FORK = "fork" in multiprocessing.get_all_start_methods()


def _echo(value):
    return value


def _seeded(value, seed=None):
    return {"value": value, "seed": seed}


class TestFarmJob:
    def test_fn_must_be_module_function_reference(self):
        with pytest.raises(ValueError):
            FarmJob(fn="not_a_reference")

    def test_key_is_stable_and_kwarg_order_independent(self):
        a = FarmJob(fn="m:f", kwargs={"x": 1, "y": 2})
        b = FarmJob(fn="m:f", kwargs={"y": 2, "x": 1})
        assert a.key == b.key
        assert len(a.key) == 16

    def test_key_distinguishes_fn_and_kwargs(self):
        base = FarmJob(fn="m:f", kwargs={"x": 1})
        assert base.key != FarmJob(fn="m:g", kwargs={"x": 1}).key
        assert base.key != FarmJob(fn="m:f", kwargs={"x": 2}).key

    def test_seed_is_deterministic_and_in_range(self):
        job = FarmJob(fn="m:f", kwargs={"x": 1})
        assert job.seed == FarmJob(fn="m:f", kwargs={"x": 1}).seed
        assert 0 <= job.seed < 2**31 - 1

    def test_label_defaults_to_function_name(self):
        result = run_job(FarmJob(fn="tests.test_exec_farm:_echo",
                                 kwargs={"value": 3}))
        assert result.label == "_echo"
        assert result.value == 3
        assert result.worker_pid == os.getpid()

    def test_run_job_injects_derived_seed(self):
        job = FarmJob(fn="tests.test_exec_farm:_seeded", kwargs={"value": 1})
        assert run_job(job).value == {"value": 1, "seed": job.seed}

    def test_run_job_respects_explicit_seed(self):
        job = FarmJob(fn="tests.test_exec_farm:_seeded",
                      kwargs={"value": 1, "seed": 7})
        assert run_job(job).value == {"value": 1, "seed": 7}


class TestDigests:
    def test_canonical_json_sorts_keys(self):
        assert canonical_json({"b": 1, "a": 2}) == '{"a":2,"b":1}'
        assert canonical_json([1.5, None, "x"]) == '[1.5,null,"x"]'

    def test_results_digest_is_completion_order_independent(self):
        results = [
            FarmResult(job_key=f"k{i}", fn="m:f", label="", value=i,
                       duration_s=0.0, worker_pid=0)
            for i in range(4)
        ]
        assert results_digest(results) == results_digest(results[::-1])

    def test_results_digest_sees_value_changes(self):
        def make(value):
            return [FarmResult(job_key="k", fn="m:f", label="", value=value,
                               duration_s=0.0, worker_pid=0)]

        assert results_digest(make(1)) != results_digest(make(2))


class TestScenarioFarm:
    def test_rejects_nonpositive_workers(self):
        with pytest.raises(ValueError):
            ScenarioFarm(workers=0)

    def test_empty_job_list(self):
        assert ScenarioFarm(workers=1).map([]) == []

    def test_serial_results_in_submission_order(self):
        jobs = [
            FarmJob(fn="tests.test_exec_farm:_echo", kwargs={"value": i})
            for i in range(5)
        ]
        farm = ScenarioFarm(workers=1, warmup=False)
        assert farm.map_values(jobs) == [0, 1, 2, 3, 4]

    @pytest.mark.skipif(not HAS_FORK, reason="needs the fork start method")
    def test_parallel_results_in_submission_order(self):
        jobs = [
            FarmJob(fn="tests.test_exec_farm:_echo", kwargs={"value": i})
            for i in range(8)
        ]
        farm = ScenarioFarm(workers=2, warmup=False)
        results = farm.map(jobs)
        assert [r.value for r in results] == list(range(8))
        # At least one job actually left this process.
        assert any(r.worker_pid != os.getpid() for r in results)


class TestPersistentPool:
    """`persistent=True` keeps one warm pool across map() rounds."""

    @staticmethod
    def _jobs(n=4, tag=0):
        return [
            FarmJob(fn="tests.test_exec_farm:_seeded",
                    kwargs={"value": i, "seed": tag})
            for i in range(n)
        ]

    @pytest.mark.skipif(not HAS_FORK, reason="needs the fork start method")
    def test_pool_survives_between_rounds(self):
        with ScenarioFarm(workers=2, warmup=False, persistent=True) as farm:
            first = farm.map(self._jobs())
            pool = farm._pool
            assert pool is not None
            second = farm.map(self._jobs())
            # Same executor object and the same forked workers served
            # both rounds: nothing re-forked, re-warmed, or re-shipped.
            assert farm._pool is pool
            assert {r.worker_pid for r in second} <= {r.worker_pid for r in first} | {
                r.worker_pid for r in second
            }
            assert [r.value for r in first] == [r.value for r in second]

    @pytest.mark.skipif(not HAS_FORK, reason="needs the fork start method")
    def test_changed_job_list_rebuilds_the_pool(self):
        with ScenarioFarm(workers=2, warmup=False, persistent=True) as farm:
            farm.map(self._jobs(tag=0))
            pool = farm._pool
            farm.map(self._jobs(tag=1))  # different config-hash keys
            assert farm._pool is not pool

    @pytest.mark.skipif(not HAS_FORK, reason="needs the fork start method")
    def test_close_releases_and_map_recovers(self):
        farm = ScenarioFarm(workers=2, warmup=False, persistent=True)
        try:
            farm.map(self._jobs())
            farm.close()
            assert farm._pool is None
            assert [r.value for r in farm.map(self._jobs())] == [
                {"value": i, "seed": 0} for i in range(4)
            ]
        finally:
            farm.close()

    @pytest.mark.skipif(not HAS_FORK, reason="needs the fork start method")
    def test_context_manager_shuts_the_pool_down(self):
        with ScenarioFarm(workers=2, warmup=False, persistent=True) as farm:
            farm.map(self._jobs())
            assert farm._pool is not None
        assert farm._pool is None

    def test_serial_persistent_farm_never_builds_a_pool(self):
        with ScenarioFarm(workers=1, warmup=False, persistent=True) as farm:
            assert farm.map_values(self._jobs(2)) == [
                {"value": 0, "seed": 0},
                {"value": 1, "seed": 0},
            ]
            assert farm._pool is None

    @pytest.mark.skipif(not HAS_FORK, reason="needs the fork start method")
    def test_persistent_digest_matches_one_shot(self):
        jobs = [
            FarmJob(fn="repro.exec.jobs:scenario_summary", label="vectorAdd2",
                    kwargs={"app": "vectorAdd", "n_vps": 2, "transport": "shm"}),
            FarmJob(fn="repro.exec.jobs:fig9b_point", label="fig9b:n2",
                    kwargs={"n_programs": 2}),
        ]
        one_shot = ScenarioFarm(workers=2).map(jobs)
        with ScenarioFarm(workers=2, persistent=True) as farm:
            persistent = farm.map(jobs)
        assert results_digest(persistent) == results_digest(one_shot)


#: A small cross-section of real simulation jobs: a scenario route, an
#: interleaving point, a coalescing point, and a Table-1 route.
DETERMINISM_JOBS = [
    FarmJob(fn="repro.exec.jobs:scenario_summary", label="vectorAdd2",
            kwargs={"app": "vectorAdd", "n_vps": 2, "transport": "shm"}),
    FarmJob(fn="repro.exec.jobs:fig9b_point", label="fig9b:n2",
            kwargs={"n_programs": 2}),
    FarmJob(fn="repro.exec.jobs:fig10a_point", label="fig10a:b4/8vp",
            kwargs={"batch": 4, "n_programs": 8}),
    FarmJob(fn="repro.exec.jobs:table1_route", label="table1:native",
            kwargs={"route": "CUDA / GPU", "app": "matrixMul"}),
]


class TestFarmDeterminism:
    @pytest.mark.skipif(not HAS_FORK, reason="needs the fork start method")
    def test_workers_1_vs_4_byte_identical(self):
        serial = ScenarioFarm(workers=1).map(DETERMINISM_JOBS)
        parallel = ScenarioFarm(workers=4).map(DETERMINISM_JOBS)
        # Byte-level: the sorted-key canonical JSON of every result value
        # must match, not just compare approximately equal.
        serial_bytes = [canonical_json(r.value) for r in serial]
        parallel_bytes = [canonical_json(r.value) for r in parallel]
        assert serial_bytes == parallel_bytes
        assert results_digest(serial) == results_digest(parallel)

    def test_digest_repeatable_within_mode(self):
        farm = ScenarioFarm(workers=1)
        first = results_digest(farm.map(DETERMINISM_JOBS[:2]))
        second = results_digest(farm.map(DETERMINISM_JOBS[:2]))
        assert first == second

    def test_values_are_json_clean(self):
        for result in ScenarioFarm(workers=1).map(DETERMINISM_JOBS):
            # round-trips through strict JSON (no NaN/inf/objects)
            text = canonical_json(result.value)
            assert json.loads(text) == json.loads(text)


class TestOverheadGuard:
    """`check_overhead` compares serial-warm cost against a baseline file."""

    @staticmethod
    def _report(wall=5.0, cpu=None, suite="full", workers=4):
        mode = {"wall_s": wall}
        if cpu is not None:
            mode["cpu_s"] = cpu
        return {"suite": suite, "workers": workers,
                "modes": {"serial_warm": mode}}

    def _baseline(self, tmp_path, **kwargs):
        path = tmp_path / "baseline.json"
        path.write_text(json.dumps(self._report(**kwargs)))
        return path

    def test_within_limit_passes(self, tmp_path):
        from repro.exec.bench import check_overhead
        base = self._baseline(tmp_path, wall=5.0)
        section = check_overhead(self._report(wall=5.05), baseline_path=base)
        assert section["checked"] and section["metric"] == "wall"
        assert section["overhead"] == pytest.approx(0.01)

    def test_regression_raises(self, tmp_path):
        from repro.exec.bench import BenchOverheadError, check_overhead
        base = self._baseline(tmp_path, wall=5.0)
        with pytest.raises(BenchOverheadError, match="wall time regressed"):
            check_overhead(self._report(wall=6.0), baseline_path=base)

    def test_prefers_cpu_time_when_both_sides_have_it(self, tmp_path):
        from repro.exec.bench import check_overhead
        # Wall regressed 40% (steal noise) but CPU time is flat: the
        # steal-immune metric must win, so the guard passes.
        base = self._baseline(tmp_path, wall=5.0, cpu=4.0)
        section = check_overhead(
            self._report(wall=7.0, cpu=4.02), baseline_path=base
        )
        assert section["checked"] and section["metric"] == "cpu"
        assert section["overhead"] == pytest.approx(0.005)

    def test_falls_back_to_wall_for_old_baselines(self, tmp_path):
        from repro.exec.bench import check_overhead
        base = self._baseline(tmp_path, wall=5.0)  # no cpu_s recorded
        section = check_overhead(
            self._report(wall=5.0, cpu=4.0), baseline_path=base
        )
        assert section["metric"] == "wall"

    def test_suite_mismatch_skips(self, tmp_path):
        from repro.exec.bench import check_overhead
        base = self._baseline(tmp_path, suite="quick")
        section = check_overhead(self._report(wall=50.0), baseline_path=base)
        assert not section["checked"]
        assert "suite mismatch" in section["note"]

    def test_worker_mismatch_skips(self, tmp_path):
        from repro.exec.bench import check_overhead
        base = self._baseline(tmp_path, workers=2)
        section = check_overhead(self._report(wall=50.0), baseline_path=base)
        assert not section["checked"]
        assert "worker-count mismatch" in section["note"]

    def test_missing_baseline_skips(self, tmp_path):
        from repro.exec.bench import check_overhead
        section = check_overhead(
            self._report(), baseline_path=tmp_path / "nope.json"
        )
        assert not section["checked"]
        assert "baseline unavailable" in section["note"]
