"""Property-based tests for the probabilistic cache model's monotonicity.

The estimators lean on this model on both sides of Eq. (5); its
qualitative behaviour must be trustworthy: bigger caches never hit
less, more locality never hits less, and stall predictions respond in
the right direction.
"""

import dataclasses

import pytest
from hypothesis import given, settings, strategies as st

from repro.gpu import QUADRO_4000, TEGRA_K1
from repro.gpu.arch import CacheGeometry
from repro.gpu.cache import (
    data_stall_cycles,
    exposed_stall_cycles,
    hit_probability,
    memory_throughput_cycles,
)
from repro.kernels import MemoryFootprint


def _fp(working_set, locality, coalesced=0.9):
    return MemoryFootprint(
        bytes_in=working_set, bytes_out=0,
        working_set_bytes=working_set,
        locality=locality, coalesced_fraction=coalesced,
    )


def _cache(size_kb):
    return CacheGeometry(size_kb=size_kb, line_bytes=128, associativity=16,
                         miss_penalty_cycles=400.0)


@settings(max_examples=50, deadline=None)
@given(
    working_set=st.integers(min_value=1024, max_value=1 << 28),
    locality=st.floats(min_value=0, max_value=1, allow_nan=False),
    small_kb=st.integers(min_value=16, max_value=256),
    factor=st.integers(min_value=2, max_value=32),
)
def test_bigger_cache_never_hits_less(working_set, locality, small_kb, factor):
    fp = _fp(working_set, locality)
    small = hit_probability(fp, _cache(small_kb))
    large = hit_probability(fp, _cache(small_kb * factor))
    assert large >= small - 1e-12


@settings(max_examples=50, deadline=None)
@given(
    working_set=st.integers(min_value=1024, max_value=1 << 26),
    lo=st.floats(min_value=0, max_value=1, allow_nan=False),
    hi=st.floats(min_value=0, max_value=1, allow_nan=False),
)
def test_more_locality_never_hits_less_when_fitting(working_set, lo, hi):
    """When the working set fits the cache, temporal locality can only
    help (reuse hits dominate spatial-only streaming hits)."""
    lo, hi = sorted((lo, hi))
    cache = _cache(max(64, 2 * working_set // 1024 + 1))
    assert cache.size_bytes >= working_set
    p_lo = hit_probability(_fp(working_set, lo), cache)
    p_hi = hit_probability(_fp(working_set, hi), cache)
    assert p_hi >= p_lo - 1e-9


@settings(max_examples=40, deadline=None)
@given(
    accesses=st.floats(min_value=0, max_value=1e8, allow_nan=False),
    working_set=st.integers(min_value=1024, max_value=1 << 26),
)
def test_stalls_scale_with_accesses(accesses, working_set):
    fp = _fp(working_set, 0.5)
    half = exposed_stall_cycles(QUADRO_4000, fp, accesses / 2, 256, 64)
    full = exposed_stall_cycles(QUADRO_4000, fp, accesses, 256, 64)
    assert full >= half - 1e-9
    assert full == pytest.approx(2 * half, rel=1e-6, abs=1e-6)


@settings(max_examples=40, deadline=None)
@given(
    accesses=st.floats(min_value=1e3, max_value=1e7, allow_nan=False),
    issue=st.floats(min_value=0, max_value=1e7, allow_nan=False),
)
def test_combined_stalls_bounded_below_by_components(accesses, issue):
    fp = _fp(1 << 22, 0.3)
    combined = data_stall_cycles(TEGRA_K1, fp, accesses, 256, 128, issue)
    latency = exposed_stall_cycles(TEGRA_K1, fp, accesses, 256, 128)
    throughput = memory_throughput_cycles(TEGRA_K1, fp, accesses)
    assert combined >= latency - 1e-9
    assert combined >= throughput - 0.7 * issue - 1e-6
    assert combined >= 0


@settings(max_examples=30, deadline=None)
@given(issue=st.floats(min_value=0, max_value=1e8, allow_nan=False))
def test_more_issue_hides_more_bandwidth(issue):
    """A fatter issue stream never increases the exposed data stalls."""
    fp = _fp(1 << 24, 0.1)
    base = data_stall_cycles(QUADRO_4000, fp, 1e6, 256, 512, issue)
    more = data_stall_cycles(QUADRO_4000, fp, 1e6, 256, 512, issue * 2 + 1)
    assert more <= base + 1e-9
