"""The persistent cross-process artifact cache (repro.cache).

The disk tier must be *transparent*: for any scenario, the value computed
by a memory-cold process is bit-identical whether the store is empty,
warm, corrupted, or version-bumped — only the wall-clock changes.  These
tests drive real farm jobs through the compile/profile/job-result layers
against private tmp_path stores (the suite-wide fixture keeps the shared
user store out of every test).
"""

import multiprocessing
import os
import pickle
from pathlib import Path

import pytest

from repro import cache as repro_cache
from repro.cache import MISS, DiskCache
from repro.caching import cache_scope, clear_all_caches
from repro.exec.farm import FarmJob, run_job, set_capture

JOB = FarmJob(
    fn="repro.exec.jobs:scenario_summary",
    label="vectorAdd2",
    kwargs={"app": "vectorAdd", "n_vps": 2},
)


def _memory_cold_value():
    """One scenario with every in-memory memo disabled (fresh-process model)."""
    clear_all_caches()
    with cache_scope(False):
        return run_job(JOB).value


def _entry_files(root) -> list:
    return sorted(Path(root).rglob("*.pkl"))


# -- DiskCache unit behaviour -------------------------------------------------


def test_get_missing_is_miss(tmp_path):
    store = DiskCache(tmp_path)
    assert store.get("ab" + "0" * 62) is MISS
    assert store.misses == 1
    assert store.corrupt == 0


def test_put_get_roundtrip(tmp_path):
    store = DiskCache(tmp_path)
    key = "cd" + "1" * 62
    assert store.put(key, {"x": [1, 2.5, None]})
    assert store.get(key) == {"x": [1, 2.5, None]}
    assert store.hits == 1 and store.writes == 1


def test_cached_none_is_not_a_miss(tmp_path):
    store = DiskCache(tmp_path)
    key = "ee" + "2" * 62
    store.put(key, None)
    assert store.get(key) is None
    assert store.hits == 1


def test_truncated_entry_is_silent_miss_and_removed(tmp_path):
    store = DiskCache(tmp_path)
    key = "ff" + "3" * 62
    store.put(key, "value")
    path = _entry_files(tmp_path)[0]
    path.write_bytes(path.read_bytes()[:5])
    assert store.get(key) is MISS
    assert store.corrupt == 1
    assert not path.exists()  # dropped so the next write starts clean


def test_renamed_entry_fails_key_verification(tmp_path):
    store = DiskCache(tmp_path)
    store.put("aa" + "4" * 62, "value")
    path = _entry_files(tmp_path)[0]
    other = path.parent / ("aa" + "5" * 62 + ".pkl")
    os.rename(path, other)
    assert store.get("aa" + "5" * 62) is MISS
    assert store.corrupt == 1


def test_clear_counts_entries(tmp_path):
    store = DiskCache(tmp_path)
    for i in range(5):
        store.put(f"{i:02d}" + "a" * 62, i)
    assert store.entry_count() == 5
    assert store.clear() == 5
    assert store.entry_count() == 0


def test_lru_eviction_drops_oldest_mtime(tmp_path):
    probe = DiskCache(tmp_path)
    probe.put("00" + "p" * 62, b"x" * 64)
    size = probe.total_bytes()
    probe.clear()

    store = DiskCache(tmp_path, max_bytes=int(size * 3.5), evict_check_every=1)
    keys = [f"{i:02d}" + "k" * 62 for i in range(3)]
    for i, key in enumerate(keys):
        store.put(key, b"x" * 64)
        # Explicit, strictly increasing mtimes: filesystem timestamp
        # granularity must not decide which entry is "oldest".
        os.utime(store._path(key), (1000.0 + i, 1000.0 + i))
    store.put("97" + "k" * 62, b"x" * 64)  # 4 * size > cap: evicts keys[0]
    assert store.evictions >= 1
    assert store.get(keys[0]) is MISS
    assert store.get("97" + "k" * 62) == b"x" * 64


def test_put_survives_unwritable_root(tmp_path):
    blocker = tmp_path / "root"
    blocker.write_text("a file where the cache dir should go")
    store = DiskCache(blocker)  # mkdir under a file fails on every put
    assert store.put("ab" + "6" * 62, "value") is False
    assert store.write_errors == 1


# -- transparency through the real caching layers -----------------------------


def test_disk_cache_transparent_cold_warm_corrupt(tmp_path):
    with repro_cache.disk_scope(True, root=tmp_path):
        cold = _memory_cold_value()  # empty store: computes and populates
        store = repro_cache.disk_cache()
        assert store is not None and store.writes > 0
        assert store.root == Path(tmp_path)

        warm = _memory_cold_value()  # fresh memory, warm disk
        assert store.hits > 0
        assert warm == cold

        for path in _entry_files(tmp_path):
            path.write_bytes(b"\x00garbage")
        corrupted = _memory_cold_value()  # every read degrades to a miss
        assert store.corrupt > 0
        assert corrupted == cold


def test_disk_cache_off_matches_on(tmp_path):
    with repro_cache.disk_scope(True, root=tmp_path):
        with_disk = _memory_cold_value()
    with repro_cache.disk_scope(False):
        without_disk = _memory_cold_value()
    assert with_disk == without_disk


def test_version_bump_misses_but_still_computes(tmp_path, monkeypatch):
    with repro_cache.disk_scope(True, root=tmp_path):
        cold = _memory_cold_value()
        store = repro_cache.disk_cache()
        writes_before = store.writes
        monkeypatch.setattr("repro.cache.keys.CACHE_VERSION", "bumped-for-test")
        bumped = _memory_cold_value()
        assert bumped == cold
        # New keys: the old entries were ignored and a second generation
        # of entries was written alongside them.
        assert store.writes > writes_before


def test_concurrent_writers_leave_readable_entry(tmp_path):
    key = "ab" + "7" * 62
    context = multiprocessing.get_context("fork")
    workers = [
        context.Process(
            target=_hammer_put, args=(str(tmp_path), key, f"value-{i}", 100)
        )
        for i in range(2)
    ]
    for w in workers:
        w.start()
    for w in workers:
        w.join()
        assert w.exitcode == 0
    store = DiskCache(tmp_path)
    value = store.get(key)
    # os.replace publishes atomically: the entry is one writer's complete
    # payload, never interleaved bytes.
    assert value in {"value-0", "value-1"}
    assert store.corrupt == 0


def _hammer_put(root: str, key: str, value: str, rounds: int) -> None:
    store = DiskCache(Path(root))
    for _ in range(rounds):
        if not store.put(key, value):
            raise SystemExit(1)


# -- the whole-job result layer ----------------------------------------------


def test_job_result_layer_short_circuits(tmp_path):
    job = FarmJob(
        fn="repro.exec.jobs:fig10a_point",
        label="f10",
        kwargs={"batch": 2, "n_programs": 4},
    )
    with repro_cache.disk_scope(True, root=tmp_path):
        clear_all_caches()
        first = run_job(job)
        store = repro_cache.disk_cache()
        writes_after_first = store.writes
        clear_all_caches()
        second = run_job(job)
        assert second.value == first.value
        assert store.writes == writes_after_first  # served, nothing recomputed


def test_job_result_layer_respects_capture_and_toggle(tmp_path):
    job = FarmJob(
        fn="repro.exec.jobs:fig10a_point",
        label="f10",
        kwargs={"batch": 2, "n_programs": 4},
    )
    with repro_cache.disk_scope(True, root=tmp_path):
        clear_all_caches()
        first = run_job(job)
        store = repro_cache.disk_cache()

        # Observability capture needs real execution: the job entry must
        # not short-circuit it, and the result must still agree.
        set_capture(True)
        try:
            captured = run_job(job)
        finally:
            set_capture(False)
        assert captured.value == first.value
        assert captured.metrics is not None

        previous = repro_cache.set_job_results_enabled(False)
        try:
            recomputed = run_job(job)
        finally:
            repro_cache.set_job_results_enabled(previous)
        assert recomputed.value == first.value
        assert store is repro_cache.disk_cache()


def test_job_entry_roundtrips_through_pickle(tmp_path):
    # The farm result value must be picklable as stored (regression
    # guard for future job functions returning live objects).
    with repro_cache.disk_scope(True, root=tmp_path):
        clear_all_caches()
        value = run_job(JOB).value
    assert pickle.loads(pickle.dumps(value)) == value


# -- global clear wiring ------------------------------------------------------


def test_clear_all_caches_disk_flag(tmp_path):
    with repro_cache.disk_scope(True, root=tmp_path):
        store = repro_cache.disk_cache()
        store.put("ab" + "8" * 62, 1)
        clear_all_caches()  # default: memory only, disk untouched
        assert store.entry_count() == 1
        clear_all_caches(disk=True)
        assert store.entry_count() == 0


def test_cache_stats_reports_configuration(tmp_path):
    with repro_cache.disk_scope(True, root=tmp_path):
        repro_cache.disk_cache().put("ab" + "9" * 62, "v")
        stats = repro_cache.cache_stats()
    assert stats["root"] == str(tmp_path)
    assert stats["enabled"] is True
    assert stats["entries"] == 1
    assert stats["total_bytes"] > 0


def test_disk_scope_restores_previous_state(tmp_path):
    assert repro_cache.disk_enabled() is False  # suite fixture
    with repro_cache.disk_scope(True, root=tmp_path):
        assert repro_cache.disk_enabled() is True
        assert repro_cache.default_root() == Path(tmp_path)
    assert repro_cache.disk_enabled() is False
    assert repro_cache.default_root() != Path(tmp_path)
