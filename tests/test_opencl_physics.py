"""Tests for the OpenCL runtime facade and the PhysX-style workload."""

import numpy as np
import pytest

from repro.core.handles import HandleTable
from repro.core.ipc import IPCManager, SHARED_MEMORY
from repro.core.jobs import JobQueue
from repro.core.dispatcher import JobDispatcher, ServiceMode
from repro.core.profiler import Profiler
from repro.core.rescheduler import FIFOPolicy
from repro.core.scenarios import run_emulation, run_native_gpu, run_sigma_vp
from repro.gpu import HostGPU, QUADRO_4000
from repro.kernels.functional import REGISTRY
from repro.sim import Environment
from repro.vp import (
    EmulationBackend,
    HOST_XEON,
    OpenCLRuntime,
    SigmaVPBackend,
    VirtualPlatform,
)
from repro.workloads import SUITE
from repro.workloads.physics import (
    GRAVITY,
    PHYSX_PARTICLES,
    make_physics_kernel,
    physx_step_fn,
)


# -- OpenCL facade --------------------------------------------------------------


def _opencl_app(cl, n=2048):
    """A vectorAdd written in OpenCL style: the same backend serves it."""

    def app():
        a = np.arange(n, dtype=np.float64)
        b = np.full(n, 7.0)
        from repro.kernels import MemoryFootprint, uniform_kernel

        kernel = uniform_kernel(
            "vectorAdd",
            {"fp32": 1, "load": 2, "store": 1},
            MemoryFootprint(bytes_in=2 * n * 8, bytes_out=n * 8,
                            working_set_bytes=3 * n * 8),
            signature="vectorAdd",
        )
        buf_a = yield from cl.create_buffer(a.nbytes)
        buf_b = yield from cl.create_buffer(b.nbytes)
        buf_out = yield from cl.create_buffer(a.nbytes)
        yield from cl.enqueue_write_buffer(buf_a, a, blocking=False)
        yield from cl.enqueue_write_buffer(buf_b, b, blocking=False)
        yield from cl.enqueue_nd_range_kernel(
            kernel, global_size=n, local_size=256,
            args=[buf_a, buf_b], out=buf_out,
        )
        yield from cl.finish()
        result = yield from cl.enqueue_read_buffer(buf_out, nbytes=a.nbytes)
        yield from cl.release_mem_object(buf_a)
        return result.value

    return app


def test_opencl_on_emulation_backend():
    env = Environment()
    platform = VirtualPlatform(env, "ocl", cpu=HOST_XEON)
    cl = OpenCLRuntime(EmulationBackend(env, platform))
    result = env.run(platform.run_app(_opencl_app(cl)))
    np.testing.assert_array_equal(result, np.arange(2048) + 7.0)
    assert cl.commands["clEnqueueNDRangeKernel"] == 1
    assert cl.commands["clFinish"] == 1


def test_opencl_through_sigma_vp():
    env = Environment()
    gpu = HostGPU(env, QUADRO_4000)
    queue = JobQueue(env)
    handles = HandleTable()
    ipc = IPCManager(env, queue, transport=SHARED_MEMORY)
    JobDispatcher(env, gpu, queue, handles, policy=FIFOPolicy(),
                  mode=ServiceMode.PIPELINED, registry=REGISTRY,
                  profiler=Profiler())
    vp = VirtualPlatform(env, "vp0")
    cl = OpenCLRuntime(SigmaVPBackend(env, vp, ipc, handles))
    result = env.run(vp.run_app(_opencl_app(cl)))
    np.testing.assert_array_equal(result, np.arange(2048) + 7.0)


def test_nd_range_validation():
    env = Environment()
    platform = VirtualPlatform(env, "ocl", cpu=HOST_XEON)
    cl = OpenCLRuntime(EmulationBackend(env, platform))
    kernel = make_physics_kernel(1024)

    def bad():
        yield from cl.enqueue_nd_range_kernel(kernel, global_size=0, local_size=64)

    with pytest.raises(ValueError):
        env.run(platform.run_app(bad))

    def bad_local():
        yield from cl.enqueue_nd_range_kernel(kernel, global_size=32, local_size=64)

    with pytest.raises(ValueError):
        env.run(platform.run_app(bad_local))


def test_nd_range_grid_covers_global_size():
    env = Environment()
    gpu = HostGPU(env, QUADRO_4000)
    queue = JobQueue(env)
    handles = HandleTable()
    ipc = IPCManager(env, queue, transport=SHARED_MEMORY)
    dispatcher = JobDispatcher(env, gpu, queue, handles, policy=FIFOPolicy(),
                               registry=REGISTRY, profiler=Profiler())
    vp = VirtualPlatform(env, "vp0")
    cl = OpenCLRuntime(SigmaVPBackend(env, vp, ipc, handles))

    def app():
        yield from cl.enqueue_nd_range_kernel(
            make_physics_kernel(1000), global_size=1000, local_size=128
        )
        yield from cl.finish()

    env.run(vp.run_app(app))
    profile = dispatcher.profiler.last_profile()
    assert profile.launch.grid_size == 8  # ceil(1000 / 128)
    assert profile.launch.block_size == 128


# -- PhysX-style workload --------------------------------------------------------


def test_physics_reference_step():
    state = np.array([[0.0, 1.0, 0.1, 0.0]], dtype=np.float32)
    stepped = physx_step_fn(state)
    assert stepped[0, 0] == pytest.approx(0.1)          # x advanced by vx
    assert stepped[0, 3] == pytest.approx(GRAVITY)      # vy gained gravity
    assert stepped[0, 1] < 1.0                          # falling


def test_physics_ground_collision_reflects():
    state = np.array([[0.0, 0.001, 0.0, -0.5]], dtype=np.float32)
    stepped = physx_step_fn(state)
    assert stepped[0, 1] > 0.0   # bounced above the plane
    assert stepped[0, 3] > 0.0   # vertical velocity reversed


def test_physics_energy_dissipates():
    rng = np.random.default_rng(7)
    state = np.column_stack([
        rng.uniform(-1, 1, 512), rng.uniform(0.5, 2.0, 512),
        rng.normal(0, 0.01, 512), rng.normal(0, 0.01, 512),
    ]).astype(np.float32)

    def energy(s):
        return float(np.sum(0.5 * (s[:, 2] ** 2 + s[:, 3] ** 2)
                     - GRAVITY * s[:, 1]))

    current = state
    for _ in range(200):
        current = physx_step_fn(current)
    assert energy(current) < energy(state)
    assert (current[:, 1] >= 0).all()  # nothing below the ground


def test_physics_workload_in_suite():
    assert "physxParticles" in SUITE
    assert SUITE["physxParticles"].readback_only


def test_physics_functional_through_all_backends():
    spec = SUITE["physxParticles"].scaled_to(1024, iterations=3)
    native = run_native_gpu(spec, functional=True).extras["result"]
    emul = run_emulation(spec, cpu=HOST_XEON, functional=True).extras["result"]
    sigma = run_sigma_vp(spec, n_vps=1, functional=True).extras["result"]
    (state,) = spec.build_inputs(0)
    expected = state
    for _ in range(3):
        expected = physx_step_fn(expected)
    np.testing.assert_allclose(native, expected, rtol=1e-5)
    np.testing.assert_allclose(emul, expected, rtol=1e-5)
    np.testing.assert_allclose(sigma, expected, rtol=1e-5)
