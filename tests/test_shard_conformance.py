"""Sharded-engine conformance: partitioning must be invisible in results.

The contract of :mod:`repro.sim.domains` and :mod:`repro.exec.shard` is
that sharding is a **run mechanic**: for any scenario and any shard
specification, the simulation's observable outcome — the summary digest,
the dispatcher's completed-job log, the per-VP ``account.*`` usage
totals — is bit-identical to the serial single-heap engine.  This suite
property-checks that contract with hypothesis-generated scenarios
across the planning surface (``1``, ``2``, ``"per-gpu"``,
``"per-vp-group"``), pins regression digests for representative shapes,
and holds the multiprocessing executor's merged summaries to the same
standard.
"""

import hashlib

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.core.scenarios import run_sigma_vp
from repro.exec.farm import ScenarioFarm, canonical_json
from repro.exec.jobs import scenario_summary
from repro.exec.shard import (
    merge_domain_values,
    mp_eligible,
    mp_groups,
    run_sharded_inproc,
    run_sharded_mp,
    shard_worker_summary,
)
from repro.obs.account import compute_usage
from repro.sim import ShardedEnvironment
from repro.sim.domains import scenario_plan
from repro.workloads import get_workload

#: Every shard specification the conformance sweep compares to serial.
SHARD_SPECS = [1, 2, "per-gpu", "per-vp-group"]


def _digest(value) -> str:
    return hashlib.sha256(canonical_json(value).encode()).hexdigest()


def _run(shards, app, **kwargs):
    return run_sigma_vp(get_workload(app), shards=shards, **kwargs)


def _completed_order(framework):
    """The dispatcher's completed log as comparable (vp, seq) pairs."""
    return [(job.vp, job.seq) for job in framework.dispatcher.completed_log]


def _usage_table(framework):
    return {
        name: (u.jobs, u.coalesced_jobs, u.busy_ms, u.wait_ms)
        for name, u in compute_usage(framework).items()
    }


# -- hypothesis sweep --------------------------------------------------------


@settings(
    max_examples=8,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(
    app=st.sampled_from(["vectorAdd", "mergeSort", "BlackScholes"]),
    n_vps=st.integers(min_value=2, max_value=6),
    n_host_gpus=st.integers(min_value=1, max_value=3),
    interleaving=st.booleans(),
    coalescing=st.booleans(),
)
def test_any_partition_reproduces_the_serial_run(
    app, n_vps, n_host_gpus, interleaving, coalescing
):
    kwargs = dict(
        n_vps=n_vps,
        n_host_gpus=n_host_gpus,
        interleaving=interleaving,
        coalescing=coalescing,
    )
    serial = _run(None, app, **kwargs)
    serial_digest = _digest(serial.summary())
    serial_order = _completed_order(serial.extras["framework"])
    serial_usage = _usage_table(serial.extras["framework"])

    for shards in SHARD_SPECS:
        sharded = _run(shards, app, **kwargs)
        assert _digest(sharded.summary()) == serial_digest, (
            f"shards={shards!r} changed the result digest"
        )
        framework = sharded.extras["framework"]
        assert _completed_order(framework) == serial_order, (
            f"shards={shards!r} reordered the completed-job log"
        )
        assert _usage_table(framework) == serial_usage, (
            f"shards={shards!r} changed account.* usage totals"
        )


# -- pinned digests ----------------------------------------------------------

#: (scenario_summary kwargs, sha256 of the summary) pinned before the
#: sharded engine landed.  Every shard spec must still produce them; a
#: mismatch means sharding changed observable behaviour — a bug, never
#: a new baseline.
PINNED_SCENARIOS = [
    (
        dict(app="vectorAdd", n_vps=8, n_host_gpus=2),
        "8b39bf1111d08bb6313b45b8051299877b8f2b07fa0b8009cfed094259f2aef3",
    ),
    (
        dict(app="BlackScholes", n_vps=12, n_host_gpus=2),
        "7c46d5cbe2ca1fe4c8763eaba52f0955e7fb46d77d4ef9e6b8b4cde240a5bf5a",
    ),
    (
        dict(app="mergeSort", n_vps=5, interleaving=False),
        "999f37c2f85cfe4a3802009db45d0ffcc5a57fb8ffbcd0db3ad275e5c94acb18",
    ),
    (
        dict(app="vectorAdd", n_vps=6, n_host_gpus=2, coalescing=False),
        "9f076d24c1518fd00372edd58aaa3329d80f14c8d3ffc3564130e267c9b077a4",
    ),
]


@pytest.mark.parametrize(
    "kwargs,expected",
    PINNED_SCENARIOS,
    ids=[k["app"] for k, _ in PINNED_SCENARIOS],
)
def test_pinned_digests_hold_for_every_shard_spec(kwargs, expected):
    assert _digest(scenario_summary(**kwargs)) == expected
    for shards in SHARD_SPECS:
        assert _digest(scenario_summary(shards=shards, **kwargs)) == expected


# -- planning edge cases -----------------------------------------------------


class TestScenarioPlan:
    def test_degenerate_specs_return_no_plan(self):
        for shards in (None, 0, 1, "none", ""):
            assert scenario_plan(shards, 4, 2) is None

    def test_digit_strings_normalize_to_counts(self):
        plan = scenario_plan("3", 6, 2)
        assert plan is not None
        assert plan.n_domains == 3

    def test_unknown_plan_name_raises(self):
        with pytest.raises(ValueError):
            scenario_plan("per-banana", 4, 2)

    def test_shards_one_is_exactly_the_serial_engine(self):
        # shards=1 must not even construct a sharded environment.
        result = _run(1, "vectorAdd", n_vps=2)
        assert not isinstance(
            result.extras["framework"].env, ShardedEnvironment
        )

    def test_non_default_placement_skips_device_prediction(self):
        plan = scenario_plan("per-gpu", 4, 2, default_placement=False)
        assert plan is not None
        # VPs fall back to the control domain; only GPU components are
        # predicted, so locality degrades but correctness cannot.
        assert plan.domain_of("vp:vp0/app") == 0


# -- the multiprocessing executor --------------------------------------------


class TestShardedMP:
    def test_eligibility_is_conservative(self):
        assert mp_eligible(8, 2)
        assert not mp_eligible(8, 1)  # one device: nothing to split
        assert not mp_eligible(1, 2)
        assert not mp_eligible(8, 2, interleaving=False)
        assert not mp_eligible(8, 2, policy="fifo")
        assert not mp_eligible(8, 2, placement="least-loaded")

    def test_groups_mirror_round_robin_by_sorted_position(self):
        groups = mp_groups(5, 2)
        # sorted names: vp0 vp1 vp2 vp3 vp4 -> alternate devices.
        assert groups[0] == [("vp0", 0), ("vp2", 2), ("vp4", 4)]
        assert groups[1] == [("vp1", 1), ("vp3", 3)]

    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(app="vectorAdd", n_vps=8, n_host_gpus=2),
            dict(app="BlackScholes", n_vps=9, n_host_gpus=3),
            dict(app="vectorAdd", n_vps=6, n_host_gpus=2, coalescing=False),
        ],
        ids=["vectorAdd8x2", "BlackScholes9x3", "nocoal6x2"],
    )
    def test_merged_summary_equals_serial(self, kwargs):
        serial = scenario_summary(**kwargs)
        # workers=1 runs the identical job code path in-process, which
        # keeps this a unit test rather than a fork-pool test.
        farm = ScenarioFarm(workers=1, warmup=False)
        assert run_sharded_mp(farm=farm, **kwargs) == serial

    def test_ineligible_falls_back_in_process(self):
        kwargs = dict(app="mergeSort", n_vps=4, n_host_gpus=1)
        detail = {}
        merged = run_sharded_mp(detail=detail, **kwargs)
        assert detail["executor"] == "in-process"
        assert merged == scenario_summary(**kwargs)

    def test_per_vp_usage_totals_survive_decomposition(self):
        kwargs = dict(n_vps=8, n_host_gpus=2)
        serial = _run(None, "vectorAdd", **kwargs)
        serial_usage = _usage_table(serial.extras["framework"])
        serial_order = _completed_order(serial.extras["framework"])

        merged_usage = {}
        per_domain_orders = {}
        for group in mp_groups(8, 2):
            value_kwargs = dict(
                app="vectorAdd",
                vp_names=[n for n, _ in group],
                vp_seeds=[p for _, p in group],
                n_vps_total=8,
            )
            # Re-run the worker function in-process to reach the live
            # framework (the farm value is JSON-able and drops it).
            from repro.core.framework import SigmaVP
            from repro.core.scenarios import NULL_REGISTRY

            framework = SigmaVP(
                n_vps=0,
                n_host_gpus=1,
                target_batch=8,
                registry=NULL_REGISTRY,
            )
            for name, _pos in group:
                framework.add_vp(name)
            framework.run_workload(
                get_workload("vectorAdd"), seeds=[p for _, p in group]
            )
            merged_usage.update(_usage_table(framework))
            for name, _pos in group:
                per_domain_orders[name] = [
                    pair
                    for pair in _completed_order(framework)
                    if pair[0] == name
                ]

        assert merged_usage == serial_usage
        # Per-VP projections of the completed log match the serial run's
        # (a global order across devices is not defined for MP domains).
        for name, order in per_domain_orders.items():
            assert [p for p in serial_order if p[0] == name] == order

    def test_merge_shapes_the_serial_summary(self):
        values = [
            {
                "workload": "w",
                "total_ms": 10.0,
                "per_instance": {"vp0": 10.0, "vp2": 8.0},
                "ipc_messages": 7,
                "coalesce_merges": 2,
                "kernels_coalesced": 4,
            },
            {
                "workload": "w",
                "total_ms": 12.0,
                "per_instance": {"vp1": 12.0},
                "ipc_messages": 5,
                "coalesce_merges": 1,
                "kernels_coalesced": 2,
            },
        ]
        merged = merge_domain_values(values, 3, True, True)
        assert merged["total_ms"] == 12.0
        assert merged["per_instance_ms"] == [10.0, 12.0, 8.0]
        assert merged["ipc_messages"] == 12
        assert merged["coalesce_merges"] == 3
        assert merged["kernels_coalesced"] == 6
        assert merged["n_instances"] == 3

    def test_worker_summary_is_json_able(self):
        value = shard_worker_summary(
            "vectorAdd", ["vp0", "vp2"], [0, 2], n_vps_total=4
        )
        canonical_json(value)  # must not raise
        assert set(value["per_instance"]) == {"vp0", "vp2"}


class TestShardedInproc:
    """The in-process domain scheduler: decomposition without processes."""

    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(app="vectorAdd", n_vps=8, n_host_gpus=2),
            dict(app="BlackScholes", n_vps=9, n_host_gpus=3),
            dict(app="vectorAdd", n_vps=6, n_host_gpus=2, coalescing=False),
        ],
        ids=["vectorAdd8x2", "BlackScholes9x3", "nocoal6x2"],
    )
    def test_inproc_summary_equals_serial(self, kwargs):
        detail = {}
        assert run_sharded_inproc(detail=detail, **kwargs) == scenario_summary(
            **kwargs
        )
        assert detail["executor"] == "in-process-domains"
        assert detail["domains"] == kwargs["n_host_gpus"]

    def test_inproc_matches_mp_executor(self):
        kwargs = dict(app="vectorAdd", n_vps=8, n_host_gpus=2)
        farm = ScenarioFarm(workers=1, warmup=False)
        assert run_sharded_inproc(**kwargs) == run_sharded_mp(
            farm=farm, **kwargs
        )

    def test_ineligible_falls_back_to_merge_engine(self):
        kwargs = dict(app="mergeSort", n_vps=4, n_host_gpus=1)
        detail = {}
        merged = run_sharded_inproc(detail=detail, **kwargs)
        assert detail["executor"] == "in-process-merge"
        assert merged == scenario_summary(**kwargs)

    def test_exported_from_exec_package(self):
        import repro.exec as exec_pkg

        assert exec_pkg.run_sharded_inproc is run_sharded_inproc
