"""Service lifecycle: submit/status/result, cancel, backpressure, replay.

These tests drive a real :class:`~repro.serve.server.ServeDaemon` over
its Unix socket (state dirs live under short ``/tmp`` paths — AF_UNIX
caps socket paths at ~108 bytes, so pytest's deep ``tmp_path`` roots are
unusable).  Determinism notes:

* backpressure/quota tests pin the single worker slot with a slow job
  first, so queued depth is exact when the over-limit submit arrives;
* crash recovery is tested by writing journal bytes directly and
  constructing a fresh daemon over them — the replay fold is pure, so
  no real ``kill -9`` is needed to exercise it.
"""

import shutil
import tempfile
import time
from pathlib import Path

import pytest

from repro.api import RunRequest, run
from repro.serve import ServeDaemon, ServeClient, ServeError
from repro.serve.journal import Journal, replay_journal
from repro.serve.protocol import JobState
from repro.serve.queue import (
    QueueFullError,
    QuotaExceededError,
    ServiceJob,
    ServiceQueue,
)

#: Fast enough to finish within a wait() in every test (<0.2 s warm).
SMALL = RunRequest(app="vectorAdd", n_vps=2, scale_elements=256,
                   scale_iterations=2)

#: Slow enough (~3 s) that a poll loop reliably observes it RUNNING.
SLOW = RunRequest(app="vectorAdd", n_vps=4, scale_iterations=80)


@pytest.fixture()
def state_dir():
    # Short /tmp root: the daemon's socket lives inside it.
    path = Path(tempfile.mkdtemp(prefix="reprosrv-", dir="/tmp"))
    yield path
    shutil.rmtree(path, ignore_errors=True)


def _daemon(state_dir, **kw):
    kw.setdefault("warm", False)
    kw.setdefault("fsync_journal", False)
    return ServeDaemon(
        socket_path=state_dir / "serve.sock", state_dir=state_dir, **kw
    )


def _wait_for(predicate, timeout=20.0, interval=0.01):
    deadline = time.time() + timeout
    while time.time() < deadline:
        if predicate():
            return
        time.sleep(interval)
    raise AssertionError("condition not reached within timeout")


def _connect(daemon):
    _wait_for(lambda: daemon.socket_path.exists(), timeout=10.0)
    return ServeClient.connect(daemon.socket_path)


# -- happy path ------------------------------------------------------------------


def test_submit_status_result_roundtrip(state_dir):
    with _daemon(state_dir) as daemon, _connect(daemon) as client:
        accepted = client.submit(SMALL)
        job_id = accepted["job_id"]
        assert accepted["state"] == "queued"
        assert accepted["config_hash"] == SMALL.config_hash
        final = client.wait(job_id, timeout=60.0)
        assert final["state"] == "done"
        assert final["value"]["total_ms"] > 0
        assert client.status(job_id)["state"] == "done"
        assert client.result(job_id)["digest"] == final["digest"]


def test_daemon_digest_is_bit_identical_to_local_run(state_dir):
    """The acceptance property: service and direct paths share one
    execution (``repro.api.run``), so digests match exactly."""
    local = run(SMALL)
    with _daemon(state_dir) as daemon, _connect(daemon) as client:
        job_id = client.submit(SMALL)["job_id"]
        final = client.wait(job_id, timeout=60.0)
    assert final["digest"] == local.digest
    assert final["value"] == local.value


def test_result_before_finish_is_structured_error(state_dir):
    with _daemon(state_dir, max_workers=1) as daemon, _connect(daemon) as client:
        running_id = client.submit(SLOW)["job_id"]
        _wait_for(lambda: client.status(running_id)["state"] == "running")
        with pytest.raises(ServeError) as excinfo:
            client.result(running_id)
        assert excinfo.value.code == "not-finished"
        client.cancel(running_id)
        client.wait(running_id, timeout=30.0)


def test_ping_and_stats_report_shape(state_dir):
    with _daemon(state_dir) as daemon, _connect(daemon) as client:
        pong = client.ping()
        assert pong["policy"] == "fair-share"
        assert pong["recovery"]["replayed"] == 0
        job_id = client.submit(SMALL)["job_id"]
        client.wait(job_id, timeout=60.0)
        stats = client.stats()
        assert stats["states"].get("done") == 1
        assert stats["tenants"] == {"default": 1}
        assert stats["journal_records"] >= 2  # submit + done at least


# -- cancellation ----------------------------------------------------------------


def test_cancel_mid_queue(state_dir):
    with _daemon(state_dir, max_workers=1) as daemon, _connect(daemon) as client:
        running_id = client.submit(SLOW)["job_id"]
        _wait_for(lambda: client.status(running_id)["state"] == "running")
        queued_id = client.submit(SMALL)["job_id"]
        assert client.status(queued_id)["state"] == "queued"
        cancelled = client.cancel(queued_id)
        assert cancelled["event"] == "cancelled"
        assert cancelled["state"] == "cancelled"
        # Cancelling a terminal job is rejected, structurally.
        with pytest.raises(ServeError) as excinfo:
            client.cancel(queued_id)
        assert excinfo.value.code == "already-finished"
        client.cancel(running_id)
        client.wait(running_id, timeout=30.0)


def test_cancel_mid_run_terminates_worker(state_dir):
    with _daemon(state_dir, max_workers=1) as daemon, _connect(daemon) as client:
        job_id = client.submit(SLOW)["job_id"]
        _wait_for(lambda: client.status(job_id)["state"] == "running")
        pid = client.status(job_id)["worker_pid"]
        assert pid is not None
        acked = client.cancel(job_id)
        assert acked["event"] == "cancelling"
        final = client.wait(job_id, timeout=30.0)
        assert final["state"] == "cancelled"
        # The forked worker is gone (cancellation boundary = process).
        _wait_for(lambda: not Path(f"/proc/{pid}").exists(), timeout=10.0)


# -- admission control -----------------------------------------------------------


def test_backpressure_rejects_at_max_depth(state_dir):
    with _daemon(state_dir, max_workers=1, max_depth=2) as daemon:
        with _connect(daemon) as client:
            running_id = client.submit(SLOW)["job_id"]
            _wait_for(lambda: client.status(running_id)["state"] == "running")
            queued = [client.submit(SMALL)["job_id"] for _ in range(2)]
            with pytest.raises(ServeError) as excinfo:
                client.submit(SMALL)
            assert excinfo.value.code == "queue-full"
            # The rejected submission left no trace: no new job id.
            assert {j["job_id"] for j in client.jobs()} == {
                running_id, *queued
            }
            client.cancel(running_id)
            for job_id in queued:
                client.wait(job_id, timeout=60.0)


def test_tenant_quota_rejects_but_other_tenants_proceed(state_dir):
    with _daemon(
        state_dir, max_workers=1, tenant_quota=2
    ) as daemon, _connect(daemon) as client:
        running_id = client.submit(SLOW.with_overrides(tenant="acme"))["job_id"]
        _wait_for(lambda: client.status(running_id)["state"] == "running")
        client.submit(SMALL.with_overrides(tenant="acme"))
        with pytest.raises(ServeError) as excinfo:
            client.submit(SMALL.with_overrides(tenant="acme"))
        assert excinfo.value.code == "quota-exceeded"
        other = client.submit(SMALL.with_overrides(tenant="zenith"))
        assert other["state"] == "queued"
        client.cancel(running_id)


# -- protocol errors -------------------------------------------------------------


def test_malformed_and_unknown_frames_get_structured_errors(state_dir):
    with _daemon(state_dir) as daemon, _connect(daemon) as client:
        client._send({"op": "frobnicate"})
        with pytest.raises(ServeError) as excinfo:
            client._raise_on_error(client._recv_frame(timeout=10.0))
        assert excinfo.value.code == "unknown-op"

        client._sock.sendall(b"this is not json\n")
        with pytest.raises(ServeError) as excinfo:
            client._raise_on_error(client._recv_frame(timeout=10.0))
        assert excinfo.value.code == "bad-frame"

        with pytest.raises(ServeError) as excinfo:
            client._raise_on_error(
                client.request(
                    "submit", timeout=10.0,
                    request={"app": "vectorAdd", "schema": 99},
                )
            )
        assert excinfo.value.code == "bad-schema"

        with pytest.raises(ServeError) as excinfo:
            client._raise_on_error(
                client.request(
                    "submit", timeout=10.0,
                    request={"app": "vectorAdd", "colour": "red"},
                )
            )
        assert excinfo.value.code == "bad-field"

        with pytest.raises(ServeError) as excinfo:
            client.status("job-999999")
        assert excinfo.value.code == "unknown-job"


# -- queue unit behavior ---------------------------------------------------------


def _service_job(number, tenant="default", qos=None, request=SMALL):
    return ServiceJob(
        job_id=f"job-{number:06d}",
        request=request.with_overrides(tenant=tenant, qos=qos),
        tenant=tenant,
        qos=qos,
    )


def test_queue_admission_raises_before_any_state_change():
    queue = ServiceQueue(max_depth=1, tenant_quota=0)
    queue.submit(_service_job(1))
    with pytest.raises(QueueFullError):
        queue.submit(_service_job(2))
    assert queue.depth() == 1

    quota_queue = ServiceQueue(max_depth=8, tenant_quota=1)
    quota_queue.submit(_service_job(3, tenant="acme"))
    with pytest.raises(QuotaExceededError):
        quota_queue.submit(_service_job(4, tenant="acme"))
    quota_queue.submit(_service_job(5, tenant="zenith"))
    assert quota_queue.tenant_load("acme") == 1
    assert quota_queue.tenant_load("zenith") == 1


def test_fair_share_interleaves_tenants():
    queue = ServiceQueue(policy="fair-share")
    for number in range(4):
        queue.submit(_service_job(number, tenant="acme"))
    queue.submit(_service_job(10, tenant="zenith"))
    first, second = queue.next_job(), queue.next_job()
    # DRR across tenants: the lone zenith job is not starved behind
    # acme's four even though every acme seq is older.
    assert {first.tenant, second.tenant} == {"acme", "zenith"}


def test_priority_deadline_prefers_higher_qos_tier():
    queue = ServiceQueue(policy="priority-deadline")
    queue.submit(_service_job(0, tenant="batch", qos=2))
    queue.submit(_service_job(1, tenant="interactive", qos=0))
    picked = queue.next_job()
    assert picked.tenant == "interactive"


# -- crash recovery --------------------------------------------------------------


def _journal_submit(journal, job_id, request, seq):
    journal.append({
        "type": "submit", "job_id": job_id, "request": request.to_dict(),
        "tenant": request.tenant, "qos": request.qos, "seq": seq,
    })


def test_replay_promotes_mid_run_job_to_faulted(state_dir):
    with Journal(state_dir / "journal.jsonl", fsync=False) as journal:
        _journal_submit(journal, "job-000001", SMALL, 0)
        journal.append({"type": "start", "job_id": "job-000001"})
        _journal_submit(journal, "job-000002", SMALL, 1)
    daemon = _daemon(state_dir)
    assert daemon.recovery["faulted"] == 1
    assert daemon.recovery["resumed"] == 1
    crashed = daemon._jobs["job-000001"]
    assert crashed.state is JobState.FAULTED
    assert crashed.error["code"] == "daemon-crash"
    survivor = daemon._jobs["job-000002"]
    assert survivor.state is JobState.QUEUED
    assert survivor.requeues == 0
    # The promotion was made durable: a second replay folds to the same
    # answer without re-deciding (no new fault records pile up).
    daemon2 = _daemon(state_dir)
    assert daemon2.recovery["faulted"] == 0
    assert daemon2._jobs["job-000001"].state is JobState.FAULTED
    records = (state_dir / "journal.jsonl").read_text().splitlines()
    assert sum(1 for r in records if '"type":"fault"' in r) == 1


def test_replay_ignores_torn_tail(state_dir):
    path = state_dir / "journal.jsonl"
    with Journal(path, fsync=False) as journal:
        _journal_submit(journal, "job-000001", SMALL, 0)
    with open(path, "a", encoding="utf-8") as fh:
        fh.write('{"type":"start","job_id":"job-0')  # crash mid-append
    records, stats = replay_journal(path)
    assert stats["torn"] == 1
    assert records[0]["state"] is JobState.QUEUED  # the torn start never took


def test_recovered_queued_job_runs_to_completion(state_dir):
    with Journal(state_dir / "journal.jsonl", fsync=False) as journal:
        _journal_submit(journal, "job-000001", SMALL, 0)
    with _daemon(state_dir) as daemon, _connect(daemon) as client:
        final = client.wait("job-000001", timeout=60.0)
        assert final["state"] == "done"
        assert final["digest"] == run(SMALL).digest
        # New submissions never reuse a replayed id.
        assert client.submit(SMALL)["job_id"] == "job-000002"


def test_graceful_stop_requeues_running_job(state_dir):
    daemon = _daemon(state_dir, max_workers=1)
    daemon.start()
    try:
        with _connect(daemon) as client:
            job_id = client.submit(SLOW)["job_id"]
            _wait_for(lambda: client.status(job_id)["state"] == "running")
    finally:
        daemon.stop(drain=False)
    job = daemon._jobs[job_id]
    assert job.state is JobState.QUEUED
    assert job.requeues == 1
    # A restarted daemon resumes it from the journal alone.
    daemon2 = _daemon(state_dir)
    assert daemon2.recovery["resumed"] == 1
    assert daemon2._jobs[job_id].state is JobState.QUEUED


def test_watch_streams_transitions_to_terminal(state_dir):
    with _daemon(state_dir) as daemon, _connect(daemon) as client:
        job_id = client.submit(SMALL)["job_id"]
        with ServeClient.connect(daemon.socket_path) as watcher:
            states = [f["state"] for f in watcher.watch(job_id)]
        assert states[-1] == "done"
        assert states == sorted(
            states, key=["queued", "running", "done"].index
        )
