"""Tests for engines, streams, and the HostGPU facade."""

import numpy as np
import pytest

from repro.gpu import HostGPU, QUADRO_4000
from repro.gpu.engines import Engine
from repro.kernels import LaunchConfig, MemoryFootprint, uniform_kernel
from repro.sim import Environment


def _kernel(name="k", signature=None):
    return uniform_kernel(
        name,
        {"fp32": 8, "load": 2, "store": 1, "int": 2},
        MemoryFootprint(bytes_in=8192, bytes_out=4096, working_set_bytes=16384),
        signature=signature or name,
    )


def _launch(grid=8, block=256):
    return LaunchConfig(grid_size=grid, block_size=block, elements=grid * block)


# -- Engine -------------------------------------------------------------------


def test_engine_serves_fifo():
    env = Environment()
    engine = Engine(env, "e")
    a = engine.submit("a", 2.0)
    b = engine.submit("b", 3.0)
    env.run()
    assert a.done.triggered and b.done.triggered
    assert engine.timeline[0].label == "a"
    assert engine.timeline[0].end_ms == 2.0
    assert engine.timeline[1].end_ms == 5.0
    assert engine.busy_ms == 5.0


def test_engine_rejects_negative_duration():
    env = Environment()
    engine = Engine(env, "e")
    with pytest.raises(ValueError):
        engine.submit("bad", -1.0)


def test_engine_on_complete_runs_at_finish_time():
    env = Environment()
    engine = Engine(env, "e")
    seen = []
    engine.submit("op", 4.0, on_complete=lambda: seen.append(env.now))
    env.run()
    assert seen == [4.0]


def test_engine_utilization():
    env = Environment()
    engine = Engine(env, "e")
    engine.submit("op", 3.0)
    env.run()

    def idle_then_check():
        yield env.timeout(3.0)  # now at 6.0 with engine idle since 3.0

    env.process(idle_then_check())
    env.run()
    assert engine.utilization() == pytest.approx(0.5)


def test_engine_idle_gaps():
    env = Environment()
    engine = Engine(env, "e")

    def submitter():
        engine.submit("first", 1.0)
        yield env.timeout(5.0)
        engine.submit("second", 1.0)

    env.process(submitter())
    env.run()
    gaps = engine.idle_gaps()
    assert gaps == [(1.0, 5.0)]


def test_two_engines_overlap():
    """Copy and compute engines operate in parallel (paper Section 3)."""
    env = Environment()
    copy = Engine(env, "copy")
    compute = Engine(env, "compute")
    copy.submit("copy", 10.0)
    compute.submit("kernel", 10.0)
    env.run()
    assert env.now == 10.0  # not 20: they ran concurrently


# -- streams ------------------------------------------------------------------


def test_stream_preserves_order_across_engines():
    env = Environment()
    gpu = HostGPU(env, QUADRO_4000)
    stream = gpu.create_stream("s")
    buf = gpu.malloc(8192, owner="s")

    gpu.memcpy_h2d(stream, buf, np.zeros(1024))
    done = gpu.launch_kernel(stream, _kernel(), _launch())
    env.run(done)
    # The kernel starts only after the stream's copy completed.
    copy_end = gpu.h2d_engine.timeline[0].end_ms
    kernel_start = gpu.compute_engine.timeline[0].start_ms
    assert kernel_start >= copy_end


def test_independent_streams_overlap():
    env = Environment()
    gpu = HostGPU(env, QUADRO_4000)
    s1 = gpu.create_stream("s1")
    s2 = gpu.create_stream("s2")
    b1 = gpu.malloc(2 * 1024 * 1024, owner="s1")
    b2 = gpu.malloc(8192, owner="s2")

    gpu.memcpy_h2d(s1, b1, nbytes=2 * 1024 * 1024)  # long copy
    done = gpu.launch_kernel(s2, _kernel(), _launch())  # other stream's kernel
    env.run()
    kernel_entry = gpu.compute_engine.timeline[0]
    copy_entry = gpu.h2d_engine.timeline[0]
    # The kernel did not wait for the unrelated copy.
    assert kernel_entry.start_ms < copy_entry.end_ms
    assert done.triggered


def test_duplicate_stream_name_rejected():
    env = Environment()
    gpu = HostGPU(env, QUADRO_4000)
    gpu.create_stream("s")
    with pytest.raises(ValueError):
        gpu.create_stream("s")


def test_stream_lookup():
    env = Environment()
    gpu = HostGPU(env, QUADRO_4000)
    s = gpu.create_stream("vp0")
    assert gpu.stream("vp0") is s
    with pytest.raises(KeyError):
        gpu.stream("missing")


def test_stream_synchronize_idle_fires_immediately():
    env = Environment()
    gpu = HostGPU(env, QUADRO_4000)
    stream = gpu.create_stream("s")

    def proc():
        yield stream.synchronize()
        return env.now

    assert env.run(env.process(proc())) == 0.0


def test_stream_synchronize_waits_for_work():
    env = Environment()
    gpu = HostGPU(env, QUADRO_4000)
    stream = gpu.create_stream("s")
    gpu.launch_kernel(stream, _kernel(), _launch())

    def proc():
        yield stream.synchronize()
        return env.now

    finish = env.run(env.process(proc()))
    assert finish > 0.0
    assert finish == pytest.approx(gpu.compute_engine.timeline[0].end_ms)


# -- HostGPU functional behaviour ------------------------------------------------


def test_h2d_copy_sets_payload():
    env = Environment()
    gpu = HostGPU(env, QUADRO_4000)
    stream = gpu.create_stream("s")
    buf = gpu.malloc(800, owner="s")
    data = np.arange(100, dtype=np.float64)
    gpu.memcpy_h2d(stream, buf, data)
    env.run()
    np.testing.assert_array_equal(buf.payload, data)
    # Zero-copy: the payload is a read-only view of the submitted array,
    # so accidental in-place writes through the device side fail loudly.
    assert not buf.payload.flags.writeable
    with pytest.raises(ValueError):
        buf.payload[0] = -1


def test_d2h_copy_delivers_payload():
    env = Environment()
    gpu = HostGPU(env, QUADRO_4000)
    stream = gpu.create_stream("s")
    buf = gpu.malloc(800, owner="s")
    received = []
    gpu.memcpy_h2d(stream, buf, np.ones(100))
    gpu.memcpy_d2h(stream, buf, sink=received.append)
    env.run()
    assert len(received) == 1
    np.testing.assert_array_equal(received[0], np.ones(100))


def test_copy_overflow_rejected():
    env = Environment()
    gpu = HostGPU(env, QUADRO_4000)
    stream = gpu.create_stream("s")
    buf = gpu.malloc(8, owner="s")
    with pytest.raises(ValueError):
        gpu.memcpy_h2d(stream, buf, np.zeros(100))


def test_kernel_apply_transforms_payload():
    env = Environment()
    gpu = HostGPU(env, QUADRO_4000)
    stream = gpu.create_stream("s")
    buf = gpu.malloc(800, owner="s")
    gpu.memcpy_h2d(stream, buf, np.full(100, 2.0))

    def apply():
        buf.payload = buf.payload * 3.0

    gpu.launch_kernel(stream, _kernel(), _launch(), apply=apply)
    env.run()
    np.testing.assert_array_equal(buf.payload, np.full(100, 6.0))


def test_kernel_log_and_profiles():
    env = Environment()
    gpu = HostGPU(env, QUADRO_4000)
    stream = gpu.create_stream("s")
    gpu.launch_kernel(stream, _kernel("alpha"), _launch())
    gpu.launch_kernel(stream, _kernel("beta"), _launch())
    env.run()
    assert [r.kernel_name for r in gpu.kernel_log] == ["alpha", "beta"]
    assert len(gpu.profiles_for("alpha")) == 1
    assert gpu.last_profile().kernel_name == "beta"


def test_byte_counters():
    env = Environment()
    gpu = HostGPU(env, QUADRO_4000)
    stream = gpu.create_stream("s")
    buf = gpu.malloc(1000, owner="s")
    gpu.memcpy_h2d(stream, buf, nbytes=600)
    gpu.memcpy_d2h(stream, buf, nbytes=400)
    env.run()
    assert gpu.bytes_copied_h2d == 600
    assert gpu.bytes_copied_d2h == 400


def test_foreign_compiled_kernel_rejected():
    from repro.gpu import TEGRA_K1
    from repro.kernels import compile_kernel

    env = Environment()
    gpu = HostGPU(env, QUADRO_4000)
    stream = gpu.create_stream("s")
    foreign = compile_kernel(_kernel("tg"), TEGRA_K1)
    with pytest.raises(ValueError):
        gpu.launch_kernel(stream, foreign, _launch())
