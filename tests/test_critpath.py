"""Tests for ``repro.analysis.critpath``: time attribution over traces."""

import pytest

import repro.obs as obs
from repro.analysis.critpath import (
    CATEGORIES,
    attribute,
    render_critpath,
)
from repro.exec.jobs import scenario_summary


def _span(lane, name, start, end, cat="engine", args=None):
    return {
        "id": 0,
        "lane": lane,
        "cat": cat,
        "name": name,
        "start_ms": start,
        "end_ms": end,
        "args": args or {},
    }


def _payload(spans):
    return {"schema": "repro.obs.trace/1", "spans": spans, "instants": []}


class TestSyntheticAttribution:
    def test_disjoint_spans_attribute_exactly(self):
        payload = _payload([
            _span("gpu0/compute", "k", 0.0, 4.0, args={"role": "compute", "device": 0}),
            _span("gpu0/h2d", "c", 5.0, 7.0, args={"role": "h2d", "device": 0}),
        ])
        report = attribute(payload, horizon_ms=10.0)
        assert report.overall["compute"] == pytest.approx(4.0)
        assert report.overall["h2d"] == pytest.approx(2.0)
        assert report.overall["d2h"] == 0.0
        assert report.overall["idle"] == pytest.approx(4.0)
        assert report.coverage == pytest.approx(1.0)

    def test_priority_resolves_overlap_exclusively(self):
        # Compute and h2d overlap on [2, 6): the overlap is compute-bound.
        payload = _payload([
            _span("gpu0/compute", "k", 2.0, 6.0, args={"role": "compute", "device": 0}),
            _span("gpu0/h2d", "c", 0.0, 6.0, args={"role": "h2d", "device": 0}),
        ])
        report = attribute(payload, horizon_ms=6.0)
        assert report.overall["compute"] == pytest.approx(4.0)
        assert report.overall["h2d"] == pytest.approx(2.0)
        assert sum(report.overall.values()) == pytest.approx(6.0)
        device = report.devices[0]
        assert device.overlap_ms == pytest.approx(4.0)
        assert device.bound == "compute"

    def test_ipc_spans_participate_on_every_device(self):
        payload = _payload([
            _span("gpu0/compute", "k", 0.0, 2.0, args={"role": "compute", "device": 0}),
            _span("gpu1/compute", "k", 0.0, 1.0, args={"role": "compute", "device": 1}),
            _span("ipc/socket", "submit", 2.0, 5.0, cat="ipc"),
        ])
        report = attribute(payload, horizon_ms=5.0)
        assert [d.device for d in report.devices] == ["gpu0", "gpu1"]
        gpu0, gpu1 = report.devices
        assert gpu0.by_category["ipc"] == pytest.approx(3.0)
        assert gpu1.by_category["ipc"] == pytest.approx(3.0)
        assert gpu1.by_category["idle"] == pytest.approx(1.0)

    def test_horizon_defaults_to_latest_span_end(self):
        payload = _payload([
            _span("gpu0/d2h", "c", 0.0, 3.5, args={"role": "d2h", "device": 0}),
        ])
        report = attribute(payload)
        assert report.horizon_ms == pytest.approx(3.5)
        assert report.bound == "d2h"

    def test_empty_payload_is_all_idle_with_full_coverage(self):
        report = attribute(_payload([]))
        assert report.horizon_ms == 0.0
        assert report.coverage == 1.0
        assert report.devices == []

    def test_lane_name_fallback_without_role_arg(self):
        payload = _payload([
            _span("Quadro 4000/compute", "k", 0.0, 1.0, args={}),
        ])
        report = attribute(payload, horizon_ms=1.0)
        assert report.overall["compute"] == pytest.approx(1.0)

    def test_unattributable_spans_are_skipped(self):
        payload = _payload([
            _span("vp/vp0", "lifetime", 0.0, 9.0, cat="vp"),
        ])
        report = attribute(payload, horizon_ms=9.0)
        assert report.span_count == 0
        assert report.overall["idle"] == pytest.approx(9.0)


class TestPinnedScenario:
    def test_attributes_at_least_95_percent_of_simulated_time(self):
        with obs.capture() as cap:
            scenario_summary(app="vectorAdd", n_vps=2)
        report = attribute(cap.trace_payload())
        assert report.span_count > 0
        # Acceptance bar is >= 95%; idle-as-a-segment makes it exactly 1.
        assert report.coverage >= 0.95
        assert report.coverage == pytest.approx(1.0)
        assert report.bound in CATEGORIES
        for device in report.devices:
            assert sum(device.by_category.values()) == pytest.approx(
                report.horizon_ms
            )

    def test_render_names_devices_and_bound(self):
        with obs.capture() as cap:
            scenario_summary(app="vectorAdd", n_vps=2)
        report = attribute(cap.trace_payload())
        text = render_critpath(report)
        assert "scenario bound:" in text
        assert "gpu0" in text
        assert "Longest attributable spans" in text
