"""Tests for the benchmark workload suite."""

import numpy as np
import pytest

from repro.kernels.functional import REGISTRY
from repro.workloads import SUITE, WorkloadSpec, build_app, get_workload
from repro.workloads.catalog import ESTIMATION_APPS
from repro.workloads.linalg import MATRIX_MUL, make_vectoradd_spec
from repro.workloads.synthetic import (
    FIG9_COPY_MS,
    calibrate_fp32_count,
    copy_bytes_for_ms,
    make_phase_workload,
    measured_phase_times,
)
from repro.gpu import QUADRO_4000


# -- suite integrity ------------------------------------------------------------


def test_suite_size():
    assert len(SUITE) >= 20


def test_suite_contains_paper_applications():
    paper_apps = {
        "simpleGL", "Mandelbrot", "marchingCubes", "bicubicTexture",
        "VolumeFiltering", "recursiveGaussian", "SobelFilter",
        "stereoDisparity", "convolutionSeparable", "dct8x8",
        "BlackScholes", "MonteCarlo", "matrixMul", "mergeSort",
        "nbody", "smokeParticles", "segmentationTreeThrust",
    }
    assert paper_apps <= set(SUITE)


def test_estimation_apps_in_suite():
    assert set(ESTIMATION_APPS) <= set(SUITE)


def test_get_workload():
    assert get_workload("matrixMul") is SUITE["matrixMul"]
    with pytest.raises(KeyError):
        get_workload("doom")


def test_every_spec_has_valid_launch():
    for spec in SUITE.values():
        launch = spec.launch_config()
        assert launch.grid_size >= 1
        assert launch.threads * max(1, int(spec.kernel.elements_per_thread)) >= (
            spec.elements
        )


def test_every_spec_has_positive_c_ops():
    for spec in SUITE.values():
        assert spec.c_ops > 0, spec.name


def test_noncuda_apps_are_the_paper_ones():
    """OpenGL / file-I/O apps carry non-CUDA work (Section 5's lists)."""
    for name in ("simpleGL", "Mandelbrot", "marchingCubes", "SobelFilter",
                 "nbody", "smokeParticles", "MonteCarlo",
                 "segmentationTreeThrust", "bicubicTexture",
                 "recursiveGaussian", "VolumeFiltering"):
        assert SUITE[name].uses_noncuda, name
    for name in ("BlackScholes", "matrixMul", "dct8x8", "mergeSort"):
        assert not SUITE[name].uses_noncuda, name


def test_non_coalescible_apps_are_the_paper_ones():
    """'convolutionSeparable, dct8x8, SobelFilter, MonteCarlo, nbody, and
    smokeParticles have kernels that are not sped up by the two
    optimizations' (Section 5)."""
    for name in ("convolutionSeparable", "dct8x8", "SobelFilter",
                 "MonteCarlo", "nbody", "smokeParticles"):
        assert not SUITE[name].coalescible, name
    for name in ("BlackScholes", "matrixMul", "mergeSort", "simpleGL"):
        assert SUITE[name].coalescible, name


def test_fp_fraction_ordering():
    """BlackScholes is FP-saturated; mergeSort has zero FP."""
    assert SUITE["BlackScholes"].fp_fraction > 0.5
    assert SUITE["mergeSort"].fp_fraction == 0.0
    assert SUITE["SobelFilter"].fp_fraction < 0.2


def test_matrixmul_matches_table1_setup():
    assert MATRIX_MUL.iterations == 300
    assert MATRIX_MUL.problem_size == 320
    assert MATRIX_MUL.element_bytes == 8  # double precision
    assert not MATRIX_MUL.streaming


def test_scaled_to():
    spec = SUITE["BlackScholes"]
    smaller = spec.scaled_to(spec.elements // 4, iterations=2)
    assert smaller.elements == spec.elements // 4
    assert smaller.iterations == 2
    assert smaller.kernel.footprint.bytes_in == pytest.approx(
        spec.kernel.footprint.bytes_in / 4, rel=0.01
    )
    assert smaller.readback_only == spec.readback_only


def test_spec_validation():
    with pytest.raises(ValueError):
        WorkloadSpec(name="bad", kernel=MATRIX_MUL.kernel, elements=0)
    with pytest.raises(ValueError):
        WorkloadSpec(name="bad", kernel=MATRIX_MUL.kernel, elements=1, iterations=0)


def test_functional_kernels_registered_for_key_apps():
    for name in ("matrixMul", "vectorAdd", "BlackScholes", "dct8x8",
                 "Mandelbrot", "mergeSort", "transpose", "histogram",
                 "SobelFilter", "simpleGL"):
        assert name in REGISTRY, name


# -- functional correctness through build_app -------------------------------------


def _run_native(spec, seed=0):
    from repro.core.scenarios import run_native_gpu

    return run_native_gpu(spec, functional=True).extras["result"]


def test_vectoradd_app_numerics():
    spec = make_vectoradd_spec(elements=4096, iterations=2)
    result = _run_native(spec)
    a, b = spec.build_inputs(0)
    np.testing.assert_allclose(result, a + b)


def test_blackscholes_app_numerics():
    spec = SUITE["BlackScholes"].scaled_to(8192, iterations=1)
    result = _run_native(spec)
    spot, strike, years = spec.build_inputs(0)
    from repro.workloads.finance import black_scholes_fn

    expected = black_scholes_fn(spot, strike, years, **spec.params)
    np.testing.assert_allclose(result, expected)
    # Sanity: call prices are non-negative and bounded by spot.
    assert (result >= -1e-5).all()
    assert (result <= spot + 1e-5).all()


def test_mergesort_app_numerics():
    spec = SUITE["mergeSort"].scaled_to(4096, iterations=1)
    result = _run_native(spec)
    (keys,) = spec.build_inputs(0)
    np.testing.assert_array_equal(result, np.sort(keys))


def test_histogram_app_numerics():
    spec = SUITE["histogram"].scaled_to(65536, iterations=1)
    result = _run_native(spec)
    (data,) = spec.build_inputs(0)
    np.testing.assert_array_equal(result, np.bincount(data, minlength=256))


def test_mandelbrot_app_numerics():
    spec = SUITE["Mandelbrot"].scaled_to(SUITE["Mandelbrot"].elements, iterations=1)
    result = _run_native(spec)
    assert result.shape == (1024, 1024)
    # The set's interior reaches max iterations; the far exterior escapes fast.
    assert result.max() >= 256
    assert result.min() <= 2


# -- synthetic microbenchmarks -------------------------------------------------------


def test_copy_bytes_roundtrip():
    nbytes = copy_bytes_for_ms(FIG9_COPY_MS)
    assert QUADRO_4000.copy_time_ms(nbytes) == pytest.approx(FIG9_COPY_MS, rel=0.01)


def test_copy_bytes_below_latency_rejected():
    with pytest.raises(ValueError):
        copy_bytes_for_ms(0.001)


def test_calibrated_kernel_hits_target():
    for target in (2.0, 13.44, 50.0):
        spec = make_phase_workload(t_kernel_ms=target, t_copy_ms=4.0)
        copy_ms, kernel_ms = measured_phase_times(spec)
        assert kernel_ms == pytest.approx(target, rel=0.05)
        assert copy_ms == pytest.approx(4.0, rel=0.05)


def test_calibration_clamps_at_zero():
    nbytes = copy_bytes_for_ms(4.0)
    assert calibrate_fp32_count(0.0, nbytes) == 0.0
