"""Reproducing the paper's Fig. 3: the interleaved engine schedule.

Fig. 3 contrasts two VPs' (copy, kernel, copy)-style submissions without
(a) and with (b) Kernel Interleaving.  These tests assert the *schedule
shapes* directly from the engine timelines: without interleaving the
phases serialize; with it, VP B's copy slots into the gap while VP A's
kernel runs, and the engines overlap.
"""

import pytest

from repro.core import SHARED_MEMORY
from repro.core.profiler import Profiler
from repro.core.scenarios import run_sigma_vp
from repro.workloads.synthetic import make_phase_workload


@pytest.fixture(scope="module")
def schedules():
    spec = make_phase_workload(t_kernel_ms=6.0, t_copy_ms=6.0)
    serial = run_sigma_vp(spec, n_vps=2, interleaving=False, coalescing=False,
                          transport=SHARED_MEMORY)
    inter = run_sigma_vp(spec, n_vps=2, interleaving=True, coalescing=False,
                         transport=SHARED_MEMORY)
    return serial, inter


def _gpu(result):
    return result.extras["framework"].gpu


def test_fig3a_serial_never_overlaps(schedules):
    serial, _ = schedules
    gpu = _gpu(serial)
    spans = sorted(
        gpu.h2d_engine.timeline + gpu.compute_engine.timeline
        + gpu.d2h_engine.timeline,
        key=lambda s: s.start_ms,
    )
    for left, right in zip(spans, spans[1:]):
        assert right.start_ms >= left.end_ms - 1e-9


def test_fig3b_interleaved_overlaps_copy_and_compute(schedules):
    _, inter = schedules
    gpu = _gpu(inter)
    kernel_spans = gpu.compute_engine.timeline
    copy_spans = gpu.h2d_engine.timeline + gpu.d2h_engine.timeline
    overlaps = sum(
        1
        for k in kernel_spans
        for c in copy_spans
        if c.start_ms < k.end_ms - 1e-9 and k.start_ms < c.end_ms - 1e-9
    )
    assert overlaps >= 1  # Fig. 3(b): COPY B1 under KERNEL.X


def test_fig3b_b_copy_starts_during_a_kernel(schedules):
    """The defining move: while VP A's kernel occupies the compute
    engine, VP B's input copy proceeds on the copy engine."""
    _, inter = schedules
    gpu = _gpu(inter)
    first_kernel = gpu.compute_engine.timeline[0]
    h2d_spans = gpu.h2d_engine.timeline
    assert any(
        span.start_ms < first_kernel.end_ms - 1e-9
        and span.end_ms > first_kernel.start_ms
        for span in h2d_spans[1:]  # some copy other than the very first
    )


def test_fig3_total_time_improves(schedules):
    serial, inter = schedules
    assert inter.total_ms < serial.total_ms * 0.8


def test_profiler_host_energy_accounting(schedules):
    """The host GPU's own energy for the run is reportable."""
    _, inter = schedules
    framework = inter.extras["framework"]
    energy = framework.profiler.host_energy_mj(framework.gpu.arch)
    assert energy > 0
    # Static floor: at least static power over the kernels' elapsed time.
    elapsed_ms = sum(r.profile.time_ms for r in framework.profiler.records)
    assert energy >= framework.gpu.arch.static_power_w * elapsed_ms / 1e3
