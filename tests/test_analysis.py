"""Tests for the analysis layer: rendering, tables, timelines."""

import pytest

from repro.analysis import render_series, render_table
from repro.analysis.tables import PAPER_TABLE1
from repro.analysis.timeline import Lane, Timeline, collect_timeline, render_gantt
from repro.core import SHARED_MEMORY, SigmaVP
from repro.gpu.engines import TimelineEntry
from repro.workloads.linalg import make_vectoradd_spec


# -- rendering ---------------------------------------------------------------


def test_render_table_alignment():
    text = render_table(["name", "value"], [("a", 1.5), ("long-name", 12.25)])
    lines = text.splitlines()
    assert len(lines) == 4  # header, rule, two rows
    assert all(len(line) == len(lines[0]) for line in lines[1:])


def test_render_table_with_title():
    text = render_table(["x"], [(1,)], title="My Table")
    assert text.splitlines()[0] == "My Table"
    assert text.splitlines()[1] == "========"


def test_render_table_number_formats():
    text = render_table(["v"], [(1234.5,), (12.345,), (0.1234,), (0,)])
    assert "1,234" in text  # thousands
    assert "12.35" in text  # two decimals >= 10
    assert "0.123" in text  # three decimals < 10


def test_render_series_pairs_x_with_values():
    text = render_series("s", [1, 2], [("a", [10.0, 20.0]), ("b", [1.0, 2.0])],
                         x_label="n")
    lines = text.splitlines()
    assert "n" in lines[2]
    assert "10.00" in text and "20.00" in text


def test_paper_table1_reference_values():
    assert PAPER_TABLE1["CUDA / GPU"] == (170.79, 1.00)
    assert PAPER_TABLE1["CUDA / This work"][1] == 3.32
    assert len(PAPER_TABLE1) == 6


# -- timeline ----------------------------------------------------------------


def _span(label, start, end):
    return TimelineEntry(label, start, end)


def test_timeline_lane_lookup_and_busy():
    timeline = Timeline(
        lanes=[Lane("compute", [_span("k", 0.0, 2.0), _span("k", 4.0, 6.0)])],
        horizon_ms=10.0,
    )
    assert timeline.lane("compute").busy_ms == pytest.approx(4.0)
    assert timeline.utilization("compute") == pytest.approx(0.4)
    with pytest.raises(KeyError):
        timeline.lane("ghost")


def test_timeline_as_dict():
    timeline = Timeline(
        lanes=[Lane("h2d", [_span("c", 1.0, 2.0)])],
        horizon_ms=5.0,
        vp_spans={"vp0": (0.0, 5.0)},
    )
    exported = timeline.as_dict()
    assert exported["horizon_ms"] == 5.0
    assert exported["lanes"][0]["spans"][0]["label"] == "c"
    assert exported["vps"]["vp0"]["end_ms"] == 5.0


def test_render_gantt_marks_busy_cells():
    timeline = Timeline(
        lanes=[Lane("compute", [_span("k", 0.0, 5.0)])],
        horizon_ms=10.0,
    )
    text = render_gantt(timeline, width=10)
    row = text.splitlines()[1]
    assert row.count("#") == 5
    assert " 50.0%" in row


def test_render_gantt_empty():
    assert "(empty" in render_gantt(Timeline(lanes=[], horizon_ms=0.0))


def test_collect_timeline_from_framework():
    framework = SigmaVP(n_vps=2, transport=SHARED_MEMORY)
    spec = make_vectoradd_spec(elements=4096, iterations=2)
    framework.run_workload(spec)
    timeline = collect_timeline(framework)
    assert {lane.name for lane in timeline.lanes} == {"h2d", "compute", "d2h"}
    assert timeline.horizon_ms == framework.env.now
    assert timeline.lane("compute").busy_ms > 0
    assert set(timeline.vp_spans) == {"vp0", "vp1"}
    # Rendering works end to end.
    assert "#" in render_gantt(timeline)


def test_collect_timeline_multi_gpu_prefixes():
    framework = SigmaVP(n_vps=2, n_host_gpus=2, transport=SHARED_MEMORY)
    spec = make_vectoradd_spec(elements=4096, iterations=1)
    framework.run_workload(spec)
    timeline = collect_timeline(framework)
    names = {lane.name for lane in timeline.lanes}
    assert "gpu0/compute" in names and "gpu1/compute" in names
