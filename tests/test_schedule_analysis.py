"""Tests for the dependency-DAG schedule analytics."""

import pytest

from repro.core.jobs import Job, JobKind
from repro.core.schedule_analysis import (
    ScheduleAnalysis,
    analyze,
    build_dependency_dag,
    critical_path,
)
from repro.sim import Environment


def _job(env, vp, seq, kind=JobKind.COPY_H2D, depends_on=()):
    return Job(vp=vp, seq=seq, kind=kind, completion=env.event(),
               depends_on=list(depends_on))


#: Durations by kind for tests (ms).
_DURATIONS = {
    JobKind.COPY_H2D: 2.0,
    JobKind.COPY_D2H: 2.0,
    JobKind.KERNEL: 3.0,
    JobKind.MALLOC: 0.1,
    JobKind.FREE: 0.1,
    JobKind.EVENT: 0.0,
}


def _duration(job):
    return _DURATIONS[job.kind]


def _phase_triple(env, vp):
    return [
        _job(env, vp, 0, JobKind.COPY_H2D),
        _job(env, vp, 1, JobKind.KERNEL),
        _job(env, vp, 2, JobKind.COPY_D2H),
    ]


def test_dag_has_program_order_edges():
    env = Environment()
    jobs = _phase_triple(env, "a")
    dag = build_dependency_dag(jobs, _duration)
    assert dag.number_of_nodes() == 3
    assert dag.has_edge(jobs[0].job_id, jobs[1].job_id)
    assert dag.has_edge(jobs[1].job_id, jobs[2].job_id)
    assert not dag.has_edge(jobs[0].job_id, jobs[2].job_id)


def test_dag_includes_cross_vp_dependencies():
    env = Environment()
    gate = _job(env, "a", 0, JobKind.COPY_H2D)
    dependent = _job(env, "b", 0, JobKind.KERNEL,
                     depends_on=[gate.completion])
    dag = build_dependency_dag([gate, dependent], _duration)
    assert dag.has_edge(gate.job_id, dependent.job_id)


def test_critical_path_is_one_vp_chain():
    env = Environment()
    jobs = _phase_triple(env, "a") + _phase_triple(env, "b")
    analysis = analyze(jobs, _duration)
    # Each chain is 2 + 3 + 2 = 7 ms; that's the critical path.
    assert analysis.critical_path_ms == pytest.approx(7.0)
    assert len(analysis.critical_path) == 3


def test_engine_load_bound_dominates_with_many_vps():
    """Eq. 7's regime: with N programs, the copy engine's total work
    exceeds the per-program chain, so the engine bound binds."""
    env = Environment()
    jobs = []
    for i in range(8):
        jobs.extend(_phase_triple(env, f"vp{i}"))
    analysis = analyze(jobs, _duration)
    assert analysis.engine_load_ms["h2d"] == pytest.approx(16.0)
    assert analysis.engine_load_ms["compute"] == pytest.approx(24.0)
    assert analysis.busiest_engine == "compute"
    assert analysis.makespan_lower_bound_ms == pytest.approx(24.0)


def test_host_jobs_do_not_load_engines():
    env = Environment()
    jobs = [_job(env, "a", 0, JobKind.MALLOC),
            _job(env, "a", 1, JobKind.KERNEL)]
    analysis = analyze(jobs, _duration)
    assert "host" not in analysis.engine_load_ms
    assert analysis.engine_load_ms["compute"] == pytest.approx(3.0)


def test_efficiency_ratio():
    analysis = ScheduleAnalysis(
        jobs=3, critical_path_ms=7.0, critical_path=[1, 2, 3],
        engine_load_ms={"compute": 5.0}, makespan_lower_bound_ms=7.0,
    )
    assert analysis.efficiency(10.0) == pytest.approx(0.7)
    assert analysis.efficiency(7.0) == pytest.approx(1.0)
    assert analysis.efficiency(5.0) == 1.0  # clamped
    with pytest.raises(ValueError):
        analysis.efficiency(0.0)


def test_empty_snapshot():
    dag = build_dependency_dag([], _duration)
    assert critical_path(dag) == []
    analysis = analyze([], _duration)
    assert analysis.makespan_lower_bound_ms == 0.0
    assert analysis.busiest_engine == ""


def test_interleaving_achieves_near_bound_end_to_end():
    """The pipelined dispatcher lands close to the analytic lower bound
    for the Fig-9 phase loop (Eq. 7 *is* that bound plus pipeline fill)."""
    from repro.core import SHARED_MEMORY
    from repro.core.scenarios import run_sigma_vp
    from repro.workloads.synthetic import make_phase_workload

    spec = make_phase_workload(t_kernel_ms=4.0, t_copy_ms=4.0)
    result = run_sigma_vp(spec, n_vps=8, interleaving=True, coalescing=False,
                          transport=SHARED_MEMORY)
    # Engine-load bound: 8 copies of ~4 ms on the busiest engine.
    bound = 8 * 4.0
    assert result.total_ms >= bound
    assert result.total_ms < bound * 1.6  # within 60% of provably optimal
