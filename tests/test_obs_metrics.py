"""Metrics registry: deterministic histograms, merging, self-profiling.

Histogram bucket edges are fixed constants — never derived from data —
which is what makes snapshots bit-identical across runs and lets farm
workers' histograms merge by plain bucket-wise addition.
"""

import json

import pytest
from hypothesis import given
from hypothesis import strategies as st

import repro.obs as obs
from repro.exec.jobs import scenario_summary
from repro.obs import metrics as metrics_mod
from repro.obs.aggregate import merge_metric_snapshots
from repro.obs.export import canonical_json
from repro.obs.metrics import (
    DEPTH_BUCKETS,
    MS_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)


class TestMetricKinds:
    def test_counter_accumulates(self):
        c = Counter()
        c.inc()
        c.inc(2.5)
        assert c.snapshot() == {"type": "counter", "value": 3.5}

    def test_gauge_is_last_write_wins(self):
        g = Gauge()
        g.set(4)
        g.set(1.5)
        assert g.snapshot() == {"type": "gauge", "value": 1.5}

    def test_histogram_buckets_and_overflow(self):
        h = Histogram(edges=(1.0, 10.0))
        for value in (0.5, 1.0, 5.0, 100.0):
            h.observe(value)
        snap = h.snapshot()
        assert snap["edges"] == [1.0, 10.0]
        # <=1.0: {0.5, 1.0}; <=10.0: {5.0}; overflow: {100.0}
        assert snap["counts"] == [2, 1, 1]
        assert snap["count"] == 4
        assert snap["sum"] == pytest.approx(106.5)

    def test_histogram_rejects_unsorted_edges(self):
        with pytest.raises(ValueError):
            Histogram(edges=(10.0, 1.0))

    def test_histogram_snapshot_is_deterministic(self):
        def build():
            h = Histogram(MS_BUCKETS)
            for i in range(200):
                h.observe((i * 37 % 101) / 7.0)
            return h.snapshot()

        assert canonical_json(build()) == canonical_json(build())


class TestRegistry:
    def test_get_or_create_returns_same_metric(self):
        reg = MetricsRegistry()
        assert reg.counter("a") is reg.counter("a")
        assert reg.histogram("h", DEPTH_BUCKETS) is reg.histogram("h")

    def test_snapshot_is_name_sorted_and_json_clean(self):
        reg = MetricsRegistry()
        reg.counter("z.last").inc()
        reg.gauge("a.first").set(1)
        snap = reg.snapshot()
        assert list(snap) == sorted(snap)
        json.dumps(snap)

    def test_timed_is_noop_when_disabled(self):
        assert metrics_mod.REGISTRY is None
        cm = metrics_mod.timed("anything")
        assert cm is metrics_mod.timed("anything else")  # shared singleton
        with cm:
            pass

    def test_timed_records_when_enabled(self):
        with obs.capture() as cap:
            with metrics_mod.timed("unit_test"):
                pass
        snap = cap.registry.snapshot()
        assert snap["selfprof.unit_test_s"]["count"] == 1


def _scenario_metrics():
    with obs.capture() as cap:
        scenario_summary(app="vectorAdd", n_vps=2)
    return cap.registry.snapshot()


def _without_selfprof(snapshot):
    """Drop host wall-clock metrics: the only intentionally
    nondeterministic family in a snapshot."""
    return {k: v for k, v in snapshot.items() if not k.startswith("selfprof.")}


class TestScenarioDeterminism:
    def test_repeat_runs_snapshot_identically(self):
        first = _without_selfprof(_scenario_metrics())
        second = _without_selfprof(_scenario_metrics())
        assert canonical_json(first) == canonical_json(second)

    def test_expected_metric_families_present(self):
        snap = _scenario_metrics()
        for name in (
            "sim.events_processed",
            "dispatch.decisions",
            "jobqueue.depth",
            "engine.op_ms",
            "engine.gpu0/compute.busy_ms",
            "ipc.messages",
            "coalesce.merges",
            "cache.compile.misses",
            "cache.profile.misses",
            "vp.vp0.elapsed_ms",
            "framework.runs",
            "selfprof.framework.run_s",
        ):
            assert name in snap, f"missing metric {name}"


class TestMerging:
    def test_counters_and_histograms_add_gauges_stay_per_job(self):
        def snap(n):
            reg = MetricsRegistry()
            reg.counter("c").inc(n)
            reg.gauge("g").set(n)
            h = reg.histogram("h", (1.0, 10.0))
            h.observe(0.5 * n)
            return reg.snapshot()

        merged = merge_metric_snapshots([("a", snap(2)), ("b", snap(10))])
        assert merged["schema"] == "repro.obs.metrics-merged/1"
        assert merged["totals"]["c"]["value"] == 12
        assert "g" not in merged["totals"]
        assert merged["totals"]["h"]["count"] == 2
        assert merged["per_job"]["a"]["g"]["value"] == 2
        assert merged["per_job"]["b"]["g"]["value"] == 10

    def test_gauges_surface_labeled_by_job(self):
        def snap(n):
            reg = MetricsRegistry()
            reg.gauge("engine.utilization").set(n)
            return reg.snapshot()

        merged = merge_metric_snapshots([("b", snap(0.9)), ("a", snap(0.4))])
        # Every job's statement is visible, keyed by its label — a last
        # writer can never masquerade as an aggregate.
        assert merged["gauges"]["engine.utilization"] == {"a": 0.4, "b": 0.9}
        assert "engine.utilization" not in merged["totals"]

    def test_mismatched_edges_raise(self):
        a = MetricsRegistry()
        a.histogram("h", (1.0, 2.0)).observe(1.0)
        b = MetricsRegistry()
        b.histogram("h", (5.0, 6.0)).observe(1.0)
        with pytest.raises(ValueError, match="mismatched bucket edges"):
            merge_metric_snapshots([("a", a.snapshot()), ("b", b.snapshot())])

    @given(
        st.lists(
            st.lists(
                st.floats(0.0, 100.0, allow_nan=False), min_size=0, max_size=20
            ),
            min_size=1,
            max_size=5,
        )
    )
    def test_histogram_merge_is_exactly_one_observer(self, job_samples):
        """Merged histograms equal one process observing every sample.

        Fixed bucket edges make the bucket-wise sum *exact*, not an
        approximation — pinned here as a hypothesis property over
        arbitrary sample partitions.
        """
        edges = (1.0, 10.0, 50.0)
        snapshots = []
        for index, samples in enumerate(job_samples):
            reg = MetricsRegistry()
            h = reg.histogram("h", edges)
            for value in samples:
                h.observe(value)
            snapshots.append((f"job{index}", reg.snapshot()))
        merged = merge_metric_snapshots(snapshots)

        reference = Histogram(edges)
        for samples in job_samples:
            for value in samples:
                reference.observe(value)
        expected = reference.snapshot()
        got = merged["totals"]["h"]
        assert got["counts"] == expected["counts"]
        assert got["count"] == expected["count"]
        assert got["sum"] == pytest.approx(expected["sum"])
        assert got["edges"] == expected["edges"]
