"""Zero-copy H2D transfers must be indistinguishable from defensive copies.

The per-launch ``np.array(..., copy=True)`` in the memcpy paths was
replaced by read-only views.  That is only legal because nothing in the
pipeline mutates a submitted array in place — so each test here re-runs
the same scenario with the old defensive-copy semantics restored via
monkeypatch and demands bit-identical summaries and numeric outputs.
The read-only flag is the tripwire that keeps the invariant honest.
"""

import numpy as np
import pytest

from repro.core.dispatcher import JobDispatcher
from repro.core.scenarios import run_emulation, run_sigma_vp
from repro.vp.cuda_runtime import EmulationBackend
from repro.workloads import get_workload


def _spec(app="vectorAdd"):
    return get_workload(app).scaled_to(2048, iterations=2)


def _summaries(result):
    return result.summary(), result.extras.get("result")


def test_emulation_view_matches_defensive_copy(monkeypatch):
    baseline_summary, baseline_value = _summaries(
        run_emulation(_spec(), n_instances=2, functional=True)
    )

    original = EmulationBackend.memcpy_h2d

    def copying(self, handle, data, sync):
        # The pre-PR semantics: the device sees a private copy.
        yield from original(self, handle, np.array(data, copy=True), sync)

    monkeypatch.setattr(EmulationBackend, "memcpy_h2d", copying)
    copied_summary, copied_value = _summaries(
        run_emulation(_spec(), n_instances=2, functional=True)
    )

    assert copied_summary == baseline_summary
    np.testing.assert_array_equal(copied_value, baseline_value)


def test_sigma_vp_view_matches_defensive_copy(monkeypatch):
    baseline_summary, baseline_value = _summaries(
        run_sigma_vp(_spec(), n_vps=4, functional=True)
    )

    original = JobDispatcher._apply_h2d

    def copying(self, job):
        inner = original(self, job)

        def apply():
            inner()
            for member in self._effective_members(job):
                if member.host_data is not None and member.handle is not None:
                    buffer = self.handles.buffer(member.handle)
                    buffer.payload = np.array(buffer.payload, copy=True)

        return apply

    monkeypatch.setattr(JobDispatcher, "_apply_h2d", copying)
    copied_summary, copied_value = _summaries(
        run_sigma_vp(_spec(), n_vps=4, functional=True)
    )

    assert copied_summary == baseline_summary
    np.testing.assert_array_equal(copied_value, baseline_value)


def test_emulation_device_array_is_read_only():
    # Direct probe of the backend invariant: the stored "device" array is
    # a locked view, so an accidental in-place write fails loudly instead
    # of silently aliasing the host buffer.
    from repro.sim import Environment
    from repro.vp.platform import VirtualPlatform

    env = Environment()
    platform = VirtualPlatform(env, "probe")
    backend = EmulationBackend(env, platform)
    host = np.arange(16, dtype=np.float32)

    def driver():
        handle = yield from backend.malloc(host.nbytes)
        yield from backend.memcpy_h2d(handle, host, True)
        return handle

    handle = env.run(env.process(driver()))
    stored = backend._arrays[handle]
    np.testing.assert_array_equal(stored, host)
    assert not stored.flags.writeable
    with pytest.raises(ValueError):
        stored[0] = -1.0
