"""Tests for CUDA API trace parsing and replay."""

import json

import numpy as np
import pytest

from repro.core.scenarios import NULL_REGISTRY
from repro.sim import Environment
from repro.vp import CudaRuntime, EmulationBackend, HOST_XEON, VirtualPlatform
from repro.workloads.trace import ApiTrace, TraceError, load_trace, parse_trace, replay

VALID_TRACE = {
    "name": "mini-vecadd",
    "calls": [
        {"op": "malloc", "buf": "A", "nbytes": 4096},
        {"op": "malloc", "buf": "B", "nbytes": 4096},
        {"op": "malloc", "buf": "OUT", "nbytes": 4096},
        {"op": "h2d", "buf": "A", "nbytes": 4096},
        {"op": "h2d", "buf": "B", "nbytes": 4096},
        {
            "op": "launch",
            "kernel": {
                "name": "vadd",
                "signature": "vectorAdd",
                "mix": {"fp32": 1, "load": 2, "store": 1},
                "working_set": 12288,
            },
            "grid": 4,
            "block": 256,
            "elements": 1024,
            "args": ["A", "B"],
            "out": "OUT",
        },
        {"op": "sync"},
        {"op": "d2h", "buf": "OUT", "nbytes": 4096},
        {"op": "cpu", "ops": 1e4},
        {"op": "free", "buf": "A"},
    ],
}


# -- parsing ----------------------------------------------------------------


def test_parse_valid_trace():
    trace = parse_trace(VALID_TRACE)
    assert trace.name == "mini-vecadd"
    assert len(trace) == 10
    assert trace.kernel_launches() == 1
    assert "vadd" in trace.kernels


def test_parse_from_json_text():
    trace = parse_trace(json.dumps(VALID_TRACE))
    assert trace.kernel_launches() == 1


def test_parse_rejects_bad_json():
    with pytest.raises(TraceError):
        parse_trace("{not json")


def test_parse_rejects_empty_calls():
    with pytest.raises(TraceError):
        parse_trace({"calls": []})


def test_parse_rejects_unknown_op():
    with pytest.raises(TraceError, match="unknown op"):
        parse_trace({"calls": [{"op": "warp-drive"}]})


def test_parse_rejects_use_before_malloc():
    with pytest.raises(TraceError, match="unallocated"):
        parse_trace({"calls": [{"op": "h2d", "buf": "X", "nbytes": 64}]})


def test_parse_rejects_use_after_free():
    with pytest.raises(TraceError, match="unallocated"):
        parse_trace({"calls": [
            {"op": "malloc", "buf": "X", "nbytes": 64},
            {"op": "free", "buf": "X"},
            {"op": "d2h", "buf": "X"},
        ]})


def test_parse_rejects_launch_without_kernel():
    with pytest.raises(TraceError, match="needs a 'kernel'"):
        parse_trace({"calls": [{"op": "launch", "grid": 1, "block": 32}]})


def test_parse_rejects_unknown_kernel_reference():
    with pytest.raises(TraceError, match="unknown kernel"):
        parse_trace({"calls": [
            {"op": "launch", "kernel": "ghost", "grid": 1, "block": 32},
        ]})


def test_kernel_reference_reuses_definition():
    trace = parse_trace({"calls": [
        {"op": "malloc", "buf": "A", "nbytes": 64},
        {"op": "launch", "kernel": {"name": "k", "mix": {"int": 1}},
         "grid": 1, "block": 32, "args": ["A"]},
        {"op": "launch", "kernel": "k", "grid": 2, "block": 32, "args": ["A"]},
    ]})
    assert trace.kernel_launches() == 2
    assert len(trace.kernels) == 1


def test_load_trace_from_file(tmp_path):
    path = tmp_path / "t.json"
    path.write_text(json.dumps(VALID_TRACE))
    trace = load_trace(path)
    assert trace.name == "mini-vecadd"


# -- replay -------------------------------------------------------------------


def _emulation_api(env):
    platform = VirtualPlatform(env, "emu", cpu=HOST_XEON)
    return platform, CudaRuntime(EmulationBackend(env, platform))


def test_replay_timing_only():
    env = Environment()
    platform, api = _emulation_api(env)
    trace = parse_trace(VALID_TRACE)
    result = env.run(platform.run_app(replay(trace, api)))
    assert env.now > 0
    # Zero inputs, vectorAdd functional kernel: zeros out.
    np.testing.assert_array_equal(result, np.zeros(1024, dtype=np.float32))


def test_replay_functional_with_inputs():
    env = Environment()
    platform, api = _emulation_api(env)
    trace = parse_trace(VALID_TRACE)
    a = np.arange(1024, dtype=np.float32)
    b = np.full(1024, 3.0, dtype=np.float32)
    result = env.run(platform.run_app(
        replay(trace, api, inputs={"A": a, "B": b})
    ))
    np.testing.assert_allclose(result, a + b)


def test_replay_through_sigma_vp():
    from repro.core import SHARED_MEMORY, SigmaVP
    from repro.kernels.functional import REGISTRY

    framework = SigmaVP(n_vps=1, transport=SHARED_MEMORY, registry=REGISTRY)
    session = framework.session("vp0")
    trace = parse_trace(VALID_TRACE)
    a = np.ones(1024, dtype=np.float32)
    b = np.ones(1024, dtype=np.float32)
    app = replay(trace, session.runtime, inputs={"A": a, "B": b})
    process = session.vp.run_app(app)
    framework.run_until([process])
    np.testing.assert_allclose(process.value, np.full(1024, 2.0))


def test_replay_counts_api_calls():
    env = Environment()
    platform, api = _emulation_api(env)
    trace = parse_trace(VALID_TRACE)
    env.run(platform.run_app(replay(trace, api)))
    assert api.calls["malloc"] == 3
    assert api.calls["memcpy_h2d"] == 2
    assert api.calls["launch_kernel"] == 1
    assert api.calls["free"] == 1
