"""Scalar vs. vectorized timing conformance (:mod:`repro.gpu.vectimes`).

The vectorized engine must be *bit-identical* to the scalar reference —
not approximately equal — because scenario digests are pinned on the
scalar walk's float results.  Every test here therefore compares with
``==``, never ``pytest.approx``.
"""

import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.estimation import ExecutionAnalyzer
from repro.gpu import GRID_K520, QUADRO_4000, TEGRA_K1, vectimes
from repro.gpu.timing import ExecutionProfile, KernelTimingModel
from repro.kernels import (
    InstructionMix,
    InstructionType,
    KernelCompiler,
    KernelIR,
    LaunchConfig,
    MemoryFootprint,
    ProgramBlock,
    natural_launch,
    uniform_kernel,
)
from repro.workloads import SUITE

ARCHES = (QUADRO_4000, GRID_K520, TEGRA_K1)


def _scalar_profiles(arch, items):
    """Reference results: a fresh scalar model, vectorization off."""
    model = KernelTimingModel(arch)
    with vectimes.vectimes_scope(False):
        return [model.execute(compiled, launch) for compiled, launch in items]


def _footprint(working_set=256 * 1024, locality=0.5):
    return MemoryFootprint(
        bytes_in=working_set,
        bytes_out=working_set // 2,
        working_set_bytes=working_set,
        locality=locality,
    )


def _multiblock_kernel():
    """Multi-block kernel with a launch-dependent (callable) trip count."""
    return KernelIR(
        name="vec-conform",
        blocks=(
            ProgramBlock(
                name="body",
                mix=InstructionMix(
                    {
                        InstructionType.FP32: 6.0,
                        InstructionType.INT: 2.0,
                        InstructionType.LOAD: 2.0,
                        InstructionType.STORE: 1.0,
                    }
                ),
                trips=lambda ctx: ctx.elements_per_thread,
            ),
            ProgramBlock(
                name="tail",
                mix=InstructionMix(
                    {InstructionType.BRANCH: 1.0, InstructionType.BIT: 2.0}
                ),
                trips=3.0,
            ),
        ),
        footprint=_footprint(),
        elements_per_thread=8.0,
    )


# -- registered workload kernels (acceptance criterion) ----------------------


@pytest.mark.parametrize("app", sorted(SUITE))
def test_every_workload_kernel_conforms(app):
    """Scalar vs. vectorized equality for every registered workload."""
    spec = SUITE[app]
    for arch in ARCHES:
        compiled = KernelCompiler().compile(spec.kernel, arch)
        launches = [
            natural_launch(spec.kernel, spec.elements, spec.block_size),
            natural_launch(
                spec.kernel, max(1, spec.elements // 7), spec.block_size
            ),
            LaunchConfig(
                grid_size=1, block_size=spec.block_size, elements=spec.block_size
            ),
        ]
        items = [(compiled, launch) for launch in launches]
        assert vectimes.compute_profiles(arch, items) == _scalar_profiles(
            arch, items
        )


# -- property-based sweep ----------------------------------------------------


_mix_strategy = st.dictionaries(
    st.sampled_from(list(InstructionType)),
    st.floats(min_value=0.0, max_value=64.0, allow_nan=False),
    min_size=1,
    max_size=len(InstructionType),
)


@settings(max_examples=60, deadline=None)
@given(
    mix=_mix_strategy,
    trips=st.sampled_from([1.0, 2.0, 7.0]),
    grid=st.integers(min_value=1, max_value=4096),
    block=st.integers(min_value=1, max_value=1024),
    elements_scale=st.integers(min_value=1, max_value=16),
    working_set=st.sampled_from([4 * 1024, 512 * 1024, 64 * 1024 * 1024]),
    locality=st.floats(min_value=0.0, max_value=1.0, allow_nan=False),
    arch=st.sampled_from(ARCHES),
)
def test_random_kernels_conform(
    mix, trips, grid, block, elements_scale, working_set, locality, arch
):
    kernel = uniform_kernel(
        "vec-prop",
        mix,
        _footprint(working_set=working_set, locality=locality),
        trips=trips,
    )
    compiled = KernelCompiler().compile(kernel, arch)
    launch = LaunchConfig(
        grid_size=grid, block_size=block, elements=grid * block * elements_scale
    )
    items = [(compiled, launch)]
    assert vectimes.compute_profiles(arch, items) == _scalar_profiles(
        arch, items
    )


# -- Fig. 10(b) staircase boundaries ----------------------------------------


@pytest.mark.parametrize("arch", ARCHES, ids=lambda a: a.name)
def test_staircase_boundary_grids_conform(arch):
    """Wave-quantization edges (Eq. 9): grids at ``k*sm_count`` ± 1."""
    kernel = _multiblock_kernel()
    compiled = KernelCompiler().compile(kernel, arch)
    grids = sorted(
        {
            max(1, k * arch.sm_count + delta)
            for k in range(1, 5)
            for delta in (-1, 0, 1)
        }
    )
    items = [
        (compiled, LaunchConfig(grid_size=g, block_size=512, elements=g * 512 * 8))
        for g in grids
    ]
    assert vectimes.compute_profiles(arch, items) == _scalar_profiles(
        arch, items
    )


def test_single_element_batch_conforms():
    kernel = _multiblock_kernel()
    compiled = KernelCompiler().compile(kernel, QUADRO_4000)
    items = [
        (compiled, LaunchConfig(grid_size=9, block_size=512, elements=9 * 512 * 8))
    ]
    assert vectimes.compute_profiles(QUADRO_4000, items) == _scalar_profiles(
        QUADRO_4000, items
    )


def test_empty_batch():
    assert vectimes.compute_profiles(QUADRO_4000, []) == []


# -- execute_batch semantics -------------------------------------------------


def test_execute_batch_matches_execute_and_memoizes():
    kernel = _multiblock_kernel()
    compiled = KernelCompiler().compile(kernel, QUADRO_4000)
    launches = [
        LaunchConfig(grid_size=g, block_size=256, elements=g * 256 * 8)
        for g in (1, 8, 9, 16)
    ]
    items = [(compiled, launch) for launch in launches]
    model = KernelTimingModel(QUADRO_4000)
    with vectimes.vectimes_scope(True):
        batch = model.execute_batch(items)
        # Second pass is served entirely from the memo — same objects.
        again = model.execute_batch(items)
        singles = [model.execute(compiled, launch) for launch in launches]
    assert batch == _scalar_profiles(QUADRO_4000, items)
    assert all(a is b for a, b in zip(batch, again))
    assert all(a is b for a, b in zip(batch, singles))


def test_execute_batch_handles_duplicates():
    kernel = _multiblock_kernel()
    compiled = KernelCompiler().compile(kernel, QUADRO_4000)
    launch = LaunchConfig(grid_size=9, block_size=256, elements=9 * 256 * 8)
    items = [(compiled, launch)] * 3
    model = KernelTimingModel(QUADRO_4000)
    with vectimes.vectimes_scope(True):
        profiles = model.execute_batch(items)
    assert profiles[0] is profiles[1] is profiles[2]
    assert profiles == _scalar_profiles(QUADRO_4000, [items[0]] * 3)


def test_execute_batch_scalar_fallback_when_disabled():
    kernel = _multiblock_kernel()
    compiled = KernelCompiler().compile(kernel, QUADRO_4000)
    items = [
        (compiled, LaunchConfig(grid_size=g, block_size=256, elements=g * 256))
        for g in (3, 5)
    ]
    model = KernelTimingModel(QUADRO_4000)
    with vectimes.vectimes_scope(False):
        assert model.execute_batch(items) == _scalar_profiles(
            QUADRO_4000, items
        )


def test_profile_cached_peeks_without_side_effects():
    kernel = _multiblock_kernel()
    compiled = KernelCompiler().compile(kernel, QUADRO_4000)
    launch = LaunchConfig(grid_size=4, block_size=256, elements=4 * 256 * 8)
    model = KernelTimingModel(QUADRO_4000)
    assert not model.profile_cached(compiled, launch)
    assert model.cache_hits == 0 and model.cache_misses == 0
    model.execute(compiled, launch)
    assert model.profile_cached(compiled, launch)


def test_content_tier_shares_profiles_across_compiles():
    """Structurally identical compiles (fresh ids) reuse one profile.

    This is the coalescer's shape: every merge pass mints a brand-new
    merged ``KernelIR``, so the id-keyed memo always misses even though
    the launch is structurally identical to last round's.
    """
    kernel = _multiblock_kernel()
    launch = LaunchConfig(grid_size=9, block_size=512, elements=9 * 512 * 8)
    first = KernelCompiler().compile(kernel, QUADRO_4000)
    second = KernelCompiler().compile(kernel, QUADRO_4000)
    assert first is not second
    model = KernelTimingModel(QUADRO_4000)
    with vectimes.vectimes_scope(True):
        p1 = model.execute(first, launch)
        p2 = model.execute(second, launch)
    assert p2 is p1
    # With vectorization off the legacy behavior returns: same values,
    # separately computed objects.
    legacy = KernelTimingModel(QUADRO_4000)
    with vectimes.vectimes_scope(False):
        q1 = legacy.execute(first, launch)
        q2 = legacy.execute(second, launch)
    assert q2 == q1 and q2 is not q1


# -- component-method sharing (satellite: no redundant recomputation) --------


def test_component_methods_match_profile_fields():
    kernel = _multiblock_kernel()
    for arch in ARCHES:
        compiled = KernelCompiler().compile(kernel, arch)
        launch = LaunchConfig(grid_size=17, block_size=256, elements=17 * 256 * 8)
        model = KernelTimingModel(arch)
        profile = model.execute(compiled, launch)
        assert model.issue_cycles(compiled, launch) == profile.issue_cycles
        assert model.memory_cycles(compiled, launch) == profile.memory_cycles
        assert (
            model.data_stall_cycles(compiled, launch)
            == profile.data_stall_cycles
        )


# -- degenerate-elapsed handling (satellite regression) ----------------------


def _degenerate_profile(elapsed):
    return ExecutionProfile(
        kernel_name="degenerate",
        arch_name="Quadro 4000",
        launch=LaunchConfig(grid_size=1, block_size=1, elements=0),
        sigma={t: 0.0 for t in InstructionType},
        issue_cycles=0.0,
        memory_cycles=0.0,
        data_stall_cycles=5.0,
        other_stall_cycles=5.0,
        elapsed_cycles=elapsed,
        time_ms=0.0,
        cache_hits=0.0,
        cache_misses=0.0,
        cache_hit_probability=0.0,
        waves=0,
        occupancy=0.0,
    )


@pytest.mark.parametrize("elapsed", [0.0, -1.0])
def test_stall_views_agree_on_degenerate_launches(elapsed):
    """``stall_breakdown`` and ``stall_fraction`` share the ``<= 0`` guard."""
    profile = _degenerate_profile(elapsed)
    assert profile.stall_fraction == 0.0
    assert profile.stall_breakdown() == {"data_dependency": 0.0, "other": 0.0}


def test_stall_views_consistent_when_positive():
    profile = _degenerate_profile(20.0)
    breakdown = profile.stall_breakdown()
    assert breakdown == {"data_dependency": 25.0, "other": 25.0}
    assert profile.stall_fraction == 0.5


# -- estimation (Eq. 1-6) conformance ----------------------------------------


@pytest.mark.parametrize("app", ["vectorAdd", "matrixMul", "Mandelbrot"])
def test_estimation_batch_matches_scalar(app):
    spec = SUITE[app]
    analyzer = ExecutionAnalyzer(QUADRO_4000, TEGRA_K1)
    launches = [
        natural_launch(spec.kernel, spec.elements, spec.block_size),
        natural_launch(spec.kernel, max(1, spec.elements // 3), spec.block_size),
        LaunchConfig(
            grid_size=1, block_size=spec.block_size, elements=spec.block_size
        ),
    ]
    with vectimes.vectimes_scope(False):
        scalar = [analyzer.analyze(spec.kernel, launch) for launch in launches]
        scalar_power = [
            analyzer.estimate_power(spec.kernel, launch) for launch in launches
        ]
    with vectimes.vectimes_scope(True):
        batch = analyzer.analyze_batch(spec.kernel, launches)
        routed = [analyzer.analyze(spec.kernel, launch) for launch in launches]
        power = analyzer.estimate_power_batch(spec.kernel, launches)
        routed_power = [
            analyzer.estimate_power(spec.kernel, launch) for launch in launches
        ]
    assert batch == scalar
    assert routed == scalar
    assert power == scalar_power
    assert routed_power == scalar_power


def test_estimation_batch_validates_lengths():
    spec = SUITE["vectorAdd"]
    analyzer = ExecutionAnalyzer(QUADRO_4000, TEGRA_K1)
    launch = natural_launch(spec.kernel, spec.elements, spec.block_size)
    with vectimes.vectimes_scope(True):
        with pytest.raises(ValueError):
            analyzer.analyze_batch(spec.kernel, [launch], host_profiles=[])
        with pytest.raises(ValueError):
            analyzer.estimate_power_batch(spec.kernel, [launch], cycles=[1.0, 2.0])
        with pytest.raises(ValueError):
            analyzer.estimate_power_batch(spec.kernel, [launch], cycles=[-1.0])


# -- figure sweep integration ------------------------------------------------


def test_fig10b_series_identical_scalar_vs_vectorized():
    from repro.analysis.figures import fig10b_series

    grids = tuple(range(1, 25))
    with vectimes.vectimes_scope(True):
        vec = fig10b_series(grids=grids)
    with vectimes.vectimes_scope(False):
        scalar = fig10b_series(grids=grids)
    assert vec == scalar


# -- end-to-end scenario invariance ------------------------------------------


def test_scenario_summary_unchanged_by_vectimes():
    """A full multiplexed scenario (dispatcher prewarm included) must
    simulate the same summary with the engine on and off."""
    from repro.exec.jobs import scenario_summary

    kwargs = {"app": "vectorAdd", "n_vps": 4}
    with vectimes.vectimes_scope(True):
        on = scenario_summary(**kwargs)
    with vectimes.vectimes_scope(False):
        off = scenario_summary(**kwargs)
    assert on == off


# -- toggles -----------------------------------------------------------------


def test_env_parsing(monkeypatch):
    for value, expected in [
        ("0", False), ("", False), ("false", False),
        ("1", True), ("yes", True),
    ]:
        monkeypatch.setenv(vectimes.VECTIMES_ENV_VAR, value)
        assert vectimes.vectimes_from_env() is expected
    monkeypatch.delenv(vectimes.VECTIMES_ENV_VAR)
    assert vectimes.vectimes_from_env() is True


def test_set_and_scope_restore():
    initial = vectimes.vectimes_enabled()
    try:
        previous = vectimes.set_vectimes_enabled(False)
        assert previous is initial
        assert vectimes.vectimes_enabled() is False
        with vectimes.vectimes_scope(True):
            assert vectimes.vectimes_enabled() is True
        assert vectimes.vectimes_enabled() is False
    finally:
        vectimes.set_vectimes_enabled(initial)
