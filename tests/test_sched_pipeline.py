"""The repro.sched refactor: digest preservation, config, registry, stages.

The tentpole guarantee of the scheduling refactor is that the default
pipeline (FIFO / interleaving select, round-robin placement) is
*bit-identical* to the pre-refactor dispatcher: the pinned digests below
were produced by the seed code before :mod:`repro.sched` existed, and
every scenario summary must still hash to exactly those values.
"""

import hashlib

import pytest

from repro.core.jobs import Job, JobKind
from repro.obs import metrics as obs_metrics
from repro.obs.export import canonical_json
from repro.sched import (
    EngineBacklog,
    FairSharePolicy,
    PriorityDeadlinePolicy,
    SchedulerConfig,
    ShortestJobFirstPolicy,
    make_placement,
    make_policy,
    register_policy,
)
from repro.sched.backlog import DRIFT_TOLERANCE_MS
from repro.sched.policies import SchedulingPolicy
from repro.sim import Environment


def _digest(value) -> str:
    return hashlib.sha256(canonical_json(value).encode()).hexdigest()


# -- bit-identical digests against the pre-refactor seed ---------------------

#: (kwargs for scenario_summary, sha256 of the summary) pinned before the
#: repro.sched extraction.  A mismatch means the refactor changed
#: observable scheduling behaviour — that is a bug, not a new baseline.
PINNED_SCENARIOS = [
    (
        dict(app="vectorAdd", n_vps=4, interleaving=True, coalescing=True),
        "3cafbd3ca5eb54bf27aa1bc334e20828218647fbb3ec7f4e09a6c7b900e9d6a6",
    ),
    (
        dict(app="vectorAdd", n_vps=4, interleaving=False, coalescing=True),
        "ef6090c8c4e8b0591f5cf4abb9a1b3e1751b9df963281fc97d5bac96dbd1b00f",
    ),
    (
        dict(app="mergeSort", n_vps=4, interleaving=True, coalescing=False),
        "40eb3b93d4ad00c9b891bc39bd998447a6ea388430296b4a38bf06a2323bfec8",
    ),
    (
        dict(app="matrixMul", n_vps=3, interleaving=False, coalescing=False),
        "3cfc3a100ef001ffef2aa0697ad099399c1a355ddec1b1aa984a29ee8cbc13f1",
    ),
    # The two digests below were rebased when the coalescer gained the
    # in-flight-H2D dependency (a merged kernel no longer races a member
    # VP's input copy that is already on an engine; previously it could
    # start early and, in functional mode, sweep unwritten buffers).
    # Only scenarios where that race actually occurred shifted — the
    # other coalescing=True pins above are byte-identical.
    (
        dict(app="BlackScholes", n_vps=4, interleaving=True, coalescing=True,
             n_host_gpus=2),
        "dc564083dd146dd4563686efae25d57f21886ab8df9ae58e95e94a11d6a8ed7b",
    ),
    (
        dict(app="histogram", n_vps=2, interleaving=True, coalescing=True,
             functional=True),
        "2c87a50ff360ea26f224071e7be7df14dee03db185cc1a9161849c1437a04a65",
    ),
]

PINNED_PHASE = (
    dict(n_vps=4, t_kernel_ms=4.0, t_copy_ms=4.0, iterations=2),
    "51d4d2de334259d17f95f0e2050deb64d30516c21b4a6b4d9ed4d9fa234b6134",
)


@pytest.mark.parametrize("kwargs, expected", PINNED_SCENARIOS,
                         ids=lambda v: v if isinstance(v, str) else v["app"])
def test_default_pipeline_digest_bit_identical(kwargs, expected):
    from repro.exec.jobs import scenario_summary

    assert _digest(scenario_summary(**kwargs)) == expected


def test_phase_point_digest_bit_identical():
    from repro.exec.jobs import phase_point

    kwargs, expected = PINNED_PHASE
    assert _digest(phase_point(**kwargs)) == expected


def test_default_stages_keep_scenario_label():
    """Default policy/placement must not perturb labels (cache keys)."""
    from repro.core.scenarios import run_sigma_vp
    from repro.workloads import get_workload

    spec = get_workload("vectorAdd").scaled_to(1024, iterations=1)
    result = run_sigma_vp(spec, n_vps=2)
    assert result.scenario == "sigma-vp(interleave=True, coalesce=True)"
    assert "policy=" not in result.scenario


def test_sched_and_names_are_mutually_exclusive():
    from repro.core.scenarios import run_sigma_vp
    from repro.workloads import get_workload

    spec = get_workload("vectorAdd").scaled_to(1024, iterations=1)
    with pytest.raises(ValueError, match="not both"):
        run_sigma_vp(spec, n_vps=2, policy="sjf", sched=SchedulerConfig())


# -- SchedulerConfig: hoisted constants and validation -----------------------


def test_dispatch_constants_hoisted_into_config():
    from repro.core import dispatcher as dispatcher_mod

    config = SchedulerConfig()
    # Legacy module-level names survive, sourced from the config defaults.
    assert dispatcher_mod.HOST_CALL_MS == config.host_call_ms == 0.002
    assert dispatcher_mod.PROFILING_OVERHEAD_MS == config.profiling_overhead_ms == 0.15


def test_config_timing_overrides_change_the_simulation():
    from repro.core.scenarios import run_sigma_vp
    from repro.workloads import get_workload

    spec = get_workload("vectorAdd").scaled_to(4096, iterations=2)
    base = run_sigma_vp(spec, n_vps=2)
    slow = run_sigma_vp(
        spec, n_vps=2,
        sched=SchedulerConfig(host_call_ms=5.0, profiling_overhead_ms=10.0),
    )
    assert slow.total_ms > base.total_ms


def test_config_rejects_negative_times():
    with pytest.raises(ValueError):
        SchedulerConfig(host_call_ms=-1.0)
    with pytest.raises(ValueError):
        SchedulerConfig(profiling_overhead_ms=-0.1)


def test_config_resolve_policy_and_default_stages():
    config = SchedulerConfig()
    assert config.resolve_policy(True) == "interleaving"
    assert config.resolve_policy(False) == "fifo"
    assert config.is_default_stages()
    named = SchedulerConfig.from_names("sjf", "least-backlog")
    assert named.resolve_policy(True) == "sjf"
    assert not named.is_default_stages()
    # Timing overrides alone do not change the *stages*.
    assert SchedulerConfig(host_call_ms=1.0).is_default_stages()


# -- backlog drift: the silent-drift satellite -------------------------------


def _job(env, vp="vp0", seq=0, kind=JobKind.KERNEL):
    return Job(vp=vp, seq=seq, kind=kind, completion=env.event())


def test_backlog_retire_mismatch_records_drift():
    env = Environment()
    backlog = EngineBacklog()
    job = _job(env)
    backlog.add(job, 5.0)
    backlog.retire(job, 3.0)  # engine finished, 2ms unaccounted
    assert backlog.drift_events == 1
    assert backlog.drift_ms == pytest.approx(2.0)
    # Totals snap to exactly zero anyway: no silent residue accumulates.
    assert backlog.quiesced


def test_backlog_drift_increments_obs_counter():
    registry = obs_metrics.enable()
    try:
        env = Environment()
        backlog = EngineBacklog()
        job = _job(env)
        backlog.add(job, 5.0)
        backlog.retire(job, 3.0)
        assert registry.counter("dispatch.backlog_drift").value == 1.0
    finally:
        obs_metrics.disable()


def test_backlog_drift_raises_in_debug_mode():
    env = Environment()
    backlog = EngineBacklog(debug=True)
    job = _job(env)
    backlog.add(job, 5.0)
    with pytest.raises(AssertionError, match="drift"):
        backlog.retire(job, 3.0)


def test_backlog_sub_tolerance_residue_is_not_drift():
    env = Environment()
    backlog = EngineBacklog()
    job = _job(env)
    backlog.add(job, 1.0)
    backlog.retire(job, 1.0 - DRIFT_TOLERANCE_MS / 10)
    assert backlog.drift_events == 0
    assert backlog.quiesced


def test_backlogs_quiesce_to_exactly_zero_after_scenarios():
    """Regression for the silent backlog drift: exact zero, every run."""
    from repro.core.scenarios import run_sigma_vp
    from repro.workloads import get_workload

    for app, kwargs in [
        ("vectorAdd", dict(interleaving=True, coalescing=True)),
        ("mergeSort", dict(interleaving=True, coalescing=False)),
        ("matrixMul", dict(interleaving=False, coalescing=False)),
        ("BlackScholes", dict(interleaving=True, coalescing=True,
                              n_host_gpus=2)),
    ]:
        spec = get_workload(app).scaled_to(2048, iterations=1)
        result = run_sigma_vp(spec, n_vps=3, **kwargs)
        backlog = result.extras["framework"].dispatcher.backlog
        assert backlog.quiesced, f"{app}: {backlog.per_engine!r}"
        assert all(v == 0.0 for v in backlog.per_engine.values())
        assert backlog.drift_events == 0


# -- registry ----------------------------------------------------------------


def test_unknown_policy_and_placement_raise_with_known_names():
    with pytest.raises(ValueError, match="fifo"):
        make_policy("nope")
    with pytest.raises(ValueError, match="round-robin"):
        make_placement("nope")


def test_custom_policy_registration_roundtrip():
    from repro.sched import registry as registry_mod

    class AlwaysFirst(SchedulingPolicy):
        name = "always-first"
        description = "test-only: picks the first candidate"

        def select(self, dispatchable, backlog):
            return dispatchable[0] if dispatchable else None

    try:
        register_policy(AlwaysFirst)
        assert isinstance(make_policy("always-first"), AlwaysFirst)
        assert ("always-first", AlwaysFirst.description) in (
            registry_mod.available_policies()
        )
    finally:
        registry_mod._POLICIES.pop("always-first", None)
    with pytest.raises(ValueError):
        make_policy("always-first")


def test_registering_abstract_name_is_rejected():
    with pytest.raises(ValueError):
        register_policy(SchedulingPolicy)


# -- the new policies --------------------------------------------------------


def test_sjf_picks_cheapest_expected_job():
    env = Environment()
    policy = ShortestJobFirstPolicy()
    costly = _job(env, vp="vp0")
    cheap = _job(env, vp="vp1")
    policy.attach(lambda job: 9.0 if job is costly else 1.0)
    assert policy.select([costly, cheap], EngineBacklog()) is cheap


def test_fair_share_rotates_between_vps():
    env = Environment()
    policy = FairSharePolicy(quantum_ms=1.0)
    policy.attach(lambda job: 4.0)
    backlog = EngineBacklog()
    a0, a1 = _job(env, "vp0", 0), _job(env, "vp0", 1)
    b0 = _job(env, "vp1", 0)
    # Tie on credit: lowest job_id (vp0) wins and pays 4ms of credit...
    assert policy.select([a0, b0], backlog) is a0
    # ...so the next round goes to vp1 even though vp0 is ready again.
    assert policy.select([a1, b0], backlog) is b0


def test_fair_share_rejects_bad_quantum():
    with pytest.raises(ValueError):
        FairSharePolicy(quantum_ms=0.0)


def test_priority_deadline_prefers_tight_tier():
    env = Environment()
    # vp1's job is older (lower job_id) but rides the slack tier.
    late = _job(env, vp="vp1")
    urgent = _job(env, vp="vp0")
    policy = PriorityDeadlinePolicy(tiers={"vp0": 0, "vp1": 2})
    assert policy.select([late, urgent], EngineBacklog()) is urgent


def test_priority_deadline_rejects_empty_budgets():
    with pytest.raises(ValueError):
        PriorityDeadlinePolicy(budgets_ms=())


def test_least_backlog_placement_avoids_loaded_device():
    env = Environment()
    backlog = EngineBacklog()
    placement = make_placement("least-backlog")
    loaded = _job(env, vp="vp0")
    loaded.device = 0
    assert placement.device_for("vp0", 2, backlog) == 0
    backlog.add(loaded, 50.0)  # device 0 now has 50ms of compute queued
    assert placement.device_for("vp1", 2, backlog) == 1


# -- bench threading ---------------------------------------------------------


def test_with_sched_stages_is_identity_when_unset():
    from repro.exec.bench import QUICK_SUITE, with_sched_stages

    assert with_sched_stages(QUICK_SUITE) == list(QUICK_SUITE)


def test_with_sched_stages_rewrites_only_sched_aware_jobs():
    from repro.exec.bench import QUICK_SUITE, SCHED_AWARE_FNS, with_sched_stages

    suite = QUICK_SUITE
    rewritten = with_sched_stages(suite, policy="sjf", placement="least-backlog")
    assert len(rewritten) == len(suite)
    touched = 0
    for before, after in zip(suite, rewritten):
        assert after.fn == before.fn
        if before.fn in SCHED_AWARE_FNS:
            assert after.kwargs["policy"] == "sjf"
            assert after.kwargs["placement"] == "least-backlog"
            touched += 1
        else:
            assert after == before
    assert touched > 0


# -- CLI ---------------------------------------------------------------------


def test_cli_policies_lists_registered_stages(capsys):
    from repro.cli import main

    assert main(["policies"]) == 0
    out = capsys.readouterr().out
    for name in ("fifo", "interleaving", "sjf", "fair-share",
                 "priority-deadline", "round-robin", "least-backlog"):
        assert name in out


def test_cli_run_with_policy_and_placement(capsys):
    from repro.cli import main

    assert main([
        "run", "vectorAdd", "--vps", "2",
        "--policy", "sjf", "--placement", "least-backlog",
    ]) == 0
    out = capsys.readouterr().out
    assert "policy=sjf" in out
    assert "placement=least-backlog" in out
