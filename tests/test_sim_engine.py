"""Tests for the discrete-event simulation kernel."""

import pytest

from repro.sim import (
    EmptySchedule,
    Environment,
    Event,
    Interrupt,
    Timeout,
)


def test_time_starts_at_zero():
    env = Environment()
    assert env.now == 0.0


def test_initial_time_is_respected():
    env = Environment(initial_time=5.0)
    assert env.now == 5.0


def test_timeout_advances_time():
    env = Environment()

    def proc():
        yield env.timeout(3.0)
        return env.now

    p = env.process(proc())
    assert env.run(p) == 3.0
    assert env.now == 3.0


def test_negative_timeout_rejected():
    env = Environment()
    with pytest.raises(ValueError):
        env.timeout(-1.0)


def test_timeout_carries_value():
    env = Environment()

    def proc():
        value = yield env.timeout(1.0, value="payload")
        return value

    assert env.run(env.process(proc())) == "payload"


def test_sequential_timeouts_accumulate():
    env = Environment()
    trace = []

    def proc():
        for delay in (1.0, 2.0, 3.0):
            yield env.timeout(delay)
            trace.append(env.now)

    env.process(proc())
    env.run()
    assert trace == [1.0, 3.0, 6.0]


def test_parallel_processes_interleave():
    env = Environment()
    trace = []

    def proc(name, delay):
        yield env.timeout(delay)
        trace.append((name, env.now))

    env.process(proc("slow", 5.0))
    env.process(proc("fast", 1.0))
    env.run()
    assert trace == [("fast", 1.0), ("slow", 5.0)]


def test_process_waits_on_process():
    env = Environment()

    def inner():
        yield env.timeout(2.0)
        return 42

    def outer():
        result = yield env.process(inner())
        return result * 2

    assert env.run(env.process(outer())) == 84


def test_event_succeed_wakes_waiter():
    env = Environment()
    gate = env.event()

    def opener():
        yield env.timeout(4.0)
        gate.succeed("opened")

    def waiter():
        value = yield gate
        return (env.now, value)

    env.process(opener())
    assert env.run(env.process(waiter())) == (4.0, "opened")


def test_event_cannot_trigger_twice():
    env = Environment()
    ev = env.event()
    ev.succeed()
    with pytest.raises(RuntimeError):
        ev.succeed()


def test_event_fail_raises_in_waiter():
    env = Environment()
    gate = env.event()

    def failer():
        yield env.timeout(1.0)
        gate.fail(ValueError("boom"))

    def waiter():
        try:
            yield gate
        except ValueError as exc:
            return str(exc)
        return "no error"

    env.process(failer())
    assert env.run(env.process(waiter())) == "boom"


def test_fail_requires_exception():
    env = Environment()
    with pytest.raises(TypeError):
        env.event().fail("not an exception")


def test_run_until_time():
    env = Environment()
    trace = []

    def ticker():
        while True:
            yield env.timeout(1.0)
            trace.append(env.now)

    env.process(ticker())
    env.run(until=3.5)
    assert trace == [1.0, 2.0, 3.0]
    assert env.now == 3.5


def test_run_until_past_time_rejected():
    env = Environment()
    with pytest.raises(ValueError):
        env.run(until=0.0)


def test_run_with_no_events_returns():
    env = Environment()
    assert env.run() is None


def test_step_on_empty_schedule_raises():
    env = Environment()
    with pytest.raises(EmptySchedule):
        env.step()


def test_interrupt_delivers_cause():
    env = Environment()

    def sleeper():
        try:
            yield env.timeout(100.0)
        except Interrupt as interrupt:
            return ("interrupted", interrupt.cause, env.now)
        return "completed"

    victim = env.process(sleeper())

    def interrupter():
        yield env.timeout(2.0)
        victim.interrupt(cause="stop-vp")

    env.process(interrupter())
    assert env.run(victim) == ("interrupted", "stop-vp", 2.0)


def test_interrupt_detaches_from_old_target():
    """After an interrupt, the original timeout must not resume the process."""
    env = Environment()
    resumed = []

    def sleeper():
        try:
            yield env.timeout(5.0)
        except Interrupt:
            pass
        yield env.timeout(10.0)
        resumed.append(env.now)

    victim = env.process(sleeper())

    def interrupter():
        yield env.timeout(1.0)
        victim.interrupt()

    env.process(interrupter())
    env.run()
    # Resumes at 1.0 (interrupt) + 10.0, not at 5.0 + 10.0.
    assert resumed == [11.0]


def test_interrupt_dead_process_raises():
    env = Environment()

    def quick():
        yield env.timeout(1.0)

    p = env.process(quick())
    env.run()
    with pytest.raises(RuntimeError):
        p.interrupt()


def test_process_return_value_is_event_value():
    env = Environment()

    def proc():
        yield env.timeout(1.0)
        return {"answer": 7}

    p = env.process(proc())
    env.run()
    assert p.value == {"answer": 7}


def test_value_before_trigger_raises():
    env = Environment()
    ev = env.event()
    with pytest.raises(RuntimeError):
        _ = ev.value


def test_all_of_waits_for_every_event():
    env = Environment()

    def proc():
        t1 = env.timeout(1.0, value="a")
        t2 = env.timeout(3.0, value="b")
        results = yield env.all_of([t1, t2])
        return (env.now, sorted(results.values()))

    assert env.run(env.process(proc())) == (3.0, ["a", "b"])


def test_any_of_fires_on_first():
    env = Environment()

    def proc():
        t1 = env.timeout(1.0, value="fast")
        t2 = env.timeout(9.0, value="slow")
        results = yield env.any_of([t1, t2])
        return (env.now, list(results.values()))

    assert env.run(env.process(proc())) == (1.0, ["fast"])


def test_all_of_empty_fires_immediately():
    env = Environment()

    def proc():
        results = yield env.all_of([])
        return results

    assert env.run(env.process(proc())) == {}


def test_deterministic_fifo_at_same_instant():
    """Events scheduled for the same time fire in scheduling order."""
    env = Environment()
    trace = []

    def proc(name):
        yield env.timeout(1.0)
        trace.append(name)

    for name in ("a", "b", "c"):
        env.process(proc(name))
    env.run()
    assert trace == ["a", "b", "c"]


def test_run_until_event_exhaustion_error():
    env = Environment()
    never = env.event()
    with pytest.raises(RuntimeError):
        env.run(never)


def test_exception_in_process_propagates_from_run():
    env = Environment()

    def bad():
        yield env.timeout(1.0)
        raise KeyError("inside process")

    p = env.process(bad())
    with pytest.raises(KeyError):
        env.run(p)


def test_peek_reports_next_event_time():
    env = Environment()
    env.timeout(7.0)
    assert env.peek() == 7.0


def test_peek_empty_is_infinite():
    env = Environment()
    assert env.peek() == float("inf")
