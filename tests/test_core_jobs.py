"""Tests for jobs and the Job Queue (partial order, barriers)."""

import pytest
from hypothesis import given, strategies as st

from repro.core.jobs import Job, JobKind, JobQueue
from repro.kernels import LaunchConfig, MemoryFootprint, uniform_kernel
from repro.sim import Environment


def _kernel(name="k", coalescible=True):
    return uniform_kernel(
        name,
        {"fp32": 1},
        MemoryFootprint(bytes_in=1024, bytes_out=1024, working_set_bytes=1024),
        coalescible=coalescible,
    )


def _job(env, vp="vp0", seq=0, kind=JobKind.KERNEL, **kw):
    fields = dict(vp=vp, seq=seq, kind=kind, completion=env.event())
    if kind is JobKind.KERNEL and "kernel" not in kw:
        fields["kernel"] = _kernel()
        fields["launch"] = LaunchConfig(grid_size=1, block_size=256, elements=256)
    fields.update(kw)
    return Job(**fields)


# -- Job ---------------------------------------------------------------------


def test_job_kind_predicates():
    env = Environment()
    assert _job(env, kind=JobKind.COPY_H2D).is_copy
    assert _job(env, kind=JobKind.COPY_D2H).is_copy
    assert _job(env, kind=JobKind.KERNEL).is_kernel
    assert not _job(env, kind=JobKind.MALLOC).is_copy


def test_coalesce_key_for_kernels():
    from repro.core.kernel_match import kernel_digest

    env = Environment()
    job = _job(env)
    # Identity is structural (Kernel Match): code digest + block size.
    assert job.coalesce_key == (kernel_digest(job.kernel), 256)


def test_coalesce_key_none_for_copies():
    env = Environment()
    assert _job(env, kind=JobKind.COPY_H2D).coalesce_key is None


def test_coalesce_key_none_for_non_coalescible_kernel():
    env = Environment()
    job = _job(env, kernel=_kernel(coalescible=False),
               launch=LaunchConfig(grid_size=1, block_size=256, elements=256))
    assert job.coalesce_key is None


def test_job_ids_unique_and_increasing():
    env = Environment()
    a, b = _job(env), _job(env)
    assert b.job_id > a.job_id


# -- JobQueue -----------------------------------------------------------------


def test_put_records_submission_time():
    env = Environment()
    queue = JobQueue(env)

    def proc():
        yield env.timeout(5.0)
        job = _job(env)
        queue.put(job)
        return job

    job = env.run(env.process(proc()))
    assert job.submitted_at_ms == 5.0


def test_arrival_event_fires_on_put():
    env = Environment()
    queue = JobQueue(env)

    def waiter():
        yield queue.arrival_event()
        return env.now

    def producer():
        yield env.timeout(2.0)
        queue.put(_job(env))

    w = env.process(waiter())
    env.process(producer())
    assert env.run(w) == 2.0


def test_arrival_event_does_not_fire_for_existing_items():
    env = Environment()
    queue = JobQueue(env)
    queue.put(_job(env))
    event = queue.arrival_event()
    env.run()
    assert not event.triggered


def test_heads_per_vp_takes_lowest_seq():
    env = Environment()
    queue = JobQueue(env)
    queue.put(_job(env, vp="a", seq=1))
    queue.put(_job(env, vp="a", seq=0))
    queue.put(_job(env, vp="b", seq=5))
    heads = queue.heads_per_vp()
    assert heads["a"].seq == 0
    assert heads["b"].seq == 5


def test_remove_unknown_job_raises():
    env = Environment()
    queue = JobQueue(env)
    with pytest.raises(RuntimeError):
        queue.remove(_job(env))


def test_replace_preserves_position():
    env = Environment()
    queue = JobQueue(env)
    first = _job(env, vp="x", seq=0)
    a = _job(env, vp="a", seq=0)
    b = _job(env, vp="b", seq=0)
    last = _job(env, vp="y", seq=0)
    for job in (first, a, b, last):
        queue.put(job)
    merged = _job(env, vp="merged", seq=0)
    queue.replace([a, b], merged)
    assert queue.jobs == [first, merged, last]


def test_replace_requires_members():
    env = Environment()
    queue = JobQueue(env)
    with pytest.raises(ValueError):
        queue.replace([], _job(env))


def test_version_bumps_on_changes():
    env = Environment()
    queue = JobQueue(env)
    v0 = queue.version
    job = _job(env)
    queue.put(job)
    v1 = queue.version
    queue.remove(job)
    v2 = queue.version
    assert v0 < v1 < v2


def test_barrier_blocks_until_event():
    env = Environment()
    queue = JobQueue(env)
    gate = env.event()
    queue.set_barrier("vp0", gate)
    assert queue.barred("vp0")
    assert not queue.barred("other")
    gate.succeed()
    env.run()
    assert not queue.barred("vp0")
    # Barrier is cleaned up after release.
    assert not queue.barred("vp0")


def test_barrier_seq_exemption():
    env = Environment()
    queue = JobQueue(env)
    gate = env.event()
    queue.set_barrier("vp0", gate, exempt_below_seq=3)
    assert not queue.barred("vp0", seq=2)
    assert queue.barred("vp0", seq=3)
    assert queue.barred("vp0", seq=10)


def test_pending_for_filters_by_vp():
    env = Environment()
    queue = JobQueue(env)
    a = _job(env, vp="a", seq=0)
    b = _job(env, vp="b", seq=0)
    a2 = _job(env, vp="a", seq=1)
    for job in (a, b, a2):
        queue.put(job)
    assert queue.pending_for("a") == [a, a2]


def test_kernels_matching_key():
    env = Environment()
    queue = JobQueue(env)
    k1 = _job(env, vp="a")
    copy = _job(env, vp="b", kind=JobKind.COPY_H2D)
    k2 = _job(env, vp="c")
    for job in (k1, copy, k2):
        queue.put(job)
    from repro.core.kernel_match import kernel_digest

    matches = queue.kernels_matching((kernel_digest(k1.kernel), 256))
    assert matches == [k1, k2]


@given(st.lists(st.tuples(st.integers(0, 4), st.integers(0, 100)), max_size=40))
def test_heads_property(vp_seq_pairs):
    """heads_per_vp always returns the min-seq job of every present VP."""
    env = Environment()
    queue = JobQueue(env)
    for vp_idx, seq in vp_seq_pairs:
        queue.put(_job(env, vp=f"vp{vp_idx}", seq=seq, kind=JobKind.MALLOC))
    heads = queue.heads_per_vp()
    for vp, head in heads.items():
        assert all(head.seq <= j.seq for j in queue.pending_for(vp))
    assert set(heads) == {j.vp for j in queue}
