"""Tests for heterogeneous fleets: mixed apps, mixed guest CPUs.

The paper's setting (via netShip [10]) is heterogeneous distributed
embedded systems: different VPs run different applications on different
platforms.  The framework must serve them concurrently, and coalescing
must merge only the VPs that actually run the identical kernel.
"""

import numpy as np
import pytest

from repro.core import SHARED_MEMORY, SigmaVP
from repro.kernels.functional import REGISTRY
from repro.vp.cpu import CPUModel, HOST_XEON, QEMU_ARM_VP
from repro.workloads import SUITE
from repro.workloads.linalg import make_vectoradd_spec


def test_mixed_apps_complete_and_only_matching_kernels_merge():
    framework = SigmaVP(transport=SHARED_MEMORY, registry=REGISTRY,
                        target_batch=2)
    vec_spec = make_vectoradd_spec(elements=2048, iterations=2)
    sort_spec = SUITE["mergeSort"].scaled_to(2048, iterations=2)

    processes = []
    for name, spec in (("va0", vec_spec), ("va1", vec_spec),
                       ("ms0", sort_spec), ("ms1", sort_spec)):
        framework.add_vp(name)
        processes.append(framework.spawn(name, spec, seed=0))
    framework.run_until(processes)

    # Merges happened within app families, never across them: every
    # merged launch covers kernels of one code digest.
    for record in framework.profiler.records:
        assert record.coalesced_members in (0, 2)
    merged_kernels = {
        r.kernel_name for r in framework.profiler.records
        if r.coalesced_members
    }
    assert merged_kernels <= {"vectorAdd", "mergeSort"}

    # Functional results are still per-app correct.
    a, b = vec_spec.build_inputs(0)
    np.testing.assert_allclose(
        framework.session("va0").processes[0].value, a + b
    )
    (keys,) = sort_spec.build_inputs(0)
    np.testing.assert_array_equal(
        framework.session("ms0").processes[0].value, np.sort(keys)
    )


def test_mixed_guest_cpus():
    """A fast (native-speed) guest and a slow binary-translated guest
    share the host GPU; both finish, the slow one later."""
    framework = SigmaVP(transport=SHARED_MEMORY)
    fast = framework.add_vp("fast", cpu=HOST_XEON)
    slow = framework.add_vp("slow", cpu=QEMU_ARM_VP)
    spec = make_vectoradd_spec(elements=4096, iterations=2)
    processes = [framework.spawn("fast", spec), framework.spawn("slow", spec)]
    framework.run_until(processes)
    assert fast.vp.finished_at_ms is not None
    assert slow.vp.finished_at_ms is not None
    # Guest-side time dominates the difference.
    assert slow.vp.guest_cpu_ms > 10 * fast.vp.guest_cpu_ms


def test_custom_guest_cpu_model():
    exotic = CPUModel(name="RISC-V guest", ops_per_ms=1e5)
    framework = SigmaVP(transport=SHARED_MEMORY, vp_cpu=exotic)
    session = framework.add_vp()
    assert session.vp.cpu is exotic


def test_stragglers_do_not_block_others():
    """One VP with 10x the work must not delay the small VPs' completion
    to its own finish time (pipelined service, no convoy effect)."""
    framework = SigmaVP(transport=SHARED_MEMORY, coalescing=False)
    small_spec = make_vectoradd_spec(elements=2048, iterations=1)
    big_spec = make_vectoradd_spec(elements=2048, iterations=20)
    for name in ("s0", "s1", "s2"):
        framework.add_vp(name)
    framework.add_vp("big")
    processes = [framework.spawn(name, small_spec) for name in ("s0", "s1", "s2")]
    processes.append(framework.spawn("big", big_spec))
    framework.run_until(processes)
    big_finish = framework.session("big").vp.finished_at_ms
    for name in ("s0", "s1", "s2"):
        assert framework.session(name).vp.finished_at_ms < big_finish / 2
