"""Tests for the GPU architecture catalog."""

import pytest

from repro.gpu import (
    CATALOG,
    CacheGeometry,
    GPUArchitecture,
    GRID_K520,
    QUADRO_4000,
    TEGRA_K1,
    get_architecture,
)
from repro.kernels import ALL_TYPES, InstructionType


def test_catalog_contains_paper_gpus():
    assert set(CATALOG) == {"Quadro 4000", "Grid K520", "Tegra K1"}


def test_get_architecture():
    assert get_architecture("Tegra K1") is TEGRA_K1


def test_get_architecture_unknown():
    with pytest.raises(KeyError):
        get_architecture("GTX 9000")


def test_quadro_core_count():
    assert QUADRO_4000.total_cores == 256


def test_grid_core_count():
    assert GRID_K520.total_cores == 1536


def test_tegra_is_single_smx():
    assert TEGRA_K1.sm_count == 1
    assert TEGRA_K1.total_cores == 192


def test_host_gpus_have_higher_peak_than_target():
    """The host GPUs must be much faster than the embedded target."""
    assert QUADRO_4000.ipc_peak > TEGRA_K1.ipc_peak
    assert GRID_K520.ipc_peak > TEGRA_K1.ipc_peak


def test_tegra_cache_smaller_than_hosts():
    assert TEGRA_K1.cache.size_kb < QUADRO_4000.cache.size_kb
    assert TEGRA_K1.cache.size_kb < GRID_K520.cache.size_kb


def test_tegra_memory_bandwidth_much_lower():
    assert TEGRA_K1.memory_bandwidth_gbps < QUADRO_4000.memory_bandwidth_gbps / 4


def test_embedded_power_much_lower():
    assert TEGRA_K1.static_power_w < QUADRO_4000.static_power_w / 10
    for itype in ALL_TYPES:
        assert (
            TEGRA_K1.instruction_energy_nj[itype]
            < QUADRO_4000.instruction_energy_nj[itype]
        )


def test_issue_cycle_tables_complete():
    for arch in CATALOG.values():
        for itype in ALL_TYPES:
            assert arch.warp_issue_cycles[itype] > 0


def test_fermi_fp64_half_rate():
    ratio = (
        QUADRO_4000.warp_issue_cycles[InstructionType.FP64]
        / QUADRO_4000.warp_issue_cycles[InstructionType.FP32]
    )
    assert ratio == pytest.approx(2.0)


def test_kepler_fp64_is_1_24_rate():
    for arch in (GRID_K520, TEGRA_K1):
        ratio = (
            arch.warp_issue_cycles[InstructionType.FP64]
            / arch.warp_issue_cycles[InstructionType.FP32]
        )
        assert ratio == pytest.approx(24.0)


def test_device_issue_cycles_scales_with_parallelism():
    quadro = QUADRO_4000.device_issue_cycles(InstructionType.FP32)
    tegra = TEGRA_K1.device_issue_cycles(InstructionType.FP32)
    # One SMX vs eight SMs: per-instruction elapsed cost is much higher.
    assert tegra > quadro


def test_concurrent_threads_is_alignment_unit():
    # lambda = 8192 threads on the Quadro: the paper's Fig. 10(b) shows
    # equal times for grids 9 and 16 at 512-thread blocks.
    assert QUADRO_4000.concurrent_threads == 8192
    assert TEGRA_K1.concurrent_threads == 2048


def test_concurrent_blocks_thread_limited():
    # 512-thread blocks on Quadro: 1024 // 512 = 2 per SM, 16 device-wide
    # (the paper's wave quantum at block size 512).
    assert QUADRO_4000.concurrent_blocks(512) == 16


def test_concurrent_blocks_block_limited():
    # Tiny blocks hit the per-SM block limit instead.
    assert QUADRO_4000.concurrent_blocks(32) == 8 * 8


def test_concurrent_blocks_validation():
    with pytest.raises(ValueError):
        QUADRO_4000.concurrent_blocks(0)


def test_cycles_ms_roundtrip():
    cycles = 1.9e6
    assert QUADRO_4000.ms_to_cycles(
        QUADRO_4000.cycles_to_ms(cycles)
    ) == pytest.approx(cycles)


def test_cycles_to_ms_magnitude():
    # 950 MHz: 950k cycles per millisecond.
    assert QUADRO_4000.cycles_to_ms(950_000.0) == pytest.approx(1.0)


def test_copy_time_zero_bytes():
    assert QUADRO_4000.copy_time_ms(0) == 0.0


def test_copy_time_includes_latency_and_bandwidth():
    one_mb = 1_000_000
    t = QUADRO_4000.copy_time_ms(one_mb)
    assert t > QUADRO_4000.copy_latency_ms
    expected_bw_ms = (one_mb / 1e9) / QUADRO_4000.copy_bandwidth_gbps * 1e3
    assert t == pytest.approx(QUADRO_4000.copy_latency_ms + expected_bw_ms)


def test_copy_time_negative_rejected():
    with pytest.raises(ValueError):
        QUADRO_4000.copy_time_ms(-1)


def test_copy_time_13ms_for_fig9_sized_transfer():
    """Fig. 9(a)'s memcpy takes 13.44 ms; ~53 MB over 4 GB/s reproduces it."""
    nbytes = int(53.7e6)
    t = QUADRO_4000.copy_time_ms(nbytes)
    assert 12.0 < t < 15.0


def test_cache_geometry_validation():
    with pytest.raises(ValueError):
        CacheGeometry(size_kb=0, line_bytes=128, associativity=8, miss_penalty_cycles=100)
    with pytest.raises(ValueError):
        CacheGeometry(size_kb=64, line_bytes=128, associativity=8, miss_penalty_cycles=-1)


def test_architecture_validation():
    with pytest.raises(ValueError):
        GPUArchitecture(
            name="bad",
            sm_count=0,
            cores_per_sm=32,
            schedulers_per_sm=2,
            clock_mhz=1000,
            max_threads_per_sm=1024,
            max_blocks_per_sm=8,
            warp_size=32,
            warp_issue_cycles={},
            cache=CacheGeometry(64, 128, 8, 100),
            memory_bandwidth_gbps=100,
            copy_bandwidth_gbps=5,
            copy_latency_ms=0.01,
            kernel_launch_overhead_ms=0.01,
            static_power_w=10,
            instruction_energy_nj={},
        )


def test_architectures_are_immutable():
    with pytest.raises(Exception):
        QUADRO_4000.sm_count = 16
    with pytest.raises(TypeError):
        QUADRO_4000.warp_issue_cycles[InstructionType.FP32] = 0.1
