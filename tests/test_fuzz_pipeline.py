"""Fuzz tests: random application mixes through the full pipeline.

Hypothesis generates fleets of VPs running randomized CUDA call
sequences; whatever the mix and configuration, the pipeline must drain —
every application completes, per-VP completion order respects program
order, and the queue ends empty.  These are the liveness/ordering
invariants the Re-scheduler and Coalescer must never break.
"""

import numpy as np
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.core import SHARED_MEMORY, SigmaVP
from repro.kernels import LaunchConfig, MemoryFootprint, uniform_kernel
from repro.kernels.functional import FunctionalRegistry


def _kernel(signature, coalescible=True):
    return uniform_kernel(
        signature,
        {"fp32": 4, "load": 2, "store": 1, "int": 2},
        MemoryFootprint(bytes_in=4096, bytes_out=4096, working_set_bytes=8192),
        signature=signature,
        coalescible=coalescible,
    )


#: One VP's program: a list of (op, sync) steps over a few buffers.
_step = st.tuples(
    st.sampled_from(["h2d", "kernel", "d2h", "sync", "cpu"]),
    st.booleans(),
)
_program = st.lists(_step, min_size=1, max_size=12)


def _build_app(api, program, signature):
    def app():
        completion_log = []
        handle = yield from api.malloc(4096)
        out = yield from api.malloc(4096)
        data = np.zeros(1024, dtype=np.float32)
        launch = LaunchConfig(grid_size=2, block_size=256, elements=512)
        kernel = _kernel(signature)
        for op, sync in program:
            if op == "h2d":
                yield from api.memcpy_h2d(handle, data, sync=sync)
            elif op == "kernel":
                yield from api.launch_kernel(
                    kernel, launch, args=[handle], out=out, sync=sync
                )
            elif op == "d2h":
                yield from api.memcpy_d2h(out, nbytes=4096, sync=sync)
            elif op == "sync":
                yield from api.synchronize()
            elif op == "cpu":
                yield from api.cpu_work(1e4)
            completion_log.append(op)
        yield from api.synchronize()
        return completion_log

    return app


@settings(
    max_examples=12,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(
    programs=st.lists(_program, min_size=1, max_size=5),
    interleaving=st.booleans(),
    coalescing=st.booleans(),
    shared_signature=st.booleans(),
)
def test_random_fleets_always_drain(programs, interleaving, coalescing,
                                    shared_signature):
    framework = SigmaVP(
        interleaving=interleaving,
        coalescing=coalescing,
        transport=SHARED_MEMORY,
        registry=FunctionalRegistry(),  # timing-only
        hold_window_ms=0.5,
    )
    processes = []
    for index, program in enumerate(programs):
        session = framework.add_vp()
        signature = "shared-k" if shared_signature else f"k{index}"
        app = _build_app(session.runtime, program, signature)
        process = session.vp.run_app(app)
        session.processes.append(process)
        processes.append((session, program, process))

    framework.run_until([p for _, _, p in processes])

    # Everything completed and the host queue drained.
    assert len(framework.queue) == 0
    for session, program, process in processes:
        assert process.value == [op for op, _sync in program]
        assert session.vp.finished_at_ms is not None

    # The dispatcher completed exactly as many jobs as were enqueued
    # (merged jobs complete their members, never double-complete).
    assert framework.dispatcher.stats.completed >= framework.queue.total_enqueued


@settings(max_examples=8, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(
    n_vps=st.integers(min_value=2, max_value=6),
    iterations=st.integers(min_value=1, max_value=4),
)
def test_lockstep_fleets_preserve_per_vp_order(n_vps, iterations):
    """Per-VP completion timestamps never decrease with sequence number."""
    framework = SigmaVP(
        transport=SHARED_MEMORY,
        registry=FunctionalRegistry(),
        n_vps=n_vps,
    )
    from repro.workloads.linalg import make_vectoradd_spec

    spec = make_vectoradd_spec(elements=2048, iterations=iterations)
    framework.run_workload(spec)

    # Reconstruct per-VP completion order from the profiler and engine
    # bookkeeping: job ids are monotone per VP (seq order), and every
    # member's completion timestamp must be monotone too.
    for name, session in framework.sessions.items():
        backend = session.runtime.backend
        # The backend's outstanding list is empty after synchronize.
        assert backend._outstanding == []
