"""Tests for the functional-kernel registry."""

import numpy as np
import pytest

from repro.kernels.functional import REGISTRY, FunctionalRegistry, functional_kernel


def test_register_and_get():
    registry = FunctionalRegistry()
    fn = lambda a: a + 1
    registry.register("inc", fn)
    assert registry.get("inc") is fn
    assert "inc" in registry
    assert len(registry) == 1
    assert registry.signatures() == ["inc"]


def test_duplicate_registration_rejected():
    registry = FunctionalRegistry()
    registry.register("k", lambda a: a)
    with pytest.raises(ValueError):
        registry.register("k", lambda a: a)


def test_empty_signature_rejected():
    registry = FunctionalRegistry()
    with pytest.raises(ValueError):
        registry.register("", lambda a: a)


def test_require_raises_with_known_list():
    registry = FunctionalRegistry()
    registry.register("present", lambda a: a)
    with pytest.raises(KeyError, match="present"):
        registry.require("absent")
    assert registry.require("present") is not None


def test_get_missing_returns_none():
    assert FunctionalRegistry().get("ghost") is None


def test_global_registry_has_core_kernels():
    for signature in ("vectorAdd", "matrixMul", "saxpy"):
        assert signature in REGISTRY


def test_core_kernels_compute():
    a = np.arange(4, dtype=np.float64)
    b = np.ones(4)
    np.testing.assert_array_equal(REGISTRY.require("vectorAdd")(a, b), a + 1)
    m = np.eye(3)
    np.testing.assert_array_equal(REGISTRY.require("matrixMul")(m, m), m)
    np.testing.assert_array_equal(
        REGISTRY.require("saxpy")(a, b, alpha=3.0), 3 * a + 1
    )
