"""The execution-backend seam: registry, capabilities, accounting.

Covers the CLUDA-style contract of :mod:`repro.backend`: name-keyed
registration and listing, process-default selection (env var, setter,
scope), graceful degradation of registered-but-unavailable backends
(cupy without the package), the zero-copy read-only H2D guarantee, the
allocation ledger, and the ``exec.backend_*`` observability counters.
"""

import numpy as np
import pytest

from repro import obs
from repro.backend import (
    BackendConfig,
    BackendUnavailableError,
    ExecutionBackend,
    available_backends,
    backend_scope,
    backend_status,
    default_backend,
    default_backend_name,
    make_backend,
    set_default_backend,
)
from repro.backend.registry import BACKEND_ENV_VAR, DEFAULT_BACKEND_NAME
from repro.kernels.functional import REGISTRY, FunctionalRegistry
from repro.sched.config import SchedulerConfig


class TestRegistry:
    def test_at_least_three_backends_registered(self):
        names = [name for name, _ in available_backends()]
        assert len(names) >= 3
        assert {"numpy", "numpy-batched", "cupy"} <= set(names)

    def test_listing_is_sorted_with_descriptions(self):
        listing = available_backends()
        assert listing == sorted(listing)
        assert all(desc for _, desc in listing)

    def test_unknown_name_raises_with_known_list(self):
        with pytest.raises(ValueError, match="numpy-batched"):
            make_backend("no-such-backend")

    def test_status_probes_without_requiring_availability(self):
        status = {row["name"]: row for row in backend_status()}
        assert status["numpy"]["available"] is True
        assert status["numpy"]["reason"] is None
        assert status["numpy-batched"]["supports_batched"] is True
        assert status["numpy"]["supports_batched"] is False
        assert status["numpy"]["zero_copy"] is True

    def test_capability_flags(self):
        numpy_backend = make_backend("numpy")
        batched = make_backend("numpy-batched")
        assert numpy_backend.capabilities() == {
            "supports_batched": False, "zero_copy": True, "available": True,
        }
        assert batched.capabilities()["supports_batched"] is True


class TestDefaultSelection:
    def test_builtin_default(self, monkeypatch):
        monkeypatch.delenv(BACKEND_ENV_VAR, raising=False)
        assert default_backend_name() == DEFAULT_BACKEND_NAME == "numpy-batched"

    def test_env_var_selects(self, monkeypatch):
        monkeypatch.setenv(BACKEND_ENV_VAR, "numpy")
        assert default_backend_name() == "numpy"

    def test_setter_overrides_env_and_restores(self, monkeypatch):
        monkeypatch.setenv(BACKEND_ENV_VAR, "numpy-batched")
        previous = set_default_backend("numpy")
        try:
            assert default_backend_name() == "numpy"
        finally:
            set_default_backend(previous)
        assert default_backend_name() == "numpy-batched"

    def test_setter_rejects_unknown(self):
        with pytest.raises(ValueError, match="unknown execution backend"):
            set_default_backend("no-such-backend")

    def test_scope_restores_on_exit_and_error(self):
        before = default_backend_name()
        with backend_scope("numpy"):
            assert default_backend_name() == "numpy"
        assert default_backend_name() == before
        with pytest.raises(RuntimeError):
            with backend_scope("numpy"):
                raise RuntimeError("boom")
        assert default_backend_name() == before

    def test_default_backend_shares_instance_per_registry(self):
        registry = FunctionalRegistry()
        with backend_scope("numpy"):
            a = default_backend(registry)
            b = default_backend(registry)
            bare = default_backend()
        assert a is b
        assert a.registry is registry
        assert bare is not a
        assert bare.registry is REGISTRY


class TestUnavailableBackend:
    def test_cupy_registered_but_unavailable(self):
        cupy = make_backend("cupy")
        assert cupy.available() is False
        assert "cupy" in (cupy.unavailable_reason() or "")

    def test_require_available_raises_with_reason(self):
        with pytest.raises(BackendUnavailableError, match="not installed"):
            make_backend("cupy").require_available()

    def test_operations_raise_until_available(self):
        cupy = make_backend("cupy")
        with pytest.raises(BackendUnavailableError):
            cupy.h2d(np.zeros(4))
        with pytest.raises(BackendUnavailableError):
            cupy.allocate(128)
        with pytest.raises(BackendUnavailableError):
            cupy.launch("vectorAdd", [np.zeros(4), np.zeros(4)])

    def test_unregistered_signature_short_circuits_before_probe(self):
        # Timing-only runs launch unregistered signatures constantly;
        # the None return must not depend on backend availability.
        cupy = make_backend("cupy", registry=FunctionalRegistry())
        assert cupy.launch("vectorAdd", [np.zeros(4)]) is None


class TestZeroCopyH2D:
    def test_h2d_returns_read_only_view(self):
        backend = make_backend("numpy")
        host = np.arange(8, dtype=np.float32)
        device = backend.h2d(host)
        assert device.base is host
        assert device.flags.writeable is False
        np.testing.assert_array_equal(device, host)

    def test_mutating_kernel_fails_loudly(self):
        # The regression this flag exists for: an in-place mutation of a
        # submitted array must be a ValueError, not silent corruption.
        registry = FunctionalRegistry()

        def mutating(a):
            a += 1.0
            return a

        registry.register("mutator", mutating)
        backend = make_backend("numpy", registry=registry)
        device = backend.h2d(np.ones(4, dtype=np.float32))
        with pytest.raises(ValueError, match="read-only"):
            backend.launch("mutator", [device])

    def test_d2h_passes_none_through(self):
        assert make_backend("numpy").d2h(None) is None


class TestLaunch:
    def test_launch_runs_registered_kernel(self):
        backend = make_backend("numpy")
        a = np.arange(4, dtype=np.float32)
        b = np.full(4, 2.0, dtype=np.float32)
        out = backend.launch("vectorAdd", [backend.h2d(a), backend.h2d(b)])
        np.testing.assert_array_equal(out, a + b)

    def test_launch_batched_requires_capability(self):
        rows_plain = make_backend("numpy").launch_batched(
            "vectorAdd", [(np.ones(4), np.ones(4))] * 3
        )
        assert rows_plain is None
        rows = make_backend("numpy-batched").launch_batched(
            "vectorAdd", [(np.ones(4), np.ones(4))] * 3
        )
        assert rows is not None and len(rows) == 3

    def test_launch_batched_empty_batch_is_fallback(self):
        assert make_backend("numpy-batched").launch_batched(
            "vectorAdd", []
        ) is None


class TestAllocationLedger:
    def test_tokens_and_live_bytes(self):
        backend = make_backend("numpy")
        t1 = backend.allocate(100, owner="vp0")
        t2 = backend.allocate(50, owner="vp1")
        assert t1 != t2
        assert backend.live_bytes == 150
        backend.free(t1)
        assert backend.live_bytes == 50
        backend.free(t2)
        assert backend.live_bytes == 0

    def test_double_free_raises(self):
        backend = make_backend("numpy")
        token = backend.allocate(8)
        backend.free(token)
        with pytest.raises(RuntimeError, match="double-freed"):
            backend.free(token)

    def test_nonpositive_allocation_rejected(self):
        with pytest.raises(ValueError, match="positive"):
            make_backend("numpy").allocate(0)


class TestObservabilityCounters:
    def test_backend_counters_under_capture(self):
        backend = make_backend("numpy-batched")
        a = np.arange(8, dtype=np.float32)
        with obs.capture() as cap:
            token = backend.allocate(a.nbytes)
            device = backend.h2d(a)
            backend.d2h(backend.launch("vectorAdd", [device, device]))
            backend.launch_batched("vectorAdd", [(a, a), (a, a)])
            backend.free(token)
        snap = cap.registry.snapshot()
        assert snap["exec.backend_allocs"]["value"] == 1
        assert snap["exec.backend_frees"]["value"] == 1
        assert snap["exec.backend_h2d"]["value"] == 1
        assert snap["exec.backend_d2h"]["value"] == 1
        assert snap["exec.backend_launches"]["value"] == 1
        assert snap["exec.backend_batched_launches"]["value"] == 1
        assert snap["exec.backend_batched_members"]["value"] == 2

    def test_counters_cost_nothing_when_disabled(self):
        # No registry active: the guard path must simply not count.
        backend = make_backend("numpy")
        backend.h2d(np.zeros(2))  # must not raise


class TestSchedulerConfigIntegration:
    def test_string_backend_coerced_to_config(self):
        sched = SchedulerConfig(backend="numpy")
        assert isinstance(sched.backend, BackendConfig)
        assert sched.backend.name == "numpy"
        assert sched.resolve_backend() == "numpy"
        assert sched.backend_options() == {}

    def test_none_backend_inherits_process_default(self):
        sched = SchedulerConfig()
        with backend_scope("numpy"):
            assert sched.resolve_backend() == "numpy"

    def test_backend_never_enters_stage_identity(self):
        # The scenario label (digest wire format) keys off the stages;
        # a backend choice is a run mechanic and must not change it.
        assert SchedulerConfig(backend="numpy").is_default_stages()


class TestFarmIntegration:
    def test_initargs_ship_resolved_backend(self):
        from repro.exec.farm import ScenarioFarm

        farm = ScenarioFarm(workers=1)
        assert farm._initargs()[-1] == default_backend_name()
        with backend_scope("numpy"):
            assert farm._initargs()[-1] == "numpy"

    def test_init_worker_selects_backend(self):
        from repro.exec.farm import _init_worker

        before = default_backend_name()
        try:
            _init_worker(warm=False, backend="numpy")
            assert default_backend_name() == "numpy"
        finally:
            set_default_backend(None)
        assert default_backend_name() == before


def test_template_methods_count_even_for_custom_backends():
    """Third-party subclasses inherit counting and ledger for free."""

    class Recording(ExecutionBackend):
        name = "recording-test"
        description = "test double"

        def asarray(self, host):
            return np.asarray(host)

        def _h2d(self, host):
            return np.asarray(host)

        def _d2h(self, device):
            return device

        def _launch(self, fn, inputs, params):
            return fn(*inputs, **params)

    backend = Recording()
    with obs.capture() as cap:
        backend.h2d(np.zeros(4))
    assert cap.registry.snapshot()["exec.backend_h2d"]["value"] == 1
