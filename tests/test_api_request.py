"""The RunRequest schema: validation, wire round-trip, identity stability.

The api_redesign contract: one frozen request object whose farm-job
projection emits byte-identical kwargs to the legacy CLI plumbing, so
config-hash keys (and everything derived from them — disk-cache entries,
deterministic seeds, results digests) are unchanged for every previously
recorded run.
"""

from __future__ import annotations

import pytest

from repro.api import (
    SCHEMA_VERSION,
    RequestError,
    RunRequest,
    run,
    scenario,
)
from repro.exec.farm import FarmJob, results_digest


# ---------------------------------------------------------------------------
# Validation
# ---------------------------------------------------------------------------


def test_defaults_are_the_legacy_defaults():
    request = RunRequest(app="vectorAdd")
    assert request.n_vps == 8
    assert request.interleaving and request.coalescing
    assert request.transport == "socket"
    assert request.n_host_gpus == 1
    assert request.schema == SCHEMA_VERSION
    assert request.tenant == "default"


@pytest.mark.parametrize(
    "overrides, code",
    [
        ({"schema": 99}, "bad-schema"),
        ({"app": ""}, "bad-value"),
        ({"n_vps": 0}, "bad-value"),
        ({"n_vps": True}, "bad-value"),
        ({"n_host_gpus": 0}, "bad-value"),
        ({"max_batch": 0}, "bad-value"),
        ({"transport": "carrier-pigeon"}, "bad-value"),
        ({"scale_elements": 0}, "bad-value"),
        ({"scale_iterations": -1}, "bad-value"),
        ({"shards": 0}, "bad-value"),
        ({"shards": "per-moon"}, "bad-value"),
        ({"tenant": ""}, "bad-value"),
        ({"tenant": "a\nb"}, "bad-value"),
        ({"qos": -1}, "bad-value"),
        ({"qos": True}, "bad-value"),
    ],
)
def test_validation_rejects_with_structured_code(overrides, code):
    kwargs = {"app": "vectorAdd", **overrides}
    with pytest.raises(RequestError) as excinfo:
        RunRequest(**kwargs)
    assert excinfo.value.code == code


def test_valid_shards_spellings():
    for shards in (2, "per-gpu", "per-vp-group", None):
        assert RunRequest(app="vectorAdd", shards=shards).shards == shards


def test_frozen():
    request = RunRequest(app="vectorAdd")
    with pytest.raises(AttributeError):
        request.n_vps = 4  # type: ignore[misc]


# ---------------------------------------------------------------------------
# Wire round-trip
# ---------------------------------------------------------------------------


def test_round_trip_preserves_every_field():
    request = RunRequest(
        app="mergeSort", n_vps=4, interleaving=False, coalescing=False,
        transport="shm", n_host_gpus=2, max_batch=8, scale_elements=1024,
        scale_iterations=3, functional=True, policy="fair-share",
        placement="least-backlog", shards="per-gpu", backend="numpy",
        tenant="acme", qos=2,
    )
    assert RunRequest.from_dict(request.to_dict()) == request


def test_from_dict_rejects_unknown_fields_by_name():
    with pytest.raises(RequestError) as excinfo:
        RunRequest.from_dict({"app": "vectorAdd", "colour": "red", "n_cpus": 4})
    assert excinfo.value.code == "bad-field"
    assert "colour" in str(excinfo.value) and "n_cpus" in str(excinfo.value)


def test_from_dict_rejects_wrong_schema_and_non_dict():
    with pytest.raises(RequestError) as excinfo:
        RunRequest.from_dict({"app": "vectorAdd", "schema": SCHEMA_VERSION + 1})
    assert excinfo.value.code == "bad-schema"
    with pytest.raises(RequestError) as excinfo:
        RunRequest.from_dict(["not", "a", "dict"])  # type: ignore[arg-type]
    assert excinfo.value.code == "bad-frame"
    with pytest.raises(RequestError) as excinfo:
        RunRequest.from_dict({"n_vps": 4})
    assert excinfo.value.code == "bad-field"


def test_from_dict_defaults_schema_and_coerces_json_float_shards():
    request = RunRequest.from_dict({"app": "vectorAdd", "shards": 2.0})
    assert request.schema == SCHEMA_VERSION
    assert request.shards == 2


def test_with_overrides_revalidates():
    request = RunRequest(app="vectorAdd")
    assert request.with_overrides(n_vps=2).n_vps == 2
    with pytest.raises(RequestError):
        request.with_overrides(n_vps=0)


# ---------------------------------------------------------------------------
# Identity: config-hash stability against the legacy kwargs rule
# ---------------------------------------------------------------------------


def _legacy_job(app, n_vps, **extra):
    """The exact FarmJob the pre-redesign CLI plumbing built."""
    return FarmJob(
        fn="repro.exec.jobs:scenario_summary",
        kwargs={
            "app": app,
            "n_vps": n_vps,
            "interleaving": extra.pop("interleaving", True),
            "coalescing": extra.pop("coalescing", True),
            "transport": extra.pop("transport", "socket"),
            "n_host_gpus": extra.pop("n_host_gpus", 1),
            **extra,
        },
        label=f"{app}:{n_vps}vps",
    )


def test_default_request_keeps_legacy_config_hash():
    legacy = _legacy_job("vectorAdd", 8)
    job = RunRequest(app="vectorAdd").to_farm_job()
    assert job.kwargs == legacy.kwargs
    assert job.key == legacy.key
    assert job.seed == legacy.seed
    assert job.label == legacy.label


def test_non_default_tuning_enters_kwargs_exactly_like_legacy():
    legacy = _legacy_job(
        "mergeSort", 4, interleaving=False, transport="shm", n_host_gpus=2,
        policy="priority-deadline", placement="least-backlog",
        shards="per-gpu", backend="numpy", functional=True,
    )
    job = RunRequest(
        app="mergeSort", n_vps=4, interleaving=False, transport="shm",
        n_host_gpus=2, policy="priority-deadline", placement="least-backlog",
        shards="per-gpu", backend="numpy", functional=True,
    ).to_farm_job()
    assert job.kwargs == legacy.kwargs
    assert job.key == legacy.key


def test_default_tuning_stays_out_of_kwargs():
    kwargs = RunRequest(app="vectorAdd").job_kwargs()
    for absent in ("max_batch", "functional", "policy", "placement",
                   "shards", "backend", "scale_elements", "scale_iterations"):
        assert absent not in kwargs
    for present in ("app", "n_vps", "interleaving", "coalescing",
                    "transport", "n_host_gpus"):
        assert present in kwargs


def test_tenant_and_qos_never_enter_scenario_identity():
    base = RunRequest(app="vectorAdd")
    routed = RunRequest(app="vectorAdd", tenant="acme", qos=3)
    assert base.config_hash == routed.config_hash
    assert base.seed == routed.seed
    assert "tenant" not in routed.job_kwargs()
    assert "qos" not in routed.job_kwargs()
    assert "schema" not in routed.job_kwargs()


# ---------------------------------------------------------------------------
# Execution facade
# ---------------------------------------------------------------------------


def test_run_and_scenario_agree_bit_identically():
    request = RunRequest(
        app="vectorAdd", n_vps=2, scale_elements=256, scale_iterations=2
    )
    outcome = run(request)
    assert outcome.value == scenario(request).summary()
    assert outcome.config_hash == request.config_hash
    assert outcome.digest == results_digest([_fake(outcome, request)])


def _fake(outcome, request):
    """Rebuild the FarmResult shape results_digest hashes."""
    from repro.exec.farm import FarmResult

    return FarmResult(
        job_key=request.config_hash, fn="repro.exec.jobs:scenario_summary",
        label="x", value=outcome.value, duration_s=0.0, worker_pid=0,
    )


def test_run_digest_matches_farm_digest_for_same_request():
    from repro.exec.farm import run_job, warm_worker

    request = RunRequest(
        app="vectorAdd", n_vps=2, scale_elements=256, scale_iterations=2
    )
    warm_worker()
    farm_result = run_job(request.to_farm_job())
    assert run(request).digest == results_digest([farm_result])
