"""Tests for the reference kernel timing model."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.gpu import GRID_K520, QUADRO_4000, TEGRA_K1
from repro.gpu.timing import KernelTimingModel
from repro.kernels import (
    InstructionType,
    KernelCompiler,
    LaunchConfig,
    MemoryFootprint,
    uniform_kernel,
)

COMPILER = KernelCompiler()


def _kernel(per_thread=None, working_set=64 * 1024, locality=0.8, name="k"):
    return uniform_kernel(
        name,
        per_thread or {"fp32": 8, "int": 4, "load": 2, "store": 1, "branch": 1},
        MemoryFootprint(
            bytes_in=working_set,
            bytes_out=working_set // 2,
            working_set_bytes=working_set,
            locality=locality,
        ),
    )


def _profile(arch, kernel=None, launch=None):
    kernel = kernel or _kernel()
    launch = launch or LaunchConfig(grid_size=64, block_size=256, elements=64 * 256)
    model = KernelTimingModel(arch)
    compiled = COMPILER.compile(kernel, arch)
    return model.execute(compiled, launch)


def test_profile_basic_structure():
    profile = _profile(QUADRO_4000)
    assert profile.arch_name == "Quadro 4000"
    assert profile.elapsed_cycles > 0
    assert profile.time_ms > 0
    assert profile.sigma_total > 0
    assert 0.0 < profile.occupancy <= 1.0


def test_elapsed_at_least_components():
    profile = _profile(QUADRO_4000)
    assert profile.elapsed_cycles >= profile.issue_cycles
    assert profile.elapsed_cycles >= profile.memory_cycles
    assert profile.elapsed_cycles >= profile.data_stall_cycles


def test_stall_breakdown_percentages():
    profile = _profile(QUADRO_4000)
    breakdown = profile.stall_breakdown()
    assert set(breakdown) == {"data_dependency", "other"}
    assert all(0 <= v <= 100 for v in breakdown.values())


def test_wrong_architecture_rejected():
    model = KernelTimingModel(QUADRO_4000)
    compiled = COMPILER.compile(_kernel(), TEGRA_K1)
    launch = LaunchConfig(grid_size=8, block_size=256, elements=2048)
    with pytest.raises(ValueError):
        model.execute(compiled, launch)


def test_target_slower_than_hosts():
    """The embedded Tegra K1 must be slower than both host GPUs."""
    launch = LaunchConfig(grid_size=128, block_size=256, elements=128 * 256)
    kernel = _kernel()
    tegra = _profile(TEGRA_K1, kernel, launch)
    quadro = _profile(QUADRO_4000, kernel, launch)
    grid = _profile(GRID_K520, kernel, launch)
    assert tegra.time_ms > 3 * quadro.time_ms
    assert tegra.time_ms > 3 * grid.time_ms


def test_fp64_heavy_kernel_penalized_on_kepler():
    """Kepler is 1/24-rate FP64: the FP64/FP32 time ratio exceeds Fermi's."""
    launch = LaunchConfig(grid_size=64, block_size=256, elements=64 * 256)
    fp32 = _kernel({"fp32": 32}, name="fp32k")
    fp64 = _kernel({"fp64": 32}, name="fp64k")
    quadro_ratio = (
        _profile(QUADRO_4000, fp64, launch).issue_cycles
        / _profile(QUADRO_4000, fp32, launch).issue_cycles
    )
    kepler_ratio = (
        _profile(GRID_K520, fp64, launch).issue_cycles
        / _profile(GRID_K520, fp32, launch).issue_cycles
    )
    assert kepler_ratio > quadro_ratio


def test_grid_staircase():
    """Fig. 10(b): grid sizes within one SM-multiple cost the same."""
    model = KernelTimingModel(QUADRO_4000)
    kernel = _kernel()

    def issue(grid):
        launch = LaunchConfig(grid_size=grid, block_size=512, elements=grid * 512)
        return model.issue_cycles(COMPILER.compile(kernel, QUADRO_4000), launch)

    # The wave quantum at 512-thread blocks is 16 resident blocks:
    # grids 9..16 cost one wave (the paper's Fig. 10b observation).
    assert issue(9) == pytest.approx(issue(16))
    assert issue(16) < issue(17)
    assert issue(17) == pytest.approx(issue(32))


def test_issue_cycles_grow_linearly_with_full_waves():
    model = KernelTimingModel(QUADRO_4000)
    kernel = _kernel()

    def issue(grid):
        launch = LaunchConfig(grid_size=grid, block_size=512, elements=grid * 512)
        return model.issue_cycles(COMPILER.compile(kernel, QUADRO_4000), launch)

    assert issue(32) == pytest.approx(2 * issue(16))
    assert issue(64) == pytest.approx(4 * issue(16))


def test_memory_bound_kernel_limited_by_bandwidth():
    """A streaming kernel's elapsed time tracks memory, not issue, cycles."""
    kernel = _kernel(
        {"load": 8, "store": 4, "int": 1},
        working_set=256 * 1024 * 1024,
        locality=0.05,
    )
    profile = _profile(QUADRO_4000, kernel)
    assert profile.memory_cycles > profile.issue_cycles


def test_compute_bound_kernel_limited_by_issue():
    kernel = _kernel({"fp32": 200, "load": 0.25}, working_set=16 * 1024, locality=0.95)
    profile = _profile(QUADRO_4000, kernel)
    assert profile.issue_cycles > profile.memory_cycles


def test_kernel_time_includes_launch_overhead():
    model = KernelTimingModel(QUADRO_4000)
    compiled = COMPILER.compile(_kernel(), QUADRO_4000)
    launch = LaunchConfig(grid_size=8, block_size=256, elements=2048)
    profile = model.execute(compiled, launch)
    total = model.kernel_time_ms(compiled, launch)
    assert total == pytest.approx(
        QUADRO_4000.kernel_launch_overhead_ms + profile.time_ms
    )


def test_sigma_matches_compiled_sigma():
    compiled = COMPILER.compile(_kernel(), QUADRO_4000)
    launch = LaunchConfig(grid_size=8, block_size=256, elements=2048)
    profile = KernelTimingModel(QUADRO_4000).execute(compiled, launch)
    assert profile.sigma == compiled.sigma(launch)


def test_waves_counted():
    launch = LaunchConfig(grid_size=48, block_size=512, elements=48 * 512)
    profile = _profile(QUADRO_4000, launch=launch)
    # 16 concurrent 512-thread blocks on Quadro: 48 blocks = 3 waves.
    assert profile.waves == 3


@settings(max_examples=30, deadline=None)
@given(
    grid=st.integers(min_value=1, max_value=4096),
    block=st.sampled_from([64, 128, 256, 512]),
)
def test_time_monotonic_in_grid(grid, block):
    """More blocks never run meaningfully faster (same per-block work).

    Issue cycles are strictly monotone in the grid; elapsed time may dip
    slightly when extra resident blocks improve latency hiding, so it is
    checked with a tolerance.
    """
    model = KernelTimingModel(QUADRO_4000)
    kernel = _kernel()
    compiled = COMPILER.compile(kernel, QUADRO_4000)
    smaller = LaunchConfig(grid_size=grid, block_size=block, elements=grid * block)
    larger = LaunchConfig(
        grid_size=grid + 8, block_size=block, elements=(grid + 8) * block
    )
    assert model.issue_cycles(compiled, larger) >= model.issue_cycles(
        compiled, smaller
    )
    t_small = model.execute(compiled, smaller).elapsed_cycles
    t_large = model.execute(compiled, larger).elapsed_cycles
    # Within a wave, extra resident blocks can improve latency hiding by
    # up to the hiding model's range, so the elapsed dip can reach ~25%.
    assert t_large >= 0.7 * t_small


@settings(max_examples=20, deadline=None)
@given(
    fp32=st.floats(min_value=0, max_value=100, allow_nan=False),
    loads=st.floats(min_value=0, max_value=20, allow_nan=False),
)
def test_profile_invariants(fp32, loads):
    kernel = _kernel({"fp32": fp32, "load": loads, "int": 1})
    profile = _profile(TEGRA_K1, kernel)
    assert profile.elapsed_cycles > 0
    assert profile.time_ms == pytest.approx(
        TEGRA_K1.cycles_to_ms(profile.elapsed_cycles)
    )
    assert profile.cache_hits >= 0 and profile.cache_misses >= 0
