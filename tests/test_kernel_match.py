"""Tests for the Kernel Match submodule (structural kernel identity)."""

import pytest

from repro.core.kernel_match import kernel_digest, kernels_match, match_key
from repro.kernels import (
    InstructionMix,
    KernelIR,
    MemoryFootprint,
    ProgramBlock,
    uniform_kernel,
)


def _footprint(size=4096):
    return MemoryFootprint(bytes_in=size, bytes_out=size, working_set_bytes=size)


def _blocks(fp32=4.0, trips=2.0):
    return (
        ProgramBlock("body", InstructionMix(fp32=fp32, load=1), trips=trips),
    )


def test_identical_structure_matches_across_instances():
    """Two VPs' binaries submit the same kernel code: they must match,
    whatever Python objects they were built from."""
    a = KernelIR(name="appA-kernel", blocks=_blocks(), footprint=_footprint(),
                 signature="appA-kernel")
    b = KernelIR(name="appB-kernel", blocks=_blocks(), footprint=_footprint(),
                 signature="appB-kernel")
    assert kernels_match(a, b)
    assert kernel_digest(a) == kernel_digest(b)


def test_different_mix_does_not_match():
    a = KernelIR(name="k", blocks=_blocks(fp32=4.0), footprint=_footprint())
    b = KernelIR(name="k", blocks=_blocks(fp32=5.0), footprint=_footprint())
    assert not kernels_match(a, b)


def test_different_trip_count_does_not_match():
    a = KernelIR(name="k", blocks=_blocks(trips=2.0), footprint=_footprint())
    b = KernelIR(name="k", blocks=_blocks(trips=3.0), footprint=_footprint())
    assert not kernels_match(a, b)


def test_footprint_is_not_part_of_identity():
    """Coalesced launches differ in data size; the code identity must not."""
    a = KernelIR(name="k", blocks=_blocks(), footprint=_footprint(4096))
    b = KernelIR(name="k", blocks=_blocks(), footprint=_footprint(1 << 20))
    assert kernels_match(a, b)


def test_callable_trips_match_by_behaviour():
    a = KernelIR(
        name="k",
        blocks=(ProgramBlock("loop", InstructionMix(fp64=1),
                             trips=lambda ctx: ctx.problem_size),),
        footprint=_footprint(),
    )
    b = KernelIR(
        name="k",
        blocks=(ProgramBlock("loop", InstructionMix(fp64=1),
                             trips=lambda ctx: ctx.problem_size * 1.0),),
        footprint=_footprint(),
    )
    assert kernels_match(a, b)


def test_callable_trips_differ_by_behaviour():
    a = KernelIR(
        name="k",
        blocks=(ProgramBlock("loop", InstructionMix(fp64=1),
                             trips=lambda ctx: ctx.problem_size),),
        footprint=_footprint(),
    )
    b = KernelIR(
        name="k",
        blocks=(ProgramBlock("loop", InstructionMix(fp64=1),
                             trips=lambda ctx: 2 * ctx.problem_size),),
        footprint=_footprint(),
    )
    assert not kernels_match(a, b)


def test_block_structure_order_matters():
    first = ProgramBlock("a", InstructionMix(int=1), trips=1)
    second = ProgramBlock("b", InstructionMix(fp32=1), trips=1)
    k1 = KernelIR(name="k", blocks=(first, second), footprint=_footprint())
    k2 = KernelIR(name="k", blocks=(second, first), footprint=_footprint())
    assert not kernels_match(k1, k2)


def test_match_key_includes_block_size():
    kernel = uniform_kernel("k", {"fp32": 1}, _footprint())
    assert match_key(kernel, 256) != match_key(kernel, 512)
    assert match_key(kernel, 256) == (kernel_digest(kernel), 256)


def test_match_key_none_for_non_coalescible():
    kernel = uniform_kernel("k", {"fp32": 1}, _footprint(), coalescible=False)
    assert match_key(kernel, 256) is None


def test_digest_is_cached_and_stable():
    kernel = uniform_kernel("k", {"fp32": 1}, _footprint())
    first = kernel_digest(kernel)
    assert kernel.__dict__["_code_digest"] == first
    assert kernel_digest(kernel) == first


def test_digest_survives_with_footprint():
    """with_footprint builds a new object; identity must carry over."""
    kernel = uniform_kernel("k", {"fp32": 1}, _footprint())
    resized = kernel.with_footprint(_footprint(1 << 16))
    assert kernels_match(kernel, resized)
