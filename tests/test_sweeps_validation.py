"""Tests for design-space sweeps and cross-backend validation."""

import pytest

from repro.analysis.sweeps import (
    derive_architecture,
    pareto_front,
    sweep_targets,
    tegra_scaling_candidates,
    DesignPoint,
)
from repro.analysis.validation import validate_suite, validate_workload
from repro.gpu import TEGRA_K1
from repro.workloads import SUITE
from repro.workloads.linalg import make_vectoradd_spec


# -- derive_architecture --------------------------------------------------------


def test_derive_overrides_plain_fields():
    derived = derive_architecture(TEGRA_K1, "fast-k1", clock_mhz=1000.0)
    assert derived.clock_mhz == 1000.0
    assert derived.name == "fast-k1"
    assert derived.sm_count == TEGRA_K1.sm_count
    assert TEGRA_K1.clock_mhz == 852.0  # base untouched


def test_derive_overrides_cache_fields():
    derived = derive_architecture(
        TEGRA_K1, "big-cache", cache_size_kb=512, cache_associativity=16
    )
    assert derived.cache.size_kb == 512
    assert derived.cache.associativity == 16
    assert derived.cache.line_bytes == TEGRA_K1.cache.line_bytes


# -- sweeps ----------------------------------------------------------------------


@pytest.fixture(scope="module")
def sweep_points():
    spec = SUITE["dct8x8"]
    return sweep_targets(spec, tegra_scaling_candidates())


def test_sweep_covers_candidates(sweep_points):
    assert len(sweep_points) == 6  # 3 SM counts x 2 clocks
    assert all(p.estimated_time_ms > 0 for p in sweep_points)
    assert all(p.estimated_power_w > 0 for p in sweep_points)


def test_more_smx_is_faster_but_hotter(sweep_points):
    by_name = {p.name: p for p in sweep_points}
    one = by_name["TegraK1-like 1SMX @852MHz"]
    four = by_name["TegraK1-like 4SMX @852MHz"]
    assert four.estimated_time_ms < one.estimated_time_ms / 2
    assert four.estimated_power_w > one.estimated_power_w * 1.5


def test_higher_clock_is_faster(sweep_points):
    by_name = {p.name: p for p in sweep_points}
    slow = by_name["TegraK1-like 2SMX @652MHz"]
    fast = by_name["TegraK1-like 2SMX @852MHz"]
    assert fast.estimated_time_ms < slow.estimated_time_ms


def test_energy_delay_product():
    point = DesignPoint(
        name="x", arch=TEGRA_K1, estimated_time_ms=10.0, estimated_power_w=2.0
    )
    assert point.energy_mj == pytest.approx(0.02)
    assert point.energy_delay_product == pytest.approx(0.2)


def test_pareto_front_properties(sweep_points):
    front = pareto_front(sweep_points)
    assert front  # non-empty
    # No front member dominates another.
    for a in front:
        for b in front:
            if a is b:
                continue
            assert not (
                a.estimated_time_ms <= b.estimated_time_ms
                and a.estimated_power_w < b.estimated_power_w
            )
    # The front is sorted by time.
    times = [p.estimated_time_ms for p in front]
    assert times == sorted(times)


def test_pareto_front_drops_dominated():
    good = DesignPoint("good", TEGRA_K1, 1.0, 1.0)
    bad = DesignPoint("bad", TEGRA_K1, 2.0, 2.0)
    front = pareto_front([good, bad])
    assert front == [good]


# -- validation ---------------------------------------------------------------------


def test_validate_vectoradd_equivalence():
    spec = make_vectoradd_spec(elements=2048, iterations=2)
    result = validate_workload(spec)
    assert result.ok
    assert result.equivalent
    assert result.max_abs_difference == pytest.approx(0.0, abs=1e-9)


def test_validate_blackscholes_equivalence():
    spec = SUITE["BlackScholes"].scaled_to(4096, iterations=1)
    result = validate_workload(spec)
    assert result.ok, result.detail


def test_validate_physics_equivalence():
    spec = SUITE["physxParticles"].scaled_to(1024, iterations=2)
    result = validate_workload(spec)
    assert result.ok, result.detail


def test_validate_unregistered_kernel_reports():
    from repro.kernels import MemoryFootprint, uniform_kernel
    from repro.workloads.base import WorkloadSpec

    kernel = uniform_kernel(
        "nosuchfn",
        {"fp32": 1},
        MemoryFootprint(bytes_in=1024, bytes_out=1024, working_set_bytes=1024),
    )
    spec = WorkloadSpec(name="ghost", kernel=kernel, elements=256,
                        input_arrays=1, c_ops=1.0)
    result = validate_workload(spec)
    assert not result.ok
    assert "no functional kernel" in result.detail


def test_validate_suite_runs_multiple():
    specs = [
        make_vectoradd_spec(elements=1024, iterations=1),
        SUITE["mergeSort"].scaled_to(2048, iterations=1),
    ]
    results = validate_suite(specs)
    assert len(results) == 2
    assert all(r.ok for r in results)
