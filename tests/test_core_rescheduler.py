"""Tests for the Re-scheduler policies and engine backlog."""

import pytest

from repro.core.jobs import Job, JobKind
from repro.core.rescheduler import (
    EngineBacklog,
    FIFOPolicy,
    InterleavingPolicy,
    engine_role,
    make_policy,
)
from repro.sim import Environment


def _job(env, vp="vp0", seq=0, kind=JobKind.COPY_H2D):
    return Job(vp=vp, seq=seq, kind=kind, completion=env.event())


def test_engine_role_mapping():
    env = Environment()
    assert engine_role(_job(env, kind=JobKind.COPY_H2D)) == "h2d"
    assert engine_role(_job(env, kind=JobKind.COPY_D2H)) == "d2h"
    assert engine_role(_job(env, kind=JobKind.KERNEL)) == "compute"
    assert engine_role(_job(env, kind=JobKind.MALLOC)) == "host"
    assert engine_role(_job(env, kind=JobKind.FREE)) == "host"


def test_backlog_add_retire():
    env = Environment()
    backlog = EngineBacklog()
    job = _job(env, kind=JobKind.KERNEL)
    backlog.add(job, 5.0)
    assert backlog.for_job(job) == 5.0
    backlog.retire(job, 5.0)
    assert backlog.for_job(job) == 0.0


def test_backlog_never_negative():
    env = Environment()
    backlog = EngineBacklog()
    job = _job(env, kind=JobKind.COPY_H2D)
    backlog.retire(job, 99.0)
    assert backlog.for_job(job) == 0.0


def test_backlog_tracks_engines_independently():
    env = Environment()
    backlog = EngineBacklog()
    h2d = _job(env, kind=JobKind.COPY_H2D)
    kernel = _job(env, kind=JobKind.KERNEL)
    backlog.add(h2d, 3.0)
    backlog.add(kernel, 7.0)
    assert backlog.for_job(h2d) == 3.0
    assert backlog.for_job(kernel) == 7.0


def test_fifo_selects_arrival_order():
    env = Environment()
    policy = FIFOPolicy()
    first = _job(env, vp="a")
    second = _job(env, vp="b")
    assert policy.select([second, first], EngineBacklog()) is first


def test_fifo_empty_returns_none():
    assert FIFOPolicy().select([], EngineBacklog()) is None


def test_interleaving_prefers_starving_engine():
    """The policy feeds the engine with the smaller expected backlog."""
    env = Environment()
    policy = InterleavingPolicy()
    backlog = EngineBacklog()
    copy_job = _job(env, vp="a", kind=JobKind.COPY_H2D)
    kernel_job = _job(env, vp="b", kind=JobKind.KERNEL)
    backlog.add(copy_job, 10.0)  # copy engine busy
    choice = policy.select([copy_job, kernel_job], backlog)
    assert choice is kernel_job


def test_interleaving_rotates_across_vps():
    env = Environment()
    policy = InterleavingPolicy()
    backlog = EngineBacklog()
    a1 = _job(env, vp="a", seq=0)
    b1 = _job(env, vp="b", seq=0)
    first = policy.select([a1, b1], backlog)
    assert first is a1  # tie-break by arrival
    a2 = _job(env, vp="a", seq=1)
    second = policy.select([a2, b1], backlog)
    assert second is b1  # VP a was just served: rotate to b


def test_interleaving_empty_returns_none():
    assert InterleavingPolicy().select([], EngineBacklog()) is None


def test_make_policy():
    assert isinstance(make_policy("fifo"), FIFOPolicy)
    assert isinstance(make_policy("interleaving"), InterleavingPolicy)
    with pytest.raises(ValueError):
        make_policy("magic")
