"""Tests for latency accounting."""

import pytest

from repro.analysis.accounting import (
    job_latencies,
    kind_breakdown,
    render_accounting,
    vp_accounts,
)
from repro.core import SHARED_MEMORY, SigmaVP
from repro.core.jobs import JobKind
from repro.workloads.linalg import make_vectoradd_spec


@pytest.fixture(scope="module")
def finished_framework():
    framework = SigmaVP(n_vps=2, transport=SHARED_MEMORY)
    spec = make_vectoradd_spec(elements=4096, iterations=3)
    framework.run_workload(spec)
    return framework


def test_latencies_cover_all_completed_jobs(finished_framework):
    latencies = job_latencies(finished_framework.dispatcher)
    assert latencies
    for latency in latencies:
        assert latency.queue_wait_ms >= 0
        assert latency.service_ms >= 0
        assert latency.total_ms == pytest.approx(
            latency.queue_wait_ms + latency.service_ms
        )


def test_members_inherit_merge_dispatch_point(finished_framework):
    """Merged members were never dispatched individually but still get
    a full decomposition."""
    latencies = job_latencies(finished_framework.dispatcher)
    vps = {latency.vp for latency in latencies}
    assert {"vp0", "vp1"} <= vps


def test_vp_accounts_structure(finished_framework):
    accounts = vp_accounts(finished_framework)
    assert set(accounts) == {"vp0", "vp1"}
    for account in accounts.values():
        assert account.jobs > 0
        assert account.guest_cpu_ms > 0
        assert account.elapsed_ms is not None
        # Host-side time components are bounded by job count x horizon.
        assert account.host_total_ms >= 0
        assert account.service_ms > 0


def test_kind_breakdown_means(finished_framework):
    kinds = kind_breakdown(finished_framework.dispatcher)
    assert JobKind.KERNEL in kinds
    assert JobKind.MALLOC in kinds
    # Mallocs are host bookkeeping: near-zero service.
    assert kinds[JobKind.MALLOC].service_ms < 0.01
    assert kinds[JobKind.KERNEL].service_ms > 0


def test_render_accounting(finished_framework):
    text = render_accounting(finished_framework)
    assert "Per-VP accounting" in text
    assert "Per-kind latency" in text
    assert "vp0" in text and "KERNEL" in text


def test_service_time_matches_expected_for_serial_run():
    """In serial mode, a lone copy's service time equals its transfer
    time (plus nothing: no contention)."""
    framework = SigmaVP(n_vps=1, transport=SHARED_MEMORY,
                        interleaving=False, coalescing=False)
    spec = make_vectoradd_spec(elements=65536, iterations=1)
    framework.run_workload(spec)
    latencies = job_latencies(framework.dispatcher)
    copies = [l for l in latencies if l.kind is JobKind.COPY_H2D]
    expected = framework.gpu.arch.copy_time_ms(65536 * 4)
    for latency in copies:
        assert latency.service_ms == pytest.approx(expected, rel=0.01)
