"""Tests for the Job Dispatcher: service modes, ordering, functional effects."""

import numpy as np
import pytest

from repro.core.coalescing import KernelCoalescer
from repro.core.dispatcher import (
    HOST_CALL_MS,
    JobDispatcher,
    PROFILING_OVERHEAD_MS,
    ServiceMode,
)
from repro.core.handles import HandleTable
from repro.core.jobs import Job, JobKind, JobQueue
from repro.core.profiler import Profiler
from repro.core.rescheduler import FIFOPolicy, InterleavingPolicy
from repro.gpu import HostGPU, QUADRO_4000
from repro.gpu.memory import OutOfDeviceMemory
from repro.kernels import LaunchConfig, MemoryFootprint, uniform_kernel
from repro.kernels.functional import FunctionalRegistry
from repro.sim import Environment


def _kernel(signature="disp-add"):
    return uniform_kernel(
        signature,
        {"fp32": 2, "load": 2, "store": 1},
        MemoryFootprint(bytes_in=4096, bytes_out=4096, working_set_bytes=8192),
        signature=signature,
    )


def _registry():
    registry = FunctionalRegistry()
    registry.register("disp-add", lambda a, b: a + b)
    return registry


def _setup(mode=ServiceMode.PIPELINED, policy=None, coalescer=False, registry=None):
    env = Environment()
    gpu = HostGPU(env, QUADRO_4000)
    queue = JobQueue(env)
    handles = HandleTable()
    profiler = Profiler()
    coalescer_obj = (
        KernelCoalescer(env, gpu, handles, target_batch=2) if coalescer else None
    )
    dispatcher = JobDispatcher(
        env,
        gpu,
        queue,
        handles,
        policy=policy or FIFOPolicy(),
        mode=mode,
        coalescer=coalescer_obj,
        registry=registry or _registry(),
        profiler=profiler,
    )
    return env, gpu, queue, handles, dispatcher, profiler


def _malloc_job(env, handles, vp, seq, size=4096):
    handle = handles.new_handle(vp)
    return handle, Job(vp=vp, seq=seq, kind=JobKind.MALLOC,
                       completion=env.event(), size=size, handle=handle)


def test_malloc_binds_handle():
    env, gpu, queue, handles, dispatcher, _ = _setup()
    handle, job = _malloc_job(env, handles, "vp0", 0)
    queue.put(job)
    env.run(job.completion)
    assert handle in handles
    assert handles.buffer(handle).size == 4096


def test_free_releases_buffer():
    env, gpu, queue, handles, dispatcher, _ = _setup()
    handle, malloc = _malloc_job(env, handles, "vp0", 0)
    free = Job(vp="vp0", seq=1, kind=JobKind.FREE,
               completion=env.event(), handle=handle)
    queue.put(malloc)
    queue.put(free)
    env.run(free.completion)
    assert handle not in handles
    assert gpu.memory.used_bytes == 0


def test_h2d_sets_payload_and_counts():
    env, gpu, queue, handles, dispatcher, _ = _setup()
    handle, malloc = _malloc_job(env, handles, "vp0", 0)
    data = np.arange(512, dtype=np.float64)
    copy = Job(vp="vp0", seq=1, kind=JobKind.COPY_H2D, completion=env.event(),
               handle=handle, nbytes=int(data.nbytes), host_data=data)
    queue.put(malloc)
    queue.put(copy)
    env.run(copy.completion)
    np.testing.assert_array_equal(handles.buffer(handle).payload, data)
    assert gpu.bytes_copied_h2d == data.nbytes


def test_kernel_applies_functional_and_profiles():
    env, gpu, queue, handles, dispatcher, profiler = _setup()
    h_a, m_a = _malloc_job(env, handles, "vp0", 0)
    h_b, m_b = _malloc_job(env, handles, "vp0", 1)
    h_out, m_out = _malloc_job(env, handles, "vp0", 2)
    a = np.full(512, 2.0)
    b = np.full(512, 3.0)
    c_a = Job(vp="vp0", seq=3, kind=JobKind.COPY_H2D, completion=env.event(),
              handle=h_a, nbytes=4096, host_data=a)
    c_b = Job(vp="vp0", seq=4, kind=JobKind.COPY_H2D, completion=env.event(),
              handle=h_b, nbytes=4096, host_data=b)
    launch = LaunchConfig(grid_size=2, block_size=256, elements=512)
    kernel = Job(vp="vp0", seq=5, kind=JobKind.KERNEL, completion=env.event(),
                 kernel=_kernel(), launch=launch,
                 arg_handles=(h_a, h_b), out_handle=h_out)
    for job in (m_a, m_b, m_out, c_a, c_b, kernel):
        queue.put(job)
    env.run(kernel.completion)
    np.testing.assert_array_equal(handles.buffer(h_out).payload, np.full(512, 5.0))
    assert len(profiler) == 1
    assert profiler.records[0].kernel_name == "disp-add"


def test_d2h_delivers_to_sink():
    env, gpu, queue, handles, dispatcher, _ = _setup()
    handle, malloc = _malloc_job(env, handles, "vp0", 0)
    data = np.ones(512)
    c_in = Job(vp="vp0", seq=1, kind=JobKind.COPY_H2D, completion=env.event(),
               handle=handle, nbytes=4096, host_data=data)
    received = []
    c_out = Job(vp="vp0", seq=2, kind=JobKind.COPY_D2H, completion=env.event(),
                handle=handle, nbytes=4096, sink=received.append)
    for job in (malloc, c_in, c_out):
        queue.put(job)
    env.run(c_out.completion)
    np.testing.assert_array_equal(received[0], data)
    assert gpu.bytes_copied_d2h == 4096


def test_per_vp_order_is_preserved():
    """A VP's jobs complete in sequence order even under reordering policy."""
    env, gpu, queue, handles, dispatcher, _ = _setup(policy=InterleavingPolicy())
    completions = []
    jobs = []
    for seq in range(5):
        job = Job(vp="vp0", seq=seq, kind=JobKind.COPY_H2D,
                  completion=env.event(), nbytes=1024)
        job.completion.callbacks.append(
            lambda ev, s=seq: completions.append(s)
        )
        jobs.append(job)
        queue.put(job)
    env.run(jobs[-1].completion)
    assert completions == [0, 1, 2, 3, 4]


def test_cross_vp_jobs_overlap_in_pipelined_mode():
    env, gpu, queue, handles, dispatcher, _ = _setup(mode=ServiceMode.PIPELINED)
    # One long h2d copy and one kernel from different VPs.
    copy = Job(vp="a", seq=0, kind=JobKind.COPY_H2D, completion=env.event(),
               nbytes=8_000_000)  # 2 ms on the h2d engine
    launch = LaunchConfig(grid_size=8, block_size=256, elements=2048)
    kernel = Job(vp="b", seq=0, kind=JobKind.KERNEL, completion=env.event(),
                 kernel=_kernel(), launch=launch)
    queue.put(copy)
    queue.put(kernel)
    env.run(env.all_of([copy.completion, kernel.completion]))
    copy_span = gpu.h2d_engine.timeline[0]
    kernel_span = gpu.compute_engine.timeline[0]
    assert kernel_span.start_ms < copy_span.end_ms  # overlapped


def test_serial_mode_never_overlaps():
    env, gpu, queue, handles, dispatcher, _ = _setup(mode=ServiceMode.SERIAL)
    copy = Job(vp="a", seq=0, kind=JobKind.COPY_H2D, completion=env.event(),
               nbytes=8_000_000)
    launch = LaunchConfig(grid_size=8, block_size=256, elements=2048)
    kernel = Job(vp="b", seq=0, kind=JobKind.KERNEL, completion=env.event(),
                 kernel=_kernel(), launch=launch)
    queue.put(copy)
    queue.put(kernel)
    env.run(env.all_of([copy.completion, kernel.completion]))
    copy_span = gpu.h2d_engine.timeline[0]
    kernel_span = gpu.compute_engine.timeline[0]
    assert kernel_span.start_ms >= copy_span.end_ms  # strictly serial


def test_depends_on_gates_dispatch():
    env, gpu, queue, handles, dispatcher, _ = _setup()
    gate_job = Job(vp="a", seq=0, kind=JobKind.COPY_H2D,
                   completion=env.event(), nbytes=4_000_000)  # 1 ms
    launch = LaunchConfig(grid_size=2, block_size=256, elements=512)
    dependent = Job(vp="b", seq=0, kind=JobKind.KERNEL, completion=env.event(),
                    kernel=_kernel(), launch=launch,
                    depends_on=[gate_job.completion])
    queue.put(dependent)
    queue.put(gate_job)
    env.run(dependent.completion)
    assert gpu.compute_engine.timeline[0].start_ms >= gpu.h2d_engine.timeline[0].end_ms


def test_kernel_expected_time_includes_profiling():
    env, gpu, queue, handles, dispatcher, _ = _setup()
    launch = LaunchConfig(grid_size=2, block_size=256, elements=512)
    job = Job(vp="a", seq=0, kind=JobKind.KERNEL, completion=env.event(),
              kernel=_kernel(), launch=launch)
    compiled = gpu.compiler.compile(job.kernel, gpu.arch)
    expected = dispatcher._expected_ms(job)
    assert expected == pytest.approx(
        PROFILING_OVERHEAD_MS + gpu.timing.kernel_time_ms(compiled, launch)
    )


def test_malloc_failure_fails_completion():
    env, gpu, queue, handles, dispatcher, _ = _setup()
    handle = handles.new_handle("vp0")
    job = Job(vp="vp0", seq=0, kind=JobKind.MALLOC, completion=env.event(),
              size=10**12, handle=handle)  # larger than device memory
    queue.put(job)

    def waiter():
        try:
            yield job.completion
        except OutOfDeviceMemory:
            return "oom"
        return "ok"

    process = env.process(waiter())
    with pytest.raises(OutOfDeviceMemory):
        env.run()
    assert process.value == "oom"


def test_coalescing_dispatch_merges_concurrent_kernels():
    env, gpu, queue, handles, dispatcher, profiler = _setup(coalescer=True)
    launch = LaunchConfig(grid_size=2, block_size=256, elements=512)
    jobs = []
    for vp in ("a", "b"):
        job = Job(vp=vp, seq=0, kind=JobKind.KERNEL, completion=env.event(),
                  kernel=_kernel(), launch=launch)
        jobs.append(job)
        queue.put(job)
    env.run(env.all_of([j.completion for j in jobs]))
    # One merged launch went to the GPU, not two.
    assert len(gpu.compute_engine.timeline) == 1
    assert dispatcher.coalescer.stats.merges == 1
    record = profiler.records[0]
    assert record.coalesced_members == 2


def test_dispatch_stats():
    env, gpu, queue, handles, dispatcher, _ = _setup()
    handle, malloc = _malloc_job(env, handles, "vp0", 0)
    copy = Job(vp="vp0", seq=1, kind=JobKind.COPY_H2D, completion=env.event(),
               handle=handle, nbytes=1024)
    queue.put(malloc)
    queue.put(copy)
    env.run(copy.completion)
    assert dispatcher.stats.dispatched[JobKind.MALLOC] == 1
    assert dispatcher.stats.dispatched[JobKind.COPY_H2D] == 1
    assert dispatcher.stats.completed == 2
