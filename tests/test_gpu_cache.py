"""Tests for the probabilistic data-cache model."""

import pytest
from hypothesis import given, strategies as st

from repro.gpu import QUADRO_4000, TEGRA_K1
from repro.gpu.cache import (
    exposed_stall_cycles,
    hit_probability,
    latency_hiding_fraction,
    predict_behavior,
)
from repro.kernels import MemoryFootprint


def _footprint(working_set, locality=0.7, coalesced=0.9):
    return MemoryFootprint(
        bytes_in=working_set,
        bytes_out=working_set // 4,
        working_set_bytes=working_set,
        locality=locality,
        coalesced_fraction=coalesced,
    )


def test_small_working_set_hits_well():
    fp = _footprint(working_set=16 * 1024, locality=0.9)
    p = hit_probability(fp, QUADRO_4000.cache)
    assert p > 0.8


def test_huge_working_set_hits_poorly():
    fp = _footprint(working_set=512 * 1024 * 1024, locality=0.9)
    p = hit_probability(fp, QUADRO_4000.cache)
    assert p < 0.5


def test_hit_probability_bounded():
    for ws in (1, 10**3, 10**6, 10**9):
        for locality in (0.0, 0.5, 1.0):
            fp = _footprint(working_set=ws, locality=locality)
            p = hit_probability(fp, QUADRO_4000.cache)
            assert 0.0 <= p <= 1.0


def test_smaller_cache_hits_less():
    """The target's 128 KB L2 must miss more than the host's 512 KB."""
    fp = _footprint(working_set=300 * 1024, locality=0.9)
    assert hit_probability(fp, TEGRA_K1.cache) < hit_probability(fp, QUADRO_4000.cache)


def test_higher_locality_hits_more():
    low = _footprint(working_set=64 * 1024, locality=0.2)
    high = _footprint(working_set=64 * 1024, locality=0.9)
    assert hit_probability(high, QUADRO_4000.cache) > hit_probability(
        low, QUADRO_4000.cache
    )


def test_streaming_spatial_hits():
    """Pure streaming still hits on line granularity (128B lines, 8B words)."""
    fp = _footprint(working_set=10**9, locality=0.0, coalesced=1.0)
    p = hit_probability(fp, QUADRO_4000.cache)
    assert p == pytest.approx(1.0 - 8.0 / 128.0)


def test_predict_behavior_conservation():
    fp = _footprint(working_set=64 * 1024)
    behavior = predict_behavior(fp, QUADRO_4000.cache, accesses=10_000)
    assert behavior.hits + behavior.misses == pytest.approx(10_000)
    assert behavior.hits >= 0 and behavior.misses >= 0


def test_predict_behavior_negative_accesses():
    fp = _footprint(working_set=1024)
    with pytest.raises(ValueError):
        predict_behavior(fp, QUADRO_4000.cache, accesses=-1)


@given(
    st.integers(min_value=1, max_value=2**30),
    st.floats(min_value=0, max_value=1, allow_nan=False),
    st.floats(min_value=0, max_value=1, allow_nan=False),
    st.floats(min_value=0, max_value=1e8, allow_nan=False),
)
def test_behavior_invariants(working_set, locality, coalesced, accesses):
    fp = MemoryFootprint(
        bytes_in=working_set,
        bytes_out=0,
        working_set_bytes=working_set,
        locality=locality,
        coalesced_fraction=coalesced,
    )
    behavior = predict_behavior(fp, TEGRA_K1.cache, accesses)
    assert 0.0 <= behavior.hit_probability <= 1.0
    assert behavior.hits + behavior.misses == pytest.approx(accesses, abs=1e-6)


def test_latency_hiding_grows_with_occupancy():
    # A single warp-sized block hides little; a saturated device hides a lot.
    sparse = latency_hiding_fraction(QUADRO_4000, block_size=32, grid_size=1)
    dense = latency_hiding_fraction(QUADRO_4000, block_size=256, grid_size=1000)
    assert dense > sparse


def test_latency_hiding_bounded():
    for block in (32, 128, 512, 1024):
        for grid in (1, 10, 1000):
            h = latency_hiding_fraction(QUADRO_4000, block, grid)
            assert 0.0 <= h <= 0.92


def test_exposed_stalls_higher_on_target():
    """Tegra's smaller cache and higher miss penalty expose more stalls."""
    fp = _footprint(working_set=256 * 1024, locality=0.8)
    host = exposed_stall_cycles(QUADRO_4000, fp, 1e6, block_size=256, grid_size=400)
    target = exposed_stall_cycles(TEGRA_K1, fp, 1e6, block_size=256, grid_size=400)
    assert target > host


def test_exposed_stalls_zero_without_accesses():
    fp = _footprint(working_set=1024)
    assert exposed_stall_cycles(QUADRO_4000, fp, 0.0, 256, 10) == 0.0
