"""Tests for ``repro.obs.timeseries``: deterministic metric sampling.

Pins the module's three design constraints: samples land on
simulated-time-aligned boundaries (determinism), the event-loop hook is
free when sampling is off (cost discipline, via tracemalloc), and ring
buffers bound memory while keeping droppage visible.
"""

import tracemalloc

import pytest

import repro.obs as obs
from repro.exec.jobs import scenario_summary
from repro.obs import timeseries as ts_mod
from repro.obs.export import canonical_json
from repro.obs.metrics import MetricsRegistry
from repro.obs.timeseries import RingBuffer, Sampler, counter_rate


def _run_scenario():
    return scenario_summary(app="vectorAdd", n_vps=2)


class TestRingBuffer:
    def test_rejects_nonpositive_capacity(self):
        with pytest.raises(ValueError):
            RingBuffer(0)

    def test_items_before_wrap_are_in_append_order(self):
        ring = RingBuffer(4)
        ring.append(0.0, 1.0)
        ring.append(1.0, 2.0)
        assert ring.items() == [(0.0, 1.0), (1.0, 2.0)]
        assert len(ring) == 2
        assert ring.total == 2

    def test_wrap_keeps_newest_and_counts_droppage(self):
        ring = RingBuffer(3)
        for i in range(5):
            ring.append(float(i), float(i * 10))
        assert ring.items() == [(2.0, 20.0), (3.0, 30.0), (4.0, 40.0)]
        assert len(ring) == 3
        assert ring.total == 5  # droppage visible: total > len


class TestSamplerAlignment:
    def test_sample_stamps_aligned_boundary_not_event_time(self):
        registry = MetricsRegistry()
        registry.counter("c").inc(3)
        sampler = Sampler(registry=registry, interval_ms=1.0)
        sampler.sample(3.7)
        assert sampler.series["c"].items() == [(3.0, 3.0)]
        assert sampler.next_due_ms == 4.0

    def test_first_sample_is_due_at_time_zero(self):
        sampler = Sampler(registry=MetricsRegistry())
        assert sampler.next_due_ms == 0.0

    def test_rejects_nonpositive_interval(self):
        with pytest.raises(ValueError):
            Sampler(interval_ms=0.0)

    def test_watchlist_restricts_sampled_names(self):
        registry = MetricsRegistry()
        registry.counter("keep").inc()
        registry.counter("drop").inc()
        sampler = Sampler(registry=registry, names=["keep"])
        sampler.sample(1.0)
        assert sorted(sampler.series) == ["keep"]

    def test_histograms_are_not_sampled(self):
        registry = MetricsRegistry()
        registry.histogram("h").observe(1.0)
        registry.gauge("g").set(2.0)
        sampler = Sampler(registry=registry)
        sampler.sample(0.0)
        assert sorted(sampler.series) == ["g"]
        assert sampler.kinds["g"] == "gauge"


class TestDerivation:
    def _two_sample_counter(self):
        registry = MetricsRegistry()
        sampler = Sampler(registry=registry, interval_ms=1.0)
        registry.counter("c").inc(2)
        sampler.sample(1.0)
        registry.counter("c").inc(6)
        sampler.sample(3.0)
        return sampler

    def test_deltas(self):
        sampler = self._two_sample_counter()
        assert sampler.deltas("c") == [(3.0, 6.0)]

    def test_rates(self):
        sampler = self._two_sample_counter()
        assert sampler.rates("c") == [(3.0, 3.0)]  # 6 over 2 ms

    def test_zero_length_window_rate_is_zero(self):
        registry = MetricsRegistry()
        sampler = Sampler(registry=registry, interval_ms=1.0)
        registry.counter("c").inc()
        sampler.sample(1.2)  # aligned to 1.0
        registry.counter("c").inc()
        sampler.sample(1.9)  # aligned to 1.0 again: dt == 0
        assert sampler.rates("c") == [(1.0, 0.0)]

    def test_counter_rate_matches_payload_form(self):
        assert counter_rate([0.0, 1.0, 1.0], [0.0, 5.0, 9.0]) == [
            (1.0, 5.0),
            (1.0, 0.0),
        ]

    def test_unknown_series_is_empty(self):
        sampler = Sampler(registry=MetricsRegistry())
        assert sampler.deltas("ghost") == []
        assert sampler.rates("ghost") == []


class TestScenarioSampling:
    def test_capture_with_interval_records_aligned_series(self):
        with obs.capture(sample_interval_ms=0.5) as cap:
            _run_scenario()
        payload = cap.timeseries_payload()
        assert payload is not None
        assert payload["schema"] == ts_mod.SCHEMA
        assert payload["samples_taken"] > 0
        assert "sim.events_processed" in payload["series"]
        for series in payload["series"].values():
            for t in series["t"]:
                # every sample timestamp lies on a 0.5 ms boundary
                assert t == (t // 0.5) * 0.5

    def test_sampling_is_deterministic(self):
        payloads = []
        for _ in range(2):
            with obs.capture(sample_interval_ms=0.5) as cap:
                _run_scenario()
            payloads.append(cap.timeseries_payload())
        assert canonical_json(payloads[0]) == canonical_json(payloads[1])

    def test_results_identical_with_and_without_sampling(self):
        plain = _run_scenario()
        with obs.capture(sample_interval_ms=0.25):
            sampled = _run_scenario()
        assert canonical_json(plain) == canonical_json(sampled)

    def test_capture_without_interval_has_no_sampler(self):
        with obs.capture() as cap:
            assert ts_mod.SAMPLER is None
            _run_scenario()
        assert cap.timeseries_payload() is None

    def test_capture_restores_previous_sampler(self):
        with obs.capture(sample_interval_ms=1.0) as outer:
            with obs.capture(sample_interval_ms=2.0):
                assert ts_mod.SAMPLER is not outer.sampler
            assert ts_mod.SAMPLER is outer.sampler
        assert ts_mod.SAMPLER is None


class TestModuleState:
    def test_enable_disable_roundtrip(self):
        assert not ts_mod.enabled()
        sampler = ts_mod.enable()
        try:
            assert ts_mod.enabled()
            assert ts_mod.SAMPLER is sampler
        finally:
            assert ts_mod.disable() is sampler
        assert ts_mod.SAMPLER is None


class TestDisabledCost:
    def test_metrics_on_sampler_off_allocates_nothing_in_timeseries(self):
        # Warm everything (imports, caches, registry paths) first.
        with obs.capture():
            _run_scenario()
        ts_file = tracemalloc.Filter(True, "*/repro/obs/timeseries.py")
        tracemalloc.start()
        try:
            with obs.capture():
                _run_scenario()
            snapshot = tracemalloc.take_snapshot().filter_traces([ts_file])
        finally:
            tracemalloc.stop()
        stats = snapshot.statistics("filename")
        assert stats == [], (
            "timeseries module allocated with sampling off: "
            + ", ".join(f"{s.traceback}: {s.size}B" for s in stats)
        )
