"""Unit tests for :mod:`repro.sim.domains` and process-crash reporting.

The conformance suite (``test_shard_conformance.py``) proves whole
scenarios are partition-invariant; this file exercises the mechanics
underneath — plan assignment and memoization, lookahead derivation, the
partitioned heap's exact merge, epoch/switch/boundary accounting — plus
the process-label error notes :meth:`Environment.run` surfaces when a
simulation coroutine dies.
"""

import pytest

from repro.obs import metrics as obs_metrics
from repro.sim import EmptySchedule, Environment, ShardedEnvironment
from repro.sim.domains import (
    DEFAULT_LOOKAHEAD_MS,
    MIN_LOOKAHEAD_MS,
    DomainEdge,
    DomainPlan,
)


def _plan(n_domains=3, mapping=None, name="test"):
    """A plan routing ``kind:name`` prefixes through ``mapping``."""
    mapping = mapping if mapping is not None else {"vp:a": 1, "vp:b": 2}

    def assign(label):
        prefix = label.partition("/")[0]
        return mapping.get(prefix)

    return DomainPlan(n_domains, assign, name=name)


# -- DomainPlan --------------------------------------------------------------


class TestDomainPlan:
    def test_rejects_empty_partitions(self):
        with pytest.raises(ValueError):
            DomainPlan(0)

    def test_assignment_is_memoized_per_component_prefix(self):
        calls = []

        def assign(label):
            calls.append(label)
            return 1

        plan = DomainPlan(2, assign)
        # Per-instance suffixes share the component's memo entry.
        assert plan.domain_of("gpu:0/execute(vp1#1)") == 1
        assert plan.domain_of("gpu:0/execute(vp2#9)") == 1
        assert plan.domain_of("gpu:0/compute") == 1
        assert len(calls) == 1

    def test_out_of_range_assignment_is_an_error(self):
        plan = DomainPlan(2, lambda label: 5)
        with pytest.raises(ValueError):
            plan.domain_of("vp:a/app")

    def test_unassigned_labels_inherit(self):
        assert _plan().domain_of("driver:emulation/serialized") is None

    def test_lookahead_is_min_positive_edge_latency(self):
        plan = _plan()
        assert plan.lookahead_ms == DEFAULT_LOOKAHEAD_MS
        plan.declare_edge("vp:a", "dispatcher:host", 0.55, kind="ipc")
        plan.declare_edge("dispatcher:host", "vp:a", 0.1, kind="coalesce")
        assert plan.lookahead_ms == 0.1

    def test_zero_latency_edges_floor_at_the_minimum(self):
        plan = _plan()
        plan.declare_edge("a", "b", 0.0)
        assert plan.lookahead_ms == MIN_LOOKAHEAD_MS

    def test_negative_edge_latency_is_an_error(self):
        with pytest.raises(ValueError):
            DomainEdge("a", "b", -1.0)

    def test_round_robin_spreads_vps_and_keeps_host_side_central(self):
        plan = DomainPlan.round_robin(3)
        first = plan.domain_of("vp:vp0/app")
        second = plan.domain_of("vp:vp1/app")
        assert {first, second} == {1, 2}
        # Stable on re-query.
        assert plan.domain_of("vp:vp0/control") == first
        assert plan.domain_of("gpu:0/compute") == 0
        assert plan.domain_of("dispatcher:host/run") == 0
        assert plan.domain_of("driver:emulation/serialized") is None

    def test_per_gpu_colocates_vps_with_their_device(self):
        plan = DomainPlan.per_gpu(2, {"vp0": 0, "vp1": 1}.get)
        assert plan.n_domains == 3
        assert plan.domain_of("gpu:0/compute") == 1
        assert plan.domain_of("gpu:1/copy") == 2
        assert plan.domain_of("vp:vp0/app") == 1
        assert plan.domain_of("vp:vp1/app") == 2
        # Unplaceable VPs ride the control domain.
        assert plan.domain_of("vp:vp9/app") == 0
        assert plan.domain_of("dispatcher:host/run") == 0

    def test_per_vp_group_gives_each_vp_its_own_domain(self):
        plan = DomainPlan.per_vp_group(2)
        a = plan.domain_of("vp:a/app")
        b = plan.domain_of("vp:b/app")
        c = plan.domain_of("vp:c/app")
        assert {a, b} == {1, 2}
        assert c == a  # wraps modulo the group count
        assert plan.domain_of("gpu:0/compute") == 0
        with pytest.raises(ValueError):
            DomainPlan.per_vp_group(0)


# -- ShardedEnvironment mechanics --------------------------------------------


def _ticker(env, trace, tag, delays):
    for delay in delays:
        yield env.timeout(delay)
        trace.append((env.now, tag))


def _run_scripted(env):
    """Three interleaving processes across domains; returns the trace."""
    trace = []
    env.process(_ticker(env, trace, "a", [0.3, 0.3, 0.3, 2.0]), label="vp:a/app")
    env.process(_ticker(env, trace, "b", [0.2, 0.5, 0.2, 1.5]), label="vp:b/app")
    env.process(_ticker(env, trace, "host", [0.25, 1.0]), label="gpu:0/compute")
    env.run()
    return trace


class TestShardedEnvironment:
    def test_merge_order_matches_the_serial_engine(self):
        serial = _run_scripted(Environment())
        sharded_env = ShardedEnvironment(_plan(mapping={"vp:a": 1, "vp:b": 2, "gpu:0": 0}))
        assert _run_scripted(sharded_env) == serial
        assert sharded_env.pending == 0
        # Every domain processed its own component's events.
        assert all(n > 0 for n in sharded_env.events_per_domain)

    def test_step_on_an_exhausted_environment_raises(self):
        env = ShardedEnvironment(_plan())
        with pytest.raises(EmptySchedule):
            env.step()
        assert env.peek() == float("inf")

    def test_switches_count_cross_domain_handoffs(self):
        env = ShardedEnvironment(_plan(mapping={"vp:a": 1, "vp:b": 2}))
        _run_scripted(env)
        assert env.switches > 0

    def test_epochs_advance_at_the_lookahead_horizon(self):
        env = ShardedEnvironment(_plan())
        assert env.lookahead_ms == DEFAULT_LOOKAHEAD_MS
        trace = []
        env.process(_ticker(env, trace, "a", [0.6] * 10), label="vp:a/app")
        env.run()
        # 6ms of simulated time at a 1ms horizon: epochs keep pace.
        assert 4 <= env.epochs <= 7

    def test_refresh_lookahead_picks_up_declared_edges(self):
        plan = _plan()
        env = ShardedEnvironment(plan)
        plan.declare_edge("vp:a", "dispatcher:host", 0.25, kind="ipc")
        env.refresh_lookahead()
        assert env.lookahead_ms == 0.25

    def test_unlabeled_children_inherit_the_spawning_domain(self):
        env = ShardedEnvironment(_plan(mapping={"vp:a": 1}))
        child_domains = []

        def child(env):
            yield env.timeout(0.1)

        def parent(env):
            yield env.timeout(0.1)
            child_domains.append(env.process(child(env)).domain)

        env.process(parent(env), label="vp:a/app")
        # Spawned outside any process: control domain.
        outside = env.process(child(env))
        assert outside.domain == 0
        env.run()
        assert child_domains == [1]

    def test_boundary_events_count_cross_domain_resumes(self):
        env = ShardedEnvironment(_plan(mapping={"vp:a": 1, "vp:b": 2}))

        def waiter(env, event):
            yield event

        def firer(env, event):
            yield env.timeout(0.5)
            event.succeed()

        event = env.event()
        env.process(waiter(env, event), label="vp:a/app")
        env.process(firer(env, event), label="vp:b/app")
        obs_metrics.enable()
        try:
            env.run()
        finally:
            obs_metrics.disable()
        # b's succeed() fires on domain 2's heap but resumes a's process.
        assert env.boundary_events >= 1

    def test_domain_stats_reports_the_partition(self):
        env = ShardedEnvironment(_plan(name="unit"))
        _run_scripted(env)
        stats = env.domain_stats()
        assert stats["plan"] == "unit"
        assert stats["domains"] == 3
        assert stats["epochs"] == env.epochs
        assert sum(stats["events_per_domain"]) > 0


# -- crash reporting (Environment.run surfaces the raising process) ----------


def _crasher(env):
    yield env.timeout(1.5)
    raise RuntimeError("boom")


@pytest.mark.parametrize(
    "make_env",
    [Environment, lambda: ShardedEnvironment(_plan(mapping={"vp:a": 1}))],
    ids=["serial", "sharded"],
)
def test_run_names_the_process_that_raised(make_env):
    env = make_env()
    env.process(_crasher(env), label="vp:a/app")
    with pytest.raises(RuntimeError, match="boom") as excinfo:
        env.run()
    notes = "\n".join(getattr(excinfo.value, "__notes__", []))
    assert "vp:a/app" in notes
    assert "t=1.5ms" in notes


def test_unlabeled_processes_fall_back_to_the_generator_name():
    env = Environment()
    env.process(_crasher(env))
    with pytest.raises(RuntimeError, match="boom") as excinfo:
        env.run()
    notes = "\n".join(getattr(excinfo.value, "__notes__", []))
    assert "_crasher" in notes
