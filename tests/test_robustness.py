"""Robustness and failure-injection tests.

What happens off the happy path: device memory exhaustion mid-run,
fragmented memory defeating the coalescer's re-layout, VPs stopped in
the middle of their pipelines, and oversized batches.
"""

import numpy as np
import pytest

from repro.core import SHARED_MEMORY, SigmaVP
from repro.core.coalescing import KernelCoalescer
from repro.core.handles import HandleTable
from repro.core.jobs import Job, JobKind, JobQueue
from repro.gpu import HostGPU, QUADRO_4000
from repro.gpu.memory import OutOfDeviceMemory
from repro.kernels import LaunchConfig, MemoryFootprint, uniform_kernel
from repro.kernels.functional import REGISTRY
from repro.sim import Environment
from repro.workloads.linalg import make_vectoradd_spec


def test_device_oom_reaches_the_application():
    """cudaMalloc failure propagates into the requesting app cleanly."""
    framework = SigmaVP(transport=SHARED_MEMORY)
    session = framework.add_vp()
    api = session.runtime

    def greedy_app():
        try:
            yield from api.malloc(4 * 1024**3)  # 4 GiB > the 2 GiB device
            yield from api.synchronize()
        except OutOfDeviceMemory:
            return "oom-handled"
        return "no error"

    process = session.vp.run_app(greedy_app)
    with pytest.raises(OutOfDeviceMemory):
        framework.env.run()
    assert process.value == "oom-handled"


def test_coalescer_relayout_survives_fragmentation():
    """When contiguous re-layout is impossible, coalescing still merges
    (keeping the original buffer layout) instead of failing."""
    env = Environment()
    gpu = HostGPU(env, QUADRO_4000, memory_bytes=64 * 1024)
    handles = HandleTable()
    coalescer = KernelCoalescer(env, gpu, handles, target_batch=2)
    queue = JobQueue(env)

    # Fragment the small device: alternating live/free 8 KiB chunks.
    keep = []
    for index in range(4):
        keep.append(gpu.malloc(8 * 1024, owner="frag"))
        hole = gpu.malloc(8 * 1024, owner="hole")
        gpu.free(hole)

    kernel = uniform_kernel(
        "k", {"fp32": 1},
        MemoryFootprint(bytes_in=4096, bytes_out=4096, working_set_bytes=4096),
    )
    launch = LaunchConfig(grid_size=1, block_size=256, elements=256)
    for vp in ("a", "b"):
        handle = handles.new_handle(vp)
        handles.bind(handle, gpu.malloc(7 * 1024, owner=vp))
        job = Job(vp=vp, seq=0, kind=JobKind.KERNEL, completion=env.event(),
                  kernel=kernel, launch=launch, arg_handles=(handle,),
                  out_handle=handle)
        queue.put(job)

    def run_pass():
        # Let the D2H settle window expire; these triples have no D2H.
        yield env.timeout(1.0)
        return coalescer.coalesce_pass(queue)

    merged = env.run(env.process(run_pass()))
    assert merged  # the merge happened despite the failed re-layout
    assert coalescer.stats.merges == 1


def test_vp_stopped_mid_pipeline_then_resumed():
    """VP control can freeze a platform between its CUDA calls; the rest
    of the fleet keeps running, and the frozen VP completes on resume."""
    framework = SigmaVP(transport=SHARED_MEMORY, registry=REGISTRY,
                        coalescing=False)
    spec = make_vectoradd_spec(elements=4096, iterations=6)
    framework.add_vp("frozen")
    framework.add_vp("free")
    frozen = framework.spawn("frozen", spec, seed=0)
    free = framework.spawn("free", spec, seed=1)

    def controller():
        yield framework.env.timeout(0.5)
        framework.ipc.vp_control.stop("frozen")
        yield framework.env.timeout(25.0)
        framework.ipc.vp_control.resume("frozen")

    framework.env.process(controller())
    framework.run_until([frozen, free])

    frozen_vp = framework.session("frozen").vp
    free_vp = framework.session("free").vp
    assert frozen_vp.stop_count == 1
    assert frozen_vp.finished_at_ms > free_vp.finished_at_ms + 20.0
    # Both still computed the right answer.
    a, b = spec.build_inputs(0)
    np.testing.assert_allclose(frozen.value, a + b)


def test_max_batch_one_vp_repeats_are_not_merged():
    """A single VP's back-to-back identical kernels never self-coalesce
    (its own jobs are ordered; merging them would be meaningless)."""
    framework = SigmaVP(transport=SHARED_MEMORY, registry=REGISTRY)
    spec = make_vectoradd_spec(elements=2048, iterations=5)
    framework.add_vp("solo")
    process = framework.spawn("solo", spec)
    framework.run_until([process])
    assert framework.coalescer.stats.merges == 0
    assert len(framework.profiler) == 5


def test_empty_framework_env_runs_clean():
    framework = SigmaVP(transport=SHARED_MEMORY)
    framework.env.run(until=1.0)
    assert framework.total_time_ms == 1.0
    assert len(framework.queue) == 0
