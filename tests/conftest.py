"""Suite-wide fixtures.

The persistent disk cache (:mod:`repro.cache`) defaults ON for users,
but a hermetic test suite must not read or write a shared store under
``~/.cache`` — cold/warm transparency tests would see artifacts from
earlier runs.  Every test therefore starts with the disk layer forced
off; tests that exercise it opt back in with :func:`repro.cache.disk_scope`
(or :func:`repro.cache.configure`) against their own ``tmp_path`` roots.
"""

import pytest

from repro import cache as repro_cache


@pytest.fixture(autouse=True, scope="session")
def _disk_cache_off_session():
    # Higher-scoped fixtures run *before* function-scoped ones, so a
    # module-scoped fixture that executes jobs would otherwise see the
    # disk layer still on and read artifacts from earlier runs.
    previous = repro_cache.set_disk_enabled(False)
    yield
    repro_cache.set_disk_enabled(previous)


@pytest.fixture(autouse=True)
def _disk_cache_off():
    previous = repro_cache.set_disk_enabled(False)
    yield
    repro_cache.set_disk_enabled(previous)
