"""Tests for Kernel Coalescing: triples, groups, merges, barriers."""

import pytest

from repro.core.coalescing import KernelCoalescer
from repro.core.handles import HandleTable
from repro.core.jobs import Job, JobKind, JobQueue
from repro.gpu import HostGPU, QUADRO_4000
from repro.kernels import LaunchConfig, MemoryFootprint, uniform_kernel
from repro.sim import Environment


def _kernel(signature="vecadd", coalescible=True):
    return uniform_kernel(
        signature,
        {"fp32": 2, "load": 2, "store": 1},
        MemoryFootprint(bytes_in=4096, bytes_out=4096, working_set_bytes=8192),
        signature=signature,
        coalescible=coalescible,
    )


def _setup(target_batch=None, **kw):
    env = Environment()
    gpu = HostGPU(env, QUADRO_4000)
    handles = HandleTable()
    coalescer = KernelCoalescer(
        env, gpu, handles, target_batch=target_batch, **kw
    )
    return env, gpu, handles, coalescer


def _triple_jobs(env, vp, seq0=0, signature="vecadd", with_d2h=True, nbytes=4096):
    kernel = _kernel(signature)
    launch = LaunchConfig(grid_size=2, block_size=256, elements=512)
    h2d = Job(vp=vp, seq=seq0, kind=JobKind.COPY_H2D,
              completion=env.event(), nbytes=nbytes)
    k = Job(vp=vp, seq=seq0 + 1, kind=JobKind.KERNEL, completion=env.event(),
            kernel=kernel, launch=launch)
    jobs = [h2d, k]
    if with_d2h:
        jobs.append(Job(vp=vp, seq=seq0 + 2, kind=JobKind.COPY_D2H,
                        completion=env.event(), nbytes=nbytes))
    return jobs


# -- triple detection ------------------------------------------------------------


def test_find_triples_groups_by_key():
    env, gpu, handles, coalescer = _setup()
    queue = JobQueue(env)
    for vp in ("a", "b"):
        for job in _triple_jobs(env, vp):
            queue.put(job)
    from repro.core.kernel_match import kernel_digest

    groups = coalescer.find_triples(queue)
    assert len(groups) == 1
    triples = groups[(kernel_digest(_kernel()), 256, 0)]  # digest, block, device
    assert [t.vp for t in triples] == ["a", "b"]
    assert all(len(t.h2d) == 1 and len(t.d2h) == 1 for t in triples)


def test_find_triples_requires_kernel_at_head_region():
    env, gpu, handles, coalescer = _setup()
    queue = JobQueue(env)
    queue.put(Job(vp="a", seq=0, kind=JobKind.MALLOC, completion=env.event(), size=64))
    for job in _triple_jobs(env, "a", seq0=1):
        queue.put(job)
    # The malloc at the head hides the triple: partial order protected.
    assert coalescer.find_triples(queue) == {}


def test_find_triples_ignores_different_signatures():
    env, gpu, handles, coalescer = _setup()
    queue = JobQueue(env)
    for job in _triple_jobs(env, "a", signature="x"):
        queue.put(job)
    for job in _triple_jobs(env, "b", signature="y"):
        queue.put(job)
    groups = coalescer.find_triples(queue)
    assert len(groups) == 2
    assert all(len(ts) == 1 for ts in groups.values())


def test_find_triples_skips_non_coalescible():
    env, gpu, handles, coalescer = _setup()
    queue = JobQueue(env)
    kernel = _kernel(coalescible=False)
    launch = LaunchConfig(grid_size=1, block_size=256, elements=256)
    queue.put(Job(vp="a", seq=0, kind=JobKind.KERNEL, completion=env.event(),
                  kernel=kernel, launch=launch))
    assert coalescer.find_triples(queue) == {}


def test_find_triples_never_recoalesces_merged():
    env, gpu, handles, coalescer = _setup(target_batch=2)
    queue = JobQueue(env)
    for vp in ("a", "b"):
        for job in _triple_jobs(env, vp):
            queue.put(job)
    merged = coalescer.coalesce_pass(queue)
    assert merged
    assert coalescer.find_triples(queue) == {}


# -- merging -----------------------------------------------------------------------


def test_merge_produces_single_triple():
    env, gpu, handles, coalescer = _setup(target_batch=2)
    queue = JobQueue(env)
    for vp in ("a", "b"):
        for job in _triple_jobs(env, vp):
            queue.put(job)
    merged = coalescer.coalesce_pass(queue)
    kinds = [j.kind for j in merged]
    assert kinds == [JobKind.COPY_H2D, JobKind.KERNEL, JobKind.COPY_D2H]
    assert len(queue) == 3


def test_merged_kernel_covers_both_launches():
    env, gpu, handles, coalescer = _setup(target_batch=2)
    queue = JobQueue(env)
    for vp in ("a", "b"):
        for job in _triple_jobs(env, vp):
            queue.put(job)
    merged = coalescer.coalesce_pass(queue)
    kernel_job = next(j for j in merged if j.is_kernel)
    assert kernel_job.launch.grid_size == 4  # 2 + 2
    assert kernel_job.launch.elements == 1024
    assert len(kernel_job.members) == 2


def test_merged_copies_sum_bytes():
    env, gpu, handles, coalescer = _setup(target_batch=2)
    queue = JobQueue(env)
    for vp in ("a", "b"):
        for job in _triple_jobs(env, vp):
            queue.put(job)
    merged = coalescer.coalesce_pass(queue)
    h2d = next(j for j in merged if j.kind is JobKind.COPY_H2D)
    assert h2d.nbytes == 8192


def test_large_copies_stay_individual():
    """Copies above the merge limit keep pipelining; the merged kernel
    depends on them instead."""
    env, gpu, handles, coalescer = _setup(target_batch=2)
    queue = JobQueue(env)
    big = coalescer.copy_merge_limit_bytes * 2
    for vp in ("a", "b"):
        for job in _triple_jobs(env, vp, nbytes=big):
            queue.put(job)
    merged = coalescer.coalesce_pass(queue)
    kinds = [j.kind for j in merged]
    assert kinds == [JobKind.KERNEL]
    kernel_job = merged[0]
    assert len(kernel_job.depends_on) == 2
    # The individual copies are still queued.
    copies = [j for j in queue if j.is_copy]
    assert len(copies) == 4


def test_merge_sets_barriers_for_members():
    env, gpu, handles, coalescer = _setup(target_batch=2)
    queue = JobQueue(env)
    for vp in ("a", "b"):
        for job in _triple_jobs(env, vp):
            queue.put(job)
    merged = coalescer.coalesce_pass(queue)
    final = merged[-1]
    assert queue.barred("a", seq=10)
    assert queue.barred("b", seq=10)
    final.completion.succeed()
    env.run()
    assert not queue.barred("a", seq=10)


def test_merge_respects_max_batch():
    env, gpu, handles, coalescer = _setup(target_batch=4, max_batch=2)
    queue = JobQueue(env)
    for vp in ("a", "b", "c", "d"):
        for job in _triple_jobs(env, vp):
            queue.put(job)
    coalescer.coalesce_pass(queue)
    assert coalescer.stats.merges == 2
    assert coalescer.stats.batch_sizes == [2, 2]


def test_merge_waits_for_goal_inside_window():
    env, gpu, handles, coalescer = _setup(target_batch=3)
    queue = JobQueue(env)
    for vp in ("a", "b"):
        for job in _triple_jobs(env, vp):
            queue.put(job)
    # Only 2 of 3 expected triples and the window is still open.
    assert coalescer.coalesce_pass(queue) == []
    assert coalescer.stats.merges == 0


def test_window_expiry_merges_partial_group():
    env, gpu, handles, coalescer = _setup(target_batch=3, hold_window_ms=1.0)
    queue = JobQueue(env)
    for vp in ("a", "b"):
        for job in _triple_jobs(env, vp):
            queue.put(job)

    def later():
        yield env.timeout(2.0)
        return coalescer.coalesce_pass(queue)

    merged = env.run(env.process(later()))
    assert merged
    assert coalescer.stats.batch_sizes == [2]


def test_relayout_binds_members_contiguously():
    env, gpu, handles, coalescer = _setup(target_batch=2)
    queue = JobQueue(env)
    buffers = {}
    for vp in ("a", "b"):
        jobs = _triple_jobs(env, vp)
        in_h = handles.new_handle(vp)
        out_h = handles.new_handle(vp)
        handles.bind(in_h, gpu.malloc(4096, owner=vp))
        handles.bind(out_h, gpu.malloc(4096, owner=vp))
        jobs[1].arg_handles = (in_h,)
        jobs[1].out_handle = out_h
        buffers[vp] = (in_h, out_h)
        for job in jobs:
            queue.put(job)
    coalescer.coalesce_pass(queue)
    rebound = [handles.buffer(h) for vp in ("a", "b") for h in buffers[vp]]
    assert gpu.memory.are_contiguous(rebound)


def test_min_batch_validation():
    env = Environment()
    gpu = HostGPU(env, QUADRO_4000)
    with pytest.raises(ValueError):
        KernelCoalescer(env, gpu, HandleTable(), min_batch=1)
    with pytest.raises(ValueError):
        KernelCoalescer(env, gpu, HandleTable(), min_batch=4, max_batch=2)


def test_hold_deadline_for_incomplete_group():
    env, gpu, handles, coalescer = _setup(target_batch=3)
    queue = JobQueue(env)
    jobs = _triple_jobs(env, "a")
    for job in jobs:
        queue.put(job)
    deadline = coalescer.hold_deadline(queue, jobs[1])
    assert deadline == pytest.approx(coalescer.hold_window_ms)


def test_hold_deadline_none_for_unrelated_job():
    env, gpu, handles, coalescer = _setup()
    queue = JobQueue(env)
    stray = Job(vp="z", seq=0, kind=JobKind.MALLOC, completion=env.event(), size=8)
    queue.put(stray)
    assert coalescer.hold_deadline(queue, stray) is None


# -- in-flight member transfers --------------------------------------------------


def test_merged_kernel_waits_for_inflight_h2d():
    """A member whose H2D is already on a copy engine has no queued copy
    left, so the merged kernel needs an explicit dependency on it."""
    env, gpu, handles, coalescer = _setup(target_batch=2)
    queue = JobQueue(env)
    a_jobs = _triple_jobs(env, "a")
    inflight_h2d = a_jobs.pop(0)  # dispatched: never enters the queue
    for job in a_jobs:
        queue.put(job)
    for job in _triple_jobs(env, "b"):
        queue.put(job)
    coalescer.inflight_of = lambda vp: inflight_h2d if vp == "a" else None
    merged = coalescer.coalesce_pass(queue)
    kernel_job = next(j for j in merged if j.is_kernel)
    assert inflight_h2d.completion in kernel_job.depends_on


def test_merged_kernel_ignores_inflight_d2h():
    """An in-flight D2H reads buffers the relayout already snapshotted;
    depending on it would only serialize unrelated pipelining."""
    env, gpu, handles, coalescer = _setup(target_batch=2)
    queue = JobQueue(env)
    inflight_d2h = Job(vp="a", seq=99, kind=JobKind.COPY_D2H,
                       completion=env.event(), nbytes=4096)
    for vp in ("a", "b"):
        for job in _triple_jobs(env, vp):
            queue.put(job)
    coalescer.inflight_of = lambda vp: inflight_d2h if vp == "a" else None
    merged = coalescer.coalesce_pass(queue)
    kernel_job = next(j for j in merged if j.is_kernel)
    assert inflight_d2h.completion not in (kernel_job.depends_on or [])


@pytest.mark.parametrize("n_vps", [2, 3, 4])
def test_functional_small_vp_counts_complete(n_vps):
    """Regression: with 2 VPs the merged kernel used to race a member's
    in-flight H2D and sweep unwritten buffers, crashing the functional
    payload sum with a ``None`` element."""
    from repro.core.scenarios import run_sigma_vp
    from repro.workloads import get_workload

    result = run_sigma_vp(
        get_workload("vectorAdd"), n_vps=n_vps, functional=True
    )
    assert result.total_ms > 0
    assert len(result.per_instance_ms) == n_vps


def test_functional_and_timing_totals_agree():
    """The functional registry must not perturb simulated time."""
    from repro.core.scenarios import run_sigma_vp
    from repro.workloads import get_workload

    timing = run_sigma_vp(get_workload("vectorAdd"), n_vps=2)
    functional = run_sigma_vp(
        get_workload("vectorAdd"), n_vps=2, functional=True
    )
    assert functional.total_ms == pytest.approx(timing.total_ms)
