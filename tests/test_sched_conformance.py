"""Policy/placement conformance suite: invariants every plugin must hold.

Auto-discovers every implementation in the :mod:`repro.sched` registries
— including any registered by third-party code imported before the
suite runs — and property-checks the pipeline invariants with
hypothesis-generated job tables:

* **work conservation** — with a non-empty candidate list, the policy
  picks one of *those* jobs (never ``None``, never a fabricated job);
* **no drop / no duplicate** — draining a queue through the policy
  dispatches every job exactly once;
* **per-VP partial order** — each VP's jobs dispatch in sequence order
  (enforced structurally by offering only heads, but the drain verifies
  the policy cannot subvert it);
* **determinism** — a fresh policy instance replays the same dispatch
  order for the same job table;
* **backlog quiesce** — the matched add/retire stream through
  :class:`~repro.sched.EngineBacklog` ends with *exactly* zero backlog
  on every engine, no drift events;
* placements pick in-range devices, stick to their first pick, and
  replay deterministically;

plus an end-to-end matrix: every policy × every placement runs a real
scenario (including a 2-GPU host) and must complete with a quiesced
backlog.
"""

from typing import Dict, List, Tuple

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.jobs import Job, JobKind
from repro.sched import (
    EngineBacklog,
    available_placements,
    available_policies,
    make_placement,
    make_policy,
)
from repro.sim import Environment

POLICY_NAMES = [name for name, _ in available_policies()]
PLACEMENT_NAMES = [name for name, _ in available_placements()]

#: (vp index, job kind index, expected duration in ms) triples; the
#: drain below turns each VP's triples into an ordered job stream.
JOB_TABLES = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=3),
        st.integers(min_value=0, max_value=len(JobKind) - 1),
        st.floats(min_value=0.0, max_value=16.0,
                  allow_nan=False, allow_infinity=False),
    ),
    min_size=1,
    max_size=24,
)

KINDS = list(JobKind)


def _build_jobs(env: Environment, table) -> Dict[str, List[Tuple[Job, float]]]:
    """Per-VP ordered (job, expected_ms) streams from a hypothesis table."""
    streams: Dict[str, List[Tuple[Job, float]]] = {}
    for vp_index, kind_index, expected_ms in table:
        vp = f"vp{vp_index}"
        stream = streams.setdefault(vp, [])
        job = Job(vp=vp, seq=len(stream), kind=KINDS[kind_index],
                  completion=env.event())
        stream.append((job, expected_ms))
    return streams


def _drain(policy_name: str, table) -> List[Tuple[str, int]]:
    """Dispatch a job table to exhaustion through one policy.

    Mimics the pipeline's structure: only per-VP heads are offered, the
    backlog is fed the chosen job's expected time on dispatch and
    retired when the next decision is made (a one-slot engine).
    Returns the (vp, seq) dispatch order and asserts the invariants.
    """
    env = Environment()
    policy = make_policy(policy_name)
    backlog = EngineBacklog()
    streams = _build_jobs(env, table)
    cursors = {vp: 0 for vp in streams}
    expected_of = {
        id(job): ms for stream in streams.values() for job, ms in stream
    }
    total = sum(len(s) for s in streams.values())
    order: List[Tuple[str, int]] = []
    inflight: List[Job] = []

    for _ in range(total):
        heads = [
            streams[vp][cursor][0]
            for vp, cursor in sorted(cursors.items())
            if cursor < len(streams[vp])
        ]
        assert heads, "drain ran out of heads before dispatching every job"
        choice = policy.select(list(heads), backlog)
        # Work conservation: candidates offered => one of them chosen.
        assert choice is not None, f"{policy_name} stalled with candidates"
        assert choice in heads, f"{policy_name} fabricated a job"
        backlog.add(choice, expected_of[id(choice)])
        inflight.append(choice)
        cursors[choice.vp] += 1
        order.append((choice.vp, choice.seq))
        # Retire like a one-slot engine: the oldest in-flight completes.
        done = inflight.pop(0)
        backlog.retire(done, expected_of[id(done)])

    # No drop, no duplicate.
    assert len(order) == total
    assert len(set(order)) == total
    # Per-VP partial order: sequence numbers dispatch in order.
    last_seq: Dict[str, int] = {}
    for vp, seq in order:
        assert seq == last_seq.get(vp, -1) + 1, (
            f"{policy_name} broke {vp}'s partial order at seq {seq}"
        )
        last_seq[vp] = seq
    # Backlog accounting returned to exactly zero, without drift.
    assert backlog.quiesced, (
        f"{policy_name} left backlog {backlog.per_engine!r}"
    )
    assert backlog.drift_events == 0
    return order


@pytest.mark.parametrize("policy_name", POLICY_NAMES)
@settings(max_examples=30, deadline=None)
@given(table=JOB_TABLES)
def test_policy_conformance(policy_name, table):
    _drain(policy_name, table)


@pytest.mark.parametrize("policy_name", POLICY_NAMES)
@settings(max_examples=15, deadline=None)
@given(table=JOB_TABLES)
def test_policy_deterministic(policy_name, table):
    """A fresh policy instance replays the identical dispatch order."""
    assert _drain(policy_name, table) == _drain(policy_name, table)


@pytest.mark.parametrize("policy_name", POLICY_NAMES)
def test_policy_empty_returns_none(policy_name):
    assert make_policy(policy_name).select([], EngineBacklog()) is None


VP_SEQUENCES = st.lists(
    st.integers(min_value=0, max_value=5), min_size=1, max_size=16
)


@pytest.mark.parametrize("placement_name", PLACEMENT_NAMES)
@settings(max_examples=30, deadline=None)
@given(vp_indices=VP_SEQUENCES, n_devices=st.integers(min_value=1, max_value=4))
def test_placement_conformance(placement_name, vp_indices, n_devices):
    """Placements pick in range, stick, and replay deterministically."""
    backlog = EngineBacklog()
    first = make_placement(placement_name)
    second = make_placement(placement_name)
    assigned: Dict[str, int] = {}
    for index in vp_indices:
        vp = f"vp{index}"
        device = first.device_for(vp, n_devices, backlog)
        assert 0 <= device < n_devices
        # Sticky: the first answer is the answer forever.
        assert assigned.setdefault(vp, device) == device
        assert first.device_for(vp, n_devices, backlog) == device
        # Deterministic: a fresh instance fed the same sequence agrees.
        assert second.device_for(vp, n_devices, backlog) == device
    assert first.assignments == assigned


@settings(max_examples=20, deadline=None)
@given(vp_indices=VP_SEQUENCES, n_devices=st.integers(min_value=1, max_value=4))
def test_round_robin_matches_legacy_formula(vp_indices, n_devices):
    """The default placement reproduces the dispatcher's old formula."""
    backlog = EngineBacklog()
    placement = make_placement("round-robin")
    legacy: Dict[str, int] = {}
    for index in vp_indices:
        vp = f"vp{index}"
        if vp not in legacy:
            legacy[vp] = len(legacy) % n_devices
        assert placement.device_for(vp, n_devices, backlog) == legacy[vp]


# -- end-to-end matrix -------------------------------------------------------


def _small_spec():
    from repro.workloads import get_workload

    return get_workload("vectorAdd").scaled_to(1024, iterations=1)


@pytest.mark.parametrize("policy_name", POLICY_NAMES)
def test_policy_end_to_end(policy_name):
    """Every registered policy drives a real scenario to completion."""
    from repro.core.scenarios import run_sigma_vp

    result = run_sigma_vp(_small_spec(), n_vps=3, policy=policy_name)
    framework = result.extras["framework"]
    dispatcher = framework.dispatcher
    assert result.total_ms > 0.0
    assert dispatcher.stats.completed >= dispatcher.stats.total_dispatched()
    # The quiesce invariant: backlogs return to exactly zero, no drift.
    assert dispatcher.backlog.quiesced
    assert dispatcher.backlog.drift_events == 0
    if policy_name != "interleaving":
        assert f"policy={policy_name}" in result.scenario


@pytest.mark.parametrize("placement_name", PLACEMENT_NAMES)
def test_placement_end_to_end_two_gpus(placement_name):
    """Every registered placement multiplexes a 2-GPU host correctly."""
    from repro.core.scenarios import run_sigma_vp

    result = run_sigma_vp(
        _small_spec(), n_vps=4, n_host_gpus=2, placement=placement_name
    )
    framework = result.extras["framework"]
    devices = {
        name: framework.dispatcher.device_index_for(name)
        for name in framework.sessions
    }
    assert set(devices.values()) == {0, 1}  # both devices used
    assert framework.dispatcher.backlog.quiesced


@pytest.mark.parametrize("policy_name", POLICY_NAMES)
def test_policy_end_to_end_deterministic(policy_name):
    """Same config twice => bit-identical scenario summaries."""
    from repro.core.scenarios import run_sigma_vp

    first = run_sigma_vp(_small_spec(), n_vps=2, policy=policy_name)
    second = run_sigma_vp(_small_spec(), n_vps=2, policy=policy_name)
    assert first.summary() == second.summary()
