"""Tests for the kernel IR: instruction mixes, blocks, footprints."""

import pytest
from hypothesis import given, strategies as st

from repro.kernels import (
    ALL_TYPES,
    InstructionMix,
    InstructionType,
    KernelIR,
    MemoryFootprint,
    ProgramBlock,
    align_up,
    ceil_div,
    uniform_kernel,
)
from repro.kernels.ir import LaunchContext


# -- InstructionMix --------------------------------------------------------


def test_mix_from_kwargs():
    mix = InstructionMix(fp32=4, load=2)
    assert mix[InstructionType.FP32] == 4
    assert mix[InstructionType.LOAD] == 2
    assert mix[InstructionType.STORE] == 0


def test_mix_from_mapping():
    mix = InstructionMix({InstructionType.INT: 3})
    assert mix[InstructionType.INT] == 3


def test_mix_string_keys():
    mix = InstructionMix({"fp64": 1, "BRANCH": 2})
    assert mix[InstructionType.FP64] == 1
    assert mix[InstructionType.BRANCH] == 2


def test_mix_unknown_type_rejected():
    with pytest.raises(KeyError):
        InstructionMix(simd=1)


def test_mix_negative_rejected():
    with pytest.raises(ValueError):
        InstructionMix(fp32=-1)


def test_mix_total_and_flops():
    mix = InstructionMix(fp32=2, fp64=3, int=5, load=1)
    assert mix.total == 11
    assert mix.flops == 5
    assert mix.memory_accesses == 1


def test_mix_scaled():
    mix = InstructionMix(fp32=2).scaled(3)
    assert mix[InstructionType.FP32] == 6


def test_mix_scaled_negative_rejected():
    with pytest.raises(ValueError):
        InstructionMix(fp32=1).scaled(-1)


def test_mix_combined():
    a = InstructionMix(fp32=1, load=2)
    b = InstructionMix(fp32=3, store=1)
    c = a.combined(b)
    assert c[InstructionType.FP32] == 4
    assert c[InstructionType.LOAD] == 2
    assert c[InstructionType.STORE] == 1


def test_mix_expanded():
    mix = InstructionMix(int=10, branch=4).expanded({InstructionType.INT: 1.2})
    assert mix[InstructionType.INT] == pytest.approx(12.0)
    assert mix[InstructionType.BRANCH] == 4.0


def test_mix_equality():
    assert InstructionMix(fp32=1) == InstructionMix(fp32=1)
    assert InstructionMix(fp32=1) != InstructionMix(fp32=2)


@given(
    st.dictionaries(
        st.sampled_from([t.name.lower() for t in ALL_TYPES]),
        st.floats(min_value=0, max_value=1e6, allow_nan=False),
        max_size=7,
    ),
    st.floats(min_value=0, max_value=100, allow_nan=False),
)
def test_mix_scaling_is_linear(counts, factor):
    mix = InstructionMix(**counts)
    scaled = mix.scaled(factor)
    assert scaled.total == pytest.approx(mix.total * factor, rel=1e-9, abs=1e-6)


@given(
    st.lists(
        st.dictionaries(
            st.sampled_from([t.name.lower() for t in ALL_TYPES]),
            st.floats(min_value=0, max_value=1e4, allow_nan=False),
            max_size=7,
        ),
        min_size=2,
        max_size=5,
    )
)
def test_mix_combination_is_commutative_in_total(count_dicts):
    mixes = [InstructionMix(**d) for d in count_dicts]
    forward = mixes[0]
    for mix in mixes[1:]:
        forward = forward.combined(mix)
    backward = mixes[-1]
    for mix in reversed(mixes[:-1]):
        backward = backward.combined(mix)
    assert forward.total == pytest.approx(backward.total)


# -- ProgramBlock -------------------------------------------------------------


def test_block_constant_trips():
    block = ProgramBlock("body", InstructionMix(fp32=1), trips=5)
    ctx = LaunchContext(elements=100, threads=10)
    assert block.trip_count(ctx) == 5.0


def test_block_callable_trips():
    block = ProgramBlock(
        "loop", InstructionMix(int=1), trips=lambda ctx: ctx.elements_per_thread
    )
    ctx = LaunchContext(elements=100, threads=10)
    assert block.trip_count(ctx) == 10.0


def test_block_negative_trips_rejected():
    block = ProgramBlock("bad", InstructionMix(int=1), trips=-1)
    with pytest.raises(ValueError):
        block.trip_count(LaunchContext(elements=1, threads=1))


def test_launch_context_elements_per_thread_zero_threads():
    ctx = LaunchContext(elements=100, threads=0)
    assert ctx.elements_per_thread == 0.0


# -- MemoryFootprint -----------------------------------------------------------


def test_footprint_validation():
    with pytest.raises(ValueError):
        MemoryFootprint(bytes_in=-1, bytes_out=0, working_set_bytes=0)
    with pytest.raises(ValueError):
        MemoryFootprint(bytes_in=0, bytes_out=0, working_set_bytes=0, locality=1.5)
    with pytest.raises(ValueError):
        MemoryFootprint(
            bytes_in=0, bytes_out=0, working_set_bytes=0, coalesced_fraction=-0.1
        )


def test_footprint_scaled():
    fp = MemoryFootprint(bytes_in=100, bytes_out=50, working_set_bytes=200)
    doubled = fp.scaled(2.0)
    assert doubled.bytes_in == 200
    assert doubled.bytes_out == 100
    assert doubled.working_set_bytes == 400
    assert doubled.locality == fp.locality


def test_footprint_merged_adds_bytes():
    a = MemoryFootprint(bytes_in=100, bytes_out=10, working_set_bytes=100, locality=0.5)
    b = MemoryFootprint(bytes_in=300, bytes_out=30, working_set_bytes=300, locality=0.9)
    merged = a.merged(b)
    assert merged.bytes_in == 400
    assert merged.bytes_out == 40
    # Working sets do not add: the active set stays the larger member's.
    assert merged.working_set_bytes == 300
    # Weighted toward the larger data set.
    assert 0.5 < merged.locality < 0.9
    assert merged.locality > 0.7


@given(
    st.integers(min_value=0, max_value=10**9),
    st.integers(min_value=0, max_value=10**9),
)
def test_footprint_merge_is_symmetric(size_a, size_b):
    a = MemoryFootprint(bytes_in=size_a, bytes_out=size_a // 2, working_set_bytes=size_a)
    b = MemoryFootprint(bytes_in=size_b, bytes_out=size_b // 2, working_set_bytes=size_b)
    ab, ba = a.merged(b), b.merged(a)
    assert ab.bytes_in == ba.bytes_in
    assert ab.working_set_bytes == ba.working_set_bytes
    assert ab.locality == pytest.approx(ba.locality)


# -- KernelIR ---------------------------------------------------------------


def _footprint():
    return MemoryFootprint(bytes_in=1024, bytes_out=512, working_set_bytes=2048)


def test_kernel_requires_blocks():
    with pytest.raises(ValueError):
        KernelIR(name="empty", blocks=(), footprint=_footprint())


def test_kernel_signature_defaults_to_name():
    kernel = uniform_kernel("k", {"fp32": 1}, _footprint())
    assert kernel.signature == "k"


def test_kernel_explicit_signature():
    kernel = uniform_kernel("instance-1", {"fp32": 1}, _footprint(), signature="shared")
    assert kernel.signature == "shared"


def test_kernel_per_thread_mix_sums_blocks():
    blocks = (
        ProgramBlock("init", InstructionMix(int=2), trips=1),
        ProgramBlock("loop", InstructionMix(fp32=1, load=1), trips=10),
    )
    kernel = KernelIR(name="k", blocks=blocks, footprint=_footprint())
    mix = kernel.per_thread_mix(LaunchContext(elements=1, threads=1))
    assert mix[InstructionType.INT] == 2
    assert mix[InstructionType.FP32] == 10
    assert mix[InstructionType.LOAD] == 10


def test_kernel_with_footprint_replaces_only_footprint():
    kernel = uniform_kernel("k", {"fp32": 1}, _footprint())
    new_fp = MemoryFootprint(bytes_in=9, bytes_out=9, working_set_bytes=9)
    replaced = kernel.with_footprint(new_fp)
    assert replaced.footprint.bytes_in == 9
    assert replaced.name == kernel.name
    assert replaced.blocks == kernel.blocks


# -- helpers ------------------------------------------------------------------


def test_ceil_div():
    assert ceil_div(10, 3) == 4
    assert ceil_div(9, 3) == 3
    assert ceil_div(1, 512) == 1


def test_ceil_div_zero_denominator():
    with pytest.raises(ValueError):
        ceil_div(1, 0)


def test_align_up():
    assert align_up(4608, 8192) == 8192
    assert align_up(8192, 8192) == 8192
    assert align_up(8193, 8192) == 16384


@given(st.integers(min_value=0, max_value=10**9), st.integers(min_value=1, max_value=10**6))
def test_align_up_properties(value, unit):
    aligned = align_up(value, unit)
    assert aligned >= value
    assert aligned % unit == 0
    assert aligned - value < unit
