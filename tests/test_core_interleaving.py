"""Tests for the analytical Kernel Interleaving models (Eqs. 7-8)."""

import pytest
from hypothesis import given, strategies as st

from repro.core.interleaving import (
    balanced_speedup,
    expected_speedup,
    interleaved_total_time,
    serial_total_time,
)


def test_serial_is_3nt_when_balanced():
    assert serial_total_time(4, 10.0, 10.0) == pytest.approx(120.0)  # 3NT


def test_interleaved_matches_eq7():
    # Ttotal = 2*Tm + N*max(Tm, Tk)
    assert interleaved_total_time(4, 10.0, 25.0) == pytest.approx(20 + 4 * 25)
    assert interleaved_total_time(4, 25.0, 10.0) == pytest.approx(50 + 4 * 25)


def test_balanced_speedup_matches_eq8():
    # Speedup = 3N / (2 + N)
    assert balanced_speedup(2) == pytest.approx(1.5)
    assert balanced_speedup(4) == pytest.approx(2.0)
    assert balanced_speedup(32) == pytest.approx(96 / 34)


def test_balanced_speedup_approaches_three():
    assert balanced_speedup(1000) == pytest.approx(3.0, abs=0.01)


def test_expected_speedup_consistent_with_balanced():
    for n in (2, 4, 8, 16, 32):
        assert expected_speedup(n, 5.0, 5.0) == pytest.approx(balanced_speedup(n))


def test_speedup_peaks_when_kernel_equals_copy():
    """Fig. 9(a): the maximum sits at Tk = Tm (the latency-hiding sweet
    spot marked by the orange dotted line)."""
    tm = 13.44
    peak = expected_speedup(2, tm, tm)
    assert expected_speedup(2, tm, tm / 4) < peak
    assert expected_speedup(2, tm, tm * 4) < peak


def test_validation():
    with pytest.raises(ValueError):
        serial_total_time(0, 1.0, 1.0)
    with pytest.raises(ValueError):
        interleaved_total_time(2, -1.0, 1.0)
    with pytest.raises(ValueError):
        balanced_speedup(0)


@given(
    # Eq. 7 models the pipelined schedule of N >= 2 programs.
    n=st.integers(min_value=2, max_value=256),
    tm=st.floats(min_value=0.01, max_value=1000, allow_nan=False),
    tk=st.floats(min_value=0.01, max_value=1000, allow_nan=False),
)
def test_interleaving_never_slower(n, tm, tk):
    """Eq. 7 never exceeds the serial schedule and never beats 3x."""
    serial = serial_total_time(n, tm, tk)
    interleaved = interleaved_total_time(n, tm, tk)
    assert interleaved <= serial + 1e-9
    assert serial / interleaved <= 3.0 + 1e-9
