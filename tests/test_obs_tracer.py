"""Tracer contract: true no-op when disabled, faithful buffers when on.

The load-bearing guarantees:

* **disabled is free** — with no tracer installed, an instrumented
  simulation allocates nothing in any ``repro.obs`` module (the hot
  paths are a single module-attribute ``is not None`` check);
* **tracing never perturbs simulation** — the summary of a scenario run
  with capture on is byte-identical (canonical JSON) to the same run
  with capture off.
"""

import json
import tracemalloc

import pytest

import repro.obs as obs
from repro.exec.jobs import scenario_summary
from repro.obs import tracer as tracer_mod
from repro.obs.export import canonical_json
from repro.obs.tracer import Tracer


def _run_scenario():
    return scenario_summary(app="vectorAdd", n_vps=2)


class TestDisabledMode:
    def test_disabled_by_default(self):
        assert tracer_mod.TRACER is None
        assert not obs.enabled()

    def test_disabled_run_records_nothing(self):
        tracer = Tracer()  # constructed but never installed
        _run_scenario()
        assert tracer.spans == []
        assert tracer.instants == []
        assert tracer_mod.TRACER is None

    def test_disabled_run_allocates_nothing_in_obs_modules(self):
        # Warm every code path (imports, caches) outside the window.
        _run_scenario()
        obs_files = tracemalloc.Filter(True, "*/repro/obs/*")
        tracemalloc.start()
        try:
            _run_scenario()
            snapshot = tracemalloc.take_snapshot().filter_traces([obs_files])
        finally:
            tracemalloc.stop()
        stats = snapshot.statistics("filename")
        assert stats == [], (
            "obs modules allocated while disabled: "
            + ", ".join(f"{s.traceback}: {s.size}B" for s in stats)
        )

    def test_simulation_identical_with_and_without_capture(self):
        plain = _run_scenario()
        with obs.capture():
            captured = _run_scenario()
        assert canonical_json(plain) == canonical_json(captured)


class TestTracerBuffers:
    def test_span_and_instant_ids_are_one_monotonic_sequence(self):
        tracer = Tracer()
        ids = [
            tracer.span("lane", "a", 0.0, 1.0),
            tracer.instant("lane", "b", 0.5),
            tracer.span("lane", "c", 1.0, 2.0),
        ]
        assert ids == [0, 1, 2]

    def test_lanes_and_spans_on(self):
        tracer = Tracer()
        tracer.span("x", "a", 0.0, 1.0)
        tracer.span("y", "b", 0.0, 1.0)
        tracer.span("x", "c", 1.0, 2.0)
        assert tracer.lanes() == ["x", "y"]
        assert [s[3] for s in tracer.spans_on("x")] == ["a", "c"]

    def test_payload_roundtrip(self):
        tracer = Tracer()
        tracer.span("lane", "a", 0.0, 1.5, cat="engine", args={"vp": "vp0"})
        tracer.instant("lane", "b", 0.25, args={"k": 3})
        payload = tracer.to_payload()
        json.dumps(payload)  # must already be JSON-clean
        restored = Tracer.from_payload(payload)
        assert restored.to_payload() == payload
        # ids continue after the highest restored id
        assert restored.span("lane", "c", 2.0, 3.0) == 2

    def test_payload_cleans_non_json_args(self):
        tracer = Tracer()
        tracer.span("lane", "a", 0.0, 1.0, args={"obj": object(), "n": 2})
        payload = tracer.to_payload()
        args = payload["spans"][0]["args"]
        assert args["n"] == 2
        assert isinstance(args["obj"], str)
        json.dumps(payload)

    def test_enable_disable_restores_none(self):
        installed = tracer_mod.enable()
        try:
            assert tracer_mod.TRACER is installed
        finally:
            tracer_mod.disable()
        assert tracer_mod.TRACER is None


class TestCaptureWindow:
    def test_capture_scopes_and_restores(self):
        assert tracer_mod.TRACER is None
        with obs.capture() as cap:
            assert tracer_mod.TRACER is cap.tracer
            _run_scenario()
        assert tracer_mod.TRACER is None
        assert len(cap.tracer.spans) > 0
        assert len(cap.tracer.instants) > 0

    def test_nested_capture_restores_outer(self):
        with obs.capture() as outer:
            with obs.capture() as inner:
                assert tracer_mod.TRACER is inner.tracer
            assert tracer_mod.TRACER is outer.tracer
        assert tracer_mod.TRACER is None

    def test_capture_collects_expected_lanes(self):
        with obs.capture() as cap:
            _run_scenario()
        lanes = set(cap.tracer.lanes())
        assert any("compute" in lane for lane in lanes)
        assert any(lane.startswith("ipc/") for lane in lanes)
        assert any(lane.startswith("vp/") for lane in lanes)
        instant_lanes = {i[1] for i in cap.tracer.instants}
        assert "dispatcher" in instant_lanes
