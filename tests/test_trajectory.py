"""Tests for ``repro.exec.trajectory``: the bench-history regression gate."""

import copy
import json
from pathlib import Path

import pytest

from repro.exec.trajectory import (
    TrajectoryError,
    TrajectoryRegressionError,
    build,
    compare_bench_report,
    compare_points,
    discover_bench_paths,
    gate,
    load_points,
    newest_bench_path,
    point_from_report,
    render_trajectory,
    sign_test_pvalue,
    write_trajectory,
)

REPO_ROOT = Path(__file__).resolve().parent.parent


def _report(name, timestamp, per_job_s, suite="full", workers=4, cpu_s=10.0):
    return {
        "timestamp": timestamp,
        "suite": suite,
        "workers": workers,
        "digest": f"digest-{name}",
        "git_commit": f"commit-{name}",
        "speedups": {"caches_only": 1.5, "parallel": 2.0},
        "modes": {
            "serial_warm": {
                "wall_s": cpu_s * 1.1,
                "cpu_s": cpu_s,
                "per_job_s": dict(per_job_s),
            }
        },
    }


def _point(name, timestamp, per_job_s, **kwargs):
    return point_from_report(_report(name, timestamp, per_job_s, **kwargs), name)


JOBS = {f"job{i}": 1.0 for i in range(10)}


class TestSignTest:
    def test_exact_tail_values(self):
        assert sign_test_pvalue(10, 10) == pytest.approx(1.0 / 1024.0)
        assert sign_test_pvalue(9, 10) == pytest.approx(11.0 / 1024.0)
        assert sign_test_pvalue(0, 10) == pytest.approx(1.0)

    def test_empty_population_never_significant(self):
        assert sign_test_pvalue(0, 0) == 1.0


class TestComparePoints:
    def test_uniform_slowdown_regresses(self):
        base = _point("base", "2026-01-01T00:00:00", JOBS)
        slow = _point(
            "slow", "2026-01-02T00:00:00", {k: 1.5 for k in JOBS}
        )
        verdict = compare_points(base, slow)
        assert verdict["comparable"]
        assert verdict["slower"] == 10 and verdict["faster"] == 0
        assert verdict["p_value"] == pytest.approx(1.0 / 1024.0)
        assert verdict["regressed"]

    def test_single_noisy_job_cannot_fail(self):
        noisy_jobs = dict(JOBS)
        noisy_jobs["job0"] = 5.0  # one job 5x slower
        base = _point("base", "2026-01-01T00:00:00", JOBS)
        noisy = _point("noisy", "2026-01-02T00:00:00", noisy_jobs)
        verdict = compare_points(base, noisy)
        assert verdict["slower"] == 1
        assert not verdict["regressed"]

    def test_changes_inside_tolerance_band_are_ties(self):
        base = _point("base", "2026-01-01T00:00:00", JOBS)
        jitter = _point(
            "jitter", "2026-01-02T00:00:00", {k: 1.05 for k in JOBS}
        )
        verdict = compare_points(base, jitter, tolerance=0.10)
        assert verdict["ties"] == 10
        assert verdict["slower"] == verdict["faster"] == 0
        assert not verdict["regressed"]

    def test_uniform_speedup_never_regresses(self):
        base = _point("base", "2026-01-01T00:00:00", JOBS)
        fast = _point("fast", "2026-01-02T00:00:00", {k: 0.5 for k in JOBS})
        verdict = compare_points(base, fast)
        assert verdict["faster"] == 10
        assert not verdict["regressed"]

    def test_mismatched_suite_or_workers_not_comparable(self):
        base = _point("base", "2026-01-01T00:00:00", JOBS)
        other = _point(
            "other", "2026-01-02T00:00:00", JOBS, workers=2
        )
        verdict = compare_points(base, other)
        assert not verdict["comparable"]
        assert not verdict["regressed"]

    def test_headline_prefers_cpu_falls_back_to_wall(self):
        with_cpu = _point("a", "2026-01-01T00:00:00", JOBS, cpu_s=10.0)
        assert with_cpu.headline_metric == "cpu"
        assert with_cpu.headline_s == pytest.approx(10.0)
        report = _report("b", "2026-01-01T00:00:00", JOBS)
        del report["modes"]["serial_warm"]["cpu_s"]
        wall_only = point_from_report(report, "b")
        assert wall_only.headline_metric == "wall"
        assert wall_only.headline_s == pytest.approx(11.0)


class TestDiscoveryAndOrdering:
    def test_load_points_orders_by_timestamp_not_name(self, tmp_path):
        # Name order disagrees with timestamp order on purpose.
        (tmp_path / "BENCH_A.json").write_text(
            json.dumps(_report("A", "2026-03-01T00:00:00", JOBS))
        )
        (tmp_path / "BENCH_B.json").write_text(
            json.dumps(_report("B", "2026-01-01T00:00:00", JOBS))
        )
        points = load_points(sorted(tmp_path.glob("BENCH_*.json")))
        assert [p.name for p in points] == ["BENCH_B.json", "BENCH_A.json"]

    def test_discover_falls_back_to_glob_outside_git(self, tmp_path):
        (tmp_path / "BENCH_X.json").write_text(json.dumps(_report("X", "t", {})))
        assert [p.name for p in discover_bench_paths(tmp_path)] == [
            "BENCH_X.json"
        ]

    def test_newest_bench_path_honors_exclude(self, tmp_path):
        (tmp_path / "BENCH_OLD.json").write_text(
            json.dumps(_report("old", "2026-01-01T00:00:00", JOBS))
        )
        newest = tmp_path / "BENCH_NEW.json"
        newest.write_text(
            json.dumps(_report("new", "2026-02-01T00:00:00", JOBS))
        )
        assert newest_bench_path(tmp_path).name == "BENCH_NEW.json"
        assert (
            newest_bench_path(tmp_path, exclude=newest).name
            == "BENCH_OLD.json"
        )

    def test_unreadable_report_raises_trajectory_error(self, tmp_path):
        bad = tmp_path / "BENCH_BAD.json"
        bad.write_text("{not json")
        with pytest.raises(TrajectoryError):
            load_points([bad])


class TestBuildAndGate:
    def test_build_requires_points(self, tmp_path):
        with pytest.raises(TrajectoryError):
            build(tmp_path)

    def test_clean_history_passes_gate(self, tmp_path):
        for name, ts, scale in [
            ("BENCH_1.json", "2026-01-01T00:00:00", 1.0),
            ("BENCH_2.json", "2026-02-01T00:00:00", 0.8),
            ("BENCH_3.json", "2026-03-01T00:00:00", 0.7),
        ]:
            (tmp_path / name).write_text(
                json.dumps(
                    _report(name, ts, {k: scale for k in JOBS}, cpu_s=10 * scale)
                )
            )
        report = build(tmp_path)
        assert len(report["points"]) == 3
        assert len(report["transitions"]) == 2
        assert report["regressions"] == []
        gate(report)  # must not raise
        text = render_trajectory(report)
        assert "regression gate: pass" in text

    def test_injected_slowdown_fails_gate(self, tmp_path):
        (tmp_path / "BENCH_1.json").write_text(
            json.dumps(_report("1", "2026-01-01T00:00:00", JOBS))
        )
        (tmp_path / "BENCH_2.json").write_text(
            json.dumps(
                _report(
                    "2", "2026-02-01T00:00:00", {k: 1.5 for k in JOBS},
                    cpu_s=15.0,
                )
            )
        )
        report = build(tmp_path)
        assert len(report["regressions"]) == 1
        with pytest.raises(TrajectoryRegressionError):
            gate(report)
        assert "regression gate: FAIL" in render_trajectory(report)

    def test_write_trajectory_roundtrips(self, tmp_path):
        (tmp_path / "BENCH_1.json").write_text(
            json.dumps(_report("1", "2026-01-01T00:00:00", JOBS))
        )
        out = write_trajectory(tmp_path / "TRAJECTORY.json", root=tmp_path)
        loaded = json.loads(out.read_text())
        assert loaded["schema"] == "repro.exec.trajectory/1"
        assert [p["name"] for p in loaded["points"]] == ["BENCH_1.json"]


class TestCompareBenchReport:
    def test_fresh_regression_raises(self, tmp_path):
        (tmp_path / "BENCH_BASE.json").write_text(
            json.dumps(_report("base", "2026-01-01T00:00:00", JOBS))
        )
        fresh = _report("fresh", "2026-02-01T00:00:00", {k: 2.0 for k in JOBS})
        with pytest.raises(TrajectoryRegressionError):
            compare_bench_report(fresh, root=tmp_path)

    def test_fresh_clean_run_passes(self, tmp_path):
        (tmp_path / "BENCH_BASE.json").write_text(
            json.dumps(_report("base", "2026-01-01T00:00:00", JOBS))
        )
        fresh = _report("fresh", "2026-02-01T00:00:00", dict(JOBS))
        verdict = compare_bench_report(fresh, root=tmp_path)
        assert verdict["comparable"] and not verdict["regressed"]

    def test_no_baseline_is_not_comparable(self, tmp_path):
        fresh = _report("fresh", "2026-02-01T00:00:00", JOBS)
        verdict = compare_bench_report(fresh, root=tmp_path)
        assert not verdict["comparable"] and not verdict["regressed"]


class TestCommittedHistory:
    """The real repository history is itself a fixture: it must gate clean."""

    def test_committed_bench_reports_build_and_pass(self):
        paths = discover_bench_paths(REPO_ROOT)
        assert paths, "repository should carry committed BENCH_*.json files"
        report = build(REPO_ROOT)
        assert len(report["points"]) == len(paths)
        assert report["regressions"] == [], render_trajectory(report)

    def test_injected_slowdown_on_real_history_is_caught(self):
        points = load_points(discover_bench_paths(REPO_ROOT))
        base = points[-1]
        slow = copy.deepcopy(base)
        slow.per_job_s = {k: v * 1.5 for k, v in slow.per_job_s.items()}
        verdict = compare_points(base, slow)
        assert verdict["regressed"], verdict
