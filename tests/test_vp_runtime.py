"""Tests for the virtual platform and the CUDA runtime backends."""

import numpy as np
import pytest

from repro.core.handles import HandleTable
from repro.core.ipc import IPCManager, SHARED_MEMORY
from repro.core.jobs import JobQueue
from repro.core.dispatcher import JobDispatcher, ServiceMode
from repro.core.profiler import Profiler
from repro.core.rescheduler import FIFOPolicy
from repro.gpu import HostGPU, QUADRO_4000
from repro.kernels import LaunchConfig, MemoryFootprint, uniform_kernel
from repro.kernels.functional import REGISTRY
from repro.sim import Environment
from repro.vp import (
    CudaRuntime,
    EmulationBackend,
    HOST_XEON,
    NativeGPUBackend,
    QEMU_ARM_VP,
    SigmaVPBackend,
    VirtualPlatform,
)


def _vector_kernel(n):
    return uniform_kernel(
        "vectorAdd",  # registered functional kernel
        {"fp32": 1, "load": 2, "store": 1},
        MemoryFootprint(bytes_in=2 * n * 8, bytes_out=n * 8,
                        working_set_bytes=3 * n * 8),
        signature="vectorAdd",
    )


def _vecadd_app(api, n=1024):
    """The canonical program, written once for every backend."""

    def app():
        a = np.arange(n, dtype=np.float64)
        b = np.full(n, 10.0)
        h_a = yield from api.malloc(a.nbytes)
        h_b = yield from api.malloc(b.nbytes)
        h_out = yield from api.malloc(a.nbytes)
        yield from api.memcpy_h2d(h_a, a)
        yield from api.memcpy_h2d(h_b, b)
        launch = LaunchConfig(grid_size=n // 256, block_size=256, elements=n)
        yield from api.launch_kernel(
            _vector_kernel(n), launch, args=[h_a, h_b], out=h_out
        )
        yield from api.synchronize()
        result = yield from api.memcpy_d2h(h_out, nbytes=a.nbytes)
        yield from api.free(h_a)
        yield from api.free(h_b)
        return result.value

    return app


# -- VirtualPlatform ----------------------------------------------------------


def test_platform_tracks_guest_time():
    env = Environment()
    vp = VirtualPlatform(env, "vp0")

    def app():
        yield from vp.execute_ops(vp.cpu.ops_per_ms * 2)

    env.run(vp.run_app(app))
    assert vp.guest_cpu_ms == pytest.approx(2.0)
    assert vp.elapsed_ms == pytest.approx(2.0)


def test_platform_execute_ms_validation():
    env = Environment()
    vp = VirtualPlatform(env, "vp0")

    def bad():
        yield from vp.execute_ms(-1.0)

    with pytest.raises(ValueError):
        env.run(vp.run_app(bad))


def test_platform_resume_without_stop_is_noop():
    env = Environment()
    vp = VirtualPlatform(env, "vp0")
    vp.resume()
    assert not vp.paused


# -- NativeGPUBackend -----------------------------------------------------------


def test_native_backend_functional():
    env = Environment()
    gpu = HostGPU(env, QUADRO_4000)
    host = VirtualPlatform(env, "host", cpu=HOST_XEON)
    api = CudaRuntime(NativeGPUBackend(env, gpu, host))
    process = host.run_app(_vecadd_app(api))
    result = env.run(process)
    np.testing.assert_array_equal(result, np.arange(1024) + 10.0)
    assert api.calls["launch_kernel"] == 1
    assert api.calls["malloc"] == 3


def test_native_backend_frees_device_memory():
    env = Environment()
    gpu = HostGPU(env, QUADRO_4000)
    host = VirtualPlatform(env, "host", cpu=HOST_XEON)
    api = CudaRuntime(NativeGPUBackend(env, gpu, host))
    env.run(host.run_app(_vecadd_app(api)))
    # h_a and h_b freed; h_out still held.
    assert gpu.memory.used_bytes == 1024 * 8


# -- EmulationBackend --------------------------------------------------------------


def test_emulation_backend_functional():
    env = Environment()
    platform = VirtualPlatform(env, "emu", cpu=HOST_XEON)
    api = CudaRuntime(EmulationBackend(env, platform))
    result = env.run(platform.run_app(_vecadd_app(api)))
    np.testing.assert_array_equal(result, np.arange(1024) + 10.0)


def test_emulation_on_vp_much_slower_than_on_host():
    def run_on(cpu):
        env = Environment()
        platform = VirtualPlatform(env, "emu", cpu=cpu)
        api = CudaRuntime(EmulationBackend(env, platform))
        env.run(platform.run_app(_vecadd_app(api, n=4096)))
        return env.now

    host_time = run_on(HOST_XEON)
    vp_time = run_on(QEMU_ARM_VP)
    assert vp_time > 30 * host_time


def test_emulation_unknown_handle_raises():
    env = Environment()
    platform = VirtualPlatform(env, "emu", cpu=HOST_XEON)
    backend = EmulationBackend(env, platform)

    def app():
        yield from backend.memcpy_h2d("ghost", np.zeros(4), sync=True)

    with pytest.raises(KeyError):
        env.run(platform.run_app(app))


# -- SigmaVPBackend -------------------------------------------------------------------


def _sigma_setup():
    env = Environment()
    gpu = HostGPU(env, QUADRO_4000)
    queue = JobQueue(env)
    handles = HandleTable()
    ipc = IPCManager(env, queue, transport=SHARED_MEMORY)
    JobDispatcher(
        env, gpu, queue, handles,
        policy=FIFOPolicy(), mode=ServiceMode.PIPELINED,
        registry=REGISTRY, profiler=Profiler(),
    )
    vp = VirtualPlatform(env, "vp0")
    ipc.vp_control.register(vp)
    api = CudaRuntime(SigmaVPBackend(env, vp, ipc, handles))
    return env, gpu, vp, api


def test_sigma_backend_functional():
    env, gpu, vp, api = _sigma_setup()
    result = env.run(vp.run_app(_vecadd_app(api)))
    np.testing.assert_array_equal(result, np.arange(1024) + 10.0)


def test_sigma_backend_binary_compatibility():
    """The same application source ran on all three backends above —
    this asserts identical numerical results (the paper's no-change
    claim transposed)."""
    env, gpu, vp, api = _sigma_setup()
    sigma_result = env.run(vp.run_app(_vecadd_app(api)))

    env2 = Environment()
    platform = VirtualPlatform(env2, "emu", cpu=HOST_XEON)
    emul_api = CudaRuntime(EmulationBackend(env2, platform))
    emul_result = env2.run(platform.run_app(_vecadd_app(emul_api)))

    np.testing.assert_array_equal(sigma_result, emul_result)


def test_sigma_backend_sync_waits_for_completion():
    env, gpu, vp, api = _sigma_setup()

    def app():
        h = yield from api.malloc(8192)
        yield from api.memcpy_h2d(h, np.zeros(1024), sync=True)
        return env.now

    t_done = env.run(vp.run_app(app))
    # At least: driver + request latency + copy + response latency.
    assert t_done > gpu.arch.copy_time_ms(8192)


def test_sigma_backend_async_returns_before_completion():
    env, gpu, vp, api = _sigma_setup()
    marker = {}

    def app():
        h = yield from api.malloc(8 * 1024 * 1024)
        yield from api.memcpy_h2d(h, np.zeros(1024 * 1024), sync=False)
        marker["after_submit"] = env.now
        yield from api.synchronize()
        marker["after_sync"] = env.now

    env.run(vp.run_app(app))
    # 8 MB over the copy engine takes ~2 ms; the async call returned
    # well before that, the synchronize absorbed the rest.
    assert marker["after_sync"] - marker["after_submit"] > 1.0


def test_sigma_backend_malloc_validation():
    env, gpu, vp, api = _sigma_setup()

    def app():
        yield from api.malloc(0)

    with pytest.raises(ValueError):
        env.run(vp.run_app(app))


def test_runtime_counts_calls():
    env, gpu, vp, api = _sigma_setup()
    env.run(vp.run_app(_vecadd_app(api)))
    assert api.calls["memcpy_h2d"] == 2
    assert api.calls["memcpy_d2h"] == 1
    assert api.calls["free"] == 2
    assert api.calls["synchronize"] == 1
