"""Tests for the one-shot report builder."""

from pathlib import Path

import pytest

from repro.analysis.report_builder import (
    QUICK_FIG11_APPS,
    _md_table,
    build_report,
    write_report,
)


def test_md_table_shape():
    text = _md_table(["a", "b"], [(1, 2.5), ("x", 1234.0)])
    lines = text.splitlines()
    assert lines[0] == "| a | b |"
    assert lines[1] == "|---|---|"
    assert "| 1 | 2.500 |" in lines
    assert "1,234" in text


@pytest.fixture(scope="module")
def quick_report():
    return build_report(quick=True)


def test_report_contains_every_experiment(quick_report):
    for heading in ("Table 1", "Fig. 9", "Fig. 10", "Fig. 11",
                    "Fig. 12", "Fig. 13"):
        assert heading in quick_report


def test_report_quick_mode_uses_subset(quick_report):
    for app in QUICK_FIG11_APPS:
        assert app in quick_report
    assert "segmentationTreeThrust" not in quick_report


def test_report_carries_paper_references(quick_report):
    assert "2,192.95" in quick_report or "2192.95" in quick_report
    assert "Eq. 8" in quick_report
    assert "622-2045" in quick_report


def test_write_report(tmp_path, quick_report, monkeypatch):
    # Reuse the already-built text to keep the test fast.
    import repro.analysis.report_builder as rb

    monkeypatch.setattr(rb, "build_report", lambda quick=False: quick_report)
    path = write_report(tmp_path / "out.md", quick=True)
    assert path.exists()
    assert path.read_text().startswith("# SigmaVP reproduction")
