"""Tests for CPU models and the software GPU emulator."""

import pytest

from repro.gpu import QUADRO_4000
from repro.kernels import LaunchConfig, MemoryFootprint, uniform_kernel
from repro.vp.cpu import (
    BINARY_TRANSLATION_SLOWDOWN,
    CPUModel,
    EMULATION_BT_PENALTY,
    HOST_XEON,
    QEMU_ARM_VP,
)
from repro.vp.emulation import EMULATION_OPS, GPUEmulator
from repro.kernels.ir import InstructionType


def _kernel(per_thread):
    return uniform_kernel(
        "emu-k",
        per_thread,
        MemoryFootprint(bytes_in=4096, bytes_out=4096, working_set_bytes=4096),
    )


def _launch(grid=16, block=256):
    return LaunchConfig(grid_size=grid, block_size=block, elements=grid * block)


# -- CPU models -------------------------------------------------------------


def test_vp_slower_than_host_by_bt_factor():
    ratio = HOST_XEON.ops_per_ms / QEMU_ARM_VP.ops_per_ms
    assert ratio == pytest.approx(BINARY_TRANSLATION_SLOWDOWN)


def test_vp_has_emulation_penalty():
    assert QEMU_ARM_VP.emulation_penalty == pytest.approx(EMULATION_BT_PENALTY)
    assert HOST_XEON.emulation_penalty == 1.0


def test_time_for_ops():
    assert HOST_XEON.time_for_ops(HOST_XEON.ops_per_ms) == pytest.approx(1.0)
    with pytest.raises(ValueError):
        HOST_XEON.time_for_ops(-1)


def test_copy_time_scales_with_bt():
    nbytes = 6_000_000
    host = HOST_XEON.copy_time_ms(nbytes)
    guest = QEMU_ARM_VP.copy_time_ms(nbytes)
    assert guest == pytest.approx(host * BINARY_TRANSLATION_SLOWDOWN)


def test_cpu_model_validation():
    with pytest.raises(ValueError):
        CPUModel(name="bad", ops_per_ms=0)
    with pytest.raises(ValueError):
        CPUModel(name="bad", ops_per_ms=1, emulation_penalty=0.5)
    with pytest.raises(ValueError):
        CPUModel(name="bad", ops_per_ms=1, copy_bandwidth_gbps=0)


# -- emulator -----------------------------------------------------------------


def test_emulation_fp_costs_more_than_int():
    """Softfloat: emulating FP instructions dominates (the Fig. 11
    FP-light-apps-have-lower-speedups mechanism)."""
    assert EMULATION_OPS[InstructionType.FP32] > 2 * EMULATION_OPS[InstructionType.INT]
    assert EMULATION_OPS[InstructionType.FP64] > 2 * EMULATION_OPS[InstructionType.INT]


def test_emulator_cost_scales_with_instructions():
    emulator = GPUEmulator(HOST_XEON)
    small = emulator.kernel_cost(_kernel({"int": 10}), _launch(grid=8))
    large = emulator.kernel_cost(_kernel({"int": 10}), _launch(grid=32))
    assert large.interpret_ms == pytest.approx(4 * small.interpret_ms)
    assert large.instructions == pytest.approx(4 * small.instructions)


def test_emulator_on_vp_slower_than_on_host():
    kernel, launch = _kernel({"fp32": 20, "int": 5}), _launch()
    host = GPUEmulator(HOST_XEON).kernel_cost(kernel, launch)
    vp = GPUEmulator(QEMU_ARM_VP).kernel_cost(kernel, launch)
    # Interpretation slows by binary translation times the interpreter
    # penalty; the launch bookkeeping only by binary translation.
    assert vp.interpret_ms / host.interpret_ms == pytest.approx(
        BINARY_TRANSLATION_SLOWDOWN * EMULATION_BT_PENALTY, rel=0.01
    )
    assert vp.launch_ms / host.launch_ms == pytest.approx(
        BINARY_TRANSLATION_SLOWDOWN, rel=0.01
    )


def test_fp_heavy_kernel_emulates_slower_per_instruction():
    launch = _launch()
    fp = _kernel({"fp32": 30})
    integer = _kernel({"int": 30})
    emulator = GPUEmulator(HOST_XEON)
    fp_cost = emulator.kernel_cost(fp, launch)
    int_cost = emulator.kernel_cost(integer, launch)
    assert fp_cost.instructions == pytest.approx(int_cost.instructions)
    assert fp_cost.interpret_ms > 2 * int_cost.interpret_ms


def test_emulator_interprets_host_isa():
    emulator = GPUEmulator(HOST_XEON)
    assert emulator.isa_arch is QUADRO_4000


def test_emulated_launch_overhead_is_fixed():
    emulator = GPUEmulator(HOST_XEON)
    a = emulator.kernel_cost(_kernel({"int": 1}), _launch(grid=1))
    b = emulator.kernel_cost(_kernel({"int": 100}), _launch(grid=64))
    assert a.launch_ms == pytest.approx(b.launch_ms)
    assert a.launch_ms > 0


def test_emulator_copy_uses_cpu_bandwidth():
    emulator = GPUEmulator(QEMU_ARM_VP)
    assert emulator.copy_time_ms(1000) == pytest.approx(
        QEMU_ARM_VP.copy_time_ms(1000)
    )
