"""Tests for per-architecture compilation and launch geometry."""

import pytest
from hypothesis import given, strategies as st

from repro.gpu import GRID_K520, QUADRO_4000, TEGRA_K1
from repro.kernels import (
    InstructionType,
    KernelCompiler,
    LaunchConfig,
    MemoryFootprint,
    launch_for_elements,
    natural_launch,
    uniform_kernel,
)


def _kernel(per_thread=None, name="k"):
    return uniform_kernel(
        name,
        per_thread or {"fp32": 4, "int": 2, "load": 1, "store": 1, "branch": 1},
        MemoryFootprint(bytes_in=4096, bytes_out=4096, working_set_bytes=8192),
    )


# -- compiler ----------------------------------------------------------------


def test_compile_identity_on_host():
    compiler = KernelCompiler()
    compiled = compiler.compile(_kernel(), QUADRO_4000)
    # Quadro has identity expansion: static counts match the IR.
    assert compiled.blocks[0].static_count(InstructionType.FP32) == 4


def test_compile_expansion_on_target():
    compiler = KernelCompiler()
    kernel = _kernel({"int": 10, "branch": 4})
    compiled = compiler.compile(kernel, TEGRA_K1)
    # Tegra's toolchain emits more scaffolding (paper Fig. 8).
    assert compiled.blocks[0].static_count(InstructionType.INT) == pytest.approx(12.0)
    assert compiled.blocks[0].static_count(InstructionType.BRANCH) == pytest.approx(5.0)


def test_target_compile_has_more_instructions_than_host():
    """Fig. 8: 32 instructions on host vs 43 on target for the same block."""
    compiler = KernelCompiler()
    kernel = _kernel({"int": 10, "bit": 5, "branch": 5, "load": 6, "store": 6})
    host = compiler.compile(kernel, QUADRO_4000)
    target = compiler.compile(kernel, TEGRA_K1)
    ctx = LaunchConfig(grid_size=1, block_size=32, elements=32).context()
    assert target.per_thread_mix(ctx).total > host.per_thread_mix(ctx).total


def test_compile_caching():
    compiler = KernelCompiler()
    kernel = _kernel()
    first = compiler.compile(kernel, QUADRO_4000)
    second = compiler.compile(kernel, QUADRO_4000)
    assert first is second
    assert len(compiler) == 1


def test_compile_cache_distinguishes_architectures():
    compiler = KernelCompiler()
    kernel = _kernel()
    host = compiler.compile(kernel, QUADRO_4000)
    target = compiler.compile(kernel, TEGRA_K1)
    assert host is not target
    assert len(compiler) == 2


def test_compiler_clear():
    compiler = KernelCompiler()
    compiler.compile(_kernel(), QUADRO_4000)
    compiler.clear()
    assert len(compiler) == 0


def test_sigma_scales_with_threads():
    compiler = KernelCompiler()
    compiled = compiler.compile(_kernel(), QUADRO_4000)
    small = LaunchConfig(grid_size=1, block_size=128, elements=128)
    large = LaunchConfig(grid_size=4, block_size=128, elements=512)
    sigma_small = compiled.sigma_total(small)
    sigma_large = compiled.sigma_total(large)
    assert sigma_large == pytest.approx(4 * sigma_small)


def test_sigma_per_type_structure():
    compiler = KernelCompiler()
    compiled = compiler.compile(_kernel({"fp64": 3}), QUADRO_4000)
    launch = LaunchConfig(grid_size=2, block_size=64, elements=128)
    sigma = compiled.sigma(launch)
    assert sigma[InstructionType.FP64] == pytest.approx(3 * 128)
    assert sigma[InstructionType.FP32] == 0.0


# -- launch ---------------------------------------------------------------------


def test_launch_validation():
    with pytest.raises(ValueError):
        LaunchConfig(grid_size=0, block_size=256, elements=10)
    with pytest.raises(ValueError):
        LaunchConfig(grid_size=1, block_size=0, elements=10)
    with pytest.raises(ValueError):
        LaunchConfig(grid_size=1, block_size=1, elements=-1)


def test_launch_threads():
    launch = LaunchConfig(grid_size=9, block_size=512, elements=4608)
    assert launch.threads == 4608


def test_launch_for_elements_covers_data():
    launch = launch_for_elements(1000, block_size=256)
    assert launch.threads >= 1000
    assert launch.grid_size == 4


def test_launch_for_elements_per_thread():
    launch = launch_for_elements(1024, block_size=256, elements_per_thread=4)
    assert launch.grid_size == 1
    assert launch.elements == 1024


def test_natural_launch_uses_kernel_ratio():
    kernel = _kernel()
    launch = natural_launch(kernel, elements=512, block_size=128)
    assert launch.grid_size == 4


def test_merged_launch_adds_grids_and_elements():
    a = LaunchConfig(grid_size=4, block_size=256, elements=1024)
    b = LaunchConfig(grid_size=2, block_size=256, elements=512)
    merged = a.merged_with(b)
    assert merged.grid_size == 6
    assert merged.elements == 1536
    assert merged.block_size == 256


def test_merged_launch_requires_same_block_size():
    a = LaunchConfig(grid_size=1, block_size=256, elements=256)
    b = LaunchConfig(grid_size=1, block_size=128, elements=128)
    with pytest.raises(ValueError):
        a.merged_with(b)


@given(
    st.integers(min_value=1, max_value=10**7),
    st.sampled_from([32, 64, 128, 256, 512, 1024]),
)
def test_launch_for_elements_minimal_grid(elements, block_size):
    launch = launch_for_elements(elements, block_size=block_size)
    assert launch.threads >= elements
    # Grid is minimal: one block fewer would not cover the data.
    assert (launch.grid_size - 1) * block_size < elements


@given(
    st.integers(min_value=1, max_value=1000),
    st.integers(min_value=1, max_value=1000),
)
def test_merged_launch_is_commutative(grid_a, grid_b):
    a = LaunchConfig(grid_size=grid_a, block_size=256, elements=grid_a * 256)
    b = LaunchConfig(grid_size=grid_b, block_size=256, elements=grid_b * 256)
    ab, ba = a.merged_with(b), b.merged_with(a)
    assert ab.grid_size == ba.grid_size
    assert ab.elements == ba.elements
