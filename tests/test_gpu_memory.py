"""Tests for the device memory allocator."""

import pytest
from hypothesis import given, strategies as st

from repro.gpu import DeviceMemoryAllocator, OutOfDeviceMemory


def test_allocate_basics():
    mem = DeviceMemoryAllocator(1024)
    buf = mem.allocate(256, owner="vp0")
    assert buf.size == 256
    assert buf.owner == "vp0"
    assert mem.used_bytes == 256
    assert mem.free_bytes == 768


def test_allocate_zero_rejected():
    mem = DeviceMemoryAllocator(1024)
    with pytest.raises(ValueError):
        mem.allocate(0)


def test_capacity_validation():
    with pytest.raises(ValueError):
        DeviceMemoryAllocator(0)


def test_out_of_memory():
    mem = DeviceMemoryAllocator(100)
    mem.allocate(60)
    with pytest.raises(OutOfDeviceMemory):
        mem.allocate(50)


def test_free_reclaims_space():
    mem = DeviceMemoryAllocator(100)
    buf = mem.allocate(100)
    mem.free(buf)
    assert mem.free_bytes == 100
    again = mem.allocate(100)
    assert again.address == 0


def test_double_free_rejected():
    mem = DeviceMemoryAllocator(100)
    buf = mem.allocate(10)
    mem.free(buf)
    with pytest.raises(RuntimeError):
        mem.free(buf)


def test_free_foreign_buffer_rejected():
    mem_a = DeviceMemoryAllocator(100)
    mem_b = DeviceMemoryAllocator(100)
    buf = mem_a.allocate(10)
    with pytest.raises(RuntimeError):
        mem_b.free(buf)


def test_first_fit_reuses_gap():
    mem = DeviceMemoryAllocator(300)
    a = mem.allocate(100)
    b = mem.allocate(100)
    mem.allocate(100)
    mem.free(a)
    mem.free(b)
    # A 150-byte allocation fits in the merged [0, 200) gap.
    buf = mem.allocate(150)
    assert buf.address == 0


def test_allocate_contiguous_adjacency():
    mem = DeviceMemoryAllocator(1000)
    buffers = mem.allocate_contiguous([100, 200, 50], owner="coalesced")
    assert mem.are_contiguous(buffers)
    assert buffers[0].end == buffers[1].address
    assert buffers[1].end == buffers[2].address


def test_allocate_contiguous_skips_fragmented_gaps():
    mem = DeviceMemoryAllocator(1000)
    a = mem.allocate(100)       # [0, 100)
    mem.allocate(100)           # [100, 200)
    mem.free(a)                 # gap [0, 100)
    buffers = mem.allocate_contiguous([80, 80])
    # 160 bytes do not fit the 100-byte gap; placed after existing data.
    assert buffers[0].address == 200
    assert mem.are_contiguous(buffers)


def test_allocate_contiguous_validation():
    mem = DeviceMemoryAllocator(100)
    with pytest.raises(ValueError):
        mem.allocate_contiguous([])
    with pytest.raises(ValueError):
        mem.allocate_contiguous([10, 0])


def test_allocate_contiguous_out_of_memory():
    mem = DeviceMemoryAllocator(100)
    with pytest.raises(OutOfDeviceMemory):
        mem.allocate_contiguous([60, 60])


def test_are_contiguous_detects_gap():
    mem = DeviceMemoryAllocator(1000)
    a = mem.allocate(100)
    _gap = mem.allocate(100)
    b = mem.allocate(100)
    assert not mem.are_contiguous([a, b])
    assert not mem.are_contiguous([])


def test_owner_tracking_and_release():
    mem = DeviceMemoryAllocator(1000)
    mem.allocate(100, owner="vp0")
    mem.allocate(200, owner="vp0")
    mem.allocate(50, owner="vp1")
    assert len(mem.owned_by("vp0")) == 2
    released = mem.release_owner("vp0")
    assert released == 300
    assert mem.owned_by("vp0") == []
    assert len(mem.owned_by("vp1")) == 1


@given(st.lists(st.integers(min_value=1, max_value=64), min_size=1, max_size=20))
def test_contiguous_allocation_total_and_order(sizes):
    mem = DeviceMemoryAllocator(64 * 20 + 1)
    buffers = mem.allocate_contiguous(sizes)
    assert [b.size for b in buffers] == sizes
    assert mem.are_contiguous(buffers)
    span = buffers[-1].end - buffers[0].address
    assert span == sum(sizes)


@given(
    st.lists(
        st.tuples(st.booleans(), st.integers(min_value=1, max_value=128)),
        min_size=1,
        max_size=50,
    )
)
def test_allocator_never_overlaps(ops):
    """Property: live buffers never overlap, whatever the alloc/free pattern."""
    mem = DeviceMemoryAllocator(4096)
    live = []
    for is_alloc, size in ops:
        if is_alloc or not live:
            try:
                live.append(mem.allocate(size))
            except OutOfDeviceMemory:
                pass
        else:
            mem.free(live.pop(0))
    ordered = sorted(live, key=lambda b: b.address)
    for left, right in zip(ordered, ordered[1:]):
        assert left.end <= right.address
    assert mem.used_bytes == sum(b.size for b in live)
