"""Exporter contract: valid Perfetto JSON, stamped artifacts, timelines.

Checks the acceptance shape of ``repro trace`` output: per-VP *and*
per-GPU engine tracks (every engine span is dual-placed), scheduler
decisions as instant events, and a run stamp carrying the farm's
config-hash identity and seed.
"""

import json

import pytest

import repro.obs as obs
from repro.analysis.timeline import (
    Lane,
    Timeline,
    collect_timeline,
    render_gantt,
    timeline_from_trace,
)
from repro.core.scenarios import run_sigma_vp
from repro.exec import FarmJob
from repro.exec.jobs import scenario_summary
from repro.obs import (
    config_key,
    git_commit,
    metrics_snapshot,
    prom_name,
    render_metrics,
    run_stamp,
    seed_for,
    to_chrome_trace,
    to_prometheus,
    validate_chrome_trace,
    write_metrics,
    write_trace,
)
from repro.workloads import get_workload

FN = "repro.exec.jobs:scenario_summary"
KWARGS = {"app": "vectorAdd", "n_vps": 2}


@pytest.fixture(scope="module")
def captured():
    with obs.capture() as cap:
        scenario_summary(**KWARGS)
    return cap


@pytest.fixture(scope="module")
def trace(captured):
    stamp = run_stamp(FN, KWARGS)
    return to_chrome_trace([("va2", captured.tracer)], stamp)


class TestStamp:
    def test_config_key_matches_farm_job_identity(self):
        job = FarmJob(fn=FN, kwargs=KWARGS)
        assert config_key(FN, KWARGS) == job.key
        assert seed_for(job.key) == job.seed

    def test_stamp_fields(self):
        stamp = run_stamp(FN, KWARGS, label="va2")
        assert stamp["fn"] == FN
        assert stamp["config"] == KWARGS
        assert stamp["config_hash"] == config_key(FN, KWARGS)
        assert stamp["seed"] == seed_for(stamp["config_hash"])
        assert stamp["label"] == "va2"

    def test_stamp_rides_on_both_artifact_kinds(self, captured, trace, tmp_path):
        stamp = run_stamp(FN, KWARGS)
        assert trace["otherData"]["config_hash"] == stamp["config_hash"]
        path = write_metrics(tmp_path / "m.json", captured.registry, stamp)
        loaded = json.loads(path.read_text())
        assert loaded["stamp"]["config_hash"] == stamp["config_hash"]
        assert loaded["stamp"]["seed"] == stamp["seed"]


class TestChromeTrace:
    def test_schema_valid(self, trace):
        assert validate_chrome_trace(trace) == []
        json.dumps(trace)

    def _process_names(self, trace):
        return {
            e["pid"]: e["args"]["name"]
            for e in trace["traceEvents"]
            if e["ph"] == "M" and e["name"] == "process_name"
        }

    def test_engine_spans_dual_placed_on_gpu_and_vp_tracks(self, trace):
        names = set(self._process_names(trace).values())
        assert "gpu0" in names
        assert {"vp:vp0", "vp:vp1"} <= names

    def test_engine_role_threads_present(self, trace):
        threads = {
            (e["pid"], e["args"]["name"])
            for e in trace["traceEvents"]
            if e["ph"] == "M" and e["name"] == "thread_name"
        }
        by_pid = {}
        for pid, thread in threads:
            by_pid.setdefault(pid, set()).add(thread)
        gpu_pid = next(
            pid for pid, name in self._process_names(trace).items()
            if name == "gpu0"
        )
        assert {"h2d", "compute", "d2h"} <= by_pid[gpu_pid]

    def test_scheduler_decisions_are_instant_events(self, trace):
        instants = [e for e in trace["traceEvents"] if e["ph"] == "i"]
        assert instants, "no instant events exported"
        assert all(e["s"] == "p" for e in instants)
        assert any(e["name"] == "dispatch" for e in instants)
        assert any(e["name"] == "merge" for e in instants)

    def test_durations_in_microseconds(self, captured, trace):
        spans = [e for e in trace["traceEvents"] if e["ph"] == "X"]
        engine = [e for e in spans if e["cat"] == "engine"]
        assert engine
        # ms -> us conversion: every duration is non-negative and the
        # longest engine span matches the tracer's record.
        longest = max(
            (s[5] - s[4]) for s in captured.tracer.spans if s[2] == "engine"
        )
        assert max(e["dur"] for e in engine) == pytest.approx(longest * 1000.0)

    def test_write_trace_roundtrips(self, captured, tmp_path):
        path = write_trace(
            tmp_path / "t.json", [("va2", captured.tracer)], run_stamp(FN, KWARGS)
        )
        loaded = json.loads(path.read_text())
        assert validate_chrome_trace(loaded) == []


class TestEmptyCapture:
    def test_empty_capture_exports_valid_artifacts(self, tmp_path):
        with obs.capture() as cap:
            pass  # nothing ran: zero spans, zero metrics
        stamp = run_stamp(FN, KWARGS)
        trace = to_chrome_trace([("empty", cap.tracer)], stamp)
        assert validate_chrome_trace(trace) == []
        assert [e for e in trace["traceEvents"] if e["ph"] != "M"] == []
        path = write_trace(tmp_path / "empty.json", [("empty", cap.tracer)], stamp)
        assert validate_chrome_trace(json.loads(path.read_text())) == []
        metrics_path = write_metrics(tmp_path / "empty_m.json", cap.registry, stamp)
        loaded = json.loads(metrics_path.read_text())
        assert loaded["metrics"] == {}
        assert loaded["stamp"]["config_hash"] == stamp["config_hash"]


class TestGitCommitStamp:
    def test_stamp_carries_git_commit(self):
        stamp = run_stamp(FN, KWARGS)
        assert "git_commit" in stamp
        # In this repo's checkout the hash resolves; the field contract
        # is "full hex hash or empty string", never missing.
        commit = stamp["git_commit"]
        assert commit == "" or (
            len(commit) == 40 and all(c in "0123456789abcdef" for c in commit)
        )
        assert git_commit() == commit  # cached: one revision per process


class TestMetricsExport:
    def test_snapshot_and_render(self, captured):
        snap = metrics_snapshot(captured.registry, run_stamp(FN, KWARGS))
        assert snap["schema"] == "repro.obs.metrics/1"
        text = render_metrics(snap)
        assert "dispatch.decisions" in text
        assert snap["stamp"]["config_hash"] in text

    def test_write_metrics_emits_prom_sibling(self, captured, tmp_path):
        path = write_metrics(
            tmp_path / "m.json", captured.registry, run_stamp(FN, KWARGS)
        )
        sibling = path.with_suffix(".prom")
        assert sibling.is_file()
        text = sibling.read_text()
        assert "# TYPE repro_dispatch_decisions counter" in text
        assert 'repro_run_info{label="scenario_summary",' in text

    def test_write_metrics_can_skip_prom(self, captured, tmp_path):
        path = write_metrics(
            tmp_path / "no_prom.json",
            captured.registry,
            run_stamp(FN, KWARGS),
            prom=False,
        )
        assert not path.with_suffix(".prom").exists()


class TestPrometheusExposition:
    def test_name_sanitization(self):
        assert (
            prom_name("engine.gpu0/compute.busy_ms")
            == "repro_engine_gpu0_compute_busy_ms"
        )
        assert prom_name("0weird").startswith("repro__0weird")

    def test_counter_gauge_and_histogram_shapes(self):
        from repro.obs.metrics import MetricsRegistry

        registry = MetricsRegistry()
        registry.counter("c").inc(3)
        registry.gauge("g").set(0.5)
        h = registry.histogram("h", (1.0, 10.0))
        h.observe(0.5)
        h.observe(5.0)
        h.observe(100.0)
        text = to_prometheus(registry.snapshot())
        assert "# TYPE repro_c counter\nrepro_c 3" in text
        assert "# TYPE repro_g gauge\nrepro_g 0.5" in text
        # Cumulative buckets: le=1 -> 1, le=10 -> 2, +Inf -> 3.
        assert 'repro_h_bucket{le="1"} 1' in text
        assert 'repro_h_bucket{le="10"} 2' in text
        assert 'repro_h_bucket{le="+Inf"} 3' in text
        assert "repro_h_count 3" in text

    def test_run_info_carries_identity_labels(self, captured):
        stamp = run_stamp(FN, KWARGS, label="va2")
        text = to_prometheus(metrics_snapshot(captured.registry, stamp))
        assert (
            f'repro_run_info{{label="va2",'
            f'config_hash="{stamp["config_hash"]}",'
            f'git_commit="{stamp["git_commit"]}"}} 1'
        ) in text


class TestTimelineFromTrace:
    def test_matches_live_collect_timeline(self):
        spec = get_workload("vectorAdd").scaled_to(2048, iterations=2)
        with obs.capture() as cap:
            result = run_sigma_vp(spec, n_vps=2)
        live = collect_timeline(result.extras["framework"])
        rebuilt = timeline_from_trace(cap.tracer)
        assert [l.name for l in rebuilt.lanes] == [l.name for l in live.lanes]
        for name in ("h2d", "compute", "d2h"):
            assert rebuilt.lane(name).busy_ms == pytest.approx(
                live.lane(name).busy_ms
            )
        assert rebuilt.vp_spans == live.vp_spans

    def test_accepts_payload_dict(self):
        with obs.capture() as cap:
            scenario_summary(**KWARGS)
        rebuilt = timeline_from_trace(cap.tracer.to_payload())
        assert rebuilt.horizon_ms > 0
        assert rebuilt.lane("compute").spans


class TestRenderGanttEmptyHandling:
    def test_zero_horizon(self):
        assert render_gantt(Timeline(lanes=[], horizon_ms=0.0)) == "(empty timeline)"

    def test_no_lanes_with_positive_horizon(self):
        assert render_gantt(Timeline(lanes=[], horizon_ms=5.0)) == "(empty timeline)"

    def test_lanes_without_spans(self):
        timeline = Timeline(
            lanes=[Lane("h2d", []), Lane("compute", [])], horizon_ms=5.0
        )
        assert render_gantt(timeline) == "(empty timeline)"

    def test_empty_lane_selection(self):
        with obs.capture() as cap:
            scenario_summary(**KWARGS)
        timeline = timeline_from_trace(cap.tracer)
        assert render_gantt(timeline, lanes=[]) == "(empty timeline)"
        assert render_gantt(timeline) != "(empty timeline)"
