"""Tests for cudaEvent-style stream timing markers."""

import numpy as np
import pytest

from repro.core.handles import HandleTable
from repro.core.ipc import IPCManager, SHARED_MEMORY
from repro.core.jobs import JobQueue
from repro.core.dispatcher import JobDispatcher, ServiceMode
from repro.core.profiler import Profiler
from repro.core.rescheduler import FIFOPolicy
from repro.gpu import HostGPU, QUADRO_4000
from repro.kernels import LaunchConfig, MemoryFootprint, uniform_kernel
from repro.kernels.functional import FunctionalRegistry
from repro.sim import Environment
from repro.vp import (
    CudaRuntime,
    EmulationBackend,
    HOST_XEON,
    NativeGPUBackend,
    SigmaVPBackend,
    VirtualPlatform,
)
from repro.vp.cuda_runtime import GpuEvent, event_elapsed_ms


def _kernel():
    return uniform_kernel(
        "evk",
        {"fp32": 50, "load": 1, "store": 1},
        MemoryFootprint(bytes_in=8192, bytes_out=8192, working_set_bytes=8192),
    )


def _timed_app(api):
    """Measure a kernel with events, the way CUDA apps self-profile."""

    def app():
        handle = yield from api.malloc(8192)
        yield from api.memcpy_h2d(handle, np.zeros(2048, dtype=np.float32),
                                  sync=True)
        start = yield from api.event_create()
        yield from api.event_record(start)
        launch = LaunchConfig(grid_size=8, block_size=256, elements=2048)
        yield from api.launch_kernel(_kernel(), launch, args=[handle],
                                     out=handle)
        end = yield from api.event_create()
        yield from api.event_record(end)
        yield from api.event_synchronize(end)
        return event_elapsed_ms(start, end)

    return app


def test_gpu_event_lifecycle():
    event = GpuEvent()
    assert not event.recorded
    with pytest.raises(RuntimeError):
        _ = event.timestamp_ms
    event._record(5.0)
    assert event.recorded
    assert event.timestamp_ms == 5.0


def test_elapsed_between_events():
    a, b = GpuEvent(), GpuEvent()
    a._record(2.0)
    b._record(7.5)
    assert event_elapsed_ms(a, b) == pytest.approx(5.5)


def test_events_measure_kernel_on_sigma_vp():
    env = Environment()
    gpu = HostGPU(env, QUADRO_4000)
    queue = JobQueue(env)
    handles = HandleTable()
    ipc = IPCManager(env, queue, transport=SHARED_MEMORY)
    JobDispatcher(env, gpu, queue, handles, policy=FIFOPolicy(),
                  mode=ServiceMode.PIPELINED, registry=FunctionalRegistry(),
                  profiler=Profiler())
    vp = VirtualPlatform(env, "vp0")
    api = CudaRuntime(SigmaVPBackend(env, vp, ipc, handles))
    elapsed = env.run(vp.run_app(_timed_app(api)))
    # The elapsed time brackets the kernel: positive and roughly the
    # kernel duration plus the per-launch overheads.
    kernel_ms = gpu.timing.kernel_time_ms(
        gpu.compiler.compile(_kernel(), gpu.arch),
        LaunchConfig(grid_size=8, block_size=256, elements=2048),
    )
    assert elapsed > kernel_ms * 0.9
    assert elapsed < kernel_ms + 5.0


def test_events_order_respects_stream(capsys=None):
    """The end event's timestamp is at/after the kernel's completion,
    the start event's at/before the kernel's start."""
    env = Environment()
    gpu = HostGPU(env, QUADRO_4000)
    queue = JobQueue(env)
    handles = HandleTable()
    ipc = IPCManager(env, queue, transport=SHARED_MEMORY)
    JobDispatcher(env, gpu, queue, handles, policy=FIFOPolicy(),
                  registry=FunctionalRegistry(), profiler=Profiler())
    vp = VirtualPlatform(env, "vp0")
    api = CudaRuntime(SigmaVPBackend(env, vp, ipc, handles))

    events = {}

    def app():
        start = yield from api.event_create()
        end = yield from api.event_create()
        yield from api.event_record(start)
        launch = LaunchConfig(grid_size=8, block_size=256, elements=2048)
        yield from api.launch_kernel(_kernel(), launch)
        yield from api.event_record(end)
        yield from api.event_synchronize(end)
        events["start"] = start.timestamp_ms
        events["end"] = end.timestamp_ms

    env.run(vp.run_app(app))
    span = gpu.compute_engine.timeline[0]
    assert events["start"] <= span.start_ms
    assert events["end"] >= span.end_ms


def test_events_on_native_backend():
    env = Environment()
    gpu = HostGPU(env, QUADRO_4000)
    host = VirtualPlatform(env, "host", cpu=HOST_XEON)
    api = CudaRuntime(NativeGPUBackend(env, gpu, host,
                                       registry=FunctionalRegistry()))
    elapsed = env.run(host.run_app(_timed_app(api)))
    assert elapsed > 0


def test_events_on_emulation_backend():
    env = Environment()
    platform = VirtualPlatform(env, "emu", cpu=HOST_XEON)
    api = CudaRuntime(EmulationBackend(env, platform,
                                       registry=FunctionalRegistry()))
    elapsed = env.run(platform.run_app(_timed_app(api)))
    # Emulation is synchronous: the record brackets the interpret time.
    assert elapsed > 0


def test_event_synchronize_without_record_is_noop_when_recorded():
    env = Environment()
    platform = VirtualPlatform(env, "emu", cpu=HOST_XEON)
    api = CudaRuntime(EmulationBackend(env, platform,
                                       registry=FunctionalRegistry()))

    def app():
        event = yield from api.event_create()
        yield from api.event_record(event)
        yield from api.event_synchronize(event)
        return event.recorded

    assert env.run(platform.run_app(app)) is True
