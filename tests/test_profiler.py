"""Tests for the Profiler's aggregations."""

import pytest

from repro.core.jobs import Job, JobKind
from repro.core.profiler import Profiler
from repro.gpu import QUADRO_4000
from repro.gpu.timing import KernelTimingModel
from repro.kernels import (
    InstructionType,
    KernelCompiler,
    LaunchConfig,
    MemoryFootprint,
    uniform_kernel,
)
from repro.sim import Environment

COMPILER = KernelCompiler()
MODEL = KernelTimingModel(QUADRO_4000)


def _profile(name="k", fp32=8.0):
    kernel = uniform_kernel(
        name,
        {"fp32": fp32, "load": 1, "int": 2},
        MemoryFootprint(bytes_in=8192, bytes_out=8192, working_set_bytes=8192),
    )
    launch = LaunchConfig(grid_size=8, block_size=256, elements=2048)
    return MODEL.execute(COMPILER.compile(kernel, QUADRO_4000), launch)


def _job(env, vp="vp0", members=0):
    job = Job(vp=vp, seq=0, kind=JobKind.KERNEL, completion=env.event())
    job.members = [
        Job(vp=f"m{i}", seq=0, kind=JobKind.KERNEL, completion=env.event())
        for i in range(members)
    ]
    return job


def test_record_and_lookup():
    env = Environment()
    profiler = Profiler()
    record = profiler.record(_job(env), _profile("alpha"))
    assert record.kernel_name == "alpha"
    assert len(profiler) == 1
    assert profiler.kernels_profiled() == ["alpha"]
    assert profiler.last_profile("alpha") is record.profile
    assert profiler.last_profile("ghost") is None


def test_last_profile_returns_latest():
    env = Environment()
    profiler = Profiler()
    profiler.record(_job(env), _profile("k", fp32=2.0))
    second = profiler.record(_job(env), _profile("k", fp32=9.0))
    assert profiler.last_profile("k") is second.profile
    assert profiler.last_profile() is second.profile


def test_records_for_filters_by_kernel():
    env = Environment()
    profiler = Profiler()
    profiler.record(_job(env), _profile("a"))
    profiler.record(_job(env), _profile("b"))
    profiler.record(_job(env), _profile("a"))
    assert len(profiler.records_for("a")) == 2
    assert len(profiler.records_for("b")) == 1


def test_total_sigma_accumulates():
    env = Environment()
    profiler = Profiler()
    p1 = _profile("k")
    profiler.record(_job(env), p1)
    profiler.record(_job(env), p1)
    totals = profiler.total_sigma("k")
    assert totals[InstructionType.FP32] == pytest.approx(
        2 * p1.sigma[InstructionType.FP32]
    )


def test_total_elapsed_cycles():
    env = Environment()
    profiler = Profiler()
    p = _profile("k")
    profiler.record(_job(env), p)
    profiler.record(_job(env), p)
    assert profiler.total_elapsed_cycles("k") == pytest.approx(
        2 * p.elapsed_cycles
    )
    assert profiler.total_elapsed_cycles("ghost") == 0.0


def test_stall_summary_averages():
    env = Environment()
    profiler = Profiler()
    profiler.record(_job(env), _profile("k"))
    summary = profiler.stall_summary("k")
    assert set(summary) == {"data_dependency", "other"}
    assert all(0 <= v <= 100 for v in summary.values())


def test_stall_summary_empty():
    profiler = Profiler()
    assert profiler.stall_summary() == {"data_dependency": 0.0, "other": 0.0}


def test_coalesced_member_count_recorded():
    env = Environment()
    profiler = Profiler()
    record = profiler.record(_job(env, members=5), _profile("k"))
    assert record.coalesced_members == 5
