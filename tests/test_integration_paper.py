"""Integration tests pinning the paper's headline results.

Each test reproduces one experimental claim end to end through the full
stack (VPs -> runtime -> IPC -> queue -> scheduler -> host GPU) and
asserts the *shape* the paper reports: orderings, rough factors, and
crossovers — the reproduction's contract (see EXPERIMENTS.md).
"""

import numpy as np
import pytest

from repro.core.interleaving import balanced_speedup
from repro.core.ipc import SHARED_MEMORY
from repro.core.scenarios import (
    run_c_program,
    run_emulation,
    run_native_gpu,
    run_sigma_vp,
)
from repro.vp import HOST_XEON, QEMU_ARM_VP
from repro.workloads import SUITE
from repro.workloads.linalg import make_vectoradd_spec
from repro.workloads.synthetic import make_phase_workload


# -- Table 1 ---------------------------------------------------------------------


@pytest.fixture(scope="module")
def table1():
    spec = SUITE["matrixMul"]
    native = run_native_gpu(spec).total_ms
    return {
        "native": native,
        "emul_cpu": run_emulation(spec, cpu=HOST_XEON).total_ms / native,
        "emul_vp": run_emulation(spec, cpu=QEMU_ARM_VP).total_ms / native,
        "sigma_vp": run_sigma_vp(spec, n_vps=1).total_ms / native,
        "c_cpu": run_c_program(spec, cpu=HOST_XEON).total_ms / native,
        "c_vp": run_c_program(spec, cpu=QEMU_ARM_VP).total_ms / native,
    }


def test_table1_native_magnitude(table1):
    # Paper: 170.79 ms for 300 multiplications.
    assert table1["native"] == pytest.approx(170.79, rel=0.25)


def test_table1_emulation_on_cpu_ratio(table1):
    # Paper ratio: 53.52.
    assert table1["emul_cpu"] == pytest.approx(53.52, rel=0.25)


def test_table1_emulation_on_vp_ratio(table1):
    # Paper ratio: 2192.95.
    assert table1["emul_vp"] == pytest.approx(2192.95, rel=0.25)


def test_table1_sigma_vp_ratio(table1):
    # Paper ratio: 3.32 -- within a few x of native.
    assert table1["sigma_vp"] == pytest.approx(3.32, rel=0.35)


def test_table1_c_ratios(table1):
    # Paper ratios: 48.09 (CPU) and 1580.15 (VP).
    assert table1["c_cpu"] == pytest.approx(48.09, rel=0.25)
    assert table1["c_vp"] == pytest.approx(1580.15, rel=0.25)


def test_table1_orderings(table1):
    """The qualitative claims: emulating CUDA inside a VP is worse than
    running plain C anywhere, and SigmaVP beats them all by orders of
    magnitude."""
    assert table1["sigma_vp"] < 10
    assert table1["c_cpu"] < table1["emul_cpu"] < table1["c_vp"] < table1["emul_vp"]


# -- Fig. 9: Kernel Interleaving -----------------------------------------------------


@pytest.mark.parametrize("n", [2, 4, 8, 16])
def test_fig9b_speedup_matches_eq8(n):
    spec = make_phase_workload(t_kernel_ms=4.0, t_copy_ms=4.0)
    serial = run_sigma_vp(spec, n_vps=n, interleaving=False, coalescing=False,
                          transport=SHARED_MEMORY)
    inter = run_sigma_vp(spec, n_vps=n, interleaving=True, coalescing=False,
                         transport=SHARED_MEMORY)
    speedup = serial.total_ms / inter.total_ms
    assert speedup == pytest.approx(balanced_speedup(n), rel=0.08)


def test_fig9a_peak_at_balanced_kernel():
    """Speedup peaks where kernel time matches the copy time."""

    def speedup(tk):
        spec = make_phase_workload(t_kernel_ms=tk, t_copy_ms=8.0)
        serial = run_sigma_vp(spec, n_vps=2, interleaving=False,
                              coalescing=False, transport=SHARED_MEMORY)
        inter = run_sigma_vp(spec, n_vps=2, interleaving=True,
                             coalescing=False, transport=SHARED_MEMORY)
        return serial.total_ms / inter.total_ms

    balanced = speedup(8.0)
    assert balanced > speedup(1.0)
    assert balanced > speedup(48.0)


# -- Fig. 10: Kernel Coalescing ------------------------------------------------------


def test_fig10a_speedup_grows_with_batch_degree():
    spec = make_vectoradd_spec(
        elements=4096, iterations=1, block_size=512,
        elements_per_thread=8, fp32_per_element=4000,
    )
    base = run_sigma_vp(spec, n_vps=32, interleaving=False, coalescing=False,
                        transport=SHARED_MEMORY).total_ms
    speedups = []
    for batch in (2, 8, 32):
        coal = run_sigma_vp(spec, n_vps=32, interleaving=False, coalescing=True,
                            max_batch=batch, transport=SHARED_MEMORY).total_ms
        speedups.append(base / coal)
    assert speedups[0] < speedups[1] < speedups[2]
    assert speedups[2] > 5.0  # an order-of-magnitude-class gain


def test_fig10b_staircase():
    """Single-kernel time vs grid size resembles a staircase (Eq. 9)."""
    from repro.gpu import QUADRO_4000
    from repro.gpu.timing import KernelTimingModel
    from repro.kernels import (
        KernelCompiler,
        LaunchConfig,
        MemoryFootprint,
        uniform_kernel,
    )

    # A compute-bound kernel (the staircase is an issue-quantization
    # effect; memory stalls vary smoothly with the grid).
    kernel = uniform_kernel(
        "stair",
        {"fp32": 2000, "int": 8, "load": 0.5, "store": 0.5},
        MemoryFootprint(bytes_in=4096, bytes_out=4096,
                        working_set_bytes=32 * 1024, locality=0.95),
    )
    model = KernelTimingModel(QUADRO_4000)
    compiler = KernelCompiler()
    compiled = compiler.compile(kernel, QUADRO_4000)

    def time_for(grid):
        launch = LaunchConfig(grid_size=grid, block_size=512,
                              elements=grid * 512)
        return model.kernel_time_ms(compiled, launch)

    # Paper: grids 9 and 16 cost the same; 17 steps up.
    assert time_for(9) == pytest.approx(time_for(16), rel=0.02)
    assert time_for(17) > time_for(16) * 1.2
    # Full staircase: exactly three risers over grids 1..64 (at 17, 33,
    # 49 — the 16-block wave quantum).
    times = [time_for(g) for g in range(1, 65)]
    riser_height = (max(times) - min(times)) / 4
    risers = [
        g for g in range(1, 64) if times[g] - times[g - 1] > 0.5 * riser_height
    ]
    assert risers == [16, 32, 48]  # 0-indexed: grids 17, 33, 49


# -- Fig. 11: the suite ---------------------------------------------------------------


@pytest.fixture(scope="module")
def fig11_results():
    apps = ("BlackScholes", "SobelFilter", "mergeSort", "dct8x8", "simpleGL")
    results = {}
    for name in apps:
        spec = SUITE[name]
        emul = run_emulation(spec, n_instances=8).total_ms
        base = run_sigma_vp(spec, n_vps=8, interleaving=False,
                            coalescing=False).total_ms
        opt = run_sigma_vp(spec, n_vps=8, interleaving=True,
                           coalescing=True).total_ms
        results[name] = (emul / base, emul / opt)
    return results


def test_fig11_speedups_are_orders_of_magnitude(fig11_results):
    for name, (base, opt) in fig11_results.items():
        assert base > 100, name
        assert opt > 100, name


def test_fig11_blackscholes_is_best(fig11_results):
    others = [v[0] for k, v in fig11_results.items() if k != "BlackScholes"]
    assert fig11_results["BlackScholes"][0] > max(others)


def test_fig11_fp_light_apps_have_lower_speedups(fig11_results):
    """SobelFilter and mergeSort (FP-light) trail the FP-heavy apps."""
    assert fig11_results["SobelFilter"][0] < fig11_results["BlackScholes"][0] / 2
    assert fig11_results["mergeSort"][0] < fig11_results["BlackScholes"][0] / 2


def test_fig11_non_coalescible_apps_gain_little(fig11_results):
    base, opt = fig11_results["dct8x8"]
    assert opt / base < 1.2
    base, opt = fig11_results["SobelFilter"]
    assert opt / base < 1.2


def test_fig11_optimizations_help_benefiting_apps(fig11_results):
    base, opt = fig11_results["simpleGL"]
    assert opt / base > 1.2
    base, opt = fig11_results["BlackScholes"]
    assert opt / base > 1.3


# -- cross-backend functional equivalence ----------------------------------------------


def test_same_binary_same_results_everywhere():
    """The paper's binary-compatibility pitch: one application, identical
    numerical output on emulation, native GPU, and SigmaVP."""
    spec = make_vectoradd_spec(elements=2048, iterations=1)
    native = run_native_gpu(spec, functional=True).extras["result"]
    emul = run_emulation(spec, cpu=HOST_XEON, functional=True).extras["result"]
    sigma = run_sigma_vp(spec, n_vps=1, functional=True).extras["result"]
    np.testing.assert_array_equal(native, emul)
    np.testing.assert_array_equal(native, sigma)
