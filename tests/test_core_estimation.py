"""Tests for profile-based execution analysis (paper Section 4)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.estimation import ExecutionAnalyzer
from repro.gpu import GRID_K520, QUADRO_4000, TEGRA_K1
from repro.kernels import (
    ALL_TYPES,
    InstructionType,
    LaunchConfig,
    MemoryFootprint,
    uniform_kernel,
)


def _kernel(per_thread=None, working_set=96 * 1024, locality=0.85):
    return uniform_kernel(
        "est-k",
        per_thread or {"fp32": 20, "int": 8, "load": 2, "store": 1, "branch": 2},
        MemoryFootprint(
            bytes_in=working_set,
            bytes_out=working_set,
            working_set_bytes=working_set,
            locality=locality,
        ),
    )


def _launch(grid=128, block=256):
    return LaunchConfig(grid_size=grid, block_size=block, elements=grid * block)


@pytest.fixture
def analyzer():
    return ExecutionAnalyzer(QUADRO_4000, TEGRA_K1)


# -- sigma (Eq. 1) ------------------------------------------------------------


def test_sigma_differs_between_host_and_target(analyzer):
    """Fig. 8: the same kernel compiles to more instructions on target."""
    kernel, launch = _kernel(), _launch()
    sigma_host = sum(analyzer.sigma(kernel, launch, QUADRO_4000).values())
    sigma_target = sum(analyzer.sigma(kernel, launch, TEGRA_K1).values())
    assert sigma_target > sigma_host


def test_sigma_scales_with_launch(analyzer):
    kernel = _kernel()
    small = sum(analyzer.sigma(kernel, _launch(grid=16), TEGRA_K1).values())
    large = sum(analyzer.sigma(kernel, _launch(grid=64), TEGRA_K1).values())
    assert large == pytest.approx(4 * small)


# -- estimators (Eqs. 2, 4, 5) ----------------------------------------------------


def test_estimate_c_matches_peak_ipc_formula(analyzer):
    kernel, launch = _kernel(), _launch()
    sigma_total = sum(analyzer.sigma(kernel, launch, TEGRA_K1).values())
    assert analyzer.estimate_c(kernel, launch) == pytest.approx(
        sigma_total / TEGRA_K1.ipc_peak
    )


def test_ideal_cycles_use_device_tau(analyzer):
    kernel, launch = _kernel({"fp32": 10}), _launch()
    sigma = analyzer.sigma(kernel, launch, TEGRA_K1)
    expected = sigma[InstructionType.FP32] * TEGRA_K1.device_issue_cycles(
        InstructionType.FP32
    )
    assert analyzer.ideal_cycles(kernel, launch, TEGRA_K1) == pytest.approx(expected)


def test_refinement_ladder_approaches_truth(analyzer):
    """Fig. 12's shape: C < C' < C'' with C'' near the observation."""
    kernel, launch = _kernel(), _launch()
    host_profile = analyzer.profile_on_host(kernel, launch)
    truth = analyzer.observe_on_target(kernel, launch).elapsed_cycles

    est = analyzer.analyze(kernel, launch, host_profile=host_profile)
    err_c = abs(est.c_cycles - truth) / truth
    err_cp = abs(est.c_prime_cycles - truth) / truth
    err_cpp = abs(est.c_double_prime_cycles - truth) / truth

    assert err_cpp < err_cp < err_c
    assert err_cpp < 0.15


def test_c_double_prime_accurate_across_hosts():
    """Fig. 12(b): the estimate holds whichever host profiles the kernel."""
    kernel, launch = _kernel(), _launch()
    for host in (QUADRO_4000, GRID_K520):
        analyzer = ExecutionAnalyzer(host, TEGRA_K1)
        truth = analyzer.observe_on_target(kernel, launch).elapsed_cycles
        est = analyzer.analyze(kernel, launch)
        assert est.c_double_prime_cycles == pytest.approx(truth, rel=0.15)


def test_estimate_selection_by_name(analyzer):
    kernel, launch = _kernel(), _launch()
    est = analyzer.analyze(kernel, launch)
    assert est.cycles("C") == est.c_cycles
    assert est.cycles("C'") == est.c_prime_cycles
    assert est.cycles("C''") == est.c_double_prime_cycles
    with pytest.raises(ValueError):
        est.cycles("C'''")


def test_analyze_profiles_host_when_not_given(analyzer):
    kernel, launch = _kernel(), _launch()
    est = analyzer.analyze(kernel, launch)
    explicit = analyzer.analyze(
        kernel, launch, host_profile=analyzer.profile_on_host(kernel, launch)
    )
    assert est.c_double_prime_cycles == pytest.approx(explicit.c_double_prime_cycles)


def test_estimated_time_uses_target_clock(analyzer):
    cycles = 852_000.0  # one ms at Tegra's 852 MHz
    assert analyzer.estimated_time_ms(cycles) == pytest.approx(1.0)
    with pytest.raises(ValueError):
        analyzer.estimated_time_ms(-1.0)


# -- power (Eq. 6) --------------------------------------------------------------


def test_power_estimate_within_paper_band(analyzer):
    """Fig. 13: estimates within ~10% of the measured value."""
    kernel, launch = _kernel(), _launch()
    measured = analyzer.observed_power(kernel, launch)
    estimated = analyzer.estimate_power(kernel, launch)
    error = abs(estimated.total_w - measured.total_w) / measured.total_w
    assert error < 0.12


def test_power_includes_static_component(analyzer):
    kernel, launch = _kernel(), _launch()
    estimate = analyzer.estimate_power(kernel, launch)
    assert estimate.static_w == TEGRA_K1.static_power_w
    assert estimate.total_w > TEGRA_K1.static_power_w
    assert estimate.dynamic_w > 0


def test_measured_power_exceeds_estimate_for_memory_heavy_kernels(analyzer):
    """DRAM interface energy is visible to the meter, not to Eq. (6)."""
    kernel = _kernel(
        {"load": 8, "store": 4, "int": 2},
        working_set=64 * 1024 * 1024,
        locality=0.1,
    )
    launch = _launch()
    measured = analyzer.observed_power(kernel, launch)
    estimated = analyzer.estimate_power(kernel, launch)
    assert measured.total_w > estimated.total_w


def test_power_energy_consistency(analyzer):
    kernel, launch = _kernel(), _launch()
    estimate = analyzer.estimate_power(kernel, launch)
    assert estimate.energy_mj == pytest.approx(
        estimate.total_w * estimate.execution_time_ms / 1e3
    )


def test_fp_heavy_kernel_draws_more_power(analyzer):
    launch = _launch()
    light = analyzer.estimate_power(_kernel({"int": 4, "load": 1}), launch)
    heavy = analyzer.estimate_power(
        _kernel({"fp32": 60, "load": 1}), launch
    )
    assert heavy.dynamic_w > light.dynamic_w


@settings(max_examples=15, deadline=None)
@given(
    fp32=st.floats(min_value=1, max_value=200, allow_nan=False),
    # Eq. (5)'s correction targets data-dependency stalls; for nearly
    # load-free kernels the swap is noise, so the ladder claim starts at
    # a modest memory intensity.
    loads=st.floats(min_value=0.5, max_value=10, allow_nan=False),
    # Tiny grids sit inside one device wave, where quantization noise
    # dominates both estimates; the ladder holds from a few waves up.
    grid=st.integers(min_value=32, max_value=1024),
)
def test_ladder_property(fp32, loads, grid):
    """The refinement chain never inverts: err(C'') <= err(C') or both tiny."""
    analyzer = ExecutionAnalyzer(QUADRO_4000, TEGRA_K1)
    kernel = _kernel({"fp32": fp32, "load": loads, "int": 2})
    launch = _launch(grid=grid)
    truth = analyzer.observe_on_target(kernel, launch).elapsed_cycles
    est = analyzer.analyze(kernel, launch)
    err_cp = abs(est.c_prime_cycles - truth) / truth
    err_cpp = abs(est.c_double_prime_cycles - truth) / truth
    assert err_cpp <= err_cp + 0.05
