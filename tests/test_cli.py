"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


def test_parser_requires_command():
    with pytest.raises(SystemExit):
        build_parser().parse_args([])


def test_list_command(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    assert "Workload catalog" in out
    assert "BlackScholes" in out
    assert "matrixMul" in out


def test_run_command(capsys):
    assert main(["run", "vectorAdd", "--vps", "2", "--transport", "shm"]) == 0
    out = capsys.readouterr().out
    assert "total simulated time" in out
    assert "coalescer" in out


def test_run_with_gantt(capsys):
    assert main([
        "run", "vectorAdd", "--vps", "2", "--transport", "shm", "--gantt",
    ]) == 0
    out = capsys.readouterr().out
    assert "compute" in out
    assert "#" in out


def test_run_without_optimizations(capsys):
    assert main([
        "run", "vectorAdd", "--vps", "2", "--transport", "shm",
        "--no-interleaving", "--no-coalescing",
    ]) == 0
    out = capsys.readouterr().out
    assert "interleaving=off" in out
    assert "coalescing=off" in out


def test_run_multi_gpu(capsys):
    assert main([
        "run", "vectorAdd", "--vps", "4", "--gpus", "2", "--transport", "shm",
    ]) == 0
    assert "2 host GPU(s)" in capsys.readouterr().out


def test_run_unknown_app():
    with pytest.raises(KeyError):
        main(["run", "doom"])


def test_estimate_command(capsys):
    assert main(["estimate", "matrixMul"]) == 0
    out = capsys.readouterr().out
    assert "estimate C''" in out
    assert "estimated power" in out
    assert "Tegra K1" in out


def test_estimate_on_grid_host(capsys):
    assert main(["estimate", "dct8x8", "--host", "grid"]) == 0
    assert "Grid K520" in capsys.readouterr().out


def test_fig11_subset(capsys):
    assert main(["fig11", "mergeSort"]) == 0
    out = capsys.readouterr().out
    assert "mergeSort" in out
    assert "Fig 11" in out


def test_validate_command(capsys):
    assert main(["validate", "vectorAdd"]) == 0
    out = capsys.readouterr().out
    assert "functional validation" in out
    assert "OK" in out
