"""Tests for the SigmaVP framework facade."""

import numpy as np
import pytest

from repro.core import SHARED_MEMORY, SigmaVP
from repro.core.dispatcher import ServiceMode
from repro.core.rescheduler import FIFOPolicy, InterleavingPolicy
from repro.gpu import GRID_K520
from repro.workloads.linalg import make_vectoradd_spec


def test_default_wiring():
    framework = SigmaVP(n_vps=2)
    assert framework.interleaving and framework.coalescing
    assert isinstance(framework.dispatcher.policy, InterleavingPolicy)
    assert framework.dispatcher.mode is ServiceMode.PIPELINED
    assert framework.coalescer is not None
    assert framework.coalescer.target_batch == 2


def test_baseline_wiring():
    framework = SigmaVP(interleaving=False, coalescing=False)
    assert isinstance(framework.dispatcher.policy, FIFOPolicy)
    assert framework.dispatcher.mode is ServiceMode.SERIAL
    assert framework.coalescer is None


def test_add_vp_names_and_registration():
    framework = SigmaVP()
    session = framework.add_vp()
    assert session.vp.name == "vp0"
    assert framework.ipc.vp_control.registered() == ["vp0"]
    named = framework.add_vp("special")
    assert framework.session("special") is named
    with pytest.raises(ValueError):
        framework.add_vp("special")
    with pytest.raises(KeyError):
        framework.session("ghost")


def test_auto_target_batch_tracks_vp_count():
    framework = SigmaVP()
    for expected in (1, 2, 3):
        framework.add_vp()
        assert framework.coalescer.target_batch == expected


def test_explicit_target_batch_not_overwritten():
    framework = SigmaVP(target_batch=4, n_vps=8)
    assert framework.coalescer.target_batch == 4


def test_alternate_host_arch():
    framework = SigmaVP(host_arch=GRID_K520)
    assert framework.gpu.arch.name == "Grid K520"
    assert framework.analyzer.host is GRID_K520


def test_run_workload_requires_vps():
    framework = SigmaVP()
    with pytest.raises(RuntimeError):
        framework.run_workload(make_vectoradd_spec(elements=1024))


def test_run_workload_completes_all_vps():
    framework = SigmaVP(n_vps=3, transport=SHARED_MEMORY)
    spec = make_vectoradd_spec(elements=4096, iterations=2)
    total = framework.run_workload(spec)
    assert total > 0
    for session in framework.sessions.values():
        assert session.vp.finished_at_ms is not None
        assert session.processes[0].value is None or True  # completed


def test_profiler_collects_kernel_records():
    framework = SigmaVP(n_vps=2, transport=SHARED_MEMORY)
    spec = make_vectoradd_spec(elements=4096, iterations=3)
    framework.run_workload(spec)
    assert len(framework.profiler) >= 3  # merged launches count once each
    assert framework.profiler.kernels_profiled() == ["vectorAdd"]


def test_estimation_passthrough():
    framework = SigmaVP(n_vps=1)
    spec = make_vectoradd_spec(elements=4096, iterations=1)
    framework.run_workload(spec)
    estimate = framework.estimate_timing(spec.kernel, spec.launch_config())
    assert estimate.target_name == "Tegra K1"
    assert estimate.c_double_prime_cycles > 0
    power = framework.estimate_power(spec.kernel, spec.launch_config())
    assert power.total_w > 0


def test_functional_through_framework():
    from repro.kernels.functional import REGISTRY

    framework = SigmaVP(n_vps=2, transport=SHARED_MEMORY, registry=REGISTRY)
    spec = make_vectoradd_spec(elements=2048, iterations=1)
    framework.run_workload(spec)
    session = framework.session("vp0")
    result = session.processes[0].value
    a, b = spec.build_inputs(0)
    np.testing.assert_allclose(result, a + b)


def test_total_time_property():
    framework = SigmaVP(n_vps=1, transport=SHARED_MEMORY)
    spec = make_vectoradd_spec(elements=2048, iterations=1)
    framework.run_workload(spec)
    assert framework.total_time_ms == framework.env.now
