"""Tests for resources and stores."""

import pytest

from repro.sim import Environment, PriorityItem, PriorityStore, Resource, Store


# -- Resource ---------------------------------------------------------------


def test_resource_grants_up_to_capacity():
    env = Environment()
    res = Resource(env, capacity=2)
    r1, r2, r3 = res.request(), res.request(), res.request()
    env.run()
    assert r1.triggered and r2.triggered
    assert not r3.triggered
    assert res.count == 2


def test_resource_release_grants_next():
    env = Environment()
    res = Resource(env, capacity=1)
    holders = []

    def user(name, hold):
        with res.request() as req:
            yield req
            holders.append((name, env.now))
            yield env.timeout(hold)

    env.process(user("a", 2.0))
    env.process(user("b", 1.0))
    env.run()
    assert holders == [("a", 0.0), ("b", 2.0)]


def test_resource_fifo_order():
    env = Environment()
    res = Resource(env, capacity=1)
    order = []

    def user(name):
        with res.request() as req:
            yield req
            order.append(name)
            yield env.timeout(1.0)

    for name in ("first", "second", "third"):
        env.process(user(name))
    env.run()
    assert order == ["first", "second", "third"]


def test_resource_capacity_validation():
    env = Environment()
    with pytest.raises(ValueError):
        Resource(env, capacity=0)


def test_release_unowned_request_raises():
    env = Environment()
    res = Resource(env, capacity=1)
    req = res.request()
    env.run()
    res.release(req)
    with pytest.raises(RuntimeError):
        res.release(req)


def test_cancel_queued_request():
    env = Environment()
    res = Resource(env, capacity=1)
    res.request()
    waiting = res.request()
    env.run()
    assert not waiting.triggered
    waiting.cancel()
    assert waiting not in res.queue


# -- Store ------------------------------------------------------------------


def test_store_put_then_get():
    env = Environment()
    store = Store(env)

    def producer():
        yield store.put("item")

    def consumer():
        item = yield store.get()
        return item

    env.process(producer())
    assert env.run(env.process(consumer())) == "item"


def test_store_get_blocks_until_put():
    env = Environment()
    store = Store(env)

    def consumer():
        item = yield store.get()
        return (item, env.now)

    def producer():
        yield env.timeout(5.0)
        yield store.put("late")

    c = env.process(consumer())
    env.process(producer())
    assert env.run(c) == ("late", 5.0)


def test_store_fifo_order():
    env = Environment()
    store = Store(env)
    received = []

    def producer():
        for i in range(3):
            yield store.put(i)

    def consumer():
        for _ in range(3):
            item = yield store.get()
            received.append(item)

    env.process(producer())
    env.process(consumer())
    env.run()
    assert received == [0, 1, 2]


def test_store_capacity_blocks_put():
    env = Environment()
    store = Store(env, capacity=1)
    times = []

    def producer():
        yield store.put("a")
        times.append(env.now)
        yield store.put("b")
        times.append(env.now)

    def consumer():
        yield env.timeout(4.0)
        yield store.get()

    env.process(producer())
    env.process(consumer())
    env.run()
    assert times == [0.0, 4.0]


def test_store_predicate_get():
    env = Environment()
    store = Store(env)

    def producer():
        yield store.put({"to": "vp1", "body": "x"})
        yield store.put({"to": "vp0", "body": "y"})

    def consumer():
        msg = yield store.get(lambda m: m["to"] == "vp0")
        return msg["body"]

    env.process(producer())
    assert env.run(env.process(consumer())) == "y"
    assert len(store) == 1  # vp1's message remains


def test_store_predicate_waits_for_match():
    env = Environment()
    store = Store(env)

    def producer():
        yield store.put("wrong")
        yield env.timeout(3.0)
        yield store.put("right")

    def consumer():
        item = yield store.get(lambda x: x == "right")
        return (item, env.now)

    env.process(producer())
    assert env.run(env.process(consumer())) == ("right", 3.0)


def test_store_len():
    env = Environment()
    store = Store(env)
    store.put("a")
    store.put("b")
    env.run()
    assert len(store) == 2


def test_store_capacity_validation():
    env = Environment()
    with pytest.raises(ValueError):
        Store(env, capacity=0)


# -- PriorityStore ------------------------------------------------------------


def test_priority_store_orders_items():
    env = Environment()
    store = PriorityStore(env)
    received = []

    def producer():
        yield store.put(PriorityItem(3, "low"))
        yield store.put(PriorityItem(1, "high"))
        yield store.put(PriorityItem(2, "mid"))

    def consumer():
        # Start after all puts so the heap ordering is observable.
        yield env.timeout(1.0)
        for _ in range(3):
            item = yield store.get()
            received.append(item.item)

    env.process(producer())
    env.process(consumer())
    env.run()
    assert received == ["high", "mid", "low"]


def test_priority_store_rejects_predicates():
    env = Environment()
    store = PriorityStore(env)
    store.put(PriorityItem(1, "x"))
    env.run()
    with pytest.raises(NotImplementedError):
        store.get(lambda item: True)
        env.run()


def test_priority_item_ordering():
    assert PriorityItem(1, "a") < PriorityItem(2, "b")
    assert not PriorityItem(2, "a") < PriorityItem(1, "b")
