"""Farm-wide observability: captured workers, merged traces, same digests.

The guarantees under test:

* capture rides the normal result channel — ``FarmResult.trace`` /
  ``.metrics`` appear with ``capture_obs=True`` and stay ``None``
  otherwise;
* capturing never perturbs simulation — results digests are identical
  across plain, captured-serial, and captured-parallel farms;
* the parent-side merge re-bases every worker's zero-based span ids
  into one collision-free sequence and gives each job its own pid
  block in the exported Chrome trace.
"""

import multiprocessing

import pytest

from repro.exec import FarmJob, ScenarioFarm, results_digest
from repro.exec.farm import _CAPTURE_OBS  # noqa: F401 - existence check
from repro.obs import (
    farm_merged_metrics,
    farm_merged_trace,
    farm_trace_sources,
    rebase_payloads,
    span_counts_by_lane,
    to_chrome_trace,
    validate_chrome_trace,
)
from repro.obs.export import PID_STRIDE

HAS_FORK = "fork" in multiprocessing.get_all_start_methods()

JOBS = [
    FarmJob(fn="repro.exec.jobs:scenario_summary", label="va2",
            kwargs={"app": "vectorAdd", "n_vps": 2}),
    FarmJob(fn="repro.exec.jobs:scenario_summary", label="ms2",
            kwargs={"app": "mergeSort", "n_vps": 2}),
]


@pytest.fixture(scope="module")
def plain_results():
    return ScenarioFarm(workers=1, warmup=False).map(JOBS)


@pytest.fixture(scope="module")
def captured_serial():
    return ScenarioFarm(workers=1, warmup=False, capture_obs=True).map(JOBS)


@pytest.fixture(scope="module")
def captured_parallel():
    if not HAS_FORK:
        pytest.skip("fork start method unavailable")
    return ScenarioFarm(workers=2, warmup=False, capture_obs=True).map(JOBS)


class TestCapturePlumbing:
    def test_plain_results_carry_no_buffers(self, plain_results):
        assert all(r.trace is None and r.metrics is None for r in plain_results)

    def test_captured_results_carry_buffers(self, captured_serial):
        for result in captured_serial:
            assert result.trace["schema"] == "repro.obs.trace/1"
            assert result.trace["spans"]
            assert "sim.events_processed" in result.metrics

    def test_serial_capture_restores_module_flag(self, captured_serial):
        from repro.exec import farm

        assert farm._CAPTURE_OBS is False

    def test_capture_does_not_perturb_digest(
        self, plain_results, captured_serial
    ):
        assert results_digest(plain_results) == results_digest(captured_serial)

    @pytest.mark.skipif(not HAS_FORK, reason="needs fork")
    def test_worker_capture_matches_serial_digest(
        self, captured_serial, captured_parallel
    ):
        assert results_digest(captured_serial) == results_digest(
            captured_parallel
        )
        for result in captured_parallel:
            assert result.trace["spans"]


class TestIdRebasing:
    def test_each_worker_buffer_starts_at_zero(self, captured_serial):
        for result in captured_serial:
            ids = [s["id"] for s in result.trace["spans"]]
            ids += [i["id"] for i in result.trace["instants"]]
            assert min(ids) == 0

    def test_merged_ids_are_unique_and_labelled(self, captured_serial):
        merged = farm_merged_trace(captured_serial)
        ids = [s["id"] for s in merged["spans"]]
        ids += [i["id"] for i in merged["instants"]]
        assert len(ids) == len(set(ids)), "id collision after re-basing"
        jobs = {s["args"]["job"] for s in merged["spans"]}
        assert jobs == {"va2", "ms2"}

    def test_rebase_preserves_record_counts(self, captured_serial):
        sources = farm_trace_sources(captured_serial)
        merged = rebase_payloads(sources)
        assert len(merged["spans"]) == sum(
            len(p["spans"]) for _, p in sources
        )
        assert len(merged["instants"]) == sum(
            len(p["instants"]) for _, p in sources
        )


class TestMergedChromeTrace:
    def test_one_coherent_multi_job_trace(self, captured_serial):
        trace = to_chrome_trace(farm_trace_sources(captured_serial))
        assert validate_chrome_trace(trace) == []
        # each job in its own pid block
        blocks = {
            e["pid"] // PID_STRIDE
            for e in trace["traceEvents"]
            if e["ph"] != "M"
        }
        assert blocks == {0, 1}
        # labels prefix the per-job process names
        names = {
            e["args"]["name"]
            for e in trace["traceEvents"]
            if e["ph"] == "M" and e["name"] == "process_name"
        }
        assert any(n.startswith("va2/") for n in names)
        assert any(n.startswith("ms2/") for n in names)

    def test_every_engine_lane_has_spans(self, captured_serial):
        merged = farm_merged_trace(captured_serial)
        counts = span_counts_by_lane(merged)
        for role in ("h2d", "compute", "d2h"):
            lanes = [l for l in counts if role in l]
            assert lanes, f"no lane for engine role {role}"
            assert all(counts[l] > 0 for l in lanes)


class TestMergedMetrics:
    def test_totals_are_sums_of_per_job(self, captured_serial):
        merged = farm_merged_metrics(captured_serial)
        per_job = merged["per_job"]
        name = "sim.events_processed"
        expected = sum(job[name]["value"] for job in per_job.values())
        assert merged["totals"][name]["value"] == expected

    def test_gauges_not_falsely_summed(self, captured_serial):
        merged = farm_merged_metrics(captured_serial)
        assert all(
            entry["type"] != "gauge" for entry in merged["totals"].values()
        )
        assert any(
            entry["type"] == "gauge"
            for job in merged["per_job"].values()
            for entry in job.values()
        )
