"""Property tests: memo caches are invisible to simulation results.

Satellite contract of the memoization layer: a cached
:class:`ExecutionProfile` equals a freshly computed one for *any* launch
geometry, and cache entries never leak across architectures (the same
kernel compiled for Quadro 4000, Grid K520 and Tegra K1 must keep three
distinct timings whether the caches are hot or cold).
"""

from hypothesis import given, settings, strategies as st

from repro.caching import cache_scope, caches_enabled, set_caches_enabled
from repro.gpu.arch import GRID_K520, QUADRO_4000, TEGRA_K1
from repro.gpu.timing import KernelTimingModel
from repro.kernels.compiler import KernelCompiler
from repro.kernels.launch import LaunchConfig
from repro.workloads.linalg import make_vectoradd_kernel

ARCHES = (QUADRO_4000, GRID_K520, TEGRA_K1)

launches = st.builds(
    LaunchConfig,
    grid_size=st.integers(min_value=1, max_value=4096),
    block_size=st.sampled_from((32, 64, 128, 192, 256, 512, 1024)),
    elements=st.integers(min_value=0, max_value=1 << 24),
)

kernels = st.builds(
    make_vectoradd_kernel,
    elements_per_thread=st.integers(min_value=1, max_value=16),
    fp32_per_element=st.integers(min_value=0, max_value=8000),
)


@settings(max_examples=60, deadline=None)
@given(kernel=kernels, launch=launches, arch=st.sampled_from(ARCHES))
def test_cached_profile_equals_fresh_profile(kernel, launch, arch):
    """Warm-cache profiles are field-for-field equal to cold computes."""
    model = KernelTimingModel(arch)
    compiled = KernelCompiler().compile(kernel, arch)
    warm_first = model.execute(compiled, launch)
    warm_again = model.execute(compiled, launch)
    with cache_scope(False):
        cold = model.execute(compiled, launch)
    # The memo returns the identical object; the cold path recomputes
    # every field to the same bits (ExecutionProfile equality is exact).
    assert warm_again is warm_first
    assert cold == warm_first
    assert cold.time_ms == warm_first.time_ms
    assert model.cache_hits >= 1


@settings(max_examples=40, deadline=None)
@given(kernel=kernels, launch=launches)
def test_kernel_time_ms_warm_equals_cold(kernel, launch):
    model = KernelTimingModel(QUADRO_4000)
    compiled = KernelCompiler().compile(kernel, QUADRO_4000)
    warm = model.kernel_time_ms(compiled, launch)
    with cache_scope(False):
        cold = model.kernel_time_ms(compiled, launch)
    assert warm == cold


@settings(max_examples=40, deadline=None)
@given(kernel=kernels, launch=launches)
def test_no_cross_arch_leakage(kernel, launch):
    """One kernel, three architectures, interleaved hot-cache queries:
    every architecture keeps its own compile and timing results."""
    compiler = KernelCompiler()
    compiled = {arch.name: compiler.compile(kernel, arch) for arch in ARCHES}
    models = {arch.name: KernelTimingModel(arch) for arch in ARCHES}

    # Populate all three caches, interleaved.
    warm = {
        name: models[name].execute(compiled[name], launch)
        for name in compiled
    }
    # Query again in a different order; then compare against cold runs.
    for name in reversed(list(compiled)):
        assert models[name].execute(compiled[name], launch) is warm[name]
    with cache_scope(False):
        for name in compiled:
            cold = models[name].execute(compiled[name], launch)
            assert cold == warm[name]
            assert cold.arch_name == name

    # The compiled artifacts themselves are arch-specific.
    assert len({id(c) for c in compiled.values()}) == 3
    for name, c in compiled.items():
        assert c.arch.name == name
        assert compiler.compile(kernel, c.arch) is c  # hit, right entry


@settings(max_examples=20, deadline=None)
@given(launch=launches)
def test_same_geometry_different_kernels_do_not_collide(launch):
    """Identity keying: two same-signature kernels with different bodies
    must produce their own profiles even at the same launch geometry."""
    light = make_vectoradd_kernel(elements_per_thread=1, fp32_per_element=0)
    heavy = make_vectoradd_kernel(elements_per_thread=1, fp32_per_element=5000)
    model = KernelTimingModel(QUADRO_4000)
    compiler = KernelCompiler()
    p_light = model.execute(compiler.compile(light, QUADRO_4000), launch)
    p_heavy = model.execute(compiler.compile(heavy, QUADRO_4000), launch)
    assert p_heavy.issue_cycles > p_light.issue_cycles
    # And the memo still returns each kernel its own entry.
    assert model.execute(compiler.compile(light, QUADRO_4000), launch) is p_light
    assert model.execute(compiler.compile(heavy, QUADRO_4000), launch) is p_heavy


def test_cache_scope_restores_state():
    assert caches_enabled()
    with cache_scope(False):
        assert not caches_enabled()
        with cache_scope(True):
            assert caches_enabled()
        assert not caches_enabled()
    assert caches_enabled()


def test_disabling_caches_clears_them():
    model = KernelTimingModel(QUADRO_4000)
    compiler = KernelCompiler()
    kernel = make_vectoradd_kernel()
    launch = LaunchConfig(grid_size=8, block_size=256, elements=2048)
    model.execute(compiler.compile(kernel, QUADRO_4000), launch)
    assert len(model._profile_cache) == 1
    previous = set_caches_enabled(False)
    try:
        # Global disable dropped registered caches (the default compiler);
        # per-model caches stop being consulted and can be cleared locally.
        assert not caches_enabled()
        model.clear_cache()
        assert len(model._profile_cache) == 0
    finally:
        set_caches_enabled(previous)


def test_profile_cache_lru_eviction():
    model = KernelTimingModel(QUADRO_4000, profile_cache_size=2)
    compiled = KernelCompiler().compile(make_vectoradd_kernel(), QUADRO_4000)
    launches_ = [
        LaunchConfig(grid_size=g, block_size=256, elements=g * 256)
        for g in (1, 2, 3)
    ]
    for launch in launches_:
        model.execute(compiled, launch)
    assert len(model._profile_cache) == 2
    # The oldest entry (grid=1) was evicted; re-executing is a miss.
    misses = model.cache_misses
    model.execute(compiled, launches_[0])
    assert model.cache_misses == misses + 1
