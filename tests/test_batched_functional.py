"""Batched (vectorized) execution of coalesced functional kernels.

A coalesced launch merges N identical kernels; when the registered numpy
implementation is replication-batchable, the dispatcher executes all N
members as ONE call over ``(N, ...)`` stacked inputs.  The contract is
strict bit-identity: for every flagged kernel, the stacked rows must
equal N independent calls element for element and dtype for dtype, and
an end-to-end run must produce the same simulation summary and numeric
outputs whether batching is on or forced off.
"""

import numpy as np
import pytest

from repro.core.scenarios import run_sigma_vp
from repro.kernels.functional import (
    REGISTRY,
    batching_enabled,
    batching_scope,
    run_batched,
    set_batching_enabled,
)
from repro.workloads import SUITE, get_workload

N_MEMBERS = 3

#: Registered signatures with no catalog workload; inputs supplied here.
EXTRA_INPUTS = {
    "saxpy": lambda seed: tuple(
        np.random.default_rng(seed + p).standard_normal(256).astype(np.float32)
        for p in range(2)
    ),
}


def _member_inputs(signature):
    """N members' worth of realistic inputs plus the kernel's params."""
    extra = EXTRA_INPUTS.get(signature)
    if extra is not None:
        return [extra(seed) for seed in range(N_MEMBERS)], {}
    for name in sorted(SUITE):
        spec = SUITE[name]
        if spec.kernel.signature == signature:
            small = spec.scaled_to(min(spec.elements, 4096), iterations=1)
            members = [
                tuple(small.build_inputs(seed=seed)) for seed in range(N_MEMBERS)
            ]
            return members, dict(small.params)
    pytest.fail(f"no input source for registered kernel {signature!r}")


@pytest.mark.parametrize("signature", REGISTRY.signatures())
def test_every_registered_kernel_batches_or_is_excluded(signature):
    """Flagged kernels: one stacked call == N calls, bit for bit.

    Unflagged kernels are asserted excluded — the registry flag is the
    dispatcher's only gate, so a kernel that reduces, reshapes, or draws
    shape-dependent randomness must never be marked batchable without
    also passing the equivalence arm of this test.
    """
    fn = REGISTRY.require(signature)
    if not REGISTRY.is_batched(signature):
        assert signature not in REGISTRY.batched_signatures()
        return
    members, params = _member_inputs(signature)
    expected = [fn(*inputs, **params) for inputs in members]
    rows = run_batched(fn, members, params)
    assert rows is not None, f"{signature}: flagged batched but refused to batch"
    assert len(rows) == N_MEMBERS
    for row, reference in zip(rows, expected):
        assert row.dtype == reference.dtype
        assert row.shape == reference.shape
        np.testing.assert_array_equal(row, reference)


# -- run_batched preconditions (fallback triggers) ---------------------------


def test_run_batched_rejects_empty_and_argless():
    assert run_batched(np.add, [], {}) is None
    assert run_batched(lambda: np.zeros(3), [(), (), ()], {}) is None


def test_run_batched_rejects_nonuniform_shapes():
    a, b = np.zeros(4), np.zeros(4)
    odd = np.zeros(5)
    assert run_batched(np.add, [(a, b), (odd, odd)], {}) is None


def test_run_batched_rejects_nonuniform_dtypes():
    f32 = np.zeros(4, dtype=np.float32)
    f64 = np.zeros(4, dtype=np.float64)
    assert run_batched(np.add, [(f32, f32), (f64, f64)], {}) is None


def test_run_batched_rejects_leading_axis_loss():
    # A reduction collapses the member axis: the helper must notice the
    # output no longer has one row per member and refuse.
    assert run_batched(lambda x: np.sum(x), [(np.ones(4),), (np.ones(4),)], {}) is None


def test_batching_scope_restores_state():
    assert batching_enabled()
    with batching_scope(False):
        assert not batching_enabled()
        previous = set_batching_enabled(True)
        assert previous is False
        set_batching_enabled(False)
    assert batching_enabled()


# -- end-to-end: dispatcher batch path vs per-VP fallback ---------------------


@pytest.mark.parametrize("app", ["vectorAdd", "BlackScholes"])
def test_sigma_vp_batched_matches_fallback(app):
    spec = get_workload(app).scaled_to(2048, iterations=1)

    batched = run_sigma_vp(spec, n_vps=8, coalescing=True, functional=True)
    stats = batched.extras["framework"].dispatcher.stats
    assert stats.batched_launches > 0
    assert stats.batched_members >= 2 * stats.batched_launches
    assert stats.fallback_launches == 0

    with batching_scope(False):
        fallback = run_sigma_vp(spec, n_vps=8, coalescing=True, functional=True)
    fb_stats = fallback.extras["framework"].dispatcher.stats
    assert fb_stats.batched_launches == 0
    assert fb_stats.fallback_launches > 0

    assert batched.summary() == fallback.summary()
    np.testing.assert_array_equal(
        batched.extras["result"], fallback.extras["result"]
    )


def test_unbatchable_kernel_uses_fallback():
    # mergeSort is coalescible but registered unbatched (sorting is not
    # replication-batchable in general): merged members execute per-VP.
    spec = get_workload("mergeSort").scaled_to(2048, iterations=1)
    result = run_sigma_vp(spec, n_vps=4, coalescing=True, functional=True)
    stats = result.extras["framework"].dispatcher.stats
    assert stats.batched_launches == 0
    assert stats.fallback_launches > 0
