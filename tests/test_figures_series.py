"""Fast tests for the figure-series builders (reduced parameters).

The benchmarks run the full-size sweeps; these exercise the same code
paths in seconds so ``pytest tests/`` alone covers the analysis layer.
"""

import pytest

from repro.analysis import (
    fig9a_series,
    fig9b_series,
    fig10a_series,
    fig10b_series,
    fig11_series,
    fig12_series,
    fig13_series,
)
from repro.gpu import QUADRO_4000


def test_fig9a_small():
    points = fig9a_series(kernel_lengths_ms=(4.0, 13.44))
    assert len(points) == 2
    for point in points:
        assert point.measured > 1.0
        assert point.expected > 1.0


def test_fig9b_small():
    points = fig9b_series(program_counts=(2, 4))
    assert [int(p.x) for p in points] == [2, 4]
    assert points[1].measured > points[0].measured


def test_fig10a_small():
    points = fig10a_series(batch_degrees=(1, 4), n_programs=8)
    assert points[0].batch == 1 and points[0].speedup == 1.0
    assert points[-1].speedup > 1.0


def test_fig10b_small():
    points = fig10b_series(grids=(1, 16, 17))
    times = {p.grid: p.time_ms for p in points}
    assert times[17] > times[16]


def test_fig11_single_app():
    points = fig11_series(apps=("mergeSort",))
    assert len(points) == 1
    assert points[0].multiplexing_speedup > 50


def test_fig12_single_host_app():
    points = fig12_series(hosts=(QUADRO_4000,), apps=("dct8x8",))
    assert len(points) == 1
    point = points[0]
    assert point.t_normalized == 1.0
    assert point.c_double_prime_normalized == pytest.approx(1.0, abs=0.2)


def test_fig13_single_host_app():
    points = fig13_series(hosts=(QUADRO_4000,), apps=("Mandelbrot",))
    assert len(points) == 1
    assert abs(points[0].error_pct) < 12.0


def test_sigma_vp_scenario_multi_gpu_passthrough():
    from repro.core.scenarios import run_sigma_vp
    from repro.workloads.linalg import make_vectoradd_spec

    spec = make_vectoradd_spec(elements=2048, iterations=1)
    result = run_sigma_vp(spec, n_vps=4, n_host_gpus=2)
    framework = result.extras["framework"]
    assert len(framework.gpus) == 2
