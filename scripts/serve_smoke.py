"""End-to-end smoke for the ``repro serve`` daemon.

Boots a real daemon process (``python -m repro serve``), submits jobs
from two tenants at different QoS tiers over the socket, and asserts:

* every job completes and its digest is bit-identical to the direct
  ``repro.api.run`` path in *this* process (the service adds routing,
  never a different execution);
* per-tenant listing sees exactly that tenant's jobs;
* a socket-initiated shutdown exits the daemon cleanly (exit code 0,
  socket file removed).

Usage: python scripts/serve_smoke.py [output.json]
"""

import json
import os
import subprocess
import sys
import tempfile
import time
from pathlib import Path

_SRC = Path(__file__).resolve().parent.parent / "src"
sys.path.insert(0, str(_SRC))

from repro.api import RunRequest, run  # noqa: E402
from repro.serve import ServeClient  # noqa: E402

#: Two tenants, two QoS tiers (lower = more latency-sensitive).
SUBMISSIONS = [
    RunRequest(app="vectorAdd", n_vps=2, scale_elements=256,
               scale_iterations=2, tenant="interactive", qos=0),
    RunRequest(app="mergeSort", n_vps=2, scale_elements=256,
               scale_iterations=2, tenant="batch", qos=2),
    RunRequest(app="vectorAdd", n_vps=4, scale_elements=256,
               scale_iterations=2, tenant="batch", qos=2),
]


def main() -> int:
    state_dir = Path(tempfile.mkdtemp(prefix="reprosmoke-", dir="/tmp"))
    socket_path = state_dir / "serve.sock"
    daemon = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve",
         "--socket", str(socket_path), "--state-dir", str(state_dir),
         "--queue-policy", "priority-deadline", "--no-warm"],
        stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True,
        env={**os.environ,
             "PYTHONPATH": os.pathsep.join(
                 p for p in (str(_SRC), os.environ.get("PYTHONPATH"))
                 if p
             )},
    )
    try:
        deadline = time.time() + 30
        while not socket_path.exists():
            if daemon.poll() is not None or time.time() > deadline:
                print(daemon.stdout.read() if daemon.stdout else "")
                print("FAIL: daemon never bound its socket")
                return 1
            time.sleep(0.05)

        report = {"jobs": [], "policy": None}
        with ServeClient.connect(socket_path) as client:
            report["policy"] = client.ping()["policy"]
            job_ids = [
                client.submit(request)["job_id"] for request in SUBMISSIONS
            ]
            for job_id, request in zip(job_ids, SUBMISSIONS):
                final = client.wait(job_id, timeout=120.0)
                local = run(request)
                assert final["state"] == "done", final
                assert final["digest"] == local.digest, (
                    f"{job_id}: daemon digest {final['digest'][:12]} != "
                    f"direct {local.digest[:12]}"
                )
                report["jobs"].append({
                    "job_id": job_id, "tenant": request.tenant,
                    "qos": request.qos, "digest": final["digest"],
                })
            assert len(client.jobs(tenant="batch")) == 2
            assert len(client.jobs(tenant="interactive")) == 1
            client.shutdown()
        daemon.wait(timeout=30)
        assert daemon.returncode == 0, (
            f"daemon exited {daemon.returncode}"
        )
        assert not socket_path.exists(), "socket not removed on shutdown"
        if len(sys.argv) > 1:
            Path(sys.argv[1]).write_text(json.dumps(report, indent=2))
        print(f"serve smoke OK: {len(report['jobs'])} jobs across 2 tenants "
              f"under {report['policy']}, digests identical to direct path, "
              f"clean shutdown")
        return 0
    finally:
        if daemon.poll() is None:
            daemon.terminate()
            daemon.wait(timeout=10)


if __name__ == "__main__":
    sys.exit(main())
