#!/usr/bin/env python
"""CI smoke: one memory-cold bench pass through the persistent disk cache.

Run twice in *separate processes* with a shared ``REPRO_CACHE_DIR``:
the first invocation populates the store (compile, profile, and
whole-job entries); the second starts with empty in-memory memos —
a genuinely fresh process — and must be served from the store: disk
hits > 0, zero new writes, lower wall-clock, and a bit-identical
results digest.

Usage: python scripts/disk_cache_smoke.py OUT.json
"""

import json
import sys
import time

from repro import cache as repro_cache
from repro.exec.farm import FarmJob, results_digest, run_job

JOBS = [
    FarmJob(
        fn="repro.exec.jobs:fig10a_point",
        label="smoke:fig10a:b8",
        kwargs={"batch": 8, "n_programs": 32},
    ),
    FarmJob(
        fn="repro.exec.jobs:scenario_summary",
        label="smoke:mergeSort8",
        kwargs={"app": "mergeSort", "n_vps": 8},
    ),
]


def main(out_path: str) -> None:
    if not repro_cache.disk_enabled():
        raise SystemExit("disk cache disabled -- smoke needs REPRO_DISK_CACHE on")
    start = time.perf_counter()
    results = [run_job(job) for job in JOBS]
    wall_s = time.perf_counter() - start
    stats = repro_cache.cache_stats()
    report = {
        "digest": results_digest(results),
        "wall_s": wall_s,
        "disk_hits": stats["hits"],
        "disk_writes": stats["writes"],
        "store_root": stats["root"],
    }
    with open(out_path, "w") as handle:
        json.dump(report, handle, indent=2)
    print(json.dumps(report, indent=2))


if __name__ == "__main__":
    if len(sys.argv) != 2:
        raise SystemExit(__doc__)
    main(sys.argv[1])
