"""Fig. 10: Kernel Coalescing.

(a) 64 vectorAdd programs, coalescing batch degree swept; the paper
    reports 10.54x at 16 and 20.48x at 64 coalesced programs.
(b) Single-kernel execution time vs grid size 1..64 at 512-thread
    blocks: Eq. (9)'s staircase, with grids 9 and 16 costing the same.
"""

import pytest

from repro.analysis import (
    PAPER_FIG10A,
    fig10a_series,
    fig10b_series,
    render_series,
)


def test_fig10a_coalescence_effectiveness(benchmark, record_result, farm_workers):
    points = benchmark.pedantic(
        fig10a_series, kwargs={"workers": farm_workers}, rounds=1, iterations=1
    )
    record_result(
        "fig10a",
        render_series(
            "Fig 10(a): coalescing 64 vectorAdd programs",
            [p.batch for p in points],
            [
                ("Execution time (ms)", [p.total_ms for p in points]),
                ("Speedup", [p.speedup for p in points]),
            ],
            x_label="coalesced",
        ),
    )
    by_batch = {p.batch: p for p in points}
    # Execution time falls and speedup grows monotonically with degree
    # (up to float noise between saturated points).
    speedups = [p.speedup for p in points]
    for left, right in zip(speedups, speedups[1:]):
        assert right >= left - 1e-6
    # The paper's anchors, to the rough-factor contract: 10.54x at 16
    # (we match closely) and 20.48x at 64 (we reach the same order).
    assert by_batch[16].speedup == pytest.approx(PAPER_FIG10A[16], rel=0.25)
    assert by_batch[64].speedup > PAPER_FIG10A[64] / 2.5


def test_fig10b_grid_size_staircase(benchmark, record_result):
    points = benchmark.pedantic(fig10b_series, rounds=1, iterations=1)
    record_result(
        "fig10b",
        render_series(
            "Fig 10(b): kernel time vs grid size (block = 512)",
            [p.grid for p in points],
            [("Execution time (ms)", [p.time_ms for p in points])],
            x_label="grid",
        ),
    )
    times = {p.grid: p.time_ms for p in points}
    # Paper: "the same execution time is obtained both for a grid of
    # size 9 and a grid of size 16".
    assert times[9] == pytest.approx(times[16], rel=0.02)
    assert times[17] > times[16] * 1.1
    assert times[33] > times[32] * 1.05
    # Eq. (9): four levels across 1..64 at the 16-block wave quantum.
    assert times[64] > times[1] * 2.0
