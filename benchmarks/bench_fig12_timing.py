"""Fig. 12: timing estimation — normalized execution times.

For BlackScholes, matrixMul, dct8x8, and Mandelbrot: the host GPU's
observed time, the target (Tegra K1) observation (the normalization
base), and the three estimates C, C', C'' — profiled on both the Quadro
4000 and the Grid K520 hosts.
"""

import pytest

from repro.analysis import fig12_series, render_table


@pytest.fixture(scope="module")
def estimation_points(farm_workers):
    return fig12_series(workers=farm_workers)


def test_fig12_regeneration(benchmark, estimation_points, record_result,
                            farm_workers):
    from repro.gpu import QUADRO_4000

    points = benchmark.pedantic(
        fig12_series,
        kwargs={"hosts": (QUADRO_4000,), "apps": ("matrixMul",),
                "workers": farm_workers},
        rounds=1, iterations=1,
    )
    assert len(points) == 1
    record_result(
        "fig12",
        render_table(
            ["Host", "App", "H", "T", "C", "C'", "C''"],
            [
                (p.host, p.app, p.h_normalized, p.t_normalized,
                 p.c_normalized, p.c_prime_normalized,
                 p.c_double_prime_normalized)
                for p in estimation_points
            ],
            title="Fig 12: normalized execution times (target = Tegra K1)",
        ),
    )


def test_fig12_host_is_much_faster_than_target(estimation_points):
    """'The execution times observed on the host GPU are much shorter
    than the observed and estimated values for the target GPU.'"""
    for point in estimation_points:
        assert point.h_normalized < 0.25, (point.host, point.app)


def test_fig12_refinement_ladder(estimation_points):
    """C'' beats both cruder estimates on every app and host.

    C' is only *usually* better than C — the paper itself warns that
    carrying over the host's exact stall delays "can lower the
    estimation accuracy" — so C' vs C is held to a small slack, while
    C'' must strictly dominate.
    """
    for point in estimation_points:
        err = lambda x: abs(x - 1.0)
        assert err(point.c_double_prime_normalized) <= err(
            point.c_prime_normalized
        ) + 1e-9, (point.host, point.app)
        assert err(point.c_double_prime_normalized) <= err(
            point.c_normalized
        ) + 1e-9, (point.host, point.app)
        assert err(point.c_prime_normalized) <= err(
            point.c_normalized
        ) + 0.02, (point.host, point.app)


def test_fig12_c_double_prime_close_to_one(estimation_points):
    """'The estimates are close to 1 no matter which host GPU is used.'"""
    for point in estimation_points:
        assert point.c_double_prime_normalized == pytest.approx(1.0, abs=0.15), (
            point.host, point.app,
        )


def test_fig12_consistent_across_hosts(estimation_points):
    by_app = {}
    for point in estimation_points:
        by_app.setdefault(point.app, []).append(point.c_double_prime_normalized)
    for app, values in by_app.items():
        assert len(values) == 2
        assert abs(values[0] - values[1]) < 0.1, app
