"""Fig. 11: the benchmark suite on eight VPs.

For every application: the time to emulate the GPU code on eight VP
instances (the blue bars), the speedup from plain GPU multiplexing (red
line) and from multiplexing plus Kernel Interleaving and Kernel
Coalescing (green line).  Paper bands: 622x-2045x unoptimized,
1098x-6304x optimized.
"""

import pytest

from repro.analysis import FIG11_APPS, fig11_series, render_table
from repro.workloads import SUITE


@pytest.fixture(scope="module")
def suite_points(farm_workers):
    return fig11_series(workers=farm_workers)


def test_fig11_regeneration(benchmark, suite_points, record_result, farm_workers):
    points = benchmark.pedantic(
        fig11_series,
        kwargs={"apps": ("BlackScholes", "mergeSort"), "workers": farm_workers},
        rounds=1, iterations=1,
    )
    assert len(points) == 2
    record_result(
        "fig11",
        render_table(
            ["Application", "Emulation on VP (s)",
             "Speedup (multiplexing)", "Speedup (optimized)"],
            [
                (p.app, p.emulation_ms / 1e3,
                 p.multiplexing_speedup, p.optimized_speedup)
                for p in suite_points
            ],
            title="Fig 11: GPU-VP emulation vs SigmaVP, 8 VPs "
                  "(paper: 622-2045x plain, 1098-6304x optimized)",
        ),
    )


def test_fig11_all_speedups_are_orders_of_magnitude(suite_points):
    for point in suite_points:
        assert point.multiplexing_speedup > 100, point.app
        assert point.optimized_speedup > 100, point.app


def test_fig11_blackscholes_is_the_best_case(suite_points):
    by_app = {p.app: p for p in suite_points}
    best = max(suite_points, key=lambda p: p.multiplexing_speedup)
    assert best.app in ("BlackScholes", "Mandelbrot", "matrixMul")
    assert by_app["BlackScholes"].multiplexing_speedup > 1000


def test_fig11_fp_light_apps_trail(suite_points):
    """'Applications that use less floating-point instructions ... have
    relatively lower speedups than others.'"""
    by_app = {p.app: p for p in suite_points}
    fp_light = ("VolumeFiltering", "SobelFilter", "stereoDisparity", "mergeSort")
    fp_heavy = ("BlackScholes", "matrixMul", "Mandelbrot")
    worst_heavy = min(by_app[a].multiplexing_speedup for a in fp_heavy)
    for app in fp_light:
        assert by_app[app].multiplexing_speedup < worst_heavy, app


def test_fig11_non_coalescible_apps_gain_little(suite_points):
    """'convolutionSeparable, dct8x8, SobelFilter, MonteCarlo, nbody, and
    smokeParticles have kernels that are not sped up by the two
    optimizations.'"""
    by_app = {p.app: p for p in suite_points}
    for app in ("convolutionSeparable", "dct8x8", "SobelFilter",
                "MonteCarlo", "nbody", "smokeParticles"):
        gain = by_app[app].optimized_speedup / by_app[app].multiplexing_speedup
        assert gain < 1.25, app


def test_fig11_benefiting_apps_gain(suite_points):
    by_app = {p.app: p for p in suite_points}
    for app in ("bicubicTexture", "stereoDisparity", "recursiveGaussian",
                "mergeSort", "simpleGL", "BlackScholes"):
        gain = by_app[app].optimized_speedup / by_app[app].multiplexing_speedup
        assert gain > 1.15, app


def test_fig11_covers_the_paper_suite(suite_points):
    assert {p.app for p in suite_points} == set(FIG11_APPS)
    assert set(FIG11_APPS) <= set(SUITE)
