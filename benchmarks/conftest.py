"""Shared fixtures for the benchmark harness.

Every benchmark regenerates one of the paper's tables or figures,
prints it, and archives the rendered text under ``benchmarks/results/``
so a run leaves a complete paper-vs-measured record behind.

Set ``REPRO_BENCH_WORKERS=N`` to fan each figure/table's independent
simulation points over N scenario-farm worker processes; the results
are bit-identical to the default serial runs, only faster.
"""

import os
from pathlib import Path

import pytest

RESULTS_DIR = Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def farm_workers():
    """Scenario-farm worker count for the series drivers."""
    return max(1, int(os.environ.get("REPRO_BENCH_WORKERS", "1")))


@pytest.fixture
def record_result():
    """Print a rendered table/series and archive it to results/."""

    def _record(name: str, text: str) -> None:
        RESULTS_DIR.mkdir(exist_ok=True)
        (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")
        print()
        print(text)

    return _record
