"""Shared fixtures for the benchmark harness.

Every benchmark regenerates one of the paper's tables or figures,
prints it, and archives the rendered text under ``benchmarks/results/``
so a run leaves a complete paper-vs-measured record behind.
"""

from pathlib import Path

import pytest

RESULTS_DIR = Path(__file__).parent / "results"


@pytest.fixture
def record_result():
    """Print a rendered table/series and archive it to results/."""

    def _record(name: str, text: str) -> None:
        RESULTS_DIR.mkdir(exist_ok=True)
        (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")
        print()
        print(text)

    return _record
