"""Scalability benches: VP count and host-GPU count sweeps.

Beyond the paper's fixed 8-VP setup: how does simulation time grow with
the fleet size, and how much does a second host GPU (the Grid K520 board
carries two) buy back?
"""

import pytest

from repro.analysis import render_table
from repro.exec import FarmJob, ScenarioFarm


def _sweep(farm_workers, grid, **common):
    """Fan (n_vps, n_gpus) phase-loop points over the scenario farm."""
    farm = ScenarioFarm(workers=farm_workers)
    values = farm.map_values([
        FarmJob(
            fn="repro.exec.jobs:phase_point",
            kwargs={"n_vps": n, "n_host_gpus": g, **common},
            label=f"scale:{n}vps/{g}gpu",
        )
        for n, g in grid
    ])
    return dict(zip(grid, values))


def test_scaling_with_vp_count(benchmark, record_result, farm_workers):
    def sweep():
        totals = _sweep(
            farm_workers,
            [(n, 1) for n in (1, 2, 4, 8, 16)],
            t_kernel_ms=4.0, t_copy_ms=2.0, iterations=2,
        )
        return {n: total for (n, _), total in totals.items()}

    totals = benchmark.pedantic(sweep, rounds=1, iterations=1)
    rows = [
        (n, total, total / totals[1])
        for n, total in sorted(totals.items())
    ]
    record_result(
        "scaling_vps",
        render_table(
            ["VPs", "Total (ms)", "vs 1 VP"],
            rows,
            title="Scaling: fleet size on one host GPU (interleaved)",
        ),
    )
    # Interleaving keeps growth sublinear: 16 VPs cost far less than
    # 16x one VP.
    assert totals[16] < 10 * totals[1]
    # And more VPs never finish sooner.
    values = [totals[n] for n in (1, 2, 4, 8, 16)]
    assert values == sorted(values)


def test_scaling_with_host_gpus(benchmark, record_result, farm_workers):
    def sweep():
        totals = _sweep(
            farm_workers,
            [(8, g) for g in (1, 2, 4)],
            t_kernel_ms=6.0, t_copy_ms=1.0, iterations=2,
        )
        return {g: total for (_, g), total in totals.items()}

    totals = benchmark.pedantic(sweep, rounds=1, iterations=1)
    rows = [
        (g, total, totals[1] / total)
        for g, total in sorted(totals.items())
    ]
    record_result(
        "scaling_gpus",
        render_table(
            ["Host GPUs", "Total (ms)", "Speedup"],
            rows,
            title="Scaling: host GPUs for 8 VPs (compute-bound loop)",
        ),
    )
    # A second device buys a solid chunk of the compute-bound time back.
    assert totals[2] < totals[1] * 0.7
    assert totals[4] <= totals[2]
