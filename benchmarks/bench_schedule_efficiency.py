"""Scheduler efficiency vs the analytic lower bound.

The paper calls its Re-scheduler "a non-preemptive, optimal scheduler
augmented for job dependencies [14]".  This bench measures how close
each dispatch discipline actually gets to the provable makespan lower
bound (max of the critical path and the busiest engine's load) across
workload shapes — the quantitative version of Fig. 3's before/after.
"""

import pytest

from repro.analysis import render_table
from repro.exec import FarmJob, ScenarioFarm

#: (name, kernel ms, copy ms): balanced, copy-bound, compute-bound.
SHAPES = (
    ("balanced", 4.0, 4.0),
    ("copy-bound", 1.0, 6.0),
    ("compute-bound", 8.0, 2.0),
)

N_VPS = 8


def _bound_ms(t_kernel, t_copy, n_vps):
    """Analytic makespan lower bound for the phase-loop fleet.

    Engine loads: n*t_copy on each copy engine, n*t_kernel on compute;
    the per-VP chain is t_copy + t_kernel + t_copy.
    """
    return max(n_vps * t_copy, n_vps * t_kernel, 2 * t_copy + t_kernel)


def test_schedule_efficiency(benchmark, record_result, farm_workers):
    def sweep():
        farm = ScenarioFarm(workers=farm_workers)
        totals = farm.map_values([
            FarmJob(
                fn="repro.exec.jobs:phase_point",
                kwargs={"n_vps": N_VPS, "t_kernel_ms": t_kernel,
                        "t_copy_ms": t_copy, "interleaving": interleaving},
                label=f"sched:{name}:{'inter' if interleaving else 'serial'}",
            )
            for name, t_kernel, t_copy in SHAPES
            for interleaving in (False, True)
        ])
        rows = []
        for index, (name, t_kernel, t_copy) in enumerate(SHAPES):
            serial_ms, inter_ms = totals[2 * index], totals[2 * index + 1]
            bound = _bound_ms(t_kernel, t_copy, N_VPS)
            rows.append((
                name,
                bound,
                serial_ms,
                bound / serial_ms,
                inter_ms,
                bound / inter_ms,
            ))
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    record_result(
        "schedule_efficiency",
        render_table(
            ["Shape", "Bound (ms)", "Serial (ms)", "Serial eff.",
             "Interleaved (ms)", "Interleaved eff."],
            rows,
            title=f"Scheduler efficiency vs analytic lower bound ({N_VPS} VPs)",
        ),
    )
    for name, bound, serial_ms, serial_eff, inter_ms, inter_eff in rows:
        # The interleaving policy reaches >=70% of provably optimal on
        # every shape and always beats the serial baseline.
        assert inter_eff > 0.7, name
        assert inter_eff > serial_eff, name
        # Nothing beats the bound.
        assert serial_ms >= bound and inter_ms >= bound, name
