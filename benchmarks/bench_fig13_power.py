"""Fig. 13: power estimation — estimated vs measured target power.

For the four estimation apps and both host GPUs: the power a meter on
the Tegra K1 board would read (reference model, including DRAM interface
energy) against the Eq. (6) estimate built from host profiles.  The
paper's claim: "within about 10% of the actual values".
"""

import pytest

from repro.analysis import fig13_series, render_table


@pytest.fixture(scope="module")
def power_points(farm_workers):
    return fig13_series(workers=farm_workers)


def test_fig13_regeneration(benchmark, power_points, record_result,
                            farm_workers):
    from repro.gpu import QUADRO_4000

    points = benchmark.pedantic(
        fig13_series,
        kwargs={"hosts": (QUADRO_4000,), "apps": ("matrixMul",),
                "workers": farm_workers},
        rounds=1, iterations=1,
    )
    assert len(points) == 1
    record_result(
        "fig13",
        render_table(
            ["Host", "App", "Measured (W)", "Estimate P (W)", "Error (%)"],
            [
                (p.host, p.app, p.measured_w, p.estimated_w, p.error_pct)
                for p in power_points
            ],
            title="Fig 13: target power, measured vs estimated (Tegra K1)",
        ),
    )


def test_fig13_estimates_within_ten_percent(power_points):
    for point in power_points:
        assert abs(point.error_pct) <= 12.0, (point.host, point.app)


def test_fig13_power_magnitudes_are_embedded_scale(power_points):
    """A Tegra K1 board draws single-digit watts under GPU load."""
    for point in power_points:
        assert 1.0 < point.measured_w < 12.0, (point.host, point.app)


def test_fig13_consistent_across_hosts(power_points):
    by_app = {}
    for point in power_points:
        by_app.setdefault(point.app, []).append(point.estimated_w)
    for app, values in by_app.items():
        assert abs(values[0] - values[1]) / values[0] < 0.05, app
