"""Fig. 9: Kernel Interleaving — measured vs expected speedups.

(a) Two interleaved programs, kernel length swept against a fixed
    13.44 ms memory copy; expected values from Eq. (7).
(b) N interleaved programs with Tk = Tm; expected speedup 3N/(N+2)
    from Eq. (8), approaching 3x.
"""

import pytest

from repro.analysis import fig9a_series, fig9b_series, render_series
from repro.core.interleaving import balanced_speedup


def test_fig9a_kernel_length_sweep(benchmark, record_result, farm_workers):
    points = benchmark.pedantic(
        fig9a_series, kwargs={"workers": farm_workers}, rounds=1, iterations=1
    )
    record_result(
        "fig9a",
        render_series(
            "Fig 9(a): interleaving speedup vs kernel length (Tm = 13.44 ms)",
            [f"{p.x:.2f}" for p in points],
            [
                ("Results", [p.measured for p in points]),
                ("Expected (Eq.7)", [p.expected for p in points]),
            ],
            x_label="kernel ms",
        ),
    )
    # Measured tracks expected across the sweep.  Short kernels run a
    # little above Eq. (7): the serial baseline also pays per-job fixed
    # costs the closed form ignores.
    for point in points:
        assert point.measured == pytest.approx(point.expected, rel=0.15, abs=0.35)
    # The peak sits at the latency-hiding sweet spot Tk ~= Tm.
    peak = max(points, key=lambda p: p.measured)
    assert 8.0 <= peak.x <= 25.0


def test_fig9b_program_count_sweep(benchmark, record_result, farm_workers):
    points = benchmark.pedantic(
        fig9b_series, kwargs={"workers": farm_workers}, rounds=1, iterations=1
    )
    record_result(
        "fig9b",
        render_series(
            "Fig 9(b): interleaving speedup vs number of programs (Tk = Tm)",
            [int(p.x) for p in points],
            [
                ("Results", [p.measured for p in points]),
                ("Expected (Eq.8)", [p.expected for p in points]),
            ],
            x_label="N",
        ),
    )
    for point in points:
        assert point.measured == pytest.approx(
            balanced_speedup(int(point.x)), rel=0.08
        )
    # Monotone growth toward the 3x asymptote.
    speedups = [p.measured for p in points]
    assert speedups == sorted(speedups)
    assert speedups[-1] > 2.5
