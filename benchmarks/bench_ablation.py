"""Ablation benches for the design choices DESIGN.md calls out.

* Re-scheduler on/off: FIFO-serial vs interleaving-pipelined dispatch.
* Coalescing memory-merge vs kernel-merge-only at equal batch degree.
* IPC transport: socket (payloads cross the channel) vs shared memory
  (zero-copy descriptors).
* Estimator refinement chain C -> C' -> C'' accuracy ladder.
"""

import pytest

from repro.analysis import render_table
from repro.core.estimation import ExecutionAnalyzer
from repro.core.ipc import SHARED_MEMORY, SOCKET
from repro.core.scenarios import run_sigma_vp
from repro.gpu import QUADRO_4000, TEGRA_K1
from repro.workloads import SUITE
from repro.workloads.linalg import make_vectoradd_spec


def test_ablation_rescheduler(benchmark, record_result, farm_workers):
    """Dependency-aware pipelined dispatch vs the serial FIFO baseline."""
    from repro.exec import FarmJob, ScenarioFarm

    def run_pair():
        farm = ScenarioFarm(workers=farm_workers)
        return tuple(farm.map_values([
            FarmJob(
                fn="repro.exec.jobs:phase_point",
                kwargs={"n_vps": 8, "t_kernel_ms": 4.0, "t_copy_ms": 4.0,
                        "interleaving": interleaving},
                label="resched:" + ("inter" if interleaving else "fifo"),
            )
            for interleaving in (False, True)
        ]))

    serial_ms, pipelined_ms = benchmark.pedantic(run_pair, rounds=1, iterations=1)
    record_result(
        "ablation_rescheduler",
        render_table(
            ["Scheduler", "Total (ms)", "Speedup"],
            [
                ("FIFO serial (baseline)", serial_ms, 1.0),
                ("Interleaving pipelined", pipelined_ms, serial_ms / pipelined_ms),
            ],
            title="Ablation: Re-scheduler (8 phase-loop VPs)",
        ),
    )
    assert pipelined_ms < serial_ms / 2.0  # approaching Eq. 8's 2.4x at N=8


def test_ablation_copy_merge(benchmark, record_result):
    """Memory-chunk merging vs kernel-merge-only coalescing.

    With small per-program copies, merging them amortizes the DMA
    latency; the copy-merge limit knob switches the behaviour.
    """
    spec = make_vectoradd_spec(elements=4096, iterations=1, block_size=512,
                               elements_per_thread=8, fp32_per_element=4000)

    # Run the copy-merge variant and a kernel-only variant by setting
    # the limit to zero bytes on a fresh framework.
    from repro.core.framework import SigmaVP

    def run_with_limit(limit):
        framework = SigmaVP(
            interleaving=False, coalescing=True, max_batch=32,
            transport=SHARED_MEMORY, n_vps=32,
        )
        framework.coalescer.copy_merge_limit_bytes = limit
        return framework.run_workload(spec)

    merged_ms = benchmark.pedantic(
        run_with_limit, args=(512 * 1024,), rounds=1, iterations=1
    )
    kernel_only_ms = run_with_limit(0)
    record_result(
        "ablation_copy_merge",
        render_table(
            ["Coalescing", "Total (ms)"],
            [
                ("kernels + memory chunks (Fig. 5)", merged_ms),
                ("kernels only", kernel_only_ms),
            ],
            title="Ablation: memory-chunk merging (32 small programs)",
        ),
    )
    assert merged_ms < kernel_only_ms


def test_ablation_ipc_transport(benchmark, record_result):
    """Socket vs shared-memory IPC for a copy-heavy workload."""
    spec = SUITE["BlackScholes"]

    def run_pair():
        socket = run_sigma_vp(spec, n_vps=4, transport=SOCKET)
        shm = run_sigma_vp(spec, n_vps=4, transport=SHARED_MEMORY)
        return socket.total_ms, shm.total_ms

    socket_ms, shm_ms = benchmark.pedantic(run_pair, rounds=1, iterations=1)
    record_result(
        "ablation_ipc",
        render_table(
            ["Transport", "Total (ms)"],
            [("socket", socket_ms), ("shared memory (zero-copy)", shm_ms)],
            title="Ablation: IPC transport (BlackScholes, 4 VPs)",
        ),
    )
    assert shm_ms < socket_ms


def test_ablation_estimator_ladder(benchmark, record_result):
    """Each refinement of Section 4 buys accuracy."""
    analyzer = ExecutionAnalyzer(QUADRO_4000, TEGRA_K1)
    rows = []

    def analyze_all():
        results = []
        for app in ("BlackScholes", "matrixMul", "dct8x8", "Mandelbrot"):
            spec = SUITE[app]
            kernel, launch = spec.kernel, spec.launch_config()
            truth = analyzer.observe_on_target(kernel, launch).elapsed_cycles
            est = analyzer.analyze(kernel, launch)
            results.append(
                (
                    app,
                    abs(est.c_cycles - truth) / truth,
                    abs(est.c_prime_cycles - truth) / truth,
                    abs(est.c_double_prime_cycles - truth) / truth,
                )
            )
        return results

    results = benchmark.pedantic(analyze_all, rounds=1, iterations=1)
    for app, err_c, err_cp, err_cpp in results:
        rows.append((app, 100 * err_c, 100 * err_cp, 100 * err_cpp))
        assert err_cpp <= err_cp <= err_c + 1e-9, app
    record_result(
        "ablation_estimators",
        render_table(
            ["App", "err(C) %", "err(C') %", "err(C'') %"],
            rows,
            title="Ablation: estimator refinement chain (vs Tegra K1 truth)",
        ),
    )
