"""Table 1: execution time of matrix multiplication, six routes.

Regenerates the paper's Table 1 — 300 multiplications of two 320x320
double-precision matrices executed natively on the host GPU, through
software emulation on the host CPU and inside the binary-translated VP,
through SigmaVP, and as a plain C program on both CPUs.
"""

import pytest

from repro.analysis import build_table1, render_table1


@pytest.fixture(scope="module")
def table1_rows(farm_workers):
    return build_table1(workers=farm_workers)


def test_table1_regeneration(benchmark, table1_rows, record_result,
                             farm_workers):
    rows = benchmark.pedantic(
        build_table1, kwargs={"workers": farm_workers}, rounds=1, iterations=1
    )
    record_result("table1", render_table1(rows))
    by_key = {row.key: row for row in rows}
    # The reproduction contract: every route's ratio within 35% of the
    # paper's, and the orderings intact.
    for key, row in by_key.items():
        assert row.ratio == pytest.approx(row.paper_ratio, rel=0.35), key
    assert by_key["CUDA / This work"].ratio < 10
    assert (
        by_key["C / CPU"].ratio
        < by_key["CUDA / Emul. on CPU"].ratio
        < by_key["C / VP"].ratio
        < by_key["CUDA / Emul. on VP"].ratio
    )


def test_table1_sigma_vp_route_timing(benchmark):
    """Benchmark just the SigmaVP route (the paper's contribution)."""
    from repro.core.scenarios import run_sigma_vp
    from repro.workloads import SUITE

    spec = SUITE["matrixMul"]
    result = benchmark.pedantic(
        run_sigma_vp, args=(spec,), kwargs={"n_vps": 1}, rounds=1, iterations=1
    )
    assert result.total_ms > 0
