"""Global cache control for the hot-path memoization layers.

The simulator memoizes pure derived values in several places — compiled
kernels (:mod:`repro.kernels.compiler`), execution profiles
(:mod:`repro.gpu.timing`), and version-keyed Job Queue scans
(:mod:`repro.core.jobs`).  Every cache returns values bit-identical to a
fresh computation, so caching is purely a wall-clock optimisation and
can be switched off globally — the ``repro bench`` regression harness
uses that switch to measure the cold ("seed-path") baseline against the
warm cached path on identical inputs.

The module sits below every other package (no repro imports) so any
layer may depend on it without cycles.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Callable, List

_enabled = True

#: Clearer callbacks registered by each caching layer.
_clearers: List[Callable[[], None]] = []


def caches_enabled() -> bool:
    """Whether the memoization layers may serve cached values."""
    return _enabled


def set_caches_enabled(enabled: bool) -> bool:
    """Switch all memoization layers on/off; returns the previous state.

    Disabling also clears every registered cache so a later re-enable
    starts cold — the bench harness relies on that for its cold runs.
    """
    global _enabled
    previous = _enabled
    _enabled = bool(enabled)
    if not _enabled:
        clear_all_caches()
    return previous


@contextmanager
def cache_scope(enabled: bool):
    """Temporarily force caches on or off (used by the bench harness)."""
    previous = set_caches_enabled(enabled)
    try:
        yield
    finally:
        set_caches_enabled(previous)


def register_cache_clearer(clearer: Callable[[], None]) -> Callable[[], None]:
    """Register a callback that empties one cache; returns it unchanged."""
    _clearers.append(clearer)
    return clearer


def clear_all_caches(disk: bool = False) -> None:
    """Empty every registered cache (cold-start state).

    ``disk=True`` additionally purges the persistent on-disk artifact
    store (:mod:`repro.cache`).  The default leaves it alone: the
    in-memory clear models a fresh *process* (which still sees the
    shared disk tier), and the bench harness depends on clearing memory
    while keeping the disk warm.  ``repro cache clear`` passes ``True``.
    """
    for clearer in _clearers:
        clearer()
    if disk:
        from .cache import clear_disk  # runtime import: caching sits below

        clear_disk()
