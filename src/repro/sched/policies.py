"""Scheduling policies: the *select* stage of the dispatch pipeline.

"The Re-scheduler ... reorders the asynchronous kernel jobs in the Job
Queue by keeping a partial order in the original VP.  It is a
non-preemptive, optimal scheduler augmented for job dependencies"
(paper Section 2).  The partial-order invariant is enforced
structurally: policies only ever choose among each VP's *earliest*
pending job (the dispatchable heads), so jobs of one VP can never be
reordered against each other, while jobs of different VPs can.

Every policy here is registered by name (see :mod:`repro.sched.registry`)
and must hold the conformance invariants checked by
``tests/test_sched_conformance.py``: pick only from the candidates it
was given (or ``None``), deterministically under a fixed seed.
"""

from __future__ import annotations

import abc
from typing import Callable, Dict, List, Mapping, Optional, Sequence

from ..core.jobs import Job, JobKind
from .backlog import EngineBacklog
from .config import DEFAULT_HOST_CALL_MS, DEFAULT_PROFILING_OVERHEAD_MS
from .registry import register_policy

#: Signature of the dispatcher's expected-duration oracle, attached to
#: duration-aware policies via :meth:`SchedulingPolicy.attach`.
ExpectedMs = Callable[[Job], float]


class SchedulingPolicy(abc.ABC):
    """Chooses the next job to dispatch among the dispatchable heads."""

    name: str = "abstract"
    description: str = ""

    #: Expected-duration oracle, attached by the pipeline.  ``None``
    #: until attached; duration-aware policies fall back to a crude
    #: static estimate so they stay usable (and deterministic) alone.
    _expected_ms: Optional[ExpectedMs] = None

    @abc.abstractmethod
    def select(self, dispatchable: List[Job], backlog: EngineBacklog) -> Optional[Job]:
        """Pick the next job, or None to dispatch nothing right now."""

    def attach(self, expected_ms: ExpectedMs) -> None:
        """Give the policy the dispatcher's expected-duration oracle."""
        self._expected_ms = expected_ms

    def expected_ms(self, job: Job) -> float:
        """Expected duration of a job, via the oracle when attached."""
        if self._expected_ms is not None:
            return self._expected_ms(job)
        # Static fallback: crude but deterministic, so a policy used
        # outside a dispatcher (unit tests, conformance suite) still
        # ranks copies by size and kernels above host calls.
        if job.kind is JobKind.EVENT:
            return 0.0
        if job.kind in (JobKind.MALLOC, JobKind.FREE):
            return DEFAULT_HOST_CALL_MS
        if job.is_copy:
            return job.nbytes / 1e6  # ~1 ms per MB
        return DEFAULT_PROFILING_OVERHEAD_MS + 1.0

    def __repr__(self) -> str:
        return f"<{self.__class__.__name__}>"


@register_policy
class FIFOPolicy(SchedulingPolicy):
    """Arrival order — the unoptimized baseline (paper Fig. 3a)."""

    name = "fifo"
    description = "arrival order; the unoptimized baseline (paper Fig. 3a)"

    def select(self, dispatchable: List[Job], backlog: EngineBacklog) -> Optional[Job]:
        if not dispatchable:
            return None
        return min(dispatchable, key=lambda job: job.job_id)


@register_policy
class InterleavingPolicy(SchedulingPolicy):
    """Kernel Interleaving: keep both engines busy, rotate across VPs.

    Among the dispatchable per-VP heads the policy prefers

    1. jobs whose target engine has the smaller expected backlog (feed
       the starving engine — the mechanism of paper Fig. 3b), then
    2. the VP served least recently (fair rotation, which produces the
       copy/kernel pipelining of Fig. 4), then
    3. arrival order as the deterministic tie-break.
    """

    name = "interleaving"
    description = (
        "feed the engine with the smallest expected backlog, rotating "
        "across VPs (paper Fig. 3b)"
    )

    def __init__(self) -> None:
        self._last_served: Dict[str, int] = {}
        self._serve_counter = 0

    def select(self, dispatchable: List[Job], backlog: EngineBacklog) -> Optional[Job]:
        if not dispatchable:
            return None

        def rank(job: Job):
            return (
                backlog.for_job(job),
                self._last_served.get(job.vp, -1),
                job.job_id,
            )

        choice = min(dispatchable, key=rank)
        self._serve_counter += 1
        self._last_served[choice.vp] = self._serve_counter
        return choice


@register_policy
class ShortestJobFirstPolicy(SchedulingPolicy):
    """Shortest expected job first (non-preemptive SJF).

    Minimizes mean waiting time across VPs by draining cheap host calls
    and small copies ahead of long kernels.  Long jobs cannot be starved
    forever: a VP's later jobs only become dispatchable once its head
    runs, and every head eventually becomes the cheapest remaining.
    """

    name = "sjf"
    description = "shortest expected job first (minimize mean wait)"

    def select(self, dispatchable: List[Job], backlog: EngineBacklog) -> Optional[Job]:
        if not dispatchable:
            return None
        return min(
            dispatchable, key=lambda job: (self.expected_ms(job), job.job_id)
        )


@register_policy
class FairSharePolicy(SchedulingPolicy):
    """Deficit-round-robin fair share of dispatch time across VPs.

    Every VP with a dispatchable head earns ``quantum_ms`` of credit per
    decision round; dispatching charges the job's expected duration to
    its VP.  The VP deepest in credit goes next, so a VP issuing long
    kernels is throttled while ones issuing short copies catch up —
    classic DRR applied to the ΣVP job queue.
    """

    name = "fair-share"
    description = "deficit round-robin: balance expected GPU time across VPs"

    def __init__(self, quantum_ms: float = 1.0) -> None:
        if quantum_ms <= 0.0:
            raise ValueError(f"quantum_ms must be > 0, got {quantum_ms}")
        self.quantum_ms = quantum_ms
        self._credit: Dict[str, float] = {}

    def select(self, dispatchable: List[Job], backlog: EngineBacklog) -> Optional[Job]:
        if not dispatchable:
            return None
        for job in dispatchable:
            self._credit[job.vp] = self._credit.get(job.vp, 0.0) + self.quantum_ms
        choice = min(
            dispatchable, key=lambda job: (-self._credit[job.vp], job.job_id)
        )
        self._credit[choice.vp] -= self.expected_ms(choice)
        return choice


@register_policy
class PriorityDeadlinePolicy(SchedulingPolicy):
    """QoS tiers with per-tier latency budgets (earliest deadline first).

    Each VP maps to a tier (default: ``default_tier``); a job's deadline
    is its submission time plus the tier's budget.  Jobs run earliest
    deadline first, tier breaking deadline ties, so a tier-0 VP (e.g. a
    safety-critical guest in a mixed-criticality virtual platform) keeps
    overtaking best-effort guests until the best-effort backlog ages
    past its longer budget — bounded starvation by construction.
    """

    name = "priority-deadline"
    description = "QoS tiers with latency budgets, earliest deadline first"

    def __init__(
        self,
        tiers: Optional[Mapping[str, int]] = None,
        default_tier: int = 1,
        budgets_ms: Sequence[float] = (1.0, 5.0, 25.0),
    ) -> None:
        if not budgets_ms:
            raise ValueError("budgets_ms must name at least one tier budget")
        self.tiers: Dict[str, int] = dict(tiers or {})
        self.default_tier = default_tier
        self.budgets_ms = tuple(float(b) for b in budgets_ms)

    def _tier(self, vp: str) -> int:
        tier = self.tiers.get(vp, self.default_tier)
        return max(0, min(tier, len(self.budgets_ms) - 1))

    def select(self, dispatchable: List[Job], backlog: EngineBacklog) -> Optional[Job]:
        if not dispatchable:
            return None

        def rank(job: Job):
            tier = self._tier(job.vp)
            deadline = job.submitted_at_ms + self.budgets_ms[tier]
            return (deadline, tier, job.job_id)

        return min(dispatchable, key=rank)
