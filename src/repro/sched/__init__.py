"""The scheduling layer: a pluggable dispatch pipeline.

The paper's Re-scheduler and Kernel Coalescing decisions used to be
smeared across the dispatcher, the rescheduler module, and the framework
wiring.  This package decomposes every dispatch decision into four
explicit, independently pluggable stages (see ``docs/SCHEDULING.md``):

* **admission** — which per-VP queue heads are dispatchable right now
  (VP not in flight, not behind a coalescing barrier, dependencies met,
  target engine has room);
* **hold/merge** — Kernel Coalescing as a stage: merge ready groups and
  hold coalescible jobs until their group completes or the window
  expires;
* **select** — the :class:`SchedulingPolicy` choosing among candidates
  (FIFO, interleaving, SJF, fair-share, priority/deadline, or any
  registered plugin);
* **place** — the :class:`PlacementStrategy` binding VPs to host GPUs
  (round-robin or least-backlog).

Policies and placements live in name-keyed registries
(:func:`register_policy` / :func:`register_placement`); every
registered implementation is exercised by the conformance suite in
``tests/test_sched_conformance.py``, so plugins inherit the safety net
(no job dropped or duplicated, per-VP partial order preserved,
determinism under a fixed seed, backlog quiesces to exactly zero).

A :class:`SchedulerConfig` carries the stage choices plus the host-side
cost constants from the CLI through the scenario farm, the framework,
and the dispatcher.
"""

from .backlog import EngineBacklog, engine_role
from .config import SchedulerConfig
from .pipeline import (
    AdmissionStage,
    Decision,
    HoldStage,
    PlacementStage,
    SchedulerPipeline,
    SelectStage,
)
from .placement import (
    LeastBacklogPlacement,
    PlacementStrategy,
    RoundRobinPlacement,
)
from .policies import (
    FairSharePolicy,
    FIFOPolicy,
    InterleavingPolicy,
    PriorityDeadlinePolicy,
    SchedulingPolicy,
    ShortestJobFirstPolicy,
)
from .registry import (
    available_placements,
    available_policies,
    make_placement,
    make_policy,
    register_placement,
    register_policy,
)

__all__ = [
    "AdmissionStage",
    "Decision",
    "EngineBacklog",
    "FIFOPolicy",
    "FairSharePolicy",
    "HoldStage",
    "InterleavingPolicy",
    "LeastBacklogPlacement",
    "PlacementStage",
    "PlacementStrategy",
    "PriorityDeadlinePolicy",
    "RoundRobinPlacement",
    "SchedulerConfig",
    "SchedulerPipeline",
    "SchedulingPolicy",
    "SelectStage",
    "ShortestJobFirstPolicy",
    "available_placements",
    "available_policies",
    "engine_role",
    "make_placement",
    "make_policy",
    "register_placement",
    "register_policy",
]
