"""Placement strategies: the *place* stage of the dispatch pipeline.

"SigmaVP multiplexes the host GPUs" (paper Section 2): on a multi-GPU
host every VP gets a device affinity on its first request and its
buffers and kernels stay on that device — memory allocated on one GPU
is not addressable from another, so placement is sticky by necessity.
What *is* pluggable is the initial pick, which this module decomposes
out of the dispatcher's hardcoded round-robin.
"""

from __future__ import annotations

import abc
from typing import Dict

from ..core.jobs import Job
from .backlog import EngineBacklog
from .registry import register_placement


class PlacementStrategy(abc.ABC):
    """Binds VPs to host GPU indices (sticky after the first pick)."""

    name: str = "abstract"
    description: str = ""

    def __init__(self) -> None:
        #: VP name -> device index, fixed at first use.
        self._assigned: Dict[str, int] = {}

    def device_for(
        self, vp: str, n_devices: int, backlog: EngineBacklog
    ) -> int:
        """The device a VP is bound to (assigned by :meth:`pick` on
        first use, sticky thereafter)."""
        device = self._assigned.get(vp)
        if device is None:
            device = self.pick(vp, n_devices, backlog)
            if not 0 <= device < n_devices:
                raise ValueError(
                    f"{self.name!r} picked device {device} for {vp!r}, "
                    f"host has {n_devices}"
                )
            self._assigned[vp] = device
        return device

    def bind(self, job: Job, n_devices: int, backlog: EngineBacklog) -> None:
        """Stamp a job with its VP's device (merged jobs keep theirs)."""
        if job.members:
            return  # merged jobs carry their members' device
        job.device = self.device_for(job.vp, n_devices, backlog)

    @abc.abstractmethod
    def pick(self, vp: str, n_devices: int, backlog: EngineBacklog) -> int:
        """Choose the device for a first-seen VP."""

    @property
    def assignments(self) -> Dict[str, int]:
        """Read-only view of VP -> device decisions made so far."""
        return dict(self._assigned)

    def __repr__(self) -> str:
        return f"<{self.__class__.__name__} assigned={len(self._assigned)}>"


@register_placement
class RoundRobinPlacement(PlacementStrategy):
    """Cycle VPs across devices in first-use order (the legacy default)."""

    name = "round-robin"
    description = "cycle VPs across host GPUs in first-use order"

    def pick(self, vp: str, n_devices: int, backlog: EngineBacklog) -> int:
        return len(self._assigned) % n_devices


@register_placement
class LeastBacklogPlacement(PlacementStrategy):
    """Bind a first-seen VP to the device with the least expected work.

    Ranks devices by total expected engine backlog, then by how many VPs
    are already bound there, then by index — so with idle devices it
    degrades to round-robin, and under skewed load (one VP hammering
    long kernels) new VPs land away from the hot device.
    """

    name = "least-backlog"
    description = "bind new VPs to the host GPU with the least expected work"

    def pick(self, vp: str, n_devices: int, backlog: EngineBacklog) -> int:
        counts = [0] * n_devices
        for device in self._assigned.values():
            counts[device] += 1
        return min(
            range(n_devices),
            key=lambda idx: (backlog.for_device(idx), counts[idx], idx),
        )
