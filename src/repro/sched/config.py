"""Scheduler configuration: one object that travels every layer.

:class:`SchedulerConfig` names the pluggable stages (policy, placement)
and carries the host-side cost constants the dispatcher used to keep as
module globals.  Experiments parameterize these fields instead of
monkeypatching ``repro.core.dispatcher`` module state, and the scenario
farm ships them across process boundaries as plain JSON-able values.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Any, Dict, Optional, Union

from ..backend.config import BackendConfig
from ..backend.registry import default_backend_name

#: Host-side time to service a malloc/free request (driver bookkeeping).
DEFAULT_HOST_CALL_MS = 0.002

#: Host-side profiling cost charged per kernel *job* (the CUPTI-style
#: per-launch instrumentation SigmaVP's Profiler needs for Section 4's
#: estimation).  A coalesced launch pays this once for its whole batch —
#: one of the fixed per-invocation overheads Kernel Coalescing amortizes.
DEFAULT_PROFILING_OVERHEAD_MS = 0.15

#: Environment switch for the backlog-accounting debug assertions.
DEBUG_ENV_VAR = "REPRO_SCHED_DEBUG"


def debug_from_env() -> bool:
    """Whether ``REPRO_SCHED_DEBUG`` asks for backlog drift assertions."""
    return os.environ.get(DEBUG_ENV_VAR, "0").lower() not in ("0", "", "false")


@dataclass(frozen=True)
class SchedulerConfig:
    """Configuration of the dispatch pipeline's pluggable stages.

    ``policy=None`` keeps the legacy behavior: the framework derives the
    policy from its ``interleaving`` flag (``"interleaving"`` when on,
    ``"fifo"`` when off), which is what keeps pre-refactor scenario
    digests bit-identical.  Every field is JSON-able so the config can
    ride inside a :class:`~repro.exec.FarmJob`'s kwargs.
    """

    #: Registered policy name (see :func:`repro.sched.available_policies`),
    #: or ``None`` to derive from the framework's ``interleaving`` flag.
    policy: Optional[str] = None
    #: Registered placement name (device selection across host GPUs).
    placement: str = "round-robin"
    #: Keyword options passed to the policy factory (e.g. QoS tiers for
    #: ``priority-deadline``: ``{"tiers": {"vp0": 0}, "default_tier": 2}``).
    policy_options: Dict[str, Any] = field(default_factory=dict)
    #: Keyword options passed to the placement factory.
    placement_options: Dict[str, Any] = field(default_factory=dict)
    #: Host-side time to service a malloc/free request.
    host_call_ms: float = DEFAULT_HOST_CALL_MS
    #: Host-side profiling cost charged once per kernel job.
    profiling_overhead_ms: float = DEFAULT_PROFILING_OVERHEAD_MS
    #: Turn backlog-accounting mismatches into hard assertion errors
    #: (also switchable globally via ``REPRO_SCHED_DEBUG=1``).
    debug: bool = False
    #: Vectorized batched timing (:mod:`repro.gpu.vectimes`): ``True``
    #: forces it on, ``False`` forces it off for this run, ``None``
    #: inherits the process-wide setting (``REPRO_VECTIMES`` env var,
    #: default on).  Timing results are bit-identical either way.
    vectimes: Optional[bool] = None
    #: Execution backend for functional kernel work: a
    #: :class:`~repro.backend.BackendConfig`, a bare registry name
    #: (coerced in ``__post_init__``), or ``None`` to inherit the
    #: process-wide default (``--backend`` / ``REPRO_BACKEND``).
    backend: Optional[Union[str, BackendConfig]] = None

    def __post_init__(self) -> None:
        if isinstance(self.backend, str):
            # Frozen dataclass: coerce the shorthand in place.
            object.__setattr__(self, "backend", BackendConfig(self.backend))
        if self.host_call_ms < 0.0:
            raise ValueError(
                f"host_call_ms must be >= 0, got {self.host_call_ms}"
            )
        if self.profiling_overhead_ms < 0.0:
            raise ValueError(
                "profiling_overhead_ms must be >= 0, got "
                f"{self.profiling_overhead_ms}"
            )

    def resolve_policy(self, interleaving: bool = True) -> str:
        """The policy name to instantiate given the legacy flag."""
        if self.policy is not None:
            return self.policy
        return "interleaving" if interleaving else "fifo"

    def resolve_backend(self) -> str:
        """The execution-backend name to instantiate."""
        if isinstance(self.backend, BackendConfig):
            return self.backend.name
        return default_backend_name()

    def backend_options(self) -> Dict[str, Any]:
        """Factory options for the resolved execution backend."""
        if isinstance(self.backend, BackendConfig):
            return dict(self.backend.options)
        return {}

    @property
    def debug_enabled(self) -> bool:
        return self.debug or debug_from_env()

    def is_default_stages(self) -> bool:
        """True when policy/placement match the legacy hardcoded wiring."""
        return (
            self.policy is None
            and self.placement == "round-robin"
            and not self.policy_options
            and not self.placement_options
        )

    @classmethod
    def from_names(
        cls,
        policy: Optional[str] = None,
        placement: Optional[str] = None,
        **overrides: Any,
    ) -> "SchedulerConfig":
        """Build a config from optional CLI/farm-style names."""
        kwargs: Dict[str, Any] = dict(overrides)
        if policy is not None:
            kwargs["policy"] = policy
        if placement is not None:
            kwargs["placement"] = placement
        return cls(**kwargs)
