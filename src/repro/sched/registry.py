"""Name-keyed plugin registries for policies and placements.

Replaces the hand-rolled ``make_policy`` if/else chain: implementations
register themselves (usually via the :func:`register_policy` /
:func:`register_placement` class decorators) and every consumer — the
framework, the CLI's ``repro policies`` listing, the conformance suite —
discovers them by name.  Third-party code can register additional
policies at import time and inherits the conformance safety net for
free (the suite iterates the registries, not a hardcoded list).
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Tuple, TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, types only
    from .placement import PlacementStrategy
    from .policies import SchedulingPolicy

#: Factories keyed by policy name; values are (factory, description).
_POLICIES: Dict[str, Tuple[Callable[..., "SchedulingPolicy"], str]] = {}

#: Factories keyed by placement name; values are (factory, description).
_PLACEMENTS: Dict[str, Tuple[Callable[..., "PlacementStrategy"], str]] = {}


def register_policy(
    factory: Callable[..., "SchedulingPolicy"],
    name: str | None = None,
    description: str | None = None,
) -> Callable[..., "SchedulingPolicy"]:
    """Register a policy factory (usable as a class decorator).

    ``name``/``description`` default to the factory's ``name`` /
    ``description`` class attributes.  Re-registering a name replaces
    the previous entry (last one wins), which lets tests shadow a
    policy without mutating registry internals.
    """
    key = name or getattr(factory, "name", None)
    if not key or key == "abstract":
        raise ValueError(f"policy factory {factory!r} needs a concrete name")
    _POLICIES[key] = (factory, description or getattr(factory, "description", ""))
    return factory


def register_placement(
    factory: Callable[..., "PlacementStrategy"],
    name: str | None = None,
    description: str | None = None,
) -> Callable[..., "PlacementStrategy"]:
    """Register a placement factory (usable as a class decorator)."""
    key = name or getattr(factory, "name", None)
    if not key or key == "abstract":
        raise ValueError(f"placement factory {factory!r} needs a concrete name")
    _PLACEMENTS[key] = (
        factory, description or getattr(factory, "description", "")
    )
    return factory


def make_policy(name: str, **options: Any) -> "SchedulingPolicy":
    """Instantiate a registered scheduling policy by name."""
    try:
        factory, _ = _POLICIES[name]
    except KeyError:
        known = ", ".join(sorted(_POLICIES))
        raise ValueError(
            f"unknown scheduling policy {name!r} ({known})"
        ) from None
    return factory(**options)


def make_placement(name: str, **options: Any) -> "PlacementStrategy":
    """Instantiate a registered placement strategy by name."""
    try:
        factory, _ = _PLACEMENTS[name]
    except KeyError:
        known = ", ".join(sorted(_PLACEMENTS))
        raise ValueError(
            f"unknown placement strategy {name!r} ({known})"
        ) from None
    return factory(**options)


def available_policies() -> List[Tuple[str, str]]:
    """Sorted (name, one-line description) pairs of registered policies."""
    return [(name, _POLICIES[name][1]) for name in sorted(_POLICIES)]


def available_placements() -> List[Tuple[str, str]]:
    """Sorted (name, one-line description) pairs of registered placements."""
    return [(name, _PLACEMENTS[name][1]) for name in sorted(_PLACEMENTS)]
