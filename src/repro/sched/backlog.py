"""Engine backlog accounting for scheduling decisions.

The Re-scheduler "reorders the executions to reduce the wasted cycles
across the two engines ... by using the expected time for each
invocation" (paper Section 3) — :class:`EngineBacklog` maintains those
expected-time totals per hardware engine, and the interleaving and
least-backlog stages balance against them.

Accounting is *audited*: every ``add`` must be matched by one ``retire``
with the same expected time.  Floating-point subtraction can leave tiny
residues (and a buggy caller can leave large ones); instead of silently
clamping at zero — which masked add/retire mismatches — the backlog
counts outstanding jobs per engine, snaps the total to exactly ``0.0``
when an engine quiesces, and records any residue above
:data:`DRIFT_TOLERANCE_MS` as *drift* (the ``dispatch.backlog_drift``
obs counter, plus a hard assertion in debug mode).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

from ..core.jobs import Job, JobKind
from ..obs import metrics as _obs_metrics

#: Residue below this is IEEE-754 noise from summing expected times; at
#: or above it, the add/retire streams genuinely disagree.
DRIFT_TOLERANCE_MS = 1e-6


def engine_role(job: Job) -> str:
    """Which hardware engine a job occupies.

    On a multi-GPU host the role is qualified by the device the job is
    bound to (``job.device``), so each GPU's engines are balanced
    independently.
    """
    if job.kind is JobKind.COPY_H2D:
        role = "h2d"
    elif job.kind is JobKind.COPY_D2H:
        role = "d2h"
    elif job.kind is JobKind.KERNEL:
        role = "compute"
    else:
        return "host"  # malloc/free: host-side bookkeeping, no engine
    if job.device:
        return f"{role}@{job.device}"
    return role


def role_device(role: str) -> int:
    """The device index encoded in an engine role (0 when unqualified)."""
    _, _, device = role.partition("@")
    return int(device) if device else 0


@dataclass
class EngineBacklog:
    """Predicted outstanding work per engine, maintained by the dispatcher."""

    per_engine: Dict[str, float] = field(default_factory=dict)
    #: Jobs added but not yet retired, per engine — the audit trail that
    #: lets the float total snap back to exactly zero at quiesce.
    outstanding: Dict[str, int] = field(default_factory=dict)
    #: Add/retire mismatches observed (residue above tolerance).
    drift_events: int = 0
    #: Total absolute drift absorbed, in expected-time milliseconds.
    drift_ms: float = 0.0
    #: Raise on drift instead of just counting it (set from
    #: ``SchedulerConfig.debug`` or ``REPRO_SCHED_DEBUG=1``).
    debug: bool = False

    def for_job(self, job: Job) -> float:
        return self.per_engine.get(engine_role(job), 0.0)

    def for_device(self, device: int) -> float:
        """Total expected backlog across one device's engines."""
        return sum(
            ms for role, ms in self.per_engine.items()
            if role != "host" and role_device(role) == device
        )

    def add(self, job: Job, expected_ms: float) -> None:
        role = engine_role(job)
        self.per_engine[role] = self.per_engine.get(role, 0.0) + expected_ms
        self.outstanding[role] = self.outstanding.get(role, 0) + 1

    def retire(self, job: Job, expected_ms: float) -> None:
        role = engine_role(job)
        remaining = self.per_engine.get(role, 0.0) - expected_ms
        left = self.outstanding.get(role, 0) - 1
        self.outstanding[role] = max(left, 0)
        residue = 0.0
        if left <= 0:
            # Engine quiesced: whatever is left is pure accounting error.
            residue = abs(remaining)
            remaining = 0.0
        elif remaining < 0.0:
            # Still-busy engine driven negative: a retire outran its add.
            residue = -remaining
            remaining = 0.0
        self.per_engine[role] = remaining
        if residue >= DRIFT_TOLERANCE_MS:
            self._record_drift(role, residue)

    def _record_drift(self, role: str, residue: float) -> None:
        self.drift_events += 1
        self.drift_ms += residue
        registry = _obs_metrics.REGISTRY
        if registry is not None:
            registry.counter("dispatch.backlog_drift").inc()
        if self.debug:
            raise AssertionError(
                f"engine backlog drift on {role!r}: {residue:.9f} ms "
                "left after add/retire (mismatched expected times?)"
            )

    @property
    def quiesced(self) -> bool:
        """True when every engine has zero outstanding jobs and exactly
        zero expected backlog — the invariant at the end of a scenario."""
        return all(count == 0 for count in self.outstanding.values()) and all(
            ms == 0.0 for ms in self.per_engine.values()
        )
