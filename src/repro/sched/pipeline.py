"""The dispatch pipeline: admission → hold/merge → select → place.

One dispatch decision used to be a single opaque scan inside
``JobDispatcher._choose``; this module decomposes it into four explicit
stages, each independently pluggable:

* :class:`AdmissionStage` — which per-VP queue heads are dispatchable
  *right now*: the VP has nothing in flight (stream-pump semantics of a
  per-VP CUDA stream), the head is not behind a coalescing barrier, its
  dependencies are processed, and its target engine has room (engine
  queues stay shallow so the policy re-decides at every slot);
* :class:`HoldStage` — Kernel Coalescing as a stage: merge ready groups
  and hold coalescible heads until their group completes or the
  coalescing window expires;
* :class:`SelectStage` — the :class:`SchedulingPolicy` picking among
  the admitted candidates;
* :class:`PlacementStage` — the :class:`PlacementStrategy` binding each
  VP to a host GPU on first use (sticky thereafter: a VP's buffers live
  on its device).

The stage order preserves the legacy scan exactly — same head iteration
order, same per-job check order, same device-binding side effects — so
FIFO/interleaving scenario digests stay bit-identical to the
pre-refactor dispatcher (proven by ``tests/test_sched_pipeline.py``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Mapping, Optional, Protocol

from ..core.jobs import Job, JobQueue
from ..obs import metrics as _obs_metrics
from ..obs import tracer as _obs_trace
from .backlog import EngineBacklog
from .placement import PlacementStrategy
from .policies import ExpectedMs, SchedulingPolicy


class Coalescer(Protocol):
    """The queue-scan surface the hold/merge stage needs (duck-typed to
    :class:`repro.core.coalescing.KernelCoalescer`)."""

    def coalesce_pass(self, queue: JobQueue) -> List[Job]: ...

    def hold_deadline(self, queue: JobQueue, job: Job) -> Optional[float]: ...


@dataclass(frozen=True)
class Decision:
    """Outcome of one pipeline pass over the queue heads."""

    #: The job to dispatch, or ``None`` to idle.
    job: Optional[Job]
    #: Earliest coalescing hold deadline when heads are being held.
    hold_deadline: Optional[float]
    #: Candidates the select stage chose among.
    n_candidates: int = 0
    #: Heads held back by the coalescing window this pass.
    n_held: int = 0
    #: Heads rejected by admission (in flight / barred / deps / engine).
    n_rejected: int = 0


class AdmissionStage:
    """Filters per-VP heads down to the currently dispatchable ones."""

    def __init__(self, engine_has_room: Callable[[Job], bool]) -> None:
        self._engine_has_room = engine_has_room

    def eligible(
        self, job: Job, queue: JobQueue, inflight: Mapping[str, Job]
    ) -> bool:
        """Pre-placement checks: stream free, not barred, deps met."""
        if job.vp in inflight:
            return False
        if queue.barred(job.vp, job.seq):
            return False
        if any(not dep.processed for dep in job.depends_on):
            return False
        return True

    def has_room(self, job: Job) -> bool:
        """Post-placement check: the bound device's engine has room."""
        return self._engine_has_room(job)


class HoldStage:
    """Kernel Coalescing as a pipeline stage (no-op without a coalescer)."""

    def __init__(self, coalescer: Optional[Coalescer]) -> None:
        self.coalescer = coalescer

    def merge(self, queue: JobQueue) -> List[Job]:
        """Merge ready coalescing groups before scanning heads.

        Returns the merged jobs minted this pass (empty without a
        coalescer) so callers can react to them — e.g. batch-prewarm
        their timing profiles in one vectorized sweep.
        """
        if self.coalescer is None:
            return []
        return self.coalescer.coalesce_pass(queue)

    def hold_deadline(self, queue: JobQueue, job: Job) -> Optional[float]:
        """Deadline to hold a coalescible head until, or None to pass."""
        if self.coalescer is None:
            return None
        return self.coalescer.hold_deadline(queue, job)


class SelectStage:
    """Wraps the scheduling policy choosing among admitted candidates."""

    def __init__(self, policy: SchedulingPolicy) -> None:
        self.policy = policy

    def choose(
        self, candidates: List[Job], backlog: EngineBacklog
    ) -> Optional[Job]:
        return self.policy.select(candidates, backlog)


class PlacementStage:
    """Binds jobs to host GPUs through the placement strategy."""

    def __init__(self, strategy: PlacementStrategy, n_devices: int) -> None:
        self.strategy = strategy
        self.n_devices = n_devices
        #: First-use VP->device binds made (``sched.place.binds`` counter).
        self.binds = 0

    def device_for(self, vp: str, backlog: EngineBacklog) -> int:
        return self.strategy.device_for(vp, self.n_devices, backlog)

    def bind(self, job: Job, backlog: EngineBacklog) -> None:
        fresh = not job.members and job.vp not in self.strategy._assigned
        self.strategy.bind(job, self.n_devices, backlog)
        if fresh:
            self.binds += 1
            registry = _obs_metrics.REGISTRY
            if registry is not None:
                registry.counter("sched.place.binds").inc()


class SchedulerPipeline:
    """Runs the four stages over the Job Queue for one dispatch decision."""

    def __init__(
        self,
        policy: SchedulingPolicy,
        placement: PlacementStrategy,
        backlog: EngineBacklog,
        *,
        n_devices: int = 1,
        coalescer: Optional[Coalescer] = None,
        engine_has_room: Callable[[Job], bool] = lambda job: True,
        expected_ms: Optional[ExpectedMs] = None,
    ) -> None:
        self.backlog = backlog
        self.admission = AdmissionStage(engine_has_room)
        self.hold = HoldStage(coalescer)
        self.selector = SelectStage(policy)
        self.placer = PlacementStage(placement, n_devices)
        if expected_ms is not None:
            policy.attach(expected_ms)

    @property
    def policy(self) -> SchedulingPolicy:
        return self.selector.policy

    @property
    def placement(self) -> PlacementStrategy:
        return self.placer.strategy

    def decide(
        self, queue: JobQueue, inflight: Mapping[str, Job], now: float
    ) -> Decision:
        """One pass: admit heads, hold coalescibles, select, and report.

        Mirrors the legacy ``JobDispatcher._choose`` scan bit-for-bit:
        heads are visited in ``heads_per_vp`` order, device binding
        happens between the dependency and engine-room checks (so
        first-use placement order is unchanged), and the engine-room
        check runs against the bound device.
        """
        with _obs_metrics.timed("sched.decide"):
            heads = queue.heads_per_vp()
            candidates: List[Job] = []
            deadlines: List[float] = []
            rejected = 0
            for job in heads.values():
                if not self.admission.eligible(job, queue, inflight):
                    rejected += 1
                    continue
                self.placer.bind(job, self.backlog)
                if not self.admission.has_room(job):
                    rejected += 1
                    continue
                deadline = self.hold.hold_deadline(queue, job)
                if deadline is not None:
                    deadlines.append(deadline)
                    continue
                candidates.append(job)
            choice = self.selector.choose(candidates, self.backlog)
        self._observe(choice, candidates, deadlines, rejected, now)
        return Decision(
            job=choice,
            hold_deadline=min(deadlines) if deadlines else None,
            n_candidates=len(candidates),
            n_held=len(deadlines),
            n_rejected=rejected,
        )

    def _observe(
        self,
        choice: Optional[Job],
        candidates: List[Job],
        deadlines: List[float],
        rejected: int,
        now: float,
    ) -> None:
        tracer = _obs_trace.TRACER
        if tracer is not None and choice is not None:
            # A pick is a *reorder* when the policy passed over an older
            # job — the observable act of Kernel Interleaving.
            fifo_head = min(job.job_id for job in candidates)
            tracer.instant(
                "dispatcher", "dispatch", now, cat="sched",
                args={
                    "job": choice.job_id,
                    "vp": choice.vp,
                    "seq": choice.seq,
                    "kind": choice.kind.name,
                    "policy": self.policy.name,
                    "reordered": choice.job_id != fifo_head,
                    "candidates": len(candidates),
                },
            )
        registry = _obs_metrics.REGISTRY
        if registry is None:
            return
        if choice is not None:
            registry.counter("dispatch.decisions").inc()
            if choice.job_id != min(job.job_id for job in candidates):
                registry.counter("dispatch.reorders").inc()
            registry.histogram(
                "dispatch.candidates", _obs_metrics.DEPTH_BUCKETS
            ).observe(len(candidates))
            # Queue delay = submit -> this dispatch decision; the live
            # per-decision signal behind the ``account.vp.*.wait_ms``
            # end-of-run gauges.
            registry.histogram(
                "sched.queue_delay_ms", _obs_metrics.MS_BUCKETS
            ).observe(max(0.0, now - choice.submitted_at_ms))
        if rejected:
            registry.counter("sched.admission.rejected").inc(rejected)
        if deadlines:
            registry.counter("sched.hold.held").inc(len(deadlines))
        if choice is None:
            registry.counter("sched.select.idle").inc()
