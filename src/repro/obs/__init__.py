"""``repro.obs`` — end-to-end simulation tracing, metrics, and export.

The observability layer for the whole stack:

* :mod:`.tracer` — spans and instant events from the sim engine, the
  GPU copy/compute engines, dispatcher decisions, the coalescer, IPC
  channels, and VP control; module-level no-op fast path when disabled;
* :mod:`.metrics` — counters / gauges / deterministic-bucket
  histograms, plus wall-clock self-profiling of simulator hot paths;
* :mod:`.export` — Chrome/Perfetto ``trace_event`` JSON and stamped
  metrics snapshots (every artifact carries the run's config hash and
  seed);
* :mod:`.aggregate` — merges trace/metric buffers that scenario-farm
  workers ship back over the fork result channel.

Instrumented modules follow one convention::

    from ..obs import tracer as _obs_trace

    if _obs_trace.TRACER is not None:          # one attr check when off
        _obs_trace.TRACER.span(...)

The :func:`capture` context manager is the one-stop entry point: it
installs a fresh tracer and registry, runs the block, restores the
previous state, and exposes the collected payloads.
"""

from __future__ import annotations

from typing import Any, Dict, Optional

from . import metrics as _metrics_mod
from . import tracer as _tracer_mod
from .aggregate import (
    farm_merged_metrics,
    farm_merged_trace,
    farm_trace_sources,
    merge_metric_snapshots,
    rebase_payloads,
    span_counts_by_lane,
    validate_chrome_trace,
)
from .export import (
    config_key,
    metrics_snapshot,
    render_metrics,
    run_stamp,
    seed_for,
    to_chrome_trace,
    write_metrics,
    write_trace,
)
from .metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    collect_framework,
    timed,
)
from .tracer import Tracer

__all__ = [
    "Capture",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "Tracer",
    "capture",
    "collect_framework",
    "config_key",
    "disable",
    "enable",
    "enabled",
    "farm_merged_metrics",
    "farm_merged_trace",
    "farm_trace_sources",
    "merge_metric_snapshots",
    "metrics_snapshot",
    "rebase_payloads",
    "render_metrics",
    "run_stamp",
    "seed_for",
    "span_counts_by_lane",
    "timed",
    "to_chrome_trace",
    "validate_chrome_trace",
    "write_metrics",
    "write_trace",
]


def enabled() -> bool:
    """Whether either the tracer or the metrics registry is active."""
    return _tracer_mod.TRACER is not None or _metrics_mod.REGISTRY is not None


def enable() -> "Capture":
    """Install a fresh tracer and registry; returns a live capture."""
    return Capture().start()


def disable() -> None:
    """Deactivate both the tracer and the metrics registry."""
    _tracer_mod.disable()
    _metrics_mod.disable()


class Capture:
    """One observability collection window (tracer + metrics together)."""

    def __init__(self) -> None:
        self.tracer = Tracer()
        self.registry = MetricsRegistry()
        self._previous: Optional[tuple] = None

    def start(self) -> "Capture":
        self._previous = (_tracer_mod.TRACER, _metrics_mod.REGISTRY)
        _tracer_mod.enable(self.tracer)
        _metrics_mod.enable(self.registry)
        return self

    def stop(self) -> "Capture":
        if self._previous is not None:
            previous_tracer, previous_registry = self._previous
            self._previous = None
            if previous_tracer is None:
                _tracer_mod.disable()
            else:
                _tracer_mod.enable(previous_tracer)
            if previous_registry is None:
                _metrics_mod.disable()
            else:
                _metrics_mod.enable(previous_registry)
        return self

    def __enter__(self) -> "Capture":
        return self.start()

    def __exit__(self, *exc_info: Any) -> None:
        self.stop()

    # -- collected artifacts ------------------------------------------------

    def trace_payload(self) -> Dict[str, Any]:
        return self.tracer.to_payload()

    def metrics_payload(self) -> Dict[str, Any]:
        return self.registry.snapshot()


def capture() -> Capture:
    """``with capture() as cap:`` — trace + meter the enclosed block."""
    return Capture()
