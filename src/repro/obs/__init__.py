"""``repro.obs`` — end-to-end simulation tracing, metrics, and export.

The observability layer for the whole stack:

* :mod:`.tracer` — spans and instant events from the sim engine, the
  GPU copy/compute engines, dispatcher decisions, the coalescer, IPC
  channels, and VP control; module-level no-op fast path when disabled;
* :mod:`.metrics` — counters / gauges / deterministic-bucket
  histograms, plus wall-clock self-profiling of simulator hot paths;
* :mod:`.export` — Chrome/Perfetto ``trace_event`` JSON and stamped
  metrics snapshots (every artifact carries the run's config hash and
  seed);
* :mod:`.aggregate` — merges trace/metric buffers that scenario-farm
  workers ship back over the fork result channel.

Instrumented modules follow one convention::

    from ..obs import tracer as _obs_trace

    if _obs_trace.TRACER is not None:          # one attr check when off
        _obs_trace.TRACER.span(...)

The :func:`capture` context manager is the one-stop entry point: it
installs a fresh tracer and registry, runs the block, restores the
previous state, and exposes the collected payloads.
"""

from __future__ import annotations

from typing import Any, Dict, Optional

from . import metrics as _metrics_mod
from . import timeseries as _timeseries_mod
from . import tracer as _tracer_mod
from .account import VPUsage, collect_accounts, jain_index, render_accounts
from .aggregate import (
    farm_merged_metrics,
    farm_merged_trace,
    farm_trace_sources,
    merge_metric_snapshots,
    rebase_payloads,
    span_counts_by_lane,
    validate_chrome_trace,
)
from .export import (
    config_key,
    git_commit,
    metrics_snapshot,
    prom_name,
    render_metrics,
    run_stamp,
    seed_for,
    to_chrome_trace,
    to_prometheus,
    write_metrics,
    write_trace,
)
from .metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    collect_framework,
    timed,
)
from .timeseries import RingBuffer, Sampler, counter_rate
from .tracer import Tracer

__all__ = [
    "Capture",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "RingBuffer",
    "Sampler",
    "Tracer",
    "VPUsage",
    "capture",
    "collect_accounts",
    "collect_framework",
    "config_key",
    "counter_rate",
    "disable",
    "enable",
    "enabled",
    "farm_merged_metrics",
    "farm_merged_trace",
    "farm_trace_sources",
    "git_commit",
    "jain_index",
    "merge_metric_snapshots",
    "metrics_snapshot",
    "prom_name",
    "rebase_payloads",
    "render_accounts",
    "render_metrics",
    "run_stamp",
    "seed_for",
    "span_counts_by_lane",
    "timed",
    "to_chrome_trace",
    "to_prometheus",
    "validate_chrome_trace",
    "write_metrics",
    "write_trace",
]


def enabled() -> bool:
    """Whether either the tracer or the metrics registry is active."""
    return _tracer_mod.TRACER is not None or _metrics_mod.REGISTRY is not None


def enable() -> "Capture":
    """Install a fresh tracer and registry; returns a live capture."""
    return Capture().start()


def disable() -> None:
    """Deactivate both the tracer and the metrics registry."""
    _tracer_mod.disable()
    _metrics_mod.disable()


class Capture:
    """One observability collection window (tracer + metrics together).

    ``sample_interval_ms`` additionally installs a time-series
    :class:`~repro.obs.timeseries.Sampler` bound to this capture's
    registry, recording counter/gauge series at simulated-time-aligned
    points for the capture's duration (``None`` — the default — keeps
    sampling off; the event-loop hook then costs nothing extra).
    """

    def __init__(self, sample_interval_ms: Optional[float] = None) -> None:
        self.tracer = Tracer()
        self.registry = MetricsRegistry()
        self.sampler: Optional[Sampler] = (
            Sampler(registry=self.registry, interval_ms=sample_interval_ms)
            if sample_interval_ms is not None
            else None
        )
        self._previous: Optional[tuple] = None

    def start(self) -> "Capture":
        self._previous = (
            _tracer_mod.TRACER,
            _metrics_mod.REGISTRY,
            _timeseries_mod.SAMPLER,
        )
        _tracer_mod.enable(self.tracer)
        _metrics_mod.enable(self.registry)
        if self.sampler is not None:
            _timeseries_mod.enable(self.sampler)
        return self

    def stop(self) -> "Capture":
        if self._previous is not None:
            previous_tracer, previous_registry, previous_sampler = self._previous
            self._previous = None
            if previous_tracer is None:
                _tracer_mod.disable()
            else:
                _tracer_mod.enable(previous_tracer)
            if previous_registry is None:
                _metrics_mod.disable()
            else:
                _metrics_mod.enable(previous_registry)
            if self.sampler is not None or previous_sampler is not None:
                if previous_sampler is None:
                    _timeseries_mod.disable()
                else:
                    _timeseries_mod.enable(previous_sampler)
        return self

    def __enter__(self) -> "Capture":
        return self.start()

    def __exit__(self, *exc_info: Any) -> None:
        self.stop()

    # -- collected artifacts ------------------------------------------------

    def trace_payload(self) -> Dict[str, Any]:
        return self.tracer.to_payload()

    def metrics_payload(self) -> Dict[str, Any]:
        return self.registry.snapshot()

    def timeseries_payload(self) -> Optional[Dict[str, Any]]:
        return self.sampler.payload() if self.sampler is not None else None


def capture(sample_interval_ms: Optional[float] = None) -> Capture:
    """``with capture() as cap:`` — trace + meter the enclosed block."""
    return Capture(sample_interval_ms=sample_interval_ms)
