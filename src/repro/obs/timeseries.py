"""Continuous telemetry: deterministic time-series sampling of metrics.

PR 2's registry answers "what were the totals at the end of the run?";
this module answers "how did they evolve *over* the run" — the view a
long-running multi-tenant service (``repro serve``) needs for live
dashboards and the partitioning work needs for utilization-over-time
telemetry.

Design constraints, in order:

* **Determinism.**  Samples are taken at *simulated-time-aligned*
  points: the sampler fires the first time the event loop crosses each
  multiple of ``interval_ms`` in simulated milliseconds, and the sample
  is stamped with the aligned boundary, not the (arbitrary) event time
  that crossed it.  Two runs of the same scenario therefore produce
  bit-identical series, and series from farm workers merge exactly —
  there is no host clock anywhere in a sample.
* **Zero cost when disabled.**  The module-level :data:`SAMPLER` is
  ``None`` by default and the event loop's hook nests inside the
  *metrics* registry guard, so a telemetry-off simulation pays nothing
  (the existing ``REGISTRY is not None`` check) and a metrics-on /
  sampler-off run pays one extra attribute check per event.
* **Bounded memory.**  Each metric's samples live in a fixed-capacity
  ring buffer; a million-event simulation keeps the newest ``capacity``
  points per metric, never an unbounded log.

Sampling is *read-only*: it copies counter/gauge values out of the
active registry and never feeds anything back into scheduling, so
scenario digests are bit-identical with sampling on or off (pinned by
``tests/test_obs_timeseries.py``).
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

from . import metrics as _metrics_mod
from .metrics import MetricsRegistry

#: The active sampler, or ``None`` when time-series sampling is off.
#: The event loop reads this module attribute directly (nested inside
#: its existing metrics-registry guard).
SAMPLER: Optional["Sampler"] = None

#: Default simulated-ms spacing between sample points.
DEFAULT_INTERVAL_MS = 1.0

#: Default per-metric ring capacity (newest samples win).
DEFAULT_CAPACITY = 512

#: Payload schema tag (mirrors ``repro.obs.trace/1``).
SCHEMA = "repro.obs.timeseries/1"


class RingBuffer:
    """Fixed-capacity ring of ``(t_ms, value)`` samples.

    Appends are O(1); when full, the oldest sample is overwritten.
    :meth:`items` returns chronological order regardless of wrap.
    """

    __slots__ = ("capacity", "_slots", "_next", "total")

    def __init__(self, capacity: int) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self._slots: List[Tuple[float, float]] = []
        self._next = 0
        #: Samples ever appended (so droppage is visible: ``total`` may
        #: exceed ``len(self)`` once the ring has wrapped).
        self.total = 0

    def __len__(self) -> int:
        return len(self._slots)

    def append(self, t_ms: float, value: float) -> None:
        if len(self._slots) < self.capacity:
            self._slots.append((t_ms, value))
        else:
            self._slots[self._next] = (t_ms, value)
            self._next = (self._next + 1) % self.capacity
        self.total += 1

    def items(self) -> List[Tuple[float, float]]:
        """Samples oldest-first (un-wrapping the ring)."""
        if len(self._slots) < self.capacity:
            return list(self._slots)
        return self._slots[self._next:] + self._slots[:self._next]


class Sampler:
    """Records counter/gauge values at aligned simulated-time points.

    The event loop calls :meth:`sample` whenever simulated time reaches
    :attr:`next_due_ms`; the sampler stamps the sample with the aligned
    boundary (``floor(now / interval) * interval``) so sample timestamps
    are a pure function of simulated time, independent of which event
    happened to cross the boundary.

    ``names`` restricts sampling to an explicit watchlist; by default
    every counter and gauge present in the registry at each sample point
    is recorded (histograms are cumulative distributions, not sampled —
    their end-of-run snapshot already aggregates exactly).
    """

    def __init__(
        self,
        registry: Optional[MetricsRegistry] = None,
        interval_ms: float = DEFAULT_INTERVAL_MS,
        capacity: int = DEFAULT_CAPACITY,
        names: Optional[List[str]] = None,
    ) -> None:
        if interval_ms <= 0.0:
            raise ValueError(f"interval_ms must be > 0, got {interval_ms}")
        self.registry = registry
        self.interval_ms = float(interval_ms)
        self.capacity = capacity
        self.names = list(names) if names is not None else None
        self.series: Dict[str, RingBuffer] = {}
        self.kinds: Dict[str, str] = {}
        #: Next simulated time at or past which a sample is due.  Starts
        #: at 0.0 so the run's initial state is the first sample.
        self.next_due_ms = 0.0
        self.samples_taken = 0

    def __repr__(self) -> str:
        return (
            f"<Sampler interval={self.interval_ms}ms "
            f"series={len(self.series)} samples={self.samples_taken}>"
        )

    def _registry(self) -> Optional[MetricsRegistry]:
        return self.registry if self.registry is not None else _metrics_mod.REGISTRY

    def sample(self, now_ms: float) -> None:
        """Take one sample at the boundary at or below ``now_ms``.

        A fresh :class:`~repro.sim.Environment` restarts simulated time
        at zero; when time moves backwards the sampler simply re-aligns
        (the ring keeps both runs' samples, ordered by append).
        """
        registry = self._registry()
        if registry is None:
            return
        aligned = (now_ms // self.interval_ms) * self.interval_ms
        snapshot = registry.snapshot()
        names = self.names if self.names is not None else sorted(snapshot)
        for name in names:
            entry = snapshot.get(name)
            if entry is None or entry["type"] not in ("counter", "gauge"):
                continue
            ring = self.series.get(name)
            if ring is None:
                ring = self.series[name] = RingBuffer(self.capacity)
                self.kinds[name] = entry["type"]
            ring.append(aligned, entry["value"])
        self.samples_taken += 1
        self.next_due_ms = aligned + self.interval_ms

    # -- derivation ---------------------------------------------------------

    def deltas(self, name: str) -> List[Tuple[float, float]]:
        """Per-window ``(t_end, value_delta)`` pairs for one series."""
        ring = self.series.get(name)
        if ring is None:
            return []
        items = ring.items()
        return [
            (t1, v1 - v0)
            for (t0, v0), (t1, v1) in zip(items, items[1:])
        ]

    def rates(self, name: str) -> List[Tuple[float, float]]:
        """Per-window ``(t_end, value/ms)`` rates for one series.

        Windows of zero simulated length (time moved backwards on an
        environment reset, or two aligned points coincide) derive a rate
        of ``0.0`` rather than dividing by zero — a zero-length window
        carries no throughput information.
        """
        ring = self.series.get(name)
        if ring is None:
            return []
        items = ring.items()
        out: List[Tuple[float, float]] = []
        for (t0, v0), (t1, v1) in zip(items, items[1:]):
            dt = t1 - t0
            out.append((t1, (v1 - v0) / dt if dt > 0.0 else 0.0))
        return out

    # -- serialization ------------------------------------------------------

    def payload(self) -> Dict[str, Any]:
        """JSON-able dump (the farm's worker->parent wire shape)."""
        return {
            "schema": SCHEMA,
            "interval_ms": self.interval_ms,
            "capacity": self.capacity,
            "samples_taken": self.samples_taken,
            "series": {
                name: {
                    "kind": self.kinds[name],
                    "t": [t for t, _ in ring.items()],
                    "v": [v for _, v in ring.items()],
                    "total": ring.total,
                }
                for name, ring in sorted(self.series.items())
            },
        }


def counter_rate(
    t: List[float], v: List[float]
) -> List[Tuple[float, float]]:
    """Rate derivation over parallel ``t``/``v`` arrays (payload form).

    Zero-length windows (``dt == 0``) derive ``0.0`` — see
    :meth:`Sampler.rates`.
    """
    out: List[Tuple[float, float]] = []
    for t0, v0, t1, v1 in zip(t, v, t[1:], v[1:]):
        dt = t1 - t0
        out.append((t1, (v1 - v0) / dt if dt > 0.0 else 0.0))
    return out


def enabled() -> bool:
    """Whether a sampler is currently collecting."""
    return SAMPLER is not None


def enable(sampler: Optional[Sampler] = None) -> Sampler:
    """Install ``sampler`` (or a fresh default one) as the active sampler."""
    global SAMPLER
    SAMPLER = sampler if sampler is not None else Sampler()
    return SAMPLER


def disable() -> Optional[Sampler]:
    """Stop sampling; returns the sampler that was active (if any)."""
    global SAMPLER
    previous, SAMPLER = SAMPLER, None
    return previous
