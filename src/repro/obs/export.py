"""Exporters: Chrome/Perfetto ``trace_event`` JSON and metrics snapshots.

The trace exporter emits the `Trace Event Format`_ consumed by
``chrome://tracing`` and by Perfetto's legacy-JSON importer
(ui.perfetto.dev opens these files directly):

* every **engine span** appears twice — once on its host-GPU engine
  track (process ``gpu<d>``, threads h2d / compute / d2h) and once on
  the submitting VP's track (process ``vp:<name>``, same three threads)
  — so the same busy interval can be read machine-centric *or*
  guest-centric;
* **scheduler decisions** (dispatch picks, reorders, coalescer merges,
  VP stop/resume) are instant events on a ``decisions`` track;
* simulated milliseconds map to trace microseconds (the format's native
  unit), so durations read naturally in the viewer.

Every exported file carries a **run stamp** — the scenario's
config-hash key (the scenario farm's job identity: sha256 over the
``module:function`` reference and the canonical-JSON kwargs) plus the
derived deterministic seed — so any artifact on disk is attributable to
an exact, re-runnable configuration.

.. _Trace Event Format:
   https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU
"""

from __future__ import annotations

import hashlib
import json
import re
import subprocess
from functools import lru_cache
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Tuple, Union

from .metrics import MetricsRegistry
from .tracer import Tracer

#: pid spacing between merged trace payloads (farm jobs): each job's
#: process ids live in their own block so tracks never collide.
PID_STRIDE = 1000

#: Engine-role thread ids, fixed so tracks sort h2d, compute, d2h.
ROLE_TIDS = {"h2d": 1, "compute": 2, "d2h": 3}


def canonical_json(value: Any) -> str:
    """Deterministic JSON: sorted keys, no whitespace, repr-exact floats."""
    return json.dumps(value, sort_keys=True, separators=(",", ":"))


def config_key(fn: str, kwargs: Dict[str, Any]) -> str:
    """The farm's config-hash identity for one job description.

    This is byte-for-byte the :attr:`repro.exec.farm.FarmJob.key`
    algorithm (the farm imports it from here), so a trace captured by
    ``repro trace`` and a farm job running the same scenario stamp the
    same hash.
    """
    payload = f"{fn}|{canonical_json(kwargs)}"
    return hashlib.sha256(payload.encode()).hexdigest()[:16]


def seed_for(key: str) -> int:
    """Deterministic seed derived from a config-hash key (farm rule)."""
    return int(key[:8], 16) % (2**31 - 1)


@lru_cache(maxsize=1)
def git_commit() -> str:
    """The working tree's HEAD commit hash, best-effort.

    Empty outside a git repository (or when git itself is unavailable) —
    artifacts must still export from a tarball checkout.  Cached for the
    process lifetime: artifacts written by one run all came from one
    revision.
    """
    try:
        proc = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            capture_output=True, text=True, timeout=10, check=False,
        )
    except (OSError, subprocess.SubprocessError):
        return ""
    return proc.stdout.strip() if proc.returncode == 0 else ""


def run_stamp(
    fn: str,
    kwargs: Dict[str, Any],
    seed: Optional[int] = None,
    label: str = "",
) -> Dict[str, Any]:
    """Attributability header for exported artifacts.

    Carries both the *configuration* identity (config hash + seed: what
    was run) and the *code* identity (``git_commit``: which revision ran
    it) so every artifact on disk maps to an exact, re-runnable point.
    """
    key = config_key(fn, kwargs)
    return {
        "tool": "repro.obs",
        "schema": 1,
        "fn": fn,
        "config": dict(kwargs),
        "config_hash": key,
        "seed": seed if seed is not None else seed_for(key),
        "label": label or fn.rpartition(":")[2],
        "git_commit": git_commit(),
    }


TracePayload = Dict[str, Any]
TraceSource = Union[Tracer, TracePayload]


def _payload(source: TraceSource) -> TracePayload:
    return source.to_payload() if isinstance(source, Tracer) else source


class _TrackTable:
    """Allocates (pid, tid) pairs and their metadata events."""

    def __init__(self) -> None:
        self._pids: Dict[str, int] = {}
        self._tids: Dict[Tuple[int, str], int] = {}
        self.metadata: List[dict] = []

    def pid(self, base: int, process: str) -> int:
        pid = self._pids.get(process)
        if pid is None:
            pid = base + len(self._pids) + 1
            self._pids[process] = pid
            self.metadata.append({
                "ph": "M", "pid": pid, "tid": 0, "name": "process_name",
                "args": {"name": process},
            })
        return pid

    def tid(self, pid: int, thread: str, fixed: Optional[int] = None) -> int:
        tid = self._tids.get((pid, thread))
        if tid is None:
            if fixed is not None:
                tid = fixed
            else:
                # Non-engine threads are numbered from 10, above the
                # fixed engine-role tids.
                used = {t for (p, _), t in self._tids.items() if p == pid}
                tid = 10
                while tid in used:
                    tid += 1
            self._tids[(pid, thread)] = tid
            self.metadata.append({
                "ph": "M", "pid": pid, "tid": tid, "name": "thread_name",
                "args": {"name": thread},
            })
        return tid


def _engine_tracks(args: Optional[dict], lane: str) -> List[Tuple[str, str]]:
    """(process, thread) placements for one engine span."""
    role = (args or {}).get("role")
    if role not in ROLE_TIDS:
        for candidate in ROLE_TIDS:
            if candidate in lane:
                role = candidate
                break
        else:
            return [("host", lane)]
    device = (args or {}).get("device", 0)
    tracks = [(f"gpu{device}", role)]
    vp = (args or {}).get("vp")
    if vp is not None:
        if (args or {}).get("members"):
            # Merged jobs carry a synthetic per-merge VP name
            # (``coalesced#N``); fold them onto one shared track — the
            # real member VPs stay listed in the span args.
            vp = "coalesced"
        tracks.append((f"vp:{vp}", role))
    return tracks


def to_chrome_trace(
    sources: Sequence[Tuple[str, TraceSource]],
    stamp: Optional[Dict[str, Any]] = None,
    id_base: int = 0,
) -> Dict[str, Any]:
    """Convert one or more trace buffers to one Chrome/Perfetto JSON dict.

    ``sources`` is a sequence of ``(label, tracer_or_payload)`` pairs;
    each source gets its own pid block (:data:`PID_STRIDE`) and its span
    ids are re-based onto one monotonic sequence, so buffers captured in
    different farm workers (each starting its ids at zero) merge without
    collisions.
    """
    events: List[dict] = []
    tracks = _TrackTable()
    next_id = id_base

    for index, (label, source) in enumerate(sources):
        payload = _payload(source)
        base = index * PID_STRIDE
        prefix = f"{label}/" if len(sources) > 1 and label else ""

        for span in payload.get("spans", ()):
            args = span.get("args") or {}
            cat = span["cat"]
            placements = (
                _engine_tracks(args, span["lane"])
                if cat == "engine"
                else [(span["lane"], span["lane"].rpartition("/")[2] or "main")]
            )
            for process, thread in placements:
                pid = tracks.pid(base, prefix + process)
                tid = tracks.tid(pid, thread, ROLE_TIDS.get(thread))
                events.append({
                    "ph": "X",
                    "pid": pid,
                    "tid": tid,
                    "cat": cat,
                    "name": span["name"],
                    "ts": span["start_ms"] * 1000.0,
                    "dur": (span["end_ms"] - span["start_ms"]) * 1000.0,
                    "args": {**args, "span_id": next_id, "job_label": label},
                })
            next_id += 1

        for instant in payload.get("instants", ()):
            args = instant.get("args") or {}
            pid = tracks.pid(base, prefix + "decisions")
            tid = tracks.tid(pid, instant["lane"])
            events.append({
                "ph": "i",
                "s": "p",
                "pid": pid,
                "tid": tid,
                "cat": instant["cat"],
                "name": instant["name"],
                "ts": instant["ts_ms"] * 1000.0,
                "args": {**args, "span_id": next_id, "job_label": label},
            })
            next_id += 1

    return {
        "traceEvents": tracks.metadata + events,
        "displayTimeUnit": "ms",
        "otherData": dict(stamp or {}),
    }


def write_trace(
    path: Union[str, Path],
    sources: Sequence[Tuple[str, TraceSource]],
    stamp: Optional[Dict[str, Any]] = None,
) -> Path:
    """Write a Chrome/Perfetto trace JSON file; returns the path."""
    path = Path(path)
    path.write_text(json.dumps(to_chrome_trace(sources, stamp), indent=1) + "\n")
    return path


def metrics_snapshot(
    registry: Union[MetricsRegistry, Dict[str, Any]],
    stamp: Optional[Dict[str, Any]] = None,
) -> Dict[str, Any]:
    """Flat, stamped, JSON-able dump of a metrics registry."""
    snap = (
        registry.snapshot()
        if isinstance(registry, MetricsRegistry)
        else dict(registry)
    )
    return {
        "schema": "repro.obs.metrics/1",
        "stamp": dict(stamp or {}),
        "metrics": snap,
    }


def write_metrics(
    path: Union[str, Path],
    registry: Union[MetricsRegistry, Dict[str, Any]],
    stamp: Optional[Dict[str, Any]] = None,
    prom: bool = True,
) -> Path:
    """Write a stamped metrics JSON snapshot (+ a ``.prom`` sibling).

    The Prometheus sibling (same stem, ``.prom`` suffix) makes every
    snapshot scrapeable by standard tooling without a converter; pass
    ``prom=False`` to write only the JSON.
    """
    path = Path(path)
    snapshot = metrics_snapshot(registry, stamp)
    path.write_text(json.dumps(snapshot, indent=1) + "\n")
    if prom:
        path.with_suffix(".prom").write_text(to_prometheus(snapshot))
    return path


#: Characters legal in a Prometheus metric name (anything else becomes _).
_PROM_NAME_RE = re.compile(r"[^a-zA-Z0-9_:]")


def prom_name(name: str, prefix: str = "repro_") -> str:
    """Sanitize a dotted metric name into Prometheus form.

    ``engine.gpu0/compute.busy_ms`` → ``repro_engine_gpu0_compute_busy_ms``.
    """
    sanitized = _PROM_NAME_RE.sub("_", name)
    if sanitized and sanitized[0].isdigit():
        sanitized = "_" + sanitized
    return prefix + sanitized


def _prom_value(value: float) -> str:
    """Render a sample value (integral floats print as integers)."""
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(value)


def to_prometheus(snapshot: Dict[str, Any], prefix: str = "repro_") -> str:
    """Prometheus text-exposition rendering of a metrics snapshot.

    Accepts either a stamped snapshot (:func:`metrics_snapshot` output)
    or a bare ``name -> metric`` mapping.  Counters and gauges map
    directly; histograms emit cumulative ``_bucket{le=...}`` series plus
    ``_sum``/``_count``, per the exposition format.  The run stamp rides
    along as comments and a ``<prefix>run_info`` gauge with
    ``config_hash`` / ``git_commit`` labels, so one scrape is still
    attributable to an exact configuration and revision.
    """
    metrics = snapshot.get("metrics", snapshot)
    stamp = snapshot.get("stamp") or {}
    lines: List[str] = []
    if stamp:
        label = stamp.get("label", "")
        info_labels = (
            f'label="{label}",'
            f'config_hash="{stamp.get("config_hash", "")}",'
            f'git_commit="{stamp.get("git_commit", "")}"'
        )
        lines.append(f"# repro.obs metrics export: {label}")
        lines.append(f"# TYPE {prefix}run_info gauge")
        lines.append(f"{prefix}run_info{{{info_labels}}} 1")
    for name in sorted(metrics):
        entry = metrics[name]
        kind = entry.get("type")
        pname = prom_name(name, prefix)
        if kind in ("counter", "gauge"):
            lines.append(f"# TYPE {pname} {kind}")
            lines.append(f"{pname} {_prom_value(entry['value'])}")
        elif kind == "histogram":
            lines.append(f"# TYPE {pname} histogram")
            cumulative = 0
            for edge, count in zip(entry["edges"], entry["counts"]):
                cumulative += count
                lines.append(
                    f'{pname}_bucket{{le="{_prom_value(edge)}"}} {cumulative}'
                )
            lines.append(f'{pname}_bucket{{le="+Inf"}} {entry["count"]}')
            lines.append(f"{pname}_sum {_prom_value(entry['sum'])}")
            lines.append(f"{pname}_count {entry['count']}")
    return "\n".join(lines) + "\n"


def render_metrics(snapshot: Dict[str, Any]) -> str:
    """Human-readable metrics table (``repro metrics``)."""
    metrics = snapshot.get("metrics", snapshot)
    lines = []
    stamp = snapshot.get("stamp") or {}
    if stamp:
        lines.append(
            f"run {stamp.get('label', '?')}  config_hash={stamp.get('config_hash')}"
            f"  seed={stamp.get('seed')}"
        )
    width = max((len(name) for name in metrics), default=4)
    for name in sorted(metrics):
        entry = metrics[name]
        kind = entry.get("type", "?")
        if kind == "histogram":
            mean = entry["sum"] / entry["count"] if entry["count"] else 0.0
            detail = f"count={entry['count']} sum={entry['sum']:.6g} mean={mean:.6g}"
        else:
            detail = f"{entry['value']:.6g}"
        lines.append(f"{name.ljust(width)}  {kind:<9}  {detail}")
    return "\n".join(lines)
