"""The span/event tracer: what happened, where, and when.

The simulator's headline behaviours — copy/compute overlap from Kernel
Interleaving, launch merging from Kernel Coalescing, VP stop/resume —
are *timeline* claims, so the tracer records exactly two shapes:

* **spans** — a named interval on a *lane* (an engine, an IPC channel, a
  VP lifetime) with explicit start/end timestamps in simulated
  milliseconds and an identity ``args`` mapping (vp / job / kernel /
  seq / device);
* **instants** — zero-duration marks for decisions: a dispatcher pick
  (with its reorder flag), a coalescer merge, a VP stop/resume.

Design constraint: **near-zero cost when disabled.**  The module-level
:data:`TRACER` is ``None`` whenever tracing is off, and every hot path
guards its instrumentation with a single ``if tracer_mod.TRACER is not
None`` attribute check — no function call, no allocation, no argument
packing happens on the disabled path.  Tests pin this down by asserting
that a disabled-mode simulation performs zero allocations from this
module and that simulation digests are bit-identical with tracing on
and off (recording never feeds back into scheduling).

Timestamps are always passed explicitly by the instrumented component
from its own ``env.now`` — the tracer holds no clock, so one tracer can
collect from any number of simulation environments (a farm job may run
several back to back).
"""

from __future__ import annotations

from itertools import count
from typing import Any, Dict, List, Optional, Tuple

#: The active tracer, or ``None`` when tracing is disabled.  Hot paths
#: read this module attribute directly; everything else goes through
#: :func:`enable` / :func:`disable`.
TRACER: Optional["Tracer"] = None

#: Span tuple layout: (id, lane, cat, name, start_ms, end_ms, args).
SPAN_FIELDS = ("id", "lane", "cat", "name", "start_ms", "end_ms", "args")

#: Instant tuple layout: (id, lane, cat, name, ts_ms, args).
INSTANT_FIELDS = ("id", "lane", "cat", "name", "ts_ms", "args")

_JSON_SCALARS = (str, int, float, bool, type(None))


def _clean_args(args: Optional[dict]) -> Optional[dict]:
    """JSON-safe copy of a record's args (recording accepts any values —
    e.g. an engine op's ``profile`` object — but payloads must pickle to
    the farm parent and dump to disk, so richer values become reprs)."""
    if args is None:
        return None
    return {
        key: value if isinstance(value, _JSON_SCALARS) else repr(value)
        for key, value in args.items()
    }


class Tracer:
    """An append-only buffer of spans and instant events.

    Records are plain tuples (see :data:`SPAN_FIELDS` /
    :data:`INSTANT_FIELDS`): the tracer sits on the simulation's hottest
    paths when enabled, so it avoids per-record object overhead.  Ids
    are monotonic *within one tracer*; the farm aggregation layer
    re-bases them when merging buffers from several workers.
    """

    def __init__(self) -> None:
        self.spans: List[Tuple[int, str, str, str, float, float, Optional[dict]]] = []
        self.instants: List[Tuple[int, str, str, str, float, Optional[dict]]] = []
        self._next_id = count().__next__

    def __repr__(self) -> str:
        return f"<Tracer spans={len(self.spans)} instants={len(self.instants)}>"

    def __len__(self) -> int:
        return len(self.spans) + len(self.instants)

    # -- recording ---------------------------------------------------------

    def span(
        self,
        lane: str,
        name: str,
        start_ms: float,
        end_ms: float,
        cat: str = "engine",
        args: Optional[dict] = None,
    ) -> int:
        """Record one completed interval on ``lane``; returns its id."""
        span_id = self._next_id()
        self.spans.append((span_id, lane, cat, name, start_ms, end_ms, args))
        return span_id

    def instant(
        self,
        lane: str,
        name: str,
        ts_ms: float,
        cat: str = "sched",
        args: Optional[dict] = None,
    ) -> int:
        """Record one zero-duration decision mark; returns its id."""
        event_id = self._next_id()
        self.instants.append((event_id, lane, cat, name, ts_ms, args))
        return event_id

    # -- introspection ------------------------------------------------------

    def lanes(self) -> List[str]:
        """Sorted names of every lane that received at least one record."""
        names = {record[1] for record in self.spans}
        names.update(record[1] for record in self.instants)
        return sorted(names)

    def spans_on(self, lane: str) -> List[tuple]:
        return [record for record in self.spans if record[1] == lane]

    def clear(self) -> None:
        self.spans.clear()
        self.instants.clear()
        self._next_id = count().__next__

    # -- serialization (the farm's worker->parent wire format) -------------

    def to_payload(self) -> Dict[str, Any]:
        """JSON-able dict of every record (crosses the fork boundary)."""
        return {
            "schema": "repro.obs.trace/1",
            "spans": [
                {**dict(zip(SPAN_FIELDS, record)), "args": _clean_args(record[6])}
                for record in self.spans
            ],
            "instants": [
                {**dict(zip(INSTANT_FIELDS, record)), "args": _clean_args(record[5])}
                for record in self.instants
            ],
        }

    @classmethod
    def from_payload(cls, payload: Dict[str, Any]) -> "Tracer":
        """Rebuild a tracer from :meth:`to_payload` output."""
        tracer = cls()
        for span in payload.get("spans", ()):
            tracer.spans.append(tuple(span[field] for field in SPAN_FIELDS))
        for instant in payload.get("instants", ()):
            tracer.instants.append(
                tuple(instant[field] for field in INSTANT_FIELDS)
            )
        used = [record[0] for record in tracer.spans]
        used += [record[0] for record in tracer.instants]
        tracer._next_id = count(max(used, default=-1) + 1).__next__
        return tracer


def enabled() -> bool:
    """Whether a tracer is currently collecting."""
    return TRACER is not None


def enable(tracer: Optional[Tracer] = None) -> Tracer:
    """Install ``tracer`` (or a fresh one) as the active tracer."""
    global TRACER
    TRACER = tracer if tracer is not None else Tracer()
    return TRACER


def disable() -> Optional[Tracer]:
    """Stop tracing; returns the tracer that was active (if any)."""
    global TRACER
    previous, TRACER = TRACER, None
    return previous
