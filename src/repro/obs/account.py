"""Per-VP / per-tenant accounting: who used the host GPU, and how much.

The accounting substrate the ROADMAP's ``repro serve`` daemon will bill
tenants with.  Everything here derives from state the simulation already
records — job timestamps in the dispatcher's completed log, coalesce
membership, the scheduling policy's QoS configuration — so accounting is
a pure *read* of a finished run: enabling it cannot perturb scheduling,
and scenario digests stay bit-identical with accounting on or off.

Emitted metric families (all prefixed ``account.``):

* ``account.vp.<name>.busy_ms`` / ``.wait_ms`` — service time on host
  engines vs time parked in the Job Queue (scheduling + coalescing
  holds), per VP.
* ``account.vp.<name>.jobs`` / ``.coalesced`` — jobs completed for the
  VP, and how many of those rode inside a merged (coalesced) launch.
* ``account.coalesce.share`` — fraction of all completed jobs served
  via coalesced members (the multiplexing win the paper's Kernel
  Coalescing section claims).
* ``account.fairness.jain`` — Jain's fairness index over per-VP service
  time: 1.0 when every VP got an equal share, ``1/n`` when one VP
  monopolized the host GPU.  The natural scoreboard for the fair-share
  DRR policy.
* ``account.deadline.hits`` / ``.misses`` (+ per-VP) — completion-time
  deadline attainment when the active policy declares QoS budgets
  (duck-typed on ``budgets_ms``, i.e. the priority-deadline policy).

Like everything in ``repro.obs``, this module is duck-typed against the
framework (no import of ``repro.core``) and collection only runs when a
metrics registry is active.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional

from .metrics import MetricsRegistry


@dataclass
class VPUsage:
    """One VP's resource-usage account for a finished run."""

    vp: str
    jobs: int = 0
    coalesced_jobs: int = 0
    busy_ms: float = 0.0
    wait_ms: float = 0.0
    deadline_hits: int = 0
    deadline_misses: int = 0

    @property
    def total_ms(self) -> float:
        return self.busy_ms + self.wait_ms


def jain_index(values: List[float]) -> float:
    """Jain's fairness index: ``(sum x)^2 / (n * sum x^2)``.

    1.0 = perfectly fair; ``1/n`` = one party took everything.  An empty
    or all-zero population is vacuously fair (1.0).
    """
    n = len(values)
    if n == 0:
        return 1.0
    total = sum(values)
    squares = sum(v * v for v in values)
    if squares <= 0.0:
        return 1.0
    return (total * total) / (n * squares)


def _deadline_for(policy: Any, job: Any) -> Optional[float]:
    """The job's completion deadline under ``policy``, if it has QoS budgets.

    Duck-typed on the priority-deadline policy's shape: ``budgets_ms``
    (per-tier latency budgets) plus either ``_tier`` or
    ``tiers``/``default_tier``.  Policies without budgets yield ``None``
    (no deadline accounting).
    """
    budgets = getattr(policy, "budgets_ms", None)
    if not budgets:
        return None
    tier_of = getattr(policy, "_tier", None)
    if callable(tier_of):
        tier = int(tier_of(job.vp))
    else:
        tiers = getattr(policy, "tiers", {})
        tier = int(tiers.get(job.vp, getattr(policy, "default_tier", 0)))
    tier = max(0, min(tier, len(budgets) - 1))
    return float(job.submitted_at_ms) + float(budgets[tier])


def compute_usage(framework: Any) -> Dict[str, VPUsage]:
    """Per-VP usage accounts from the dispatcher's completed log.

    Members of merged (coalesced) jobs inherit the merged job's dispatch
    and completion points — they were absorbed, not individually served —
    and are flagged as coalesced.  Synthetic merged-group rows (whose
    ``vp`` names no attached session) are excluded, exactly like
    :func:`repro.analysis.accounting.vp_accounts`.
    """
    sessions = getattr(framework, "sessions", {})
    usage: Dict[str, VPUsage] = {
        name: VPUsage(vp=name) for name in sorted(sessions)
    }
    dispatcher = getattr(framework, "dispatcher", None)
    if dispatcher is None:
        return usage
    policy = getattr(dispatcher, "policy", None)

    dispatch_point: Dict[int, float] = {}
    member_ids: set = set()
    for job in dispatcher.completed_log:
        if job.dispatched_at_ms is not None:
            dispatch_point[job.job_id] = job.dispatched_at_ms
            for member in job.members:
                dispatch_point.setdefault(member.job_id, job.dispatched_at_ms)
                member_ids.add(member.job_id)

    for job in dispatcher.completed_log:
        account = usage.get(job.vp)
        if account is None:
            continue  # synthetic merged-group rows
        dispatched = dispatch_point.get(job.job_id)
        if dispatched is None or job.completed_at_ms is None:
            continue
        account.jobs += 1
        if job.job_id in member_ids:
            account.coalesced_jobs += 1
        account.wait_ms += max(0.0, dispatched - job.submitted_at_ms)
        account.busy_ms += max(0.0, job.completed_at_ms - dispatched)
        deadline = _deadline_for(policy, job) if policy is not None else None
        if deadline is not None:
            if job.completed_at_ms <= deadline:
                account.deadline_hits += 1
            else:
                account.deadline_misses += 1
    return usage


def coalesce_share(usage: Dict[str, VPUsage]) -> float:
    """Fraction of completed per-VP jobs served inside merged launches."""
    jobs = sum(u.jobs for u in usage.values())
    if jobs == 0:
        return 0.0
    return sum(u.coalesced_jobs for u in usage.values()) / jobs


def collect_accounts(
    framework: Any, registry: Optional[MetricsRegistry] = None
) -> Dict[str, VPUsage]:
    """Derive per-VP accounts and surface them as ``account.*`` metrics.

    Called from :func:`repro.obs.metrics.collect_framework` at the end
    of every captured run; safe to call directly on any finished
    framework.  Returns the computed usage map so callers (the
    ``repro account`` CLI) need not recompute it.
    """
    usage = compute_usage(framework)
    if registry is None:
        from . import metrics as _metrics_mod  # local: avoid cycle at import

        registry = _metrics_mod.REGISTRY
    if registry is None:
        return usage

    any_deadlines = False
    for name in sorted(usage):
        account = usage[name]
        prefix = f"account.vp.{name}"
        registry.gauge(f"{prefix}.busy_ms").set(account.busy_ms)
        registry.gauge(f"{prefix}.wait_ms").set(account.wait_ms)
        registry.counter(f"{prefix}.jobs").inc(account.jobs)
        registry.counter(f"{prefix}.coalesced").inc(account.coalesced_jobs)
        if account.deadline_hits or account.deadline_misses:
            any_deadlines = True
            registry.counter(f"{prefix}.deadline_hits").inc(account.deadline_hits)
            registry.counter(f"{prefix}.deadline_misses").inc(account.deadline_misses)
    registry.gauge("account.coalesce.share").set(coalesce_share(usage))
    registry.gauge("account.fairness.jain").set(
        jain_index([u.busy_ms for u in usage.values()])
    )
    if any_deadlines:
        registry.counter("account.deadline.hits").inc(
            sum(u.deadline_hits for u in usage.values())
        )
        registry.counter("account.deadline.misses").inc(
            sum(u.deadline_misses for u in usage.values())
        )
    return usage


def render_accounts(framework: Any) -> str:
    """Text report for ``repro account``: the tenant billing table."""
    from ..analysis.reporting import render_table  # local: avoid cycle

    usage = compute_usage(framework)
    share = coalesce_share(usage)
    jain = jain_index([u.busy_ms for u in usage.values()])
    has_deadlines = any(
        u.deadline_hits or u.deadline_misses for u in usage.values()
    )
    headers = ["VP", "Jobs", "Coalesced", "Busy (ms)", "Wait (ms)"]
    if has_deadlines:
        headers += ["DL hit", "DL miss"]
    rows: List[List[object]] = []
    for name in sorted(usage):
        u = usage[name]
        row: List[object] = [u.vp, u.jobs, u.coalesced_jobs, u.busy_ms, u.wait_ms]
        if has_deadlines:
            row += [u.deadline_hits, u.deadline_misses]
        rows.append(row)
    table = render_table(headers, rows, title="Per-VP accounting (account.*)")
    footer = (
        f"\ncoalesce share: {share:.3f}"
        f"\nJain fairness (busy_ms): {jain:.4f}"
    )
    return table + footer
