"""The metrics registry: counters, gauges, and deterministic histograms.

Complements the tracer with aggregate numbers: how many events the sim
loop processed, how deep the Job Queue ran, how often the compile/timing
memo caches hit, what fraction of kernels the coalescer merged, and how
much host wall-clock the simulator's own hot paths cost (self-profiling).

Three metric kinds, mirroring the Prometheus vocabulary both related
parallel-simulator codebases report through:

* :class:`Counter` — a monotonically increasing total;
* :class:`Gauge` — a last-written value (utilizations, horizon);
* :class:`Histogram` — counts over **fixed, deterministic bucket
  edges**.  Edges are part of the metric's identity and never derived
  from the data, so two runs of the same scenario produce bit-identical
  snapshots and farm workers' histograms merge by plain bucket-wise
  addition.

Like the tracer, the registry is disabled by default: the module-level
:data:`REGISTRY` is ``None`` and hot paths guard with a single ``if
metrics_mod.REGISTRY is not None`` check, so the disabled mode adds no
allocations to the simulation.
"""

from __future__ import annotations

import time
from bisect import bisect_left
from typing import Any, Dict, List, Optional, Tuple, Union

#: The active registry, or ``None`` when metrics collection is off.
REGISTRY: Optional["MetricsRegistry"] = None

#: Default edges for simulated-duration histograms (milliseconds).
MS_BUCKETS: Tuple[float, ...] = (
    0.01, 0.05, 0.1, 0.5, 1.0, 2.5, 5.0, 10.0, 25.0, 50.0,
    100.0, 250.0, 500.0, 1000.0, 5000.0,
)

#: Default edges for queue-depth / batch-size histograms.
DEPTH_BUCKETS: Tuple[float, ...] = (1, 2, 4, 8, 16, 32, 64, 128, 256, 512)

#: Default edges for host wall-clock self-profiling (seconds).
WALL_S_BUCKETS: Tuple[float, ...] = (
    0.0001, 0.0005, 0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1.0, 5.0, 30.0,
)


class Counter:
    """A monotonically increasing total."""

    __slots__ = ("value",)
    kind = "counter"

    def __init__(self) -> None:
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount

    def snapshot(self) -> Dict[str, Any]:
        return {"type": self.kind, "value": self.value}


class Gauge:
    """A last-written value."""

    __slots__ = ("value",)
    kind = "gauge"

    def __init__(self) -> None:
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)

    def snapshot(self) -> Dict[str, Any]:
        return {"type": self.kind, "value": self.value}


class Histogram:
    """Bucketed observations over fixed edges.

    ``counts[i]`` counts observations ``<= edges[i]``; the final slot
    counts overflows.  Edges are fixed at construction — determinism and
    cross-process mergeability both depend on that.
    """

    __slots__ = ("edges", "counts", "count", "sum")
    kind = "histogram"

    def __init__(self, edges: Tuple[float, ...] = MS_BUCKETS) -> None:
        if not edges or list(edges) != sorted(edges):
            raise ValueError(f"histogram edges must be sorted, got {edges!r}")
        self.edges = tuple(float(e) for e in edges)
        self.counts = [0] * (len(self.edges) + 1)
        self.count = 0
        self.sum = 0.0

    def observe(self, value: float) -> None:
        # bisect_left gives Prometheus ``le`` semantics: a value equal
        # to an edge counts in that edge's bucket, not the next one.
        self.counts[bisect_left(self.edges, value)] += 1
        self.count += 1
        self.sum += value

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0

    def snapshot(self) -> Dict[str, Any]:
        return {
            "type": self.kind,
            "edges": list(self.edges),
            "counts": list(self.counts),
            "count": self.count,
            "sum": self.sum,
        }


Metric = Union[Counter, Gauge, Histogram]


class MetricsRegistry:
    """Name-keyed store of metrics, created on first touch.

    Metric names are dotted paths (``engine.gpu0/compute.busy_ms``); the
    snapshot is sorted by name so its canonical-JSON encoding is stable.
    """

    def __init__(self) -> None:
        self._metrics: Dict[str, Metric] = {}

    def __len__(self) -> int:
        return len(self._metrics)

    def __contains__(self, name: str) -> bool:
        return name in self._metrics

    def counter(self, name: str) -> Counter:
        metric = self._metrics.get(name)
        if metric is None:
            metric = self._metrics[name] = Counter()
        return metric  # type: ignore[return-value]

    def gauge(self, name: str) -> Gauge:
        metric = self._metrics.get(name)
        if metric is None:
            metric = self._metrics[name] = Gauge()
        return metric  # type: ignore[return-value]

    def histogram(self, name: str, edges: Tuple[float, ...] = MS_BUCKETS) -> Histogram:
        metric = self._metrics.get(name)
        if metric is None:
            metric = self._metrics[name] = Histogram(edges)
        return metric  # type: ignore[return-value]

    def names(self) -> List[str]:
        return sorted(self._metrics)

    def snapshot(self) -> Dict[str, Dict[str, Any]]:
        """JSON-able, name-sorted dump of every metric."""
        return {
            name: self._metrics[name].snapshot() for name in sorted(self._metrics)
        }

    def clear(self) -> None:
        self._metrics.clear()


def enabled() -> bool:
    return REGISTRY is not None


def enable(registry: Optional[MetricsRegistry] = None) -> MetricsRegistry:
    global REGISTRY
    REGISTRY = registry if registry is not None else MetricsRegistry()
    return REGISTRY


def disable() -> Optional[MetricsRegistry]:
    global REGISTRY
    previous, REGISTRY = REGISTRY, None
    return previous


# -- wall-clock self-profiling of simulator hot paths -----------------------


class _Timed:
    """Context manager timing one block into ``selfprof.<name>`` (seconds)."""

    __slots__ = ("_histogram", "_started")

    def __init__(self, histogram: Histogram) -> None:
        self._histogram = histogram
        self._started = 0.0

    def __enter__(self) -> "_Timed":
        self._started = time.perf_counter()
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self._histogram.observe(time.perf_counter() - self._started)


class _Null:
    """Shared no-op context manager: the disabled path allocates nothing."""

    __slots__ = ()

    def __enter__(self) -> "_Null":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        return None


_NULL = _Null()


def timed(name: str) -> Union[_Timed, _Null]:
    """Time a block of host wall-clock into ``selfprof.<name>_s``.

    Returns a shared no-op context manager when metrics are disabled, so
    ``with timed("farm.run_job"):`` costs one attribute check and no
    allocation on the disabled path.
    """
    registry = REGISTRY
    if registry is None:
        return _NULL
    return _Timed(registry.histogram(f"selfprof.{name}_s", WALL_S_BUCKETS))


# -- end-of-run framework collection ----------------------------------------


def collect_framework(framework: Any, registry: Optional[MetricsRegistry] = None) -> None:
    """Record a finished :class:`~repro.core.framework.SigmaVP` run.

    Reads only public state (duck-typed, so no import cycle with
    ``repro.core``): per-engine busy/utilization gauges, per-VP elapsed
    times, IPC totals, coalescer merge rates, and the compile/profile
    memo hit counts.  Counters accumulate across frameworks collected
    into one registry; gauges describe the most recent run.

    Also emits per-VP lifetime spans to the active tracer (lane
    ``vp/<name>``, category ``vp``) so exported traces carry one track
    per virtual platform.
    """
    registry = registry if registry is not None else REGISTRY
    if registry is None:
        return
    from . import tracer as tracer_mod  # local: keep module load light

    env_now = framework.env.now
    registry.counter("framework.runs").inc()
    registry.gauge("sim.horizon_ms").set(env_now)
    registry.gauge("sim.pending_events").set(framework.env.pending)

    # Sharded environments additionally report their domain/epoch stats
    # (duck-typed: absent on the serial engine).
    domain_stats = getattr(framework.env, "domain_stats", None)
    if callable(domain_stats):
        stats = domain_stats()
        registry.gauge("sim.domains").set(stats["domains"])
        registry.gauge("sim.lookahead_ms").set(stats["lookahead_ms"])
        registry.counter("sim.epochs").inc(stats["epochs"])
        registry.counter("sim.domain_switches").inc(stats["switches"])
        registry.counter("sim.boundary_events").inc(stats["boundary_events"])
        for domain, count in enumerate(stats["events_per_domain"]):
            registry.counter(f"sim.domain.{domain}.events").inc(count)

    gpus = list(getattr(framework, "gpus", ()))
    for index, gpu in enumerate(gpus):
        prefix = f"gpu{index}"
        for role, engine in (
            ("h2d", gpu.h2d_engine),
            ("compute", gpu.compute_engine),
            ("d2h", gpu.d2h_engine),
        ):
            registry.gauge(f"engine.{prefix}/{role}.busy_ms").set(engine.busy_ms)
            registry.gauge(f"engine.{prefix}/{role}.utilization").set(
                engine.utilization(env_now)
            )
            registry.counter(f"engine.{prefix}/{role}.ops").inc(
                len(engine.timeline)
            )
        # Compile/profile cache hit/miss counters are recorded live at
        # the memo sites (kernels.compiler / gpu.timing), so they cover
        # every execution route, not just framework runs.

    ipc = getattr(framework, "ipc", None)
    if ipc is not None:
        registry.counter("ipc.messages").inc(ipc.messages_sent)
        registry.counter("ipc.bytes").inc(ipc.bytes_transferred)

    queue = getattr(framework, "queue", None)
    if queue is not None:
        registry.counter("jobqueue.enqueued").inc(queue.total_enqueued)

    coalescer = getattr(framework, "coalescer", None)
    if coalescer is not None:
        stats = coalescer.stats
        registry.counter("coalesce.merges").inc(stats.merges)
        registry.counter("coalesce.kernels_coalesced").inc(stats.kernels_coalesced)
        registry.counter("coalesce.copies_merged").inc(stats.copies_merged)
        batches = registry.histogram("coalesce.batch_size", DEPTH_BUCKETS)
        for size in stats.batch_sizes:
            batches.observe(size)

    profiler = getattr(framework, "profiler", None)
    if profiler is not None:
        registry.counter("profiler.records").inc(len(profiler))

    tracer = tracer_mod.TRACER
    sessions = getattr(framework, "sessions", {})
    for name in sorted(sessions):
        vp = sessions[name].vp
        start = vp.started_at_ms
        end = vp.finished_at_ms if vp.finished_at_ms is not None else env_now
        registry.gauge(f"vp.{name}.elapsed_ms").set(
            (end - start) if start is not None else 0.0
        )
        registry.counter(f"vp.{name}.stops").inc(vp.stop_count)
        if tracer is not None and start is not None:
            tracer.span(
                f"vp/{name}", name, start, end, cat="vp",
                args={"vp": name, "stops": vp.stop_count},
            )

    from . import account as account_mod  # local: keep module load light

    account_mod.collect_accounts(framework, registry)
