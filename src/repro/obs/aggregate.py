"""Farm-wide aggregation: one coherent trace from many worker processes.

Scenario-farm workers run with observability *captured*: each job
records into a fresh tracer/registry whose serialized payloads ride
back to the parent on the job's :class:`~repro.exec.farm.FarmResult`
(the same fork-worker result channel every other field uses).  This
module merges those buffers in the parent:

* **traces** — every worker's span/instant ids start at zero, so the
  merge re-bases them onto one monotonic sequence and tags every record
  with its job label; the Chrome exporter additionally gives each job
  its own pid block so tracks never collide;
* **metrics** — counters and histograms sum bucket-wise (identical
  fixed edges are asserted); gauges are per-run statements, so they are
  never summed: the merged snapshot carries them in a dedicated
  ``gauges`` section labeled by originating job (see
  :func:`merge_metric_snapshots` for the full per-kind policy).

Everything operates on plain payload dicts (duck-typed against
``FarmResult``), so the module has no import edge back into
``repro.exec``.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence, Tuple

from .export import TracePayload
from .tracer import INSTANT_FIELDS, SPAN_FIELDS


def rebase_payloads(
    items: Sequence[Tuple[str, TracePayload]],
) -> TracePayload:
    """Merge trace payloads, re-basing ids per worker buffer.

    Each input payload's monotonic ids (0, 1, 2, ...) are shifted so the
    merged payload's ids are globally unique and strictly increasing in
    (payload order, record order); every record's ``args`` gains the
    originating ``job`` label.
    """
    spans: List[dict] = []
    instants: List[dict] = []
    offset = 0
    for label, payload in items:
        highest = -1
        for span in payload.get("spans", ()):
            record = dict(span)
            highest = max(highest, record["id"])
            record["id"] += offset
            record["args"] = {**(record.get("args") or {}), "job": label}
            spans.append(record)
        for instant in payload.get("instants", ()):
            record = dict(instant)
            highest = max(highest, record["id"])
            record["id"] += offset
            record["args"] = {**(record.get("args") or {}), "job": label}
            instants.append(record)
        offset += highest + 1
    return {"schema": "repro.obs.trace/1", "spans": spans, "instants": instants}


def merge_metric_snapshots(
    items: Sequence[Tuple[str, Dict[str, Any]]],
) -> Dict[str, Any]:
    """Combine per-job metric snapshots into totals plus per-job detail.

    Merge policy, by metric kind:

    * **counter** — summed into ``totals``: counters are monotonic event
      totals, so cross-job addition is exact.
    * **histogram** — summed bucket-wise into ``totals``; edges must
      agree (they are fixed constants, so a mismatch means two
      incompatible code versions — raise rather than mis-merge).
      Because edges are never derived from data, the merged histogram
      is *exactly* the histogram one process observing every sample
      would have produced.
    * **gauge** — never enters ``totals``: a gauge is a last-written
      per-run statement (a utilization, a horizon) with no meaningful
      cross-job sum, and silently keeping one job's value would let a
      last-writer masquerade as an aggregate.  Instead every gauge is
      surfaced under ``gauges`` as ``name -> {job_label: value}``, so
      readers always see which job said what (plus the full per-job
      snapshots under ``per_job``).
    """
    totals: Dict[str, Dict[str, Any]] = {}
    gauges: Dict[str, Dict[str, float]] = {}
    per_job: Dict[str, Dict[str, Any]] = {}
    for label, snapshot in items:
        metrics = snapshot.get("metrics", snapshot)
        per_job[label] = metrics
        for name, entry in metrics.items():
            kind = entry.get("type")
            if kind == "gauge":
                gauges.setdefault(name, {})[label] = entry["value"]
                continue
            merged = totals.get(name)
            if merged is None:
                totals[name] = {
                    key: (list(value) if isinstance(value, list) else value)
                    for key, value in entry.items()
                }
                continue
            if merged["type"] != kind:
                raise ValueError(f"metric {name!r} changes type across jobs")
            if kind == "counter":
                merged["value"] += entry["value"]
            elif kind == "histogram":
                if merged["edges"] != entry["edges"]:
                    raise ValueError(
                        f"histogram {name!r} has mismatched bucket edges"
                    )
                merged["counts"] = [
                    a + b for a, b in zip(merged["counts"], entry["counts"])
                ]
                merged["count"] += entry["count"]
                merged["sum"] += entry["sum"]
    return {
        "schema": "repro.obs.metrics-merged/1",
        "totals": {name: totals[name] for name in sorted(totals)},
        "gauges": {
            name: dict(sorted(gauges[name].items())) for name in sorted(gauges)
        },
        "per_job": {label: per_job[label] for label in sorted(per_job)},
    }


def _observed_results(results: Sequence[Any]) -> List[Any]:
    return [r for r in results if getattr(r, "trace", None) is not None]


def farm_trace_sources(results: Sequence[Any]) -> List[Tuple[str, TracePayload]]:
    """(label, payload) pairs from farm results that captured a trace."""
    return [(r.label or r.job_key, r.trace) for r in _observed_results(results)]


def farm_merged_trace(results: Sequence[Any]) -> TracePayload:
    """One re-based payload covering every captured farm job."""
    return rebase_payloads(farm_trace_sources(results))


def farm_merged_metrics(results: Sequence[Any]) -> Dict[str, Any]:
    """Merged metric snapshot across every captured farm job."""
    return merge_metric_snapshots([
        (r.label or r.job_key, r.metrics)
        for r in results
        if getattr(r, "metrics", None) is not None
    ])


def validate_chrome_trace(trace: Dict[str, Any]) -> List[str]:
    """Schema check for an exported Chrome/Perfetto trace dict.

    Returns a list of problems (empty = valid).  Used by the CI trace
    smoke job and the exporter tests; intentionally strict about the
    fields the Perfetto legacy-JSON importer requires.
    """
    problems: List[str] = []
    events = trace.get("traceEvents")
    if not isinstance(events, list):
        return ["traceEvents missing or not a list"]
    for index, event in enumerate(events):
        where = f"traceEvents[{index}]"
        ph = event.get("ph")
        if ph not in ("X", "i", "M", "C"):
            problems.append(f"{where}: unsupported ph {ph!r}")
            continue
        if not isinstance(event.get("pid"), int) or not isinstance(
            event.get("tid"), int
        ):
            problems.append(f"{where}: pid/tid must be ints")
        if not isinstance(event.get("name"), str) or not event.get("name"):
            problems.append(f"{where}: missing name")
        if ph == "M":
            continue
        ts = event.get("ts")
        if not isinstance(ts, (int, float)) or ts < 0:
            problems.append(f"{where}: bad ts {ts!r}")
        if ph == "X":
            dur = event.get("dur")
            if not isinstance(dur, (int, float)) or dur < 0:
                problems.append(f"{where}: bad dur {dur!r}")
    return problems


def span_counts_by_lane(payload: TracePayload) -> Dict[str, int]:
    """How many spans each lane carries (smoke-check helper)."""
    counts: Dict[str, int] = {}
    for span in payload.get("spans", ()):
        counts[span["lane"]] = counts.get(span["lane"], 0) + 1
    return dict(sorted(counts.items()))
