"""SigmaVP reproduction: host-GPU multiplexing for simulating embedded GPUs.

Reproduction of Jung & Carloni, "SigmaVP: Host-GPU Multiplexing for
Efficient Simulation of Multiple Embedded GPUs on Virtual Platforms",
DAC 2015.  See DESIGN.md for the system inventory and EXPERIMENTS.md for
the paper-vs-measured record.

Public API highlights:

* :class:`repro.core.SigmaVP` — the framework: attach VPs, run workloads.
* :mod:`repro.core.scenarios` — the comparative execution routes.
* :class:`repro.core.ExecutionAnalyzer` — target time/power estimation.
* :mod:`repro.sched` — the pluggable dispatch pipeline (policies,
  placements, :class:`~repro.sched.SchedulerConfig`).
* :data:`repro.workloads.SUITE` — the CUDA-SDK-style benchmark suite.
"""

from .core import (
    ExecutionAnalyzer,
    PowerEstimate,
    ScenarioResult,
    SigmaVP,
    TimingEstimate,
    run_c_program,
    run_emulation,
    run_native_gpu,
    run_sigma_vp,
)
from .sched import SchedulerConfig
from .gpu import GRID_K520, HostGPU, QUADRO_4000, TEGRA_K1, get_architecture
from .kernels import KernelIR, LaunchConfig, MemoryFootprint, uniform_kernel
from .sim import Environment
from .vp import HOST_XEON, QEMU_ARM_VP, VirtualPlatform
from .workloads import SUITE, WorkloadSpec, get_workload

__version__ = "1.0.0"

__all__ = [
    "Environment",
    "ExecutionAnalyzer",
    "GRID_K520",
    "HOST_XEON",
    "HostGPU",
    "KernelIR",
    "LaunchConfig",
    "MemoryFootprint",
    "PowerEstimate",
    "QEMU_ARM_VP",
    "QUADRO_4000",
    "SUITE",
    "ScenarioResult",
    "SchedulerConfig",
    "SigmaVP",
    "TEGRA_K1",
    "TimingEstimate",
    "VirtualPlatform",
    "WorkloadSpec",
    "get_architecture",
    "get_workload",
    "run_c_program",
    "run_emulation",
    "run_native_gpu",
    "run_sigma_vp",
    "uniform_kernel",
]
