"""Domain executors: per-GPU sub-simulations, in-process or on a farm.

The exact-merge sharded engine (:mod:`repro.sim.domains`) keeps one
event loop but gives each simulation domain its own heap.  This module
holds the two executors that exploit **edge-free** partitions — with no
cross-domain edge the conservative lookahead horizon is unbounded, so
each per-GPU domain is a self-contained sub-simulation that can run to
completion on its own: :func:`run_sharded_inproc` runs the domains
sequentially in one process (smaller superlinear scheduling state —
the in-process speedup headline), :func:`run_sharded_mp` places each
domain in its own worker process.  Both merge the results into a
summary that is **equal, key for key and bit for bit, to the serial
run's** (:meth:`repro.core.scenarios.ScenarioResult.summary`).

Why this is exact, not approximate: under the default scheduling stages
(round-robin placement, interleaved service) every VP binds to one
device as a pure function of its position in the sorted VP-name order,
jobs of different devices never compete for an engine, the coalescer
merges triples only within one device's VPs, and VP stop/resume control
is only ever applied to the VP that issued the submission.  The devices
therefore never interact: the scenario *is* ``n_host_gpus`` independent
simulations, and re-running each group in its own process with its VPs'
original names and seeds reproduces exactly the event timeline that
group had inside the serial run.  The merge is then mechanical:

* ``total_ms`` — max over domains (the serial clock stops with the
  slowest VP);
* ``per_instance_ms`` — reassembled in global sorted-name order;
* ``ipc_messages`` / ``coalesce_merges`` / ``kernels_coalesced`` —
  sums (each counts disjoint per-domain activity).

Eligibility is checked conservatively (:func:`mp_eligible`); anything
else — serialized service, custom scheduling stages, a single GPU —
falls back to the in-process sharded engine, which is exact for every
configuration.  Boundary traffic between the domains and the merge
itself ride the normal :class:`~repro.exec.farm.ScenarioFarm` channel,
so observability capture (traces, metrics, time-series) ships per
domain exactly as it does for ordinary farm jobs.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence, Tuple

from .farm import FarmJob, FarmResult, ScenarioFarm

__all__ = [
    "mp_eligible",
    "mp_groups",
    "shard_worker_summary",
    "domain_jobs",
    "merge_domain_values",
    "run_sharded_inproc",
    "run_sharded_mp",
]


def mp_eligible(
    n_vps: int,
    n_host_gpus: int,
    interleaving: bool = True,
    policy: Optional[str] = None,
    placement: Optional[str] = None,
) -> bool:
    """Whether a scenario decomposes exactly into per-GPU processes.

    Conservative by design: only the default scheduling stages are
    accepted (``policy=None``/``placement=None``), because the proof of
    exactness leans on round-robin placement binding VPs to devices by
    sorted-name position and on interleaved service keeping devices
    independent.  Serialized service (``interleaving=False``) admits one
    job *globally* at a time, which couples the devices' timelines.
    """
    return (
        interleaving
        and n_host_gpus >= 2
        and n_vps >= 2
        and policy is None
        and placement is None
    )


def mp_groups(n_vps: int, n_host_gpus: int) -> List[List[Tuple[str, int]]]:
    """Per-device VP groups: ``(name, global sorted position)`` pairs.

    Mirrors the round-robin placement the dispatcher applies to the
    serial run: VPs bind to devices in sorted-name order (the order
    ``run_workload`` spawns them in), position modulo device count.
    The global position doubles as the VP's workload seed, exactly as
    :meth:`SigmaVP.run_workload` assigns it.
    """
    names = sorted(f"vp{i}" for i in range(n_vps))
    groups: List[List[Tuple[str, int]]] = [[] for _ in range(n_host_gpus)]
    for position, name in enumerate(names):
        groups[position % n_host_gpus].append((name, position))
    return [group for group in groups if group]


def shard_worker_summary(
    app: str,
    vp_names: Sequence[str],
    vp_seeds: Sequence[int],
    n_vps_total: int,
    interleaving: bool = True,
    coalescing: bool = True,
    transport: str = "socket",
    max_batch: int = 64,
    hold_window_ms: Optional[float] = None,
    scale_elements: Optional[int] = None,
    scale_iterations: Optional[int] = None,
    functional: bool = False,
) -> Dict[str, Any]:
    """One domain's sub-simulation: a farm job function.

    Rebuilds the domain's device group — the VPs keep their serial-run
    names and seeds — against a single host GPU and runs the workload to
    completion.  ``n_vps_total`` pins the coalescer's target batch to
    the value the serial run's auto-target reaches after attaching
    every VP, so the domain's merge windows behave exactly as its device
    group's did inside the whole scenario.
    """
    from ..core.framework import SigmaVP
    from ..core.scenarios import _registry
    from .jobs import _spec, resolve_transport

    spec = _spec(app, scale_elements, scale_iterations)
    framework = SigmaVP(
        transport=resolve_transport(transport),
        interleaving=interleaving,
        coalescing=coalescing,
        max_batch=max_batch,
        target_batch=n_vps_total if coalescing else None,
        hold_window_ms=hold_window_ms,
        registry=_registry(functional),
        n_vps=0,
        n_host_gpus=1,
    )
    for name in vp_names:
        framework.add_vp(name)
    total = framework.run_workload(spec, seeds=list(vp_seeds))
    out: Dict[str, Any] = {
        "workload": spec.name,
        "total_ms": total,
        "per_instance": {
            name: framework.session(name).vp.elapsed_ms or 0.0
            for name in vp_names
        },
        "ipc_messages": framework.ipc.messages_sent,
    }
    if framework.coalescer is not None:
        stats = framework.coalescer.stats
        out["coalesce_merges"] = stats.merges
        out["kernels_coalesced"] = stats.kernels_coalesced
    return out


def domain_jobs(
    app: str,
    n_vps: int,
    n_host_gpus: int,
    interleaving: bool = True,
    coalescing: bool = True,
    transport: str = "socket",
    max_batch: int = 64,
    hold_window_ms: Optional[float] = None,
    scale_elements: Optional[int] = None,
    scale_iterations: Optional[int] = None,
    functional: bool = False,
) -> List[FarmJob]:
    """The per-domain :class:`FarmJob` list for an eligible scenario."""
    jobs = []
    for index, group in enumerate(mp_groups(n_vps, n_host_gpus)):
        jobs.append(
            FarmJob(
                fn="repro.exec.shard:shard_worker_summary",
                label=f"shard:{app}:gpu{index}",
                kwargs={
                    "app": app,
                    "vp_names": [name for name, _pos in group],
                    "vp_seeds": [pos for _name, pos in group],
                    "n_vps_total": n_vps,
                    "interleaving": interleaving,
                    "coalescing": coalescing,
                    "transport": transport,
                    "max_batch": max_batch,
                    "hold_window_ms": hold_window_ms,
                    "scale_elements": scale_elements,
                    "scale_iterations": scale_iterations,
                    "functional": functional,
                },
            )
        )
    return jobs


def merge_domain_values(
    values: Sequence[Dict[str, Any]],
    n_vps: int,
    interleaving: bool,
    coalescing: bool,
) -> Dict[str, Any]:
    """Merge per-domain sub-summaries into the serial summary shape."""
    per_instance: Dict[str, float] = {}
    total_ms = 0.0
    ipc_messages = 0
    merges = 0
    kernels = 0
    for value in values:
        total_ms = max(total_ms, value["total_ms"])
        per_instance.update(value["per_instance"])
        ipc_messages += value["ipc_messages"]
        merges += value.get("coalesce_merges", 0)
        kernels += value.get("kernels_coalesced", 0)
    out: Dict[str, Any] = {
        "scenario": (
            f"sigma-vp(interleave={interleaving}, coalesce={coalescing})"
        ),
        "workload": values[0]["workload"],
        "n_instances": n_vps,
        "total_ms": total_ms,
        "per_instance_ms": [per_instance[n] for n in sorted(per_instance)],
        "ipc_messages": ipc_messages,
    }
    if coalescing:
        out["coalesce_merges"] = merges
        out["kernels_coalesced"] = kernels
    return out


def run_sharded_inproc(
    app: str,
    n_vps: int = 8,
    interleaving: bool = True,
    coalescing: bool = True,
    transport: str = "socket",
    max_batch: int = 64,
    n_host_gpus: int = 1,
    hold_window_ms: Optional[float] = None,
    scale_elements: Optional[int] = None,
    scale_iterations: Optional[int] = None,
    functional: bool = False,
    policy: Optional[str] = None,
    placement: Optional[str] = None,
    detail: Optional[Dict[str, Any]] = None,
) -> Dict[str, Any]:
    """Run one scenario's per-GPU domains to completion, in one process.

    This is the in-process domain scheduler in the conservative epoch
    protocol's **limiting case**: an eligible decomposition has no
    cross-domain edges at all (each device group's IPC, coalescing and
    engines live inside its own domain), so every domain's lookahead
    horizon is unbounded and the scheduler may run each domain to
    completion before starting the next — no epoch barriers and no heap
    interleaving.  The payoff is not parallelism but *state size*: the
    coalescer's scan sets, the dispatcher's queue walks and the event
    heap all carry superlinear costs in VP count, so two half-size
    sub-simulations do measurably less work than one full-size run.
    Results merge exactly as the multiprocessing executor's do
    (:func:`merge_domain_values`) and are bit-identical to serial.

    Partitions that *do* have cross-domain edges (single GPU, serialized
    service, custom scheduling stages) fall back to the exact n-way
    merge engine (:class:`repro.sim.domains.ShardedEnvironment`), which
    honours those edges event by event.
    """
    if not mp_eligible(n_vps, n_host_gpus, interleaving, policy, placement):
        from ..core.scenarios import run_sigma_vp
        from .jobs import _spec, resolve_transport

        if detail is not None:
            detail["executor"] = "in-process-merge"
        return run_sigma_vp(
            _spec(app, scale_elements, scale_iterations),
            n_vps=n_vps,
            interleaving=interleaving,
            coalescing=coalescing,
            transport=resolve_transport(transport),
            max_batch=max_batch,
            hold_window_ms=hold_window_ms,
            n_host_gpus=n_host_gpus,
            functional=functional,
            policy=policy,
            placement=placement,
            shards="per-gpu",
        ).summary()

    jobs = domain_jobs(
        app,
        n_vps,
        n_host_gpus,
        interleaving=interleaving,
        coalescing=coalescing,
        transport=transport,
        max_batch=max_batch,
        hold_window_ms=hold_window_ms,
        scale_elements=scale_elements,
        scale_iterations=scale_iterations,
        functional=functional,
    )
    values = [shard_worker_summary(**job.kwargs) for job in jobs]
    if detail is not None:
        detail["executor"] = "in-process-domains"
        detail["domains"] = len(jobs)
    return merge_domain_values(values, n_vps, interleaving, coalescing)


def run_sharded_mp(
    app: str,
    n_vps: int = 8,
    interleaving: bool = True,
    coalescing: bool = True,
    transport: str = "socket",
    max_batch: int = 64,
    n_host_gpus: int = 1,
    hold_window_ms: Optional[float] = None,
    scale_elements: Optional[int] = None,
    scale_iterations: Optional[int] = None,
    functional: bool = False,
    policy: Optional[str] = None,
    placement: Optional[str] = None,
    farm: Optional[ScenarioFarm] = None,
    detail: Optional[Dict[str, Any]] = None,
) -> Dict[str, Any]:
    """Run one scenario with per-GPU domains in separate processes.

    Returns exactly what ``scenario_summary`` returns for the same
    arguments — the summary is the digest wire format, and the whole
    point of the executor is that multiprocessing must not change it.

    Ineligible configurations (:func:`mp_eligible`) fall back to the
    in-process sharded engine, which is exact for every scenario.
    ``farm`` lets callers supply a persistent :class:`ScenarioFarm`
    (bench rounds reuse warm workers); otherwise a one-shot farm sized
    to the domain count runs the jobs.  ``detail``, when given a dict,
    receives per-domain results (labels, durations, worker pids and —
    under capture — obs payloads) and the executor used.
    """
    if not mp_eligible(n_vps, n_host_gpus, interleaving, policy, placement):
        from ..core.scenarios import run_sigma_vp
        from .jobs import _spec, resolve_transport

        if detail is not None:
            detail["executor"] = "in-process"
        return run_sigma_vp(
            _spec(app, scale_elements, scale_iterations),
            n_vps=n_vps,
            interleaving=interleaving,
            coalescing=coalescing,
            transport=resolve_transport(transport),
            max_batch=max_batch,
            hold_window_ms=hold_window_ms,
            n_host_gpus=n_host_gpus,
            functional=functional,
            policy=policy,
            placement=placement,
            shards="per-gpu",
        ).summary()

    jobs = domain_jobs(
        app,
        n_vps,
        n_host_gpus,
        interleaving=interleaving,
        coalescing=coalescing,
        transport=transport,
        max_batch=max_batch,
        hold_window_ms=hold_window_ms,
        scale_elements=scale_elements,
        scale_iterations=scale_iterations,
        functional=functional,
    )
    owned = farm is None
    if farm is None:
        farm = ScenarioFarm(workers=len(jobs), warmup=True)
    try:
        results: List[FarmResult] = farm.map(jobs)
    finally:
        if owned:
            farm.close()
    if detail is not None:
        detail["executor"] = "multiprocessing"
        detail["domains"] = len(jobs)
        detail["results"] = results
    return merge_domain_values(
        [result.value for result in results], n_vps, interleaving, coalescing
    )
