"""The ``repro bench`` regression harness.

Runs a pinned suite of scenario-farm jobs three ways —

* **serial-cold** — one process, all memo caches disabled.  This is the
  seed execution path (every launch re-times, every scan re-walks the
  queue) and the baseline every later PR is measured against;
* **serial-warm** — one process, caches enabled: what the memoization
  layer alone buys;
* **parallel-warm** — the :class:`~repro.exec.ScenarioFarm` with
  ``workers`` processes: memoization plus scenario-level parallelism —

asserts that all three modes simulate **bit-identical results** (the
caches and the farm are pure plumbing; simulated time must not move),
and appends the wall-clock numbers to a ``BENCH_*.json`` file so the
performance trajectory of the stack is tracked in-repo alongside the
correctness suite.

Two observability additions ride on the same harness:

* ``trace=True`` adds a fourth mode — parallel-warm with per-job
  capture on — whose digest must *still* be bit-identical (tracing must
  never perturb simulation), and whose merged multi-worker trace and
  metrics come back under ``report["artifacts"]``;
* an **overhead guard**: the tracing-*disabled* hot paths carry the
  instrumentation's ``is not None`` guards, so the serial-warm cost is
  compared against the chronologically newest committed
  ``BENCH_*.json`` (auto-resolved via
  :func:`repro.exec.trajectory.newest_bench_path`, excluding the file
  this run is about to write) and the bench fails if it regressed by
  more than :data:`DEFAULT_OVERHEAD_LIMIT` (suite and worker-count
  must match for the comparison to be meaningful; otherwise it is
  skipped with a note).

``cold=True`` (``repro bench --cold``) appends two more sections: the
persistent **disk-cache** cold-start proof (memory-cold processes served
from a shared on-disk artifact store, including corruption and
whole-job-result modes) and the **batched-execution** proof (coalesced
identical kernels dispatched as single stacked numpy calls, digest-equal
to the per-VP fallback).  See :func:`_disk_section` and
:func:`_batched_section`.

Every bench also records a **timing** section
(:func:`_timing_section`): the suite warm-serial with the vectorized
batched timing engine (:mod:`repro.gpu.vectimes`) versus the scalar
reference walk, digest-equal, with the ``exec.vectimes_*`` counters
proving the array engine actually served launches.

And a **backend** section (:func:`_backend_section`): the functional
suite once per *available* registered execution backend
(``repro backends``), digest-equal across all of them — backends are
interchangeable run mechanics — with the ``exec.backend_*`` counters
proving each backend actually served the launches, and unavailable
backends (e.g. ``cupy`` without the package) recorded as skipped, never
as errors.
"""

from __future__ import annotations

import gc
import json
import tempfile
import time
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from .. import cache as _cache
from ..caching import cache_scope, clear_all_caches
from ..kernels.functional import batching_scope
from ..obs import farm_merged_metrics, farm_trace_sources, to_chrome_trace
from ..obs.export import git_commit as _git_commit
from .farm import (
    FarmJob,
    FarmResult,
    ScenarioFarm,
    canonical_json,
    results_digest,
)

#: The pinned regression suite.  Iteration-heavy, many-VP, small-data
#: scenarios: the jobs are dominated by the scheduling/timing hot paths
#: the memo caches serve, not by numpy input generation, so they track
#: exactly the costs this harness exists to watch.
FULL_SUITE: List[FarmJob] = [
    FarmJob(fn="repro.exec.jobs:fig10a_point", label="fig10a:b16",
            kwargs={"batch": 16, "n_programs": 64}),
    FarmJob(fn="repro.exec.jobs:fig10a_point", label="fig10a:b64",
            kwargs={"batch": 64, "n_programs": 64}),
    FarmJob(fn="repro.exec.jobs:scenario_summary", label="mergeSort8",
            kwargs={"app": "mergeSort", "n_vps": 8}),
    FarmJob(fn="repro.exec.jobs:fig11_point", label="fig11:BlackScholes",
            kwargs={"app": "BlackScholes", "n_vps": 8}),
    FarmJob(fn="repro.exec.jobs:scenario_summary", label="matrixMul8",
            kwargs={"app": "matrixMul", "n_vps": 8}),
    FarmJob(fn="repro.exec.jobs:scenario_summary", label="vectorAdd8",
            kwargs={"app": "vectorAdd", "n_vps": 8,
                    "scale_elements": 8192, "scale_iterations": 4}),
    FarmJob(fn="repro.exec.jobs:scenario_summary", label="vectorAdd8:nocoal",
            kwargs={"app": "vectorAdd", "n_vps": 8, "coalescing": False,
                    "scale_elements": 8192, "scale_iterations": 4}),
    FarmJob(fn="repro.exec.jobs:scenario_summary", label="BlackScholes8",
            kwargs={"app": "BlackScholes", "n_vps": 8,
                    "scale_elements": 8192, "scale_iterations": 10}),
    FarmJob(fn="repro.exec.jobs:fig9b_point", label="fig9b:n8",
            kwargs={"n_programs": 8}),
    FarmJob(fn="repro.exec.jobs:table1_route", label="table1:sigma-vp",
            kwargs={"route": "CUDA / This work", "app": "matrixMul"}),
]

#: CI smoke subset: the same shapes, sized to finish cold in seconds.
QUICK_SUITE: List[FarmJob] = [
    FarmJob(fn="repro.exec.jobs:fig10a_point", label="fig10a:b8/32vp",
            kwargs={"batch": 8, "n_programs": 32}),
    FarmJob(fn="repro.exec.jobs:fig10a_point", label="fig10a:b4/16vp",
            kwargs={"batch": 4, "n_programs": 16}),
    FarmJob(fn="repro.exec.jobs:scenario_summary", label="mergeSort8",
            kwargs={"app": "mergeSort", "n_vps": 8}),
    FarmJob(fn="repro.exec.jobs:scenario_summary", label="vectorAdd8",
            kwargs={"app": "vectorAdd", "n_vps": 8,
                    "scale_elements": 8192, "scale_iterations": 4}),
]


#: Batched-execution proof suite: the same fig10/fig11 shapes as the
#: pinned suite, run with ``functional=True`` so the registered numpy
#: kernels actually execute and coalesced launches can vectorize.  The
#: digests here are only compared batched-vs-fallback *within* the
#: section (functional jobs are distinct jobs from timing-only ones).
BATCHED_SUITE: List[FarmJob] = [
    FarmJob(fn="repro.exec.jobs:fig10a_point", label="batched:fig10a:b8",
            kwargs={"batch": 8, "n_programs": 32, "functional": True}),
    FarmJob(fn="repro.exec.jobs:fig11_point", label="batched:fig11:BlackScholes",
            kwargs={"app": "BlackScholes", "n_vps": 8, "functional": True}),
    FarmJob(fn="repro.exec.jobs:scenario_summary", label="batched:vectorAdd8",
            kwargs={"app": "vectorAdd", "n_vps": 8, "functional": True}),
]


#: Domain-sharding proof scenarios (``report["sharding"]``): multi-GPU,
#: many-VP shapes where partitioned event heaps pay off.  The FIRST
#: entry is the headline — the largest multi-GPU scenario — and the one
#: the in-process speedup gate is enforced on.  Shapes are **event
#: bound** (``scale_elements`` shrinks input generation the same way
#: the farm suite scales numpy-bound jobs down) so the section measures
#: the event loop and the scheduling machinery, not ``np.random``.
SHARD_SCENARIOS: List[Dict[str, Any]] = [
    {"label": "vectorAdd48x2",
     "kwargs": {"app": "vectorAdd", "n_vps": 48, "n_host_gpus": 2,
                "scale_elements": 1024, "scale_iterations": 24}},
    {"label": "BlackScholes24x2",
     "kwargs": {"app": "BlackScholes", "n_vps": 24, "n_host_gpus": 2,
                "scale_elements": 1024, "scale_iterations": 24}},
]

#: CI smoke subset of the sharding section: one smaller two-GPU shape.
QUICK_SHARD_SCENARIOS: List[Dict[str, Any]] = [
    {"label": "vectorAdd12x2",
     "kwargs": {"app": "vectorAdd", "n_vps": 12, "n_host_gpus": 2,
                "scale_elements": 1024, "scale_iterations": 8}},
]


#: Job functions that accept ``policy=``/``placement=`` kwargs; only
#: these are rewritten when ``repro bench --policy/--placement`` asks
#: for a non-default scheduling stage.
SCHED_AWARE_FNS = frozenset({
    "repro.exec.jobs:scenario_summary",
    "repro.exec.jobs:phase_point",
    "repro.exec.jobs:fig10a_point",
})


def with_sched_stages(
    jobs: Sequence[FarmJob],
    policy: Optional[str] = None,
    placement: Optional[str] = None,
) -> List[FarmJob]:
    """Rewrite sched-aware suite jobs to carry policy/placement kwargs.

    Jobs whose functions have no scheduling surface pass through
    untouched; with neither override set, the input is returned as-is so
    default benches keep the exact config-hash keys (and therefore the
    cache entries and digests) they had before this option existed.
    """
    if policy is None and placement is None:
        return list(jobs)
    out: List[FarmJob] = []
    for job in jobs:
        if job.fn in SCHED_AWARE_FNS:
            kwargs = dict(job.kwargs)
            if policy is not None:
                kwargs["policy"] = policy
            if placement is not None:
                kwargs["placement"] = placement
            job = FarmJob(fn=job.fn, kwargs=kwargs, label=job.label)
        out.append(job)
    return out


class BenchDigestError(AssertionError):
    """Two bench modes simulated different results."""


class BenchOverheadError(AssertionError):
    """Disabled-mode instrumentation overhead exceeded the allowed limit."""


class BenchDiskCacheError(AssertionError):
    """The disk-cache cold-start section missed an acceptance bound."""


class BenchShardError(AssertionError):
    """The domain-sharding section missed a speedup acceptance bound."""


class BenchBackendError(AssertionError):
    """The execution-backend section found a backend not doing its job."""


#: Maximum allowed slowdown of the tracing-disabled serial-warm mode
#: versus the committed baseline (fraction; 0.02 = 2%).
DEFAULT_OVERHEAD_LIMIT = 0.02

#: A memory-cold process with a warm disk cache must land within this
#: factor of the fully memo-warmed serial mode (the PR's headline:
#: cold-start cost becomes a once-per-cache-lifetime event, not a
#: once-per-process one).
DISK_WARM_LIMIT = 2.0

def resolve_baseline(exclude: Optional[Path] = None) -> Optional[Path]:
    """The newest committed ``BENCH_*.json`` — the overhead-guard baseline.

    Auto-resolved (by recorded timestamp, via the trajectory layer) so
    the guard always measures against the most recent committed point
    instead of a hard-pinned file that silently goes stale; ``exclude``
    keeps the report a bench run is about to write from baselining
    against itself.
    """
    from .trajectory import newest_bench_path  # local: trajectory loads bench files

    return newest_bench_path(Path("."), exclude=exclude)


def check_overhead(
    report: Dict[str, Any],
    baseline_path: Optional[Path] = None,
    limit: float = DEFAULT_OVERHEAD_LIMIT,
) -> Dict[str, Any]:
    """Compare this run's serial-warm wall time to the baseline file.

    The serial-warm mode runs with tracing *disabled*, so its wall time
    directly measures what the instrumentation guards cost everyone who
    never turns tracing on.  Returns a JSON-able section describing the
    check; raises :class:`BenchOverheadError` when the overhead exceeds
    ``limit``.  ``baseline_path=None`` auto-resolves the newest
    committed ``BENCH_*.json`` (:func:`resolve_baseline`).  The
    comparison is skipped (with a ``note``) when the baseline is missing
    or was recorded for a different suite or worker count — wall times
    are only comparable like-for-like.
    """
    if baseline_path is None:
        baseline_path = resolve_baseline()
    section: Dict[str, Any] = {
        "baseline": str(baseline_path) if baseline_path is not None else None,
        "limit": limit,
        "checked": False,
    }
    if baseline_path is None:
        section["note"] = "no committed BENCH_*.json baseline found"
        return section
    try:
        baseline = json.loads(Path(baseline_path).read_text())
    except (OSError, ValueError) as exc:
        section["note"] = f"baseline unavailable ({exc.__class__.__name__})"
        return section
    if baseline.get("suite") != report["suite"]:
        section["note"] = (
            f"suite mismatch: baseline={baseline.get('suite')!r} "
            f"run={report['suite']!r}; comparison skipped"
        )
        return section
    if baseline.get("workers") != report["workers"]:
        section["note"] = (
            f"worker-count mismatch: baseline={baseline.get('workers')} "
            f"run={report['workers']}; comparison skipped"
        )
        return section
    base_mode = baseline["modes"]["serial_warm"]
    run_mode = report["modes"]["serial_warm"]
    # CPU time is immune to scheduler steal on shared hosts, so prefer
    # it whenever both sides recorded it; older baselines only carry
    # wall-clock and fall back to the noisier comparison.
    if "cpu_s" in base_mode and "cpu_s" in run_mode:
        metric, base_warm, run_warm = "cpu", base_mode["cpu_s"], run_mode["cpu_s"]
    else:
        metric, base_warm, run_warm = "wall", base_mode["wall_s"], run_mode["wall_s"]
    overhead = run_warm / base_warm - 1.0
    section.update(
        checked=True,
        metric=metric,
        baseline_s=base_warm,
        run_s=run_warm,
        overhead=overhead,
    )
    if overhead > limit:
        raise BenchOverheadError(
            f"tracing-disabled serial-warm {metric} time regressed "
            f"{overhead * 100.0:.1f}% vs {baseline_path} "
            f"(limit {limit * 100.0:.1f}%): "
            f"{base_warm:.2f}s -> {run_warm:.2f}s"
        )
    return section


def _run_mode(
    farm: ScenarioFarm,
    jobs: Sequence[FarmJob],
    rounds: int = 1,
    before_round: Optional[Callable[[], None]] = None,
) -> Dict[str, Any]:
    """Run the suite ``rounds`` times and keep the fastest wall-clock.

    Scheduler steal and frequency scaling only ever *inflate* wall time,
    so the minimum over rounds is the robust estimator of the true cost.
    CPU time (``cpu_s``) is tracked alongside — its own minimum over
    rounds — because it ignores steal entirely and so survives shared
    hosts that wall-clock cannot.  Every round must simulate the same
    digest or the mode fails.  ``before_round`` runs outside the timed
    window (the disk section clears the in-memory memos with it, so
    every round models a freshly started process).
    """
    best: Optional[Dict[str, Any]] = None
    best_cpu = float("inf")
    for _ in range(max(1, rounds)):
        if before_round is not None:
            before_round()
        cpu_started = time.process_time()
        started = time.perf_counter()
        results = farm.map(jobs)
        wall = time.perf_counter() - started
        best_cpu = min(best_cpu, time.process_time() - cpu_started)
        run = {
            "wall_s": wall,
            "digest": results_digest(results),
            "per_job_s": {r.label: r.duration_s for r in results},
            "results": results,
        }
        if best is not None and run["digest"] != best["digest"]:
            raise BenchDigestError(
                "repeated rounds of one mode disagree: "
                f"{best['digest'][:12]} != {run['digest'][:12]}"
            )
        if best is None or run["wall_s"] < best["wall_s"]:
            best = run
    assert best is not None
    best["cpu_s"] = best_cpu
    best["rounds"] = max(1, rounds)
    return best


def _counter_total(totals: Dict[str, Any], name: str) -> int:
    return int(totals.get(name, {}).get("value", 0))


def _disk_section(
    suite: Sequence[FarmJob],
    workers: int,
    reference_digest: str,
    serial_warm_wall: float,
) -> Dict[str, Any]:
    """Cold-start section: the persistent disk tier against a private root.

    The first four modes model a **freshly started process**: the
    in-memory memos are cleared before every round (but stay enabled —
    a real process runs with them on), and the whole-job result layer
    is disabled so entire simulations can never short-circuit.  The
    only help a round gets is what an *earlier process* left on disk:

    * ``cold_populate`` — empty store: the true cold-start cost; fills it;
    * ``disk_warm`` — the headline: a fresh process served from disk
      must land within :data:`DISK_WARM_LIMIT` of fully-warm serial
      (a long-lived process whose memos never cleared);
    * ``parallel_disk_warm`` — every farm worker shares the same store;
    * ``disk_corrupted`` — every entry truncated: silent recompute, same
      digest, never an exception;
    * ``job_populate``/``job_warm`` — the whole-job layer re-enabled so
      it may short-circuit entire simulations.

    All six digests must equal the in-memory modes' digest: the disk
    tier is pure plumbing.
    """
    modes: Dict[str, Dict[str, Any]] = {}
    with tempfile.TemporaryDirectory(prefix="repro-bench-cache-") as tmp:
        with _cache.disk_scope(True, root=tmp):
            previous_job_layer = _cache.set_job_results_enabled(False)
            try:
                modes["cold_populate"] = _run_mode(
                    ScenarioFarm(workers=1, warmup=False), suite,
                    before_round=clear_all_caches,
                )
                modes["disk_warm"] = _run_mode(
                    ScenarioFarm(workers=1, warmup=False), suite, rounds=2,
                    before_round=clear_all_caches,
                )
                modes["parallel_disk_warm"] = _run_mode(
                    ScenarioFarm(workers=workers, warmup=False), suite,
                    before_round=clear_all_caches,
                )
                warm_stats = _cache.cache_stats()
                # Truncate every entry in place: reads must degrade to
                # misses (recompute + rewrite), never to wrong results.
                for path in Path(tmp).rglob("*.pkl"):
                    path.write_bytes(b"\x00truncated")
                modes["disk_corrupted"] = _run_mode(
                    ScenarioFarm(workers=1, warmup=False), suite,
                    before_round=clear_all_caches,
                )
            finally:
                _cache.set_job_results_enabled(previous_job_layer)
            modes["job_populate"] = _run_mode(
                ScenarioFarm(workers=1, warmup=False), suite,
                before_round=clear_all_caches,
            )
            modes["job_warm"] = _run_mode(
                ScenarioFarm(workers=1, warmup=False), suite,
                before_round=clear_all_caches,
            )
            final_stats = _cache.cache_stats()

    for name, mode in modes.items():
        if mode["digest"] != reference_digest:
            raise BenchDigestError(
                f"disk-cache mode {name!r} changed simulation results: "
                f"{mode['digest'][:12]} != {reference_digest[:12]}"
            )
    section = {
        "modes": {
            name: {k: v for k, v in mode.items() if k != "results"}
            for name, mode in modes.items()
        },
        "stats_after_warm": warm_stats,
        "stats_final": final_stats,
        "identical_results": True,
        "ratios": {
            "disk_warm_vs_serial_warm":
                modes["disk_warm"]["wall_s"] / serial_warm_wall,
            "cold_start_speedup":
                modes["cold_populate"]["wall_s"] / modes["disk_warm"]["wall_s"],
            "job_warm_speedup":
                modes["job_populate"]["wall_s"] / modes["job_warm"]["wall_s"],
        },
        "disk_warm_limit": DISK_WARM_LIMIT,
    }
    ratio = section["ratios"]["disk_warm_vs_serial_warm"]
    if ratio > DISK_WARM_LIMIT:
        raise BenchDiskCacheError(
            f"memory-cold + disk-warm serial run is {ratio:.2f}x the "
            f"fully-warm serial time (limit {DISK_WARM_LIMIT:.1f}x)"
        )
    return section


def _batched_section(suite: Sequence[FarmJob] = BATCHED_SUITE) -> Dict[str, Any]:
    """Batched-execution section: vectorized coalesced launches.

    Runs the functional fig10/fig11 suite twice — batching on (stacked
    ``(N, …)`` single-dispatch numpy calls) and forced per-VP fallback —
    under observability capture, and requires (a) a bit-identical digest
    and (b) a non-zero ``exec.batched_launches`` count in the batched
    run.  Capture also disables the job-result layer, so both runs truly
    execute.
    """
    clear_all_caches()
    batched = _run_mode(
        ScenarioFarm(workers=1, warmup=False, capture_obs=True), suite
    )
    batched_totals = farm_merged_metrics(batched["results"])["totals"]
    clear_all_caches()
    with batching_scope(False):
        fallback = _run_mode(
            ScenarioFarm(workers=1, warmup=False, capture_obs=True), suite
        )
    fallback_totals = farm_merged_metrics(fallback["results"])["totals"]
    if batched["digest"] != fallback["digest"]:
        raise BenchDigestError(
            "batched execution changed simulation results: "
            f"{batched['digest'][:12]} != {fallback['digest'][:12]}"
        )
    counts = {
        "batched_launches": _counter_total(batched_totals, "exec.batched_launches"),
        "batched_members": _counter_total(batched_totals, "exec.batched_members"),
        "fallback_launches":
            _counter_total(fallback_totals, "exec.fallback_launches"),
    }
    if counts["batched_launches"] <= 0:
        raise BenchDiskCacheError(
            "batched-execution section dispatched zero batched launches"
        )
    return {
        "jobs": [j.label for j in suite],
        "counts": counts,
        "modes": {
            "batched": {k: v for k, v in batched.items() if k != "results"},
            "fallback": {k: v for k, v in fallback.items() if k != "results"},
        },
        "identical_results": True,
    }


def _backend_section(
    suite: Optional[Sequence[FarmJob]] = None, quick: bool = False
) -> Dict[str, Any]:
    """Execution-backend section: every available backend, one digest.

    Runs the functional suite once per *available* registered execution
    backend under ``backend_scope`` — scoping (not job kwargs) keeps the
    config-hash keys identical, so the digests are directly comparable —
    with the in-memory memos cleared between backends so each run truly
    executes.  Requires (a) bit-identical digests across every available
    backend (they are interchangeable run mechanics by contract), and
    (b) non-zero ``exec.backend_*`` counters proving each backend served
    the launches itself: batched launches for ``supports_batched``
    backends, per-member launches otherwise.  Unavailable backends
    (``cupy`` without the package) are recorded under ``skipped`` with
    their reason — never an error.
    """
    from ..backend import available_backends, backend_scope, make_backend

    if suite is None:
        suite = [BATCHED_SUITE[0], BATCHED_SUITE[2]] if quick else BATCHED_SUITE
    modes: Dict[str, Dict[str, Any]] = {}
    counters: Dict[str, Dict[str, int]] = {}
    skipped: List[Dict[str, str]] = []
    batched_capable: Dict[str, bool] = {}
    for name, _description in available_backends():
        probe = make_backend(name)
        if not probe.available():
            skipped.append(
                {"name": name, "reason": probe.unavailable_reason() or ""}
            )
            continue
        batched_capable[name] = probe.supports_batched
        clear_all_caches()
        with backend_scope(name):
            mode = _run_mode(
                ScenarioFarm(workers=1, warmup=False, capture_obs=True), suite
            )
        totals = farm_merged_metrics(mode["results"])["totals"]
        counters[name] = {
            counter: _counter_total(totals, f"exec.backend_{counter}")
            for counter in (
                "launches", "batched_launches", "batched_members", "h2d", "d2h"
            )
        }
        modes[name] = mode
    digests = {name: mode["digest"] for name, mode in modes.items()}
    if len(set(digests.values())) != 1:
        raise BenchDigestError(
            "execution backends disagree on simulation results: "
            + ", ".join(f"{k}={v[:12]}" for k, v in digests.items())
        )
    for name, counts in counters.items():
        served = (
            counts["batched_launches"] if batched_capable[name]
            else counts["launches"]
        )
        if served <= 0:
            kind = "batched" if batched_capable[name] else "per-member"
            raise BenchBackendError(
                f"backend {name!r} served zero {kind} launches — the "
                f"functional suite never exercised it"
            )
    return {
        "jobs": [job.label for job in suite],
        "modes": {
            name: {k: v for k, v in mode.items() if k != "results"}
            for name, mode in modes.items()
        },
        "counters": counters,
        "skipped": skipped,
        "identical_results": True,
        "digest": next(iter(digests.values())),
    }


def _timing_section(
    suite: Sequence[FarmJob], reference_digest: str
) -> Dict[str, Any]:
    """Timing-engine section: scalar vs. vectorized warm-serial cost.

    Runs the suite warm-serial twice — vectorized batched timing on
    (:mod:`repro.gpu.vectimes`) and off (the scalar reference walk) —
    requires both digests bit-identical to the main modes, then reruns
    the vectorized mode once under observability capture to prove the
    array engine actually priced launches (non-zero
    ``exec.vectimes_*`` counters).  The timed runs stay capture-free so
    their wall/CPU numbers measure the timing engines, not the
    instrumentation.
    """
    from ..gpu import vectimes as _vectimes

    clear_all_caches()
    with _vectimes.vectimes_scope(True):
        vectorized = _run_mode(
            ScenarioFarm(workers=1, warmup=True), suite, rounds=3
        )
    clear_all_caches()
    with _vectimes.vectimes_scope(False):
        scalar = _run_mode(
            ScenarioFarm(workers=1, warmup=True), suite, rounds=3
        )
    clear_all_caches()
    with _vectimes.vectimes_scope(True):
        captured = _run_mode(
            ScenarioFarm(workers=1, warmup=False, capture_obs=True), suite
        )
    for name, mode in (
        ("vectorized", vectorized), ("scalar", scalar), ("captured", captured)
    ):
        if mode["digest"] != reference_digest:
            raise BenchDigestError(
                f"timing mode {name!r} changed simulation results: "
                f"{mode['digest'][:12]} != {reference_digest[:12]}"
            )
    totals = farm_merged_metrics(captured["results"])["totals"]
    counts = {
        name: _counter_total(totals, f"exec.vectimes_{name}")
        for name in ("batches", "launches", "profile_reuse", "estimates")
    }
    if counts["launches"] <= 0:
        raise BenchDiskCacheError(
            "timing section priced zero launches through the vectorized "
            "engine"
        )
    return {
        "modes": {
            "vectorized": {k: v for k, v in vectorized.items() if k != "results"},
            "scalar": {k: v for k, v in scalar.items() if k != "results"},
        },
        "counts": counts,
        "identical_results": True,
        "speedup": {
            "wall": scalar["wall_s"] / vectorized["wall_s"],
            "cpu": scalar["cpu_s"] / vectorized["cpu_s"],
        },
    }


def _time_interleaved(
    fns: Sequence[Tuple[str, Callable[[], Any]]],
    rounds: int,
) -> Dict[str, Tuple[Any, Dict[str, Any]]]:
    """Best-of-``rounds`` timing with the modes interleaved per round.

    Timing modes back-to-back (all rounds of A, then all rounds of B)
    lets a single background-CPU spike inflate one mode and flip an A/B
    ratio; interleaving lands any disturbance on every mode near
    symmetrically, and best-of then discards it.  The collector is
    paused around each timed window so one mode's allocator debt is not
    paid inside another's measurement.  Every round of one mode must
    return an equal value or the measurement fails.
    """
    best: Dict[str, Dict[str, Any]] = {
        name: {"wall_s": float("inf"), "cpu_s": float("inf")} for name, _ in fns
    }
    values: Dict[str, Any] = {}
    for index in range(max(1, rounds)):
        for name, fn in fns:
            gc_was_enabled = gc.isenabled()
            gc.collect()
            gc.disable()
            try:
                cpu0 = time.process_time()
                wall0 = time.perf_counter()
                result = fn()
                wall = time.perf_counter() - wall0
                cpu = time.process_time() - cpu0
            finally:
                if gc_was_enabled:
                    gc.enable()
            entry = best[name]
            entry["wall_s"] = min(entry["wall_s"], wall)
            entry["cpu_s"] = min(entry["cpu_s"], cpu)
            if index > 0 and result != values[name]:
                raise BenchDigestError("repeated rounds of one mode disagree")
            values[name] = result
    return {
        name: (values[name], {**best[name], "rounds": max(1, rounds)})
        for name, _ in fns
    }


def _shard_section(
    scenarios: Sequence[Dict[str, Any]],
    rounds: int = 5,
    enforce: bool = True,
) -> Dict[str, Any]:
    """Domain-sharding section: ``sharded`` and ``sharded_mp`` modes.

    For each scenario, runs four modes best-of-``rounds``, interleaved
    (see :func:`_time_interleaved`):

    * ``serial_warm`` — the single-heap engine, the baseline;
    * ``sharded`` — the in-process domain scheduler
      (:func:`repro.exec.shard.run_sharded_inproc`): each edge-free
      per-GPU domain runs to completion in turn, shrinking the
      superlinear scheduling state to one device group's size;
    * ``sharded_merge`` — the exact n-way-merge engine
      (``shards="per-gpu"``: per-domain event heaps, one process,
      event-by-event global order) — the general-case fallback, timed
      for the record but expected to track serial closely;
    * ``sharded_mp`` — the multiprocessing domain executor (per-GPU
      sub-simulations on a persistent farm pool).

    All summaries must be **equal** — sharding is a run mechanic, never
    a result change.

    ``enforce=True`` applies the acceptance bounds: the in-process
    domain scheduler must be at least break-even (CPU time, the
    steal-immune metric) on the headline scenario (``scenarios[0]``),
    and the multiprocessing executor must beat warm serial wall time on
    at least one scenario.
    """
    import hashlib as _hashlib

    from .jobs import scenario_shard_stats, scenario_summary
    from .shard import run_sharded_inproc, run_sharded_mp

    out: List[Dict[str, Any]] = []
    for entry in scenarios:
        kwargs = dict(entry["kwargs"])
        clear_all_caches()
        # Untimed warm pass; doubles as the engine-statistics probe.
        stats_bundle = scenario_shard_stats(shards="per-gpu", **kwargs)

        with ScenarioFarm(
            workers=kwargs.get("n_host_gpus", 1), persistent=True
        ) as farm:
            run_sharded_mp(farm=farm, **kwargs)  # pool start + worker warm
            timed = _time_interleaved(
                [
                    ("serial", lambda: scenario_summary(**kwargs)),
                    ("sharded", lambda: run_sharded_inproc(**kwargs)),
                    ("merge",
                     lambda: scenario_summary(shards="per-gpu", **kwargs)),
                    ("mp", lambda: run_sharded_mp(farm=farm, **kwargs)),
                ],
                rounds,
            )
        serial_value, serial_t = timed["serial"]
        sharded_value, sharded_t = timed["sharded"]
        merge_value, merge_t = timed["merge"]
        mp_value, mp_t = timed["mp"]

        for name, value in (
            ("sharded", sharded_value),
            ("sharded_merge", merge_value),
            ("sharded_mp", mp_value),
            ("warm-pass", stats_bundle["summary"]),
        ):
            if value != serial_value:
                raise BenchDigestError(
                    f"shard mode {name!r} changed simulation results for "
                    f"{entry['label']}"
                )
        digest = _hashlib.sha256(
            canonical_json(serial_value).encode()
        ).hexdigest()
        out.append({
            "label": entry["label"],
            "kwargs": kwargs,
            "digest": digest,
            "domain_stats": stats_bundle["domain_stats"],
            "modes": {
                "serial_warm": serial_t,
                "sharded": sharded_t,
                "sharded_merge": merge_t,
                "sharded_mp": mp_t,
            },
            "speedups": {
                "sharded_vs_serial_cpu": serial_t["cpu_s"] / sharded_t["cpu_s"],
                "sharded_vs_serial_wall":
                    serial_t["wall_s"] / sharded_t["wall_s"],
                "merge_vs_serial_cpu": serial_t["cpu_s"] / merge_t["cpu_s"],
                "mp_vs_serial_wall": serial_t["wall_s"] / mp_t["wall_s"],
            },
        })

    section = {
        "scenarios": out,
        "identical_results": True,
        "enforced": enforce,
    }
    if enforce:
        headline = out[0]
        ratio = headline["speedups"]["sharded_vs_serial_cpu"]
        if ratio < 1.0:
            raise BenchShardError(
                f"in-process domain scheduler is slower than warm serial on "
                f"the headline scenario {headline['label']}: "
                f"{ratio:.2f}x (need >= 1.0x)"
            )
        if not any(
            s["speedups"]["mp_vs_serial_wall"] > 1.0 for s in out
        ):
            raise BenchShardError(
                "multiprocessing domain executor beat warm serial wall "
                "time on no scenario"
            )
    return section


def run_bench(
    workers: int = 4,
    quick: bool = False,
    output: Optional[Path] = Path("BENCH_PR8.json"),
    jobs: Optional[Sequence[FarmJob]] = None,
    trace: bool = False,
    overhead_guard: bool = True,
    baseline: Optional[Path] = None,
    overhead_limit: float = DEFAULT_OVERHEAD_LIMIT,
    cold: bool = False,
    policy: Optional[str] = None,
    placement: Optional[str] = None,
    compare: bool = False,
    shard: bool = True,
) -> Dict[str, Any]:
    """Run the pinned suite serial-cold, serial-warm, and parallel-warm.

    Returns the report dict (also written to ``output`` as JSON) and
    raises :class:`BenchDigestError` if any mode's results differ.

    ``trace=True`` adds a **parallel-traced** mode (same farm, per-job
    observability capture on) whose digest must match the untraced
    modes; its merged trace sources and metrics land under the
    (non-serialized) ``report["artifacts"]`` key and its relative cost
    under ``report["tracing_overhead"]``.  ``overhead_guard`` compares
    the tracing-*disabled* serial-warm cost against ``baseline`` (the
    newest committed ``BENCH_*.json`` when ``None``, this run's own
    ``output`` excluded) and raises :class:`BenchOverheadError` past
    ``overhead_limit``.  ``compare=True`` additionally gates the run's
    per-job warm-serial times against the same newest committed point
    with the trajectory sign test
    (:func:`repro.exec.trajectory.compare_bench_report`), recording the
    verdict under ``report["trajectory_compare"]``.

    ``cold=True`` adds the persistent disk-cache cold-start section
    (:func:`_disk_section`, against a private temporary store) and the
    batched-execution section (:func:`_batched_section`) under
    ``report["disk_cache"]`` and ``report["batched_execution"]``.  The
    three standard modes always run with the disk tier *off* so their
    wall times keep measuring the in-memory paths of prior baselines.

    ``policy``/``placement`` thread registered scheduling stages through
    every sched-aware suite job (:func:`with_sched_stages`); the
    overhead guard is only meaningful against a like-for-like baseline,
    so it is skipped for non-default stages.

    Every run also records the execution-backend section
    (:func:`_backend_section`) under ``report["backend"]``: the
    functional suite once per available registered backend, digest-equal
    across all of them.

    ``shard=True`` (the default) appends the domain-sharding section
    (:func:`_shard_section`): the ``sharded`` (in-process domain
    scheduler), ``sharded_merge`` (partitioned exact-merge event loop)
    and ``sharded_mp`` (per-GPU worker processes) modes over the
    multi-GPU proof scenarios, digest-equal to warm serial and — on
    full runs — held to their speedup bounds.
    """
    suite = list(jobs) if jobs is not None else (QUICK_SUITE if quick else FULL_SUITE)
    if policy is not None or placement is not None:
        suite = with_sched_stages(suite, policy, placement)
        # Wall times of a different scheduling policy are not comparable
        # to the committed default-policy baseline.
        overhead_guard = False

    # Cold runs once (it is the long mode and only noise-inflated, which
    # if anything under-reports the speedups); warm modes are cheap, so
    # they take the best of three rounds to shrug off steal-time spikes.
    with _cache.disk_scope(False):
        clear_all_caches()
        with cache_scope(False):
            cold_mode = _run_mode(ScenarioFarm(workers=1, warmup=False), suite)

        clear_all_caches()
        warm = _run_mode(ScenarioFarm(workers=1, warmup=True), suite, rounds=3)

        # Persistent pool: the workers fork, warm and receive the static
        # job list once; rounds two and three submit bare indices to
        # already-warm processes, so the best-of-rounds estimator sees
        # the true steady-state parallel cost instead of per-round pool
        # startup plus warm-up (the historic ``parallel_vs_warm < 1``).
        clear_all_caches()
        with ScenarioFarm(workers=workers, persistent=True) as parallel_farm:
            parallel = _run_mode(parallel_farm, suite, rounds=3)

        modes = [
            ("serial_cold", cold_mode),
            ("serial_warm", warm),
            ("parallel_warm", parallel),
        ]

        traced: Optional[Dict[str, Any]] = None
        if trace:
            clear_all_caches()
            traced = _run_mode(
                ScenarioFarm(workers=workers, capture_obs=True), suite
            )
            modes.append(("parallel_traced", traced))

    digests = {name: mode["digest"] for name, mode in modes}
    if len(set(digests.values())) != 1:
        raise BenchDigestError(
            "bench modes disagree on simulation results: "
            + ", ".join(f"{k}={v[:12]}" for k, v in digests.items())
        )

    report = {
        "suite": "quick" if (jobs is None and quick) else
                 ("custom" if jobs is not None else "full"),
        "workers": workers,
        "n_jobs": len(suite),
        "jobs": [
            {"key": j.key, "fn": j.fn, "label": j.label, "kwargs": j.kwargs}
            for j in suite
        ],
        "modes": {
            name: {k: v for k, v in mode.items() if k != "results"}
            for name, mode in modes
        },
        "speedups": {
            # serial-cold is the seed-equivalent baseline in both ratios.
            "caches_only": cold_mode["wall_s"] / warm["wall_s"],
            "parallel": cold_mode["wall_s"] / parallel["wall_s"],
            "parallel_vs_warm": warm["wall_s"] / parallel["wall_s"],
        },
        "identical_results": True,
        "digest": cold_mode["digest"],
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S"),
        "git_commit": _git_commit(),
    }
    if policy is not None or placement is not None:
        report["sched"] = {"policy": policy, "placement": placement}
    if traced is not None:
        # Within-run cost of turning tracing on (same farm shape).
        report["tracing_overhead"] = {
            "traced_wall_s": traced["wall_s"],
            "untraced_wall_s": parallel["wall_s"],
            "ratio": traced["wall_s"] / parallel["wall_s"],
        }
    with _cache.disk_scope(False):
        report["timing"] = _timing_section(suite, cold_mode["digest"])
        report["backend"] = _backend_section(quick=quick)
    if shard:
        # Quick (CI smoke) runs record the section but skip the speedup
        # bounds: the small smoke scenario's margin is noise-sized.
        with _cache.disk_scope(False):
            report["sharding"] = _shard_section(
                QUICK_SHARD_SCENARIOS if quick else SHARD_SCENARIOS,
                enforce=not quick,
            )
    if cold:
        report["disk_cache"] = _disk_section(
            suite, workers, cold_mode["digest"], warm["wall_s"]
        )
        with _cache.disk_scope(False):
            report["batched_execution"] = _batched_section()
    if overhead_guard:
        if baseline is None:
            baseline = resolve_baseline(
                exclude=Path(output) if output is not None else None
            )
        report["overhead_guard"] = check_overhead(
            report, baseline_path=baseline, limit=overhead_limit
        )
    if compare:
        from .trajectory import compare_bench_report

        report["trajectory_compare"] = compare_bench_report(
            report,
            exclude=Path(output) if output is not None else None,
        )
    if output is not None:
        Path(output).write_text(json.dumps(report, indent=2) + "\n")
    if traced is not None:
        # Attached after serialization on purpose: trace buffers are
        # large and belong in their own artifact files, not the report.
        report["artifacts"] = {
            "trace_sources": farm_trace_sources(traced["results"]),
            "metrics": farm_merged_metrics(traced["results"]),
        }
    return report


def render_report(report: Dict[str, Any]) -> str:
    """Human-readable summary of a bench report."""
    lines = [
        f"bench suite: {report['suite']} ({report['n_jobs']} jobs), "
        f"workers={report['workers']}",
        f"results identical across modes: {report['identical_results']} "
        f"(digest {report['digest'][:12]})",
    ]
    for name, mode in report["modes"].items():
        lines.append(f"  {name:<14} {mode['wall_s']:8.2f} s")
    speed = report["speedups"]
    lines.append(
        f"speedup from caches alone (serial warm vs cold): "
        f"{speed['caches_only']:.2f}x"
    )
    lines.append(
        f"speedup parallel+caches vs seed-equivalent serial: "
        f"{speed['parallel']:.2f}x"
    )
    disk = report.get("disk_cache")
    if disk:
        for name, mode in disk["modes"].items():
            lines.append(f"  disk:{name:<19} {mode['wall_s']:8.2f} s")
        ratios = disk["ratios"]
        lines.append(
            f"memory-cold + disk-warm vs fully-warm serial: "
            f"{ratios['disk_warm_vs_serial_warm']:.2f}x "
            f"(limit {disk['disk_warm_limit']:.1f}x)"
        )
        lines.append(
            f"disk cache cold-start speedup: "
            f"{ratios['cold_start_speedup']:.2f}x; "
            f"job-result layer: {ratios['job_warm_speedup']:.0f}x"
        )
    timing = report.get("timing")
    if timing:
        t_modes = timing["modes"]
        t_counts = timing["counts"]
        lines.append(
            f"timing engine (warm serial): scalar "
            f"{t_modes['scalar']['cpu_s']:.2f}s CPU -> vectorized "
            f"{t_modes['vectorized']['cpu_s']:.2f}s CPU "
            f"({timing['speedup']['cpu']:.2f}x); "
            f"{t_counts['launches']} launches in {t_counts['batches']} "
            f"batches, {t_counts['profile_reuse']} profile reuses; "
            f"digests identical: {timing['identical_results']}"
        )
    backend_section = report.get("backend")
    if backend_section:
        for name, mode in backend_section["modes"].items():
            counts = backend_section["counters"][name]
            lines.append(
                f"  backend:{name:<16} {mode['wall_s']:8.2f} s "
                f"({counts['launches']} launches, "
                f"{counts['batched_launches']} batched covering "
                f"{counts['batched_members']} members)"
            )
        for skip in backend_section["skipped"]:
            lines.append(
                f"  backend:{skip['name']:<16} skipped: {skip['reason']}"
            )
        lines.append(
            f"backend digests identical: "
            f"{backend_section['identical_results']}"
        )
    batched = report.get("batched_execution")
    if batched:
        counts = batched["counts"]
        lines.append(
            f"batched execution: {counts['batched_launches']} vectorized "
            f"launches covering {counts['batched_members']} coalesced members "
            f"(fallback run: {counts['fallback_launches']} per-VP groups); "
            f"digests identical: {batched['identical_results']}"
        )
    sharding = report.get("sharding")
    if sharding:
        for scenario in sharding["scenarios"]:
            speed = scenario["speedups"]
            stats = scenario.get("domain_stats") or {}
            merge_ratio = speed.get("merge_vs_serial_cpu")
            merge_part = (
                f"merge {merge_ratio:.2f}x cpu, " if merge_ratio else ""
            )
            lines.append(
                f"  shard:{scenario['label']:<18} "
                f"sharded {speed['sharded_vs_serial_cpu']:.2f}x cpu, "
                f"{merge_part}"
                f"mp {speed['mp_vs_serial_wall']:.2f}x wall "
                f"({stats.get('domains', '?')} domains, "
                f"{stats.get('epochs', '?')} epochs, "
                f"lookahead {stats.get('lookahead_ms', '?')}ms)"
            )
        lines.append(
            f"sharding digests identical: {sharding['identical_results']}"
        )
    tracing = report.get("tracing_overhead")
    if tracing:
        lines.append(
            f"tracing-on vs tracing-off (parallel): "
            f"{tracing['ratio']:.2f}x "
            f"({tracing['untraced_wall_s']:.2f}s -> {tracing['traced_wall_s']:.2f}s)"
        )
    guard = report.get("overhead_guard")
    if guard:
        if guard.get("checked"):
            lines.append(
                f"disabled-mode overhead ({guard.get('metric', 'wall')}) "
                f"vs {guard['baseline']}: "
                f"{guard['overhead'] * 100.0:+.1f}% "
                f"(limit {guard['limit'] * 100.0:.1f}%)"
            )
        else:
            lines.append(f"overhead guard: {guard.get('note', 'skipped')}")
    compare = report.get("trajectory_compare")
    if compare:
        if compare.get("comparable"):
            lines.append(
                f"trajectory compare vs newest committed point: "
                f"{compare['faster']} faster / {compare['slower']} slower / "
                f"{compare['ties']} within band (p={compare['p_value']:.4f}) "
                f"-> {'REGRESSED' if compare['regressed'] else 'ok'}"
            )
        else:
            lines.append(
                f"trajectory compare: {compare.get('note', 'skipped')}"
            )
    return "\n".join(lines)
