"""The ``repro bench`` regression harness.

Runs a pinned suite of scenario-farm jobs three ways —

* **serial-cold** — one process, all memo caches disabled.  This is the
  seed execution path (every launch re-times, every scan re-walks the
  queue) and the baseline every later PR is measured against;
* **serial-warm** — one process, caches enabled: what the memoization
  layer alone buys;
* **parallel-warm** — the :class:`~repro.exec.ScenarioFarm` with
  ``workers`` processes: memoization plus scenario-level parallelism —

asserts that all three modes simulate **bit-identical results** (the
caches and the farm are pure plumbing; simulated time must not move),
and appends the wall-clock numbers to a ``BENCH_*.json`` file so the
performance trajectory of the stack is tracked in-repo alongside the
correctness suite.
"""

from __future__ import annotations

import json
import time
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence

from ..caching import cache_scope, clear_all_caches
from .farm import FarmJob, FarmResult, ScenarioFarm, results_digest

#: The pinned regression suite.  Iteration-heavy, many-VP, small-data
#: scenarios: the jobs are dominated by the scheduling/timing hot paths
#: the memo caches serve, not by numpy input generation, so they track
#: exactly the costs this harness exists to watch.
FULL_SUITE: List[FarmJob] = [
    FarmJob(fn="repro.exec.jobs:fig10a_point", label="fig10a:b16",
            kwargs={"batch": 16, "n_programs": 64}),
    FarmJob(fn="repro.exec.jobs:fig10a_point", label="fig10a:b64",
            kwargs={"batch": 64, "n_programs": 64}),
    FarmJob(fn="repro.exec.jobs:scenario_summary", label="mergeSort8",
            kwargs={"app": "mergeSort", "n_vps": 8}),
    FarmJob(fn="repro.exec.jobs:fig11_point", label="fig11:BlackScholes",
            kwargs={"app": "BlackScholes", "n_vps": 8}),
    FarmJob(fn="repro.exec.jobs:scenario_summary", label="matrixMul8",
            kwargs={"app": "matrixMul", "n_vps": 8}),
    FarmJob(fn="repro.exec.jobs:scenario_summary", label="vectorAdd8",
            kwargs={"app": "vectorAdd", "n_vps": 8,
                    "scale_elements": 8192, "scale_iterations": 4}),
    FarmJob(fn="repro.exec.jobs:scenario_summary", label="vectorAdd8:nocoal",
            kwargs={"app": "vectorAdd", "n_vps": 8, "coalescing": False,
                    "scale_elements": 8192, "scale_iterations": 4}),
    FarmJob(fn="repro.exec.jobs:scenario_summary", label="BlackScholes8",
            kwargs={"app": "BlackScholes", "n_vps": 8,
                    "scale_elements": 8192, "scale_iterations": 10}),
    FarmJob(fn="repro.exec.jobs:fig9b_point", label="fig9b:n8",
            kwargs={"n_programs": 8}),
    FarmJob(fn="repro.exec.jobs:table1_route", label="table1:sigma-vp",
            kwargs={"route": "CUDA / This work", "app": "matrixMul"}),
]

#: CI smoke subset: the same shapes, sized to finish cold in seconds.
QUICK_SUITE: List[FarmJob] = [
    FarmJob(fn="repro.exec.jobs:fig10a_point", label="fig10a:b8/32vp",
            kwargs={"batch": 8, "n_programs": 32}),
    FarmJob(fn="repro.exec.jobs:fig10a_point", label="fig10a:b4/16vp",
            kwargs={"batch": 4, "n_programs": 16}),
    FarmJob(fn="repro.exec.jobs:scenario_summary", label="mergeSort8",
            kwargs={"app": "mergeSort", "n_vps": 8}),
    FarmJob(fn="repro.exec.jobs:scenario_summary", label="vectorAdd8",
            kwargs={"app": "vectorAdd", "n_vps": 8,
                    "scale_elements": 8192, "scale_iterations": 4}),
]


class BenchDigestError(AssertionError):
    """Two bench modes simulated different results."""


def _run_mode(
    farm: ScenarioFarm, jobs: Sequence[FarmJob], rounds: int = 1
) -> Dict[str, Any]:
    """Run the suite ``rounds`` times and keep the fastest wall-clock.

    Scheduler steal and frequency scaling only ever *inflate* wall time,
    so the minimum over rounds is the robust estimator of the true cost.
    Every round must simulate the same digest or the mode fails.
    """
    best: Optional[Dict[str, Any]] = None
    for _ in range(max(1, rounds)):
        started = time.perf_counter()
        results = farm.map(jobs)
        wall = time.perf_counter() - started
        run = {
            "wall_s": wall,
            "digest": results_digest(results),
            "per_job_s": {r.label: r.duration_s for r in results},
            "results": results,
        }
        if best is not None and run["digest"] != best["digest"]:
            raise BenchDigestError(
                "repeated rounds of one mode disagree: "
                f"{best['digest'][:12]} != {run['digest'][:12]}"
            )
        if best is None or run["wall_s"] < best["wall_s"]:
            best = run
    assert best is not None
    best["rounds"] = max(1, rounds)
    return best


def run_bench(
    workers: int = 4,
    quick: bool = False,
    output: Optional[Path] = Path("BENCH_PR1.json"),
    jobs: Optional[Sequence[FarmJob]] = None,
) -> Dict[str, Any]:
    """Run the pinned suite serial-cold, serial-warm, and parallel-warm.

    Returns the report dict (also written to ``output`` as JSON) and
    raises :class:`BenchDigestError` if any mode's results differ.
    """
    suite = list(jobs) if jobs is not None else (QUICK_SUITE if quick else FULL_SUITE)

    # Cold runs once (it is the long mode and only noise-inflated, which
    # if anything under-reports the speedups); warm modes are cheap, so
    # they take the best of two rounds to shrug off steal-time spikes.
    clear_all_caches()
    with cache_scope(False):
        cold = _run_mode(ScenarioFarm(workers=1, warmup=False), suite)

    clear_all_caches()
    warm = _run_mode(ScenarioFarm(workers=1, warmup=True), suite, rounds=2)

    clear_all_caches()
    parallel = _run_mode(ScenarioFarm(workers=workers), suite, rounds=2)

    digests = {
        "serial_cold": cold["digest"],
        "serial_warm": warm["digest"],
        "parallel_warm": parallel["digest"],
    }
    if len(set(digests.values())) != 1:
        raise BenchDigestError(
            "bench modes disagree on simulation results: "
            + ", ".join(f"{k}={v[:12]}" for k, v in digests.items())
        )

    report = {
        "suite": "quick" if (jobs is None and quick) else
                 ("custom" if jobs is not None else "full"),
        "workers": workers,
        "n_jobs": len(suite),
        "jobs": [
            {"key": j.key, "fn": j.fn, "label": j.label, "kwargs": j.kwargs}
            for j in suite
        ],
        "modes": {
            name: {k: v for k, v in mode.items() if k != "results"}
            for name, mode in (
                ("serial_cold", cold),
                ("serial_warm", warm),
                ("parallel_warm", parallel),
            )
        },
        "speedups": {
            # serial-cold is the seed-equivalent baseline in both ratios.
            "caches_only": cold["wall_s"] / warm["wall_s"],
            "parallel": cold["wall_s"] / parallel["wall_s"],
            "parallel_vs_warm": warm["wall_s"] / parallel["wall_s"],
        },
        "identical_results": True,
        "digest": cold["digest"],
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S"),
    }
    if output is not None:
        Path(output).write_text(json.dumps(report, indent=2) + "\n")
    return report


def render_report(report: Dict[str, Any]) -> str:
    """Human-readable summary of a bench report."""
    lines = [
        f"bench suite: {report['suite']} ({report['n_jobs']} jobs), "
        f"workers={report['workers']}",
        f"results identical across modes: {report['identical_results']} "
        f"(digest {report['digest'][:12]})",
    ]
    for name, mode in report["modes"].items():
        lines.append(f"  {name:<14} {mode['wall_s']:8.2f} s")
    speed = report["speedups"]
    lines.append(
        f"speedup from caches alone (serial warm vs cold): "
        f"{speed['caches_only']:.2f}x"
    )
    lines.append(
        f"speedup parallel+caches vs seed-equivalent serial: "
        f"{speed['parallel']:.2f}x"
    )
    return "\n".join(lines)
