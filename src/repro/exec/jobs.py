"""Module-level job functions for the :class:`~repro.exec.ScenarioFarm`.

Farm jobs must be *descriptions*: a ``"module:function"`` reference plus
JSON-able keyword arguments.  Workload specs carry numpy input factories
(closures) and transports/architectures are rich objects, so none of
them can ride inside a job.  The functions here take catalog names and
plain parameters instead, rebuild the heavyweight objects in the worker,
run one scenario/figure/table/sweep point, and return a JSON-able value
— which is also what makes ``results_digest`` equality across
``workers=1`` and ``workers=N`` meaningful.

The figure/table series functions in :mod:`repro.analysis` submit these
by name, so the serial (``workers=1``) and parallel paths execute the
exact same code.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

from ..core.ipc import IPCTransport, SHARED_MEMORY, SOCKET
from ..gpu.arch import get_architecture
from ..workloads.base import WorkloadSpec
from ..workloads.catalog import get_workload

#: Transports a farm job may name.  (Custom transports cannot cross a
#: process boundary by name; series functions fall back to serial runs.)
TRANSPORTS: Dict[str, IPCTransport] = {
    SOCKET.name: SOCKET,
    SHARED_MEMORY.name: SHARED_MEMORY,
    "shm": SHARED_MEMORY,
}


def resolve_transport(name: str) -> IPCTransport:
    try:
        return TRANSPORTS[name]
    except KeyError:
        known = ", ".join(sorted(TRANSPORTS))
        raise KeyError(f"unknown transport {name!r}; known: {known}") from None


def _spec(app: str, scale_elements: Optional[int] = None,
          scale_iterations: Optional[int] = None) -> WorkloadSpec:
    spec = get_workload(app)
    if scale_elements is not None or scale_iterations is not None:
        spec = spec.scaled_to(
            scale_elements if scale_elements is not None else spec.elements,
            iterations=scale_iterations,
        )
    return spec


# ---------------------------------------------------------------------------
# Scenario points (``repro run``, ablations, the bench suite)
# ---------------------------------------------------------------------------


def scenario_summary(
    app: str,
    n_vps: int = 8,
    interleaving: bool = True,
    coalescing: bool = True,
    transport: str = "socket",
    max_batch: int = 64,
    n_host_gpus: int = 1,
    scale_elements: Optional[int] = None,
    scale_iterations: Optional[int] = None,
    functional: bool = False,
    policy: Optional[str] = None,
    placement: Optional[str] = None,
    shards: Optional[object] = None,
    backend: Optional[str] = None,
) -> Dict[str, Any]:
    """One SigmaVP route for a catalogued app, summarized JSON-ably.

    ``functional=True`` additionally executes the registered functional
    kernels (the bench's batched-execution proof point uses this); the
    default stays timing-only.  ``policy``/``placement`` name registered
    scheduling stages (``repro policies`` lists them).  ``shards``
    selects the partitioned in-process event loop (digest-identical to
    serial by construction).  ``backend`` names a registered execution
    backend (``repro backends`` lists them; digest-interchangeable by
    contract).  All are defaulted kwargs, so they leave the config-hash
    keys of all existing jobs untouched — an explicit ``backend`` enters
    the job key, distinguishing cached results per backend.

    The parameter list is the keyword surface of
    :class:`repro.api.RunRequest`; the body is just its
    :func:`repro.api.scenario` projection, so the farm, the CLI and the
    ``repro serve`` daemon all execute one code path.
    """
    from ..api import RunRequest, _coerce_shards, scenario

    request = RunRequest(
        app=app,
        n_vps=n_vps,
        interleaving=interleaving,
        coalescing=coalescing,
        transport=transport,
        max_batch=max_batch,
        n_host_gpus=n_host_gpus,
        scale_elements=scale_elements,
        scale_iterations=scale_iterations,
        functional=functional,
        policy=policy,
        placement=placement,
        shards=_coerce_shards(shards),
        backend=backend,
    )
    return scenario(request).summary()


def scenario_shard_stats(
    app: str,
    n_vps: int = 8,
    interleaving: bool = True,
    coalescing: bool = True,
    transport: str = "socket",
    max_batch: int = 64,
    n_host_gpus: int = 1,
    scale_elements: Optional[int] = None,
    scale_iterations: Optional[int] = None,
    functional: bool = False,
    shards: Optional[object] = "per-gpu",
) -> Dict[str, Any]:
    """Summary **plus** partitioned-engine statistics for one sharded run.

    Same scenario surface as :func:`scenario_summary`, but runs with the
    sharded engine and also returns its ``domain_stats()`` — epochs,
    domain switches, boundary events, per-domain event counts, the
    derived lookahead — which the plain summary (the digest wire format)
    deliberately excludes.
    """
    from ..core.scenarios import run_sigma_vp

    result = run_sigma_vp(
        _spec(app, scale_elements, scale_iterations),
        n_vps=n_vps,
        interleaving=interleaving,
        coalescing=coalescing,
        transport=resolve_transport(transport),
        max_batch=max_batch,
        n_host_gpus=n_host_gpus,
        functional=functional,
        shards=shards,
    )
    framework = result.extras["framework"]
    stats_fn = getattr(framework.env, "domain_stats", None)
    return {
        "summary": result.summary(),
        "domain_stats": stats_fn() if callable(stats_fn) else None,
    }


def emulation_summary(
    app: str,
    n_instances: int = 8,
    cpu: str = "vp",
    scale_elements: Optional[int] = None,
    scale_iterations: Optional[int] = None,
) -> Dict[str, Any]:
    """The emulation baseline route (``cpu`` is ``"vp"`` or ``"cpu"``)."""
    from ..core.scenarios import run_emulation
    from ..vp.cpu import HOST_XEON, QEMU_ARM_VP

    result = run_emulation(
        _spec(app, scale_elements, scale_iterations),
        n_instances=n_instances,
        cpu=HOST_XEON if cpu == "cpu" else QEMU_ARM_VP,
    )
    return result.summary()


def phase_point(
    n_vps: int,
    t_kernel_ms: float,
    t_copy_ms: float,
    iterations: int = 1,
    n_host_gpus: int = 1,
    interleaving: bool = True,
    coalescing: bool = False,
    transport: str = "shared-memory",
    policy: Optional[str] = None,
    placement: Optional[str] = None,
    backend: Optional[str] = None,
) -> float:
    """Total ms for a synthetic phase-loop fleet (scaling/ablation benches)."""
    from ..core.framework import SigmaVP
    from ..sched.config import SchedulerConfig
    from ..workloads.synthetic import make_phase_workload

    spec = make_phase_workload(
        t_kernel_ms=t_kernel_ms, t_copy_ms=t_copy_ms, iterations=iterations
    )
    framework = SigmaVP(
        n_vps=n_vps,
        n_host_gpus=n_host_gpus,
        interleaving=interleaving,
        coalescing=coalescing,
        transport=resolve_transport(transport),
        sched=SchedulerConfig.from_names(policy, placement, backend=backend),
    )
    return framework.run_workload(spec)


# ---------------------------------------------------------------------------
# Figure points
# ---------------------------------------------------------------------------


def fig9a_point(
    t_kernel_ms: float,
    t_copy_ms: float = 13.44,
    transport: str = "shared-memory",
) -> Dict[str, float]:
    """One Fig. 9(a) point: interleaving speedup at one kernel length."""
    from ..core.interleaving import expected_speedup
    from ..core.scenarios import run_sigma_vp
    from ..workloads.synthetic import make_phase_workload, measured_phase_times

    ipc = resolve_transport(transport)
    spec = make_phase_workload(t_kernel_ms=t_kernel_ms, t_copy_ms=t_copy_ms)
    tm, tk = measured_phase_times(spec)
    serial = run_sigma_vp(spec, n_vps=2, interleaving=False,
                          coalescing=False, transport=ipc)
    inter = run_sigma_vp(spec, n_vps=2, interleaving=True,
                         coalescing=False, transport=ipc)
    return {
        "x": tk,
        "measured": serial.total_ms / inter.total_ms,
        "expected": expected_speedup(2, tm, tk),
    }


def fig9b_point(
    n_programs: int,
    t_phase_ms: float = 4.0,
    transport: str = "shared-memory",
) -> Dict[str, float]:
    """One Fig. 9(b) point: interleaving speedup for N balanced programs."""
    from ..core.interleaving import balanced_speedup
    from ..core.scenarios import run_sigma_vp
    from ..workloads.synthetic import make_phase_workload

    ipc = resolve_transport(transport)
    spec = make_phase_workload(t_kernel_ms=t_phase_ms, t_copy_ms=t_phase_ms)
    serial = run_sigma_vp(spec, n_vps=n_programs, interleaving=False,
                          coalescing=False, transport=ipc)
    inter = run_sigma_vp(spec, n_vps=n_programs, interleaving=True,
                         coalescing=False, transport=ipc)
    return {
        "x": float(n_programs),
        "measured": serial.total_ms / inter.total_ms,
        "expected": balanced_speedup(n_programs),
    }


def fig10a_point(
    batch: int,
    n_programs: int = 64,
    transport: str = "shared-memory",
    functional: bool = False,
    policy: Optional[str] = None,
    placement: Optional[str] = None,
    backend: Optional[str] = None,
) -> float:
    """Fig. 10(a): total ms at one coalescing degree (1 = coalescing off)."""
    from ..core.scenarios import run_sigma_vp
    from ..workloads.linalg import make_vectoradd_spec

    spec = make_vectoradd_spec(
        elements=4096, iterations=1, block_size=512,
        elements_per_thread=8, fp32_per_element=4000,
    )
    return run_sigma_vp(
        spec,
        n_vps=n_programs,
        interleaving=False,
        coalescing=batch > 1,
        max_batch=max(batch, 1),
        transport=resolve_transport(transport),
        functional=functional,
        policy=policy,
        placement=placement,
        backend=backend,
    ).total_ms


def fig11_point(
    app: str,
    n_vps: int = 8,
    functional: bool = False,
    backend: Optional[str] = None,
) -> Dict[str, Any]:
    """One Fig. 11 application: emulation time plus SigmaVP speedups."""
    from ..core.scenarios import run_emulation, run_sigma_vp

    spec = get_workload(app)
    emul = run_emulation(spec, n_instances=n_vps, backend=backend).total_ms
    base = run_sigma_vp(spec, n_vps=n_vps, interleaving=False,
                        coalescing=False, functional=functional,
                        backend=backend).total_ms
    opt = run_sigma_vp(spec, n_vps=n_vps, interleaving=True,
                       coalescing=True, functional=functional,
                       backend=backend).total_ms
    return {
        "app": app,
        "emulation_ms": emul,
        "multiplexing_speedup": emul / base,
        "optimized_speedup": emul / opt,
    }


def fig12_point(host: str, app: str, target: str = "Tegra K1") -> Dict[str, Any]:
    """One Fig. 12 (host, app) pair: normalized execution-time estimates."""
    from ..core.estimation import ExecutionAnalyzer

    host_arch = get_architecture(host)
    analyzer = ExecutionAnalyzer(host_arch, get_architecture(target))
    spec = get_workload(app)
    kernel, launch = spec.kernel, spec.launch_config()
    host_profile = analyzer.profile_on_host(kernel, launch)
    truth_ms = analyzer.observe_on_target(kernel, launch).time_ms
    est = analyzer.analyze(kernel, launch, host_profile=host_profile)

    def norm(cycles: float) -> float:
        return analyzer.estimated_time_ms(cycles) / truth_ms

    return {
        "app": app,
        "host": host_arch.name,
        "h_normalized": host_profile.time_ms / truth_ms,
        "t_normalized": 1.0,
        "c_normalized": norm(est.c_cycles),
        "c_prime_normalized": norm(est.c_prime_cycles),
        "c_double_prime_normalized": norm(est.c_double_prime_cycles),
    }


def fig13_point(host: str, app: str, target: str = "Tegra K1") -> Dict[str, Any]:
    """One Fig. 13 (host, app) pair: measured vs estimated target power."""
    from ..core.estimation import ExecutionAnalyzer

    host_arch = get_architecture(host)
    analyzer = ExecutionAnalyzer(host_arch, get_architecture(target))
    spec = get_workload(app)
    kernel, launch = spec.kernel, spec.launch_config()
    host_profile = analyzer.profile_on_host(kernel, launch)
    measured = analyzer.observed_power(kernel, launch)
    estimated = analyzer.estimate_power(kernel, launch, host_profile=host_profile)
    return {
        "app": app,
        "host": host_arch.name,
        "measured_w": measured.total_w,
        "estimated_w": estimated.total_w,
    }


# ---------------------------------------------------------------------------
# Table 1 routes and design-space sweep points
# ---------------------------------------------------------------------------


def table1_route(route: str, app: str = "matrixMul") -> float:
    """Total ms of one Table 1 execution route for a catalogued app."""
    from ..core.scenarios import (
        run_c_program,
        run_emulation,
        run_native_gpu,
        run_sigma_vp,
    )
    from ..vp.cpu import HOST_XEON, QEMU_ARM_VP

    spec = get_workload(app)
    if route == "CUDA / GPU":
        return run_native_gpu(spec).total_ms
    if route == "CUDA / Emul. on CPU":
        return run_emulation(spec, cpu=HOST_XEON).total_ms
    if route == "CUDA / Emul. on VP":
        return run_emulation(spec, cpu=QEMU_ARM_VP).total_ms
    if route == "CUDA / This work":
        return run_sigma_vp(spec, n_vps=1).total_ms
    if route == "C / CPU":
        return run_c_program(spec, cpu=HOST_XEON).total_ms
    if route == "C / VP":
        return run_c_program(spec, cpu=QEMU_ARM_VP).total_ms
    raise ValueError(f"unknown Table 1 route {route!r}")


def sweep_point(
    app: str,
    sm_count: int,
    clock_mhz: float,
    host: str = "Quadro 4000",
) -> Dict[str, Any]:
    """One Tegra-K1-derived design candidate's predicted time and power.

    Rebuilds the candidate with :func:`tegra_scaling_candidates` so the
    parent process can re-derive the identical architecture object.
    """
    from ..analysis.sweeps import sweep_targets, tegra_scaling_candidates

    candidates = tegra_scaling_candidates(
        sm_counts=(sm_count,), clocks_mhz=(clock_mhz,)
    )
    point = sweep_targets(
        get_workload(app), candidates, host=get_architecture(host)
    )[0]
    return {
        "name": point.name,
        "estimated_time_ms": point.estimated_time_ms,
        "estimated_power_w": point.estimated_power_w,
    }


# ---------------------------------------------------------------------------
# Series reconstruction helpers (used by repro.analysis to rebuild typed
# points from farm values)
# ---------------------------------------------------------------------------


def fanout(farm, fn: str, kwargs_list: List[Dict[str, Any]],
           label: str = "") -> List[Any]:
    """Submit one job per kwargs dict and return the values in order."""
    from .farm import FarmJob

    jobs = [
        FarmJob(fn=fn, kwargs=kwargs, label=f"{label}[{i}]" if label else "")
        for i, kwargs in enumerate(kwargs_list)
    ]
    return farm.map_values(jobs)
