"""The ScenarioFarm: coarse-grain parallelism over independent simulations.

Both parallel-simulator lines of work this PR follows (parallelizing a
modern GPU simulator; parallel SystemC virtual platforms) get their
throughput from the same observation: *independent simulations need no
synchronization*.  A sweep point, a figure's bar, or a Table-1 route is
one self-contained discrete-event simulation; the farm runs many of them
concurrently in worker processes.

Design:

* **Jobs are descriptions, not closures.**  A :class:`FarmJob` names a
  module-level function (``"package.module:function"``) plus JSON-able
  keyword arguments, so every job pickles trivially and has a stable
  **config-hash key** — the sha256 of the function reference and the
  canonical-JSON encoding of its arguments.  The key doubles as the
  source of the job's **deterministic seed**, so a scenario's randomness
  never depends on which worker ran it or in what order.
* **Workers warm up once.**  Pool initializers pre-compile the workload
  catalog's kernels for the standard architectures into the process's
  shared compiler, so the first real job does not pay cold-compile cost.
* **Chunked submission** amortizes IPC for large job lists.
* **Serial fallback.**  ``workers=1`` (or a platform without ``fork``)
  runs jobs in-process through the *same* code path, which is what makes
  the ``workers=1`` vs ``workers=N`` digest-equality guarantee testable.
"""

from __future__ import annotations

import hashlib
import importlib
import inspect
import multiprocessing
import os
import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence

# The config-hash / seed algorithm lives in repro.obs.export so exported
# trace and metrics stamps are byte-identical to farm job identities
# (one source of truth); re-exported here for backward compatibility.
from .. import cache as _cache
from ..backend.registry import default_backend_name, set_default_backend
from ..caching import caches_enabled
from ..obs import capture as _obs_capture
from ..obs import metrics as _obs_metrics
from ..obs.export import canonical_json, config_key, seed_for

__all__ = [
    "canonical_json",
    "config_key",
    "seed_for",
    "FarmJob",
    "FarmResult",
    "run_job",
    "run_job_by_index",
    "set_pool_jobs",
    "warm_worker",
    "results_digest",
    "ScenarioFarm",
]


@dataclass(frozen=True)
class FarmJob:
    """One independent scenario run, described portably.

    ``fn`` is a ``"module.path:function"`` reference so the job can be
    pickled to any worker (and hashed) without capturing closures;
    ``kwargs`` must be JSON-able for the same reason.
    """

    fn: str
    kwargs: Dict[str, Any] = field(default_factory=dict)
    label: str = ""

    def __post_init__(self) -> None:
        if ":" not in self.fn:
            raise ValueError(
                f"fn must be a 'module:function' reference, got {self.fn!r}"
            )

    @property
    def key(self) -> str:
        """Config-hash identity: stable across processes and sessions."""
        return config_key(self.fn, self.kwargs)

    @property
    def seed(self) -> int:
        """Deterministic per-job seed derived from the config hash."""
        return seed_for(self.key)


@dataclass(frozen=True)
class FarmResult:
    """Outcome of one farm job.

    ``trace`` and ``metrics`` are populated only when the farm ran with
    observability capture on (``capture_obs=True``): the worker's trace
    buffer payload and metrics snapshot, serialized through the normal
    result channel.  ``timeseries`` additionally requires a sampling
    interval (``sample_interval_ms``) and carries the job's
    :class:`~repro.obs.timeseries.Sampler` payload.  All three are
    excluded from :func:`results_digest`, so capturing never perturbs
    digest equality.
    """

    job_key: str
    fn: str
    label: str
    value: Any
    duration_s: float
    worker_pid: int
    trace: Optional[Dict[str, Any]] = None
    metrics: Optional[Dict[str, Any]] = None
    timeseries: Optional[Dict[str, Any]] = None


#: Per-process memo of resolved job functions and their seed-awareness.
_fn_cache: Dict[str, tuple] = {}

#: Per-process flag: when ``True`` each :func:`run_job` runs inside a
#: fresh observability capture and ships the buffers back on the result.
#: Set by the pool initializer in workers, or directly in serial mode.
_CAPTURE_OBS = False

#: Per-process time-series sampling interval (simulated ms) applied to
#: each job's capture window; ``None`` keeps sampling off.
_CAPTURE_SAMPLE_MS: Optional[float] = None


def set_capture(on: bool, sample_interval_ms: Optional[float] = None) -> None:
    """Turn per-job observability capture on/off in *this* process."""
    global _CAPTURE_OBS, _CAPTURE_SAMPLE_MS
    _CAPTURE_OBS = bool(on)
    _CAPTURE_SAMPLE_MS = sample_interval_ms if on else None


def _resolve(fn_ref: str) -> tuple:
    cached = _fn_cache.get(fn_ref)
    if cached is not None:
        return cached
    module_name, _, attr = fn_ref.partition(":")
    fn: Callable = getattr(importlib.import_module(module_name), attr)
    takes_seed = "seed" in inspect.signature(fn).parameters
    _fn_cache[fn_ref] = (fn, takes_seed)
    return fn, takes_seed


def run_job(job: FarmJob) -> FarmResult:
    """Execute one job in the current process (worker or serial mode).

    With capture on (:func:`set_capture`), the job runs inside its own
    observability window — a fresh tracer and metrics registry scoped to
    exactly this job — and the result carries their payloads.  Each
    worker's span ids start at zero; the parent re-bases them when
    merging (:func:`repro.obs.aggregate.rebase_payloads`).
    """
    fn, takes_seed = _resolve(job.fn)
    kwargs = dict(job.kwargs)
    if takes_seed and "seed" not in kwargs:
        kwargs["seed"] = job.seed
    trace_payload: Optional[Dict[str, Any]] = None
    metrics_payload: Optional[Dict[str, Any]] = None
    timeseries_payload: Optional[Dict[str, Any]] = None
    started = time.perf_counter()
    # Whole-job result layer: a job's value is a pure function of its
    # config-hash identity, so a disk entry short-circuits the entire
    # simulation.  Skipped under observability capture (traces need real
    # execution) and when caching is globally off.
    store = result_key = None
    if not _CAPTURE_OBS and caches_enabled() and _cache.job_results_enabled():
        store = _cache.disk_cache()
    if store is not None:
        result_key = _cache.job_result_key(job.key)
        cached = store.get(result_key)
        registry = _obs_metrics.REGISTRY
        if cached is not _cache.MISS:
            if registry is not None:
                registry.counter("cache.disk.job_hits").inc()
            return FarmResult(
                job_key=job.key,
                fn=job.fn,
                label=job.label or job.fn.rpartition(":")[2],
                value=cached,
                duration_s=time.perf_counter() - started,
                worker_pid=os.getpid(),
            )
        if registry is not None:
            registry.counter("cache.disk.job_misses").inc()
    if _CAPTURE_OBS:
        with _obs_capture(sample_interval_ms=_CAPTURE_SAMPLE_MS) as window:
            with _obs_metrics.timed("farm.run_job"):
                value = fn(**kwargs)
        trace_payload = window.trace_payload()
        metrics_payload = window.metrics_payload()
        timeseries_payload = window.timeseries_payload()
    else:
        value = fn(**kwargs)
    if store is not None:
        store.put(result_key, value)
    return FarmResult(
        job_key=job.key,
        fn=job.fn,
        label=job.label or job.fn.rpartition(":")[2],
        value=value,
        duration_s=time.perf_counter() - started,
        worker_pid=os.getpid(),
        trace=trace_payload,
        metrics=metrics_payload,
        timeseries=timeseries_payload,
    )


#: Static job list registered with a persistent pool.  Shipped **once**
#: through the pool initializer; every later round submits bare indices
#: (:func:`run_job_by_index`) instead of re-pickling each job
#: description per ``map()`` call.
_POOL_JOBS: List[FarmJob] = []


def set_pool_jobs(jobs: Sequence[FarmJob]) -> None:
    """Install the static job list for index-based submission."""
    global _POOL_JOBS
    _POOL_JOBS = list(jobs)


def run_job_by_index(index: int) -> FarmResult:
    """Run the ``index``-th registered job (persistent-pool fast path)."""
    return run_job(_POOL_JOBS[index])


def warm_worker(capture_obs: bool = False) -> None:
    """Pool initializer: pre-compile the workload catalog's kernels.

    Populates the worker's shared default compiler for the standard
    architectures so the first job dispatched to a fresh worker starts
    from the same warm-compile state as every later one.  Also arms
    per-job observability capture when the farm asked for it (warming
    runs *before* arming, so warm-up compiles never pollute job metrics).
    """
    from ..gpu.arch import GRID_K520, QUADRO_4000, TEGRA_K1
    from ..kernels.compiler import compile_kernel
    from ..workloads import SUITE

    for spec in SUITE.values():
        for arch in (QUADRO_4000, GRID_K520, TEGRA_K1):
            compile_kernel(spec.kernel, arch)
    if capture_obs:
        set_capture(True)


def _init_worker(
    capture_obs: bool = False,
    warm: bool = True,
    disk_config: Optional[Dict[str, Any]] = None,
    sample_interval_ms: Optional[float] = None,
    pool_jobs: Optional[Sequence[FarmJob]] = None,
    backend: Optional[str] = None,
) -> None:
    """Pool initializer: disk-cache config, optional warm-up, capture.

    The parent ships its resolved disk-cache configuration explicitly
    (rather than relying on inherited globals) so every worker reads and
    writes the *same* shared store even on start methods that do not
    copy parent state.  Warming runs after the store is configured —
    warm-up compiles then populate/hit the shared disk tier too.
    ``pool_jobs`` is the persistent-pool static job list: registering it
    here means each round's submissions are plain integers.  ``backend``
    is the parent's *resolved* execution-backend default, so jobs that
    leave the backend implicit select the same backend in workers as in
    serial mode — a ``backend_scope(...)`` around ``map()`` applies
    inside the pool too.
    """
    if disk_config is not None:
        _cache.configure(
            root=disk_config["root"], enabled=disk_config["enabled"]
        )
    if backend is not None:
        set_default_backend(backend)
    if warm:
        warm_worker()
    if capture_obs:
        set_capture(True, sample_interval_ms=sample_interval_ms)
    if pool_jobs is not None:
        set_pool_jobs(pool_jobs)


def results_digest(results: Sequence[FarmResult]) -> str:
    """Digest of (job key, value) pairs, independent of completion order."""
    payload = canonical_json(
        sorted([(r.job_key, r.value) for r in results], key=lambda kv: kv[0])
    )
    return hashlib.sha256(payload.encode()).hexdigest()


class ScenarioFarm:
    """Runs batches of :class:`FarmJob` over a process pool.

    ``workers=1`` — or any platform without the ``fork`` start method —
    degrades gracefully to in-process serial execution of the identical
    job code path.  Results always come back in submission order.

    ``persistent=True`` keeps the worker pool alive across ``map()``
    calls: workers fork, configure and warm **once**, and the static job
    list ships once through the pool initializer, so repeat rounds of
    the same suite submit bare indices to already-warm processes.  The
    pool is rebuilt transparently when the job list (by config-hash key)
    or the needed worker count changes, and released by :meth:`close`
    (the farm is also a context manager).
    """

    def __init__(
        self,
        workers: Optional[int] = None,
        warmup: bool = True,
        chunk_size: Optional[int] = None,
        capture_obs: bool = False,
        sample_interval_ms: Optional[float] = None,
        persistent: bool = False,
    ):
        requested = os.cpu_count() or 1 if workers is None else workers
        if requested < 1:
            raise ValueError(f"workers must be positive, got {workers}")
        self.requested_workers = requested
        self.workers = requested if (requested == 1 or self._can_fork()) else 1
        self.warmup = warmup
        self.chunk_size = chunk_size
        self.capture_obs = capture_obs
        #: Per-job time-series sampling interval under capture (None = off).
        self.sample_interval_ms = sample_interval_ms
        self.persistent = persistent
        self._pool: Optional[ProcessPoolExecutor] = None
        self._pool_keys: Optional[tuple] = None
        self._pool_size = 0

    @staticmethod
    def _can_fork() -> bool:
        return "fork" in multiprocessing.get_all_start_methods()

    def __repr__(self) -> str:
        return f"<ScenarioFarm workers={self.workers}>"

    def __enter__(self) -> "ScenarioFarm":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()

    def __del__(self) -> None:
        try:
            self.close()
        except Exception:
            pass

    def close(self) -> None:
        """Shut down the persistent pool (no-op without one)."""
        if self._pool is not None:
            self._pool.shutdown()
            self._pool = None
            self._pool_keys = None
            self._pool_size = 0

    def _initargs(self, pool_jobs: Optional[Sequence[FarmJob]] = None) -> tuple:
        disk_config = {
            "root": _cache.default_root(),
            "enabled": _cache.disk_enabled(),
        }
        return (
            self.capture_obs,
            self.warmup,
            disk_config,
            self.sample_interval_ms,
            list(pool_jobs) if pool_jobs is not None else None,
            default_backend_name(),
        )

    def _map_persistent(
        self, jobs: List[FarmJob], chunk: int
    ) -> List[FarmResult]:
        """Index-based submission over a pool that outlives the call.

        The job list rides to the workers exactly once (initializer);
        every round after that pickles ``range(len(jobs))`` — integers —
        instead of the full job descriptions.  A changed job list or a
        larger worker requirement rebuilds the pool.
        """
        # The effective backend rides in the rebuild key: workers fix
        # their default at initialization, so a parent-side change (e.g.
        # a new backend_scope) must fork a fresh pool.
        keys = (default_backend_name(), *(job.key for job in jobs))
        size = min(self.workers, len(jobs))
        if (
            self._pool is None
            or self._pool_keys != keys
            or self._pool_size < size
        ):
            self.close()
            self._pool = ProcessPoolExecutor(
                max_workers=size,
                mp_context=multiprocessing.get_context("fork"),
                initializer=_init_worker,
                initargs=self._initargs(pool_jobs=jobs),
            )
            self._pool_keys = keys
            self._pool_size = size
        return list(
            self._pool.map(run_job_by_index, range(len(jobs)), chunksize=chunk)
        )

    def map(self, jobs: Sequence[FarmJob]) -> List[FarmResult]:
        """Run every job; results in submission order."""
        jobs = list(jobs)
        if not jobs:
            return []
        if self.workers == 1 or len(jobs) == 1:
            if self.warmup:
                warm_worker()
            if not self.capture_obs:
                return [run_job(job) for job in jobs]
            # Serial capture goes through the identical flag + run_job
            # path as workers do, restoring the caller's state after.
            previous = (_CAPTURE_OBS, _CAPTURE_SAMPLE_MS)
            set_capture(True, sample_interval_ms=self.sample_interval_ms)
            try:
                return [run_job(job) for job in jobs]
            finally:
                set_capture(previous[0], sample_interval_ms=previous[1])
        # Chunked submission: a few chunks per worker balances scheduling
        # freedom (uneven job durations) against per-submission IPC.
        chunk = self.chunk_size or max(1, len(jobs) // (self.workers * 4))
        if self.persistent:
            return self._map_persistent(jobs, chunk)
        context = multiprocessing.get_context("fork")
        initializer: Optional[Callable] = _init_worker
        with ProcessPoolExecutor(
            max_workers=min(self.workers, len(jobs)),
            mp_context=context,
            initializer=initializer,
            initargs=self._initargs(),
        ) as pool:
            return list(pool.map(run_job, jobs, chunksize=chunk))

    def map_values(self, jobs: Sequence[FarmJob]) -> List[Any]:
        """Like :meth:`map` but returns just each job's value."""
        return [result.value for result in self.map(jobs)]
