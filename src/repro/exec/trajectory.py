"""The bench trajectory: every committed ``BENCH_*.json`` as one curve.

Each PR appends one ``BENCH_*.json`` point; this module turns the set of
committed points into the performance *trajectory* of the stack — the
speedup/CPU-time curve the ROADMAP asks to gate statistically — and
applies a regression gate between consecutive comparable points:

* **Pairing.**  Two points are comparable when they ran the same suite
  with the same worker count; the per-job times of their ``serial_warm``
  mode (best-of-N, cache-warm, single process — the least noisy mode)
  pair by job label.
* **Tolerance band.**  A pair whose relative change is within
  ``tolerance`` (default ±10%) is a tie and casts no vote; shared-host
  noise lives inside the band.
* **Sign test.**  Among the remaining pairs, count slower vs faster.
  Under the null (no real change) each is a fair coin; the one-sided
  binomial tail ``P[X >= slower]`` is computed exactly with
  :func:`math.comb` — no scipy needed.  A transition **regresses** when
  slower votes outnumber faster ones *and* the tail probability clears
  ``alpha`` (default 0.05): with ten suite jobs, at least nine must
  slow down — a single noisy job can never fail a PR, a real across-
  the-board slowdown always will.

The headline best-of-N CPU time (``cpu_s``, immune to scheduler steal;
wall-clock fallback for pre-PR2 points that predate CPU tracking) rides
along in every point and transition for trend reporting.

``build()`` writes ``TRAJECTORY.json``; ``repro trajectory`` renders and
gates it; ``repro bench --compare`` gates a *fresh* bench report against
the newest committed point before it is ever written.
"""

from __future__ import annotations

import json
import math
import subprocess
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence

SCHEMA = "repro.exec.trajectory/1"

#: Relative per-job change treated as a tie (no vote) in the sign test.
DEFAULT_TOLERANCE = 0.10

#: One-sided binomial significance level for the regression verdict.
DEFAULT_ALPHA = 0.05

#: The bench mode whose numbers form the trajectory: cache-warm serial
#: is the least noisy mode (no fork fan-out, no cold compilation).
TRAJECTORY_MODE = "serial_warm"


class TrajectoryError(AssertionError):
    """The trajectory could not be built (no points, unreadable files)."""


class TrajectoryRegressionError(AssertionError):
    """The regression gate flagged a statistically significant slowdown."""


def discover_bench_paths(root: Path = Path(".")) -> List[Path]:
    """Committed ``BENCH_*.json`` files under ``root``.

    Prefers ``git ls-files`` so an uncommitted in-progress bench output
    never becomes its own baseline; falls back to a directory glob
    outside a repository.
    """
    root = Path(root)
    try:
        proc = subprocess.run(
            ["git", "ls-files", "BENCH_*.json"],
            capture_output=True, text=True, timeout=10, check=False, cwd=root,
        )
        if proc.returncode == 0:
            paths = [
                root / line for line in proc.stdout.splitlines() if line.strip()
            ]
            paths = [path for path in paths if path.is_file()]
            if paths:
                return sorted(paths)
    except (OSError, subprocess.SubprocessError):
        pass
    return sorted(root.glob("BENCH_*.json"))


@dataclass
class TrajectoryPoint:
    """One committed bench report, reduced to its trajectory-relevant core."""

    name: str
    timestamp: str
    suite: str
    workers: int
    digest: str
    git_commit: str = ""
    speedups: Dict[str, float] = field(default_factory=dict)
    #: Best-of-N CPU seconds per mode (absent pre-PR2 entries are None).
    cpu_s: Dict[str, Optional[float]] = field(default_factory=dict)
    wall_s: Dict[str, float] = field(default_factory=dict)
    per_job_s: Dict[str, float] = field(default_factory=dict)

    @property
    def headline_s(self) -> float:
        """The point's trajectory number: warm-serial CPU, wall fallback."""
        cpu = self.cpu_s.get(TRAJECTORY_MODE)
        if cpu is not None:
            return cpu
        return self.wall_s.get(TRAJECTORY_MODE, 0.0)

    @property
    def headline_metric(self) -> str:
        return "cpu" if self.cpu_s.get(TRAJECTORY_MODE) is not None else "wall"

    def to_json(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "timestamp": self.timestamp,
            "suite": self.suite,
            "workers": self.workers,
            "digest": self.digest,
            "git_commit": self.git_commit,
            "speedups": dict(self.speedups),
            "cpu_s": dict(self.cpu_s),
            "wall_s": dict(self.wall_s),
            "headline_s": self.headline_s,
            "headline_metric": self.headline_metric,
        }


def point_from_report(report: Dict[str, Any], name: str) -> TrajectoryPoint:
    """Reduce one bench report dict to a trajectory point."""
    modes = report.get("modes", {})
    trajectory_mode = modes.get(TRAJECTORY_MODE, {})
    return TrajectoryPoint(
        name=name,
        timestamp=str(report.get("timestamp", "")),
        suite=str(report.get("suite", "?")),
        workers=int(report.get("workers", 0)),
        digest=str(report.get("digest", "")),
        git_commit=str(report.get("stamp", {}).get("git_commit", "")
                       or report.get("git_commit", "")),
        speedups={k: float(v) for k, v in report.get("speedups", {}).items()},
        cpu_s={
            mode: (float(data["cpu_s"]) if "cpu_s" in data else None)
            for mode, data in modes.items()
        },
        wall_s={
            mode: float(data.get("wall_s", 0.0)) for mode, data in modes.items()
        },
        per_job_s={
            str(label): float(value)
            for label, value in trajectory_mode.get("per_job_s", {}).items()
        },
    )


def load_points(paths: Sequence[Path]) -> List[TrajectoryPoint]:
    """Load and chronologically order bench reports.

    Points sort by their recorded timestamp (ISO-8601 strings sort
    correctly), file name breaking ties — so re-benched files keep their
    true position even when names don't sort chronologically.
    """
    points: List[TrajectoryPoint] = []
    for path in paths:
        try:
            report = json.loads(Path(path).read_text())
        except (OSError, ValueError) as exc:
            raise TrajectoryError(
                f"unreadable bench report {path}: {exc}"
            ) from exc
        points.append(point_from_report(report, Path(path).name))
    points.sort(key=lambda p: (p.timestamp, p.name))
    return points


def newest_bench_path(
    root: Path = Path("."), exclude: Optional[Path] = None
) -> Optional[Path]:
    """The chronologically newest committed bench report (or ``None``).

    ``exclude`` drops a path from consideration — the bench harness
    passes its own output file so a re-run never baselines against the
    report it is about to overwrite.
    """
    paths = discover_bench_paths(root)
    if exclude is not None:
        exclude_resolved = Path(exclude).resolve()
        paths = [p for p in paths if p.resolve() != exclude_resolved]
    if not paths:
        return None
    by_name = {p.name: p for p in paths}
    points = load_points(paths)
    return by_name[points[-1].name]


# -- the sign test -----------------------------------------------------------


def sign_test_pvalue(slower: int, n: int) -> float:
    """Exact one-sided binomial tail ``P[X >= slower]`` for ``X~B(n, ½)``."""
    if n <= 0:
        return 1.0
    tail = sum(math.comb(n, k) for k in range(slower, n + 1))
    return tail / (2.0 ** n)


def compare_points(
    base: TrajectoryPoint,
    new: TrajectoryPoint,
    tolerance: float = DEFAULT_TOLERANCE,
    alpha: float = DEFAULT_ALPHA,
) -> Dict[str, Any]:
    """Gate verdict for one ``base -> new`` transition.

    Returns a JSON-able transition record; ``regressed`` is True when
    the sign test over the paired per-job warm-serial times finds a
    statistically significant slowdown.  Non-comparable transitions
    (different suite or worker count, or no shared job labels) are
    recorded but never vote.
    """
    transition: Dict[str, Any] = {
        "base": base.name,
        "new": new.name,
        "comparable": False,
        "regressed": False,
        "tolerance": tolerance,
        "alpha": alpha,
    }
    if base.suite != new.suite or base.workers != new.workers:
        transition["note"] = (
            f"not comparable: suite {base.suite}->{new.suite}, "
            f"workers {base.workers}->{new.workers}"
        )
        return transition
    shared = sorted(set(base.per_job_s) & set(new.per_job_s))
    if not shared:
        transition["note"] = "no shared job labels"
        return transition

    slower = faster = ties = 0
    changes: Dict[str, float] = {}
    for label in shared:
        before = base.per_job_s[label]
        after = new.per_job_s[label]
        rel = (after - before) / before if before > 0.0 else 0.0
        changes[label] = rel
        if rel > tolerance:
            slower += 1
        elif rel < -tolerance:
            faster += 1
        else:
            ties += 1
    votes = slower + faster
    p_value = sign_test_pvalue(slower, votes)
    regressed = slower > faster and p_value < alpha

    headline_rel = (
        (new.headline_s - base.headline_s) / base.headline_s
        if base.headline_s > 0.0 else 0.0
    )
    transition.update(
        comparable=True,
        pairs=len(shared),
        slower=slower,
        faster=faster,
        ties=ties,
        p_value=p_value,
        regressed=regressed,
        per_job_change=changes,
        headline={
            "metric": (
                "cpu"
                if base.headline_metric == "cpu" and new.headline_metric == "cpu"
                else "wall"
            ),
            "base_s": base.headline_s,
            "new_s": new.headline_s,
            "relative": headline_rel,
        },
    )
    return transition


def build(
    root: Path = Path("."),
    tolerance: float = DEFAULT_TOLERANCE,
    alpha: float = DEFAULT_ALPHA,
    paths: Optional[Sequence[Path]] = None,
) -> Dict[str, Any]:
    """Build the full trajectory report from committed bench files."""
    paths = list(paths) if paths is not None else discover_bench_paths(root)
    if not paths:
        raise TrajectoryError(f"no BENCH_*.json files found under {root}")
    points = load_points(paths)
    transitions = [
        compare_points(base, new, tolerance=tolerance, alpha=alpha)
        for base, new in zip(points, points[1:])
    ]
    return {
        "schema": SCHEMA,
        "mode": TRAJECTORY_MODE,
        "tolerance": tolerance,
        "alpha": alpha,
        "points": [point.to_json() for point in points],
        "transitions": transitions,
        "regressions": [
            t for t in transitions if t.get("regressed")
        ],
    }


def gate(report: Dict[str, Any]) -> None:
    """Raise :class:`TrajectoryRegressionError` on any flagged transition."""
    regressions = report.get("regressions", [])
    if regressions:
        worst = regressions[0]
        raise TrajectoryRegressionError(
            f"bench trajectory regressed at {worst['base']} -> {worst['new']}: "
            f"{worst['slower']}/{worst['pairs']} jobs slower "
            f"(p={worst['p_value']:.4f} < alpha={worst['alpha']}, "
            f"tolerance ±{worst['tolerance'] * 100.0:.0f}%)"
        )


def compare_bench_report(
    report: Dict[str, Any],
    root: Path = Path("."),
    tolerance: float = DEFAULT_TOLERANCE,
    alpha: float = DEFAULT_ALPHA,
    exclude: Optional[Path] = None,
) -> Dict[str, Any]:
    """Gate a freshly run bench report against the newest committed point.

    The ``repro bench --compare`` path: raises
    :class:`TrajectoryRegressionError` if the new report's warm-serial
    per-job times regress significantly versus the newest committed
    ``BENCH_*.json``; returns the transition record otherwise (including
    the not-comparable case, which never fails).
    """
    baseline_path = newest_bench_path(root, exclude=exclude)
    if baseline_path is None:
        return {
            "comparable": False,
            "regressed": False,
            "note": "no committed baseline found",
        }
    base = load_points([baseline_path])[0]
    new = point_from_report(report, "<current run>")
    transition = compare_points(base, new, tolerance=tolerance, alpha=alpha)
    if transition.get("regressed"):
        raise TrajectoryRegressionError(
            f"bench regressed vs {base.name}: "
            f"{transition['slower']}/{transition['pairs']} jobs slower "
            f"(p={transition['p_value']:.4f} < alpha={alpha})"
        )
    return transition


def write_trajectory(
    path: Path, report: Optional[Dict[str, Any]] = None, root: Path = Path(".")
) -> Path:
    """Write ``TRAJECTORY.json``; returns the path."""
    if report is None:
        report = build(root)
    path = Path(path)
    path.write_text(json.dumps(report, indent=2) + "\n")
    return path


def render_trajectory(report: Dict[str, Any]) -> str:
    """Text rendering for ``repro trajectory``."""
    lines: List[str] = [
        f"bench trajectory ({report['mode']}, tolerance "
        f"±{report['tolerance'] * 100.0:.0f}%, alpha {report['alpha']})",
    ]
    header = (
        f"{'point':<18} {'timestamp':<20} {'suite':<6} {'metric':<6} "
        f"{'best s':>8} {'caches x':>9} {'parallel x':>10}  commit"
    )
    lines.append(header)
    lines.append("-" * len(header))
    for point in report["points"]:
        speedups = point.get("speedups", {})
        lines.append(
            f"{point['name']:<18} {point['timestamp']:<20} "
            f"{point['suite']:<6} {point['headline_metric']:<6} "
            f"{point['headline_s']:>8.2f} "
            f"{speedups.get('caches_only', 0.0):>9.2f} "
            f"{speedups.get('parallel', 0.0):>10.2f}  "
            f"{point.get('git_commit', '')[:12]}"
        )
    for transition in report["transitions"]:
        if not transition.get("comparable"):
            lines.append(
                f"  {transition['base']} -> {transition['new']}: "
                f"{transition.get('note', 'not comparable')}"
            )
            continue
        headline = transition["headline"]
        verdict = "REGRESSED" if transition["regressed"] else "ok"
        lines.append(
            f"  {transition['base']} -> {transition['new']}: "
            f"{transition['faster']} faster / {transition['slower']} slower "
            f"/ {transition['ties']} within band; "
            f"headline {headline['base_s']:.2f}s -> {headline['new_s']:.2f}s "
            f"({headline['relative'] * 100.0:+.1f}% {headline['metric']}); "
            f"p={transition['p_value']:.4f} -> {verdict}"
        )
    regressions = report.get("regressions", [])
    lines.append(
        f"regression gate: {'FAIL' if regressions else 'pass'} "
        f"({len(regressions)} flagged transition(s))"
    )
    return "\n".join(lines)
