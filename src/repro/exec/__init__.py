"""Parallel scenario execution: the simulation farm.

Every figure, table, and sweep of this reproduction is a collection of
*independent* simulations — separate :class:`~repro.sim.Environment`
instances that share no state.  This package fans those scenario points
out over a process pool (:class:`ScenarioFarm`), gives every job a
config-hash identity and a deterministic seed (:class:`FarmJob`), and
provides the pinned benchmark-regression harness (``repro bench``,
:mod:`repro.exec.bench`) that tracks the wall-clock trajectory of the
whole stack in ``BENCH_*.json`` files.

Cache control for the hot-path memoization the farm leans on lives in
:mod:`repro.caching` (re-exported here for convenience).
"""

from ..caching import (
    cache_scope,
    caches_enabled,
    clear_all_caches,
    register_cache_clearer,
    set_caches_enabled,
)
from .bench import (
    BenchDigestError,
    BenchOverheadError,
    render_report,
    run_bench,
)
from .farm import (
    FarmJob,
    FarmResult,
    ScenarioFarm,
    canonical_json,
    config_key,
    results_digest,
    seed_for,
)
from .shard import mp_eligible, run_sharded_inproc, run_sharded_mp
from .trajectory import (
    TrajectoryError,
    TrajectoryPoint,
    TrajectoryRegressionError,
    render_trajectory,
    write_trajectory,
)
from .trajectory import build as build_trajectory

__all__ = [
    "BenchDigestError",
    "BenchOverheadError",
    "TrajectoryError",
    "TrajectoryPoint",
    "TrajectoryRegressionError",
    "build_trajectory",
    "render_trajectory",
    "write_trajectory",
    "render_report",
    "run_bench",
    "FarmJob",
    "FarmResult",
    "ScenarioFarm",
    "mp_eligible",
    "run_sharded_inproc",
    "run_sharded_mp",
    "canonical_json",
    "config_key",
    "results_digest",
    "seed_for",
    "cache_scope",
    "caches_enabled",
    "clear_all_caches",
    "register_cache_clearer",
    "set_caches_enabled",
]
