"""The content-addressed on-disk artifact store.

One entry per key, pickled as a ``(key, value)`` tuple into a sharded
path ``<root>/<key[:2]>/<key>.pkl``.  The store is shared by concurrent
farm workers, so every write is **atomic**: the payload goes to a
temporary file in the destination directory and is published with
:func:`os.replace`, which POSIX guarantees readers see either the old
entry or the complete new one — never a torn write.

Reads are **corruption-safe by construction**: any failure to open,
unpickle, or key-verify an entry is treated as a miss (counted under
``corrupt`` and the offending file best-effort deleted), never an
exception — a truncated or garbage entry costs one recompute, not a
crash.  The stored key is verified against the requested one, so even a
sha256 filename collision (or a renamed file) cannot serve wrong data.

Growth is bounded by ``max_bytes`` with LRU-by-mtime eviction: hits
touch the entry's mtime, and every ``evict_check_every`` writes the
store drops oldest-mtime entries until it fits again.
"""

from __future__ import annotations

import os
import pickle
import tempfile
from pathlib import Path
from typing import Any, Dict, Iterator, Optional, Tuple

from ..obs import metrics as _obs_metrics

#: Default size cap: generous for profiles/compiles (hundreds of bytes
#: each) while keeping a shared dev-box cache dir bounded.
DEFAULT_MAX_BYTES = 256 * 1024 * 1024

#: How many writes between eviction scans (a scan stats every entry).
DEFAULT_EVICT_CHECK_EVERY = 64

#: Sentinel distinguishing "miss" from a cached ``None`` value.
MISS = object()


class DiskCache:
    """A persistent, concurrency- and corruption-safe key/value store."""

    def __init__(
        self,
        root: Path,
        max_bytes: int = DEFAULT_MAX_BYTES,
        evict_check_every: int = DEFAULT_EVICT_CHECK_EVERY,
    ):
        if max_bytes < 1:
            raise ValueError(f"max_bytes must be positive, got {max_bytes}")
        self.root = Path(root)
        self.max_bytes = max_bytes
        self.evict_check_every = max(1, evict_check_every)
        self._puts_since_check = 0
        self.hits = 0
        self.misses = 0
        self.corrupt = 0
        self.writes = 0
        self.write_errors = 0
        self.evictions = 0

    def __repr__(self) -> str:
        return f"<DiskCache root={str(self.root)!r} max_bytes={self.max_bytes}>"

    # -- paths -----------------------------------------------------------

    def _path(self, key: str) -> Path:
        return self.root / key[:2] / f"{key}.pkl"

    def _entries(self) -> Iterator[Path]:
        try:
            shards = list(self.root.iterdir())
        except OSError:
            return
        for shard in shards:
            if not shard.is_dir():
                continue
            try:
                yield from (p for p in shard.iterdir() if p.suffix == ".pkl")
            except OSError:
                continue

    # -- read ------------------------------------------------------------

    def get(self, key: str) -> Any:
        """The stored value, or :data:`MISS`.

        Every failure mode — missing file, truncated pickle, garbage
        bytes, key mismatch, unimportable payload class — is a miss.
        """
        path = self._path(key)
        registry = _obs_metrics.REGISTRY
        try:
            with open(path, "rb") as fh:
                stored_key, value = pickle.load(fh)
            if stored_key != key:
                raise ValueError("stored key mismatch")
        except FileNotFoundError:
            self.misses += 1
            if registry is not None:
                registry.counter("cache.disk.misses").inc()
            return MISS
        except Exception:
            # Torn/garbage entry: drop it and recompute silently.
            self.corrupt += 1
            self.misses += 1
            if registry is not None:
                registry.counter("cache.disk.corrupt").inc()
                registry.counter("cache.disk.misses").inc()
            try:
                os.unlink(path)
            except OSError:
                pass
            return MISS
        self.hits += 1
        if registry is not None:
            registry.counter("cache.disk.hits").inc()
        try:
            os.utime(path)  # LRU touch
        except OSError:
            pass
        return value

    # -- write -----------------------------------------------------------

    def put(self, key: str, value: Any) -> bool:
        """Atomically publish ``value`` under ``key``.

        Returns ``False`` (and counts a write error) on any I/O failure
        — a full or read-only disk degrades the cache, never the run.
        """
        path = self._path(key)
        registry = _obs_metrics.REGISTRY
        tmp_name: Optional[str] = None
        try:
            path.parent.mkdir(parents=True, exist_ok=True)
            fd, tmp_name = tempfile.mkstemp(
                dir=str(path.parent), prefix=".tmp-", suffix=".pkl"
            )
            with os.fdopen(fd, "wb") as fh:
                pickle.dump((key, value), fh, protocol=pickle.HIGHEST_PROTOCOL)
            os.replace(tmp_name, path)
            tmp_name = None
        except Exception:
            self.write_errors += 1
            if registry is not None:
                registry.counter("cache.disk.write_errors").inc()
            if tmp_name is not None:
                try:
                    os.unlink(tmp_name)
                except OSError:
                    pass
            return False
        self.writes += 1
        if registry is not None:
            registry.counter("cache.disk.writes").inc()
        self._puts_since_check += 1
        if self._puts_since_check >= self.evict_check_every:
            self._puts_since_check = 0
            self._evict_to_cap()
        return True

    # -- maintenance -----------------------------------------------------

    def _evict_to_cap(self) -> int:
        """Drop oldest-mtime entries until the store fits ``max_bytes``."""
        stats = []
        total = 0
        for path in self._entries():
            try:
                st = path.stat()
            except OSError:
                continue
            stats.append((st.st_mtime, st.st_size, path))
            total += st.st_size
        if total <= self.max_bytes:
            return 0
        evicted = 0
        registry = _obs_metrics.REGISTRY
        for _, size, path in sorted(stats):
            if total <= self.max_bytes:
                break
            try:
                os.unlink(path)
            except OSError:
                continue
            total -= size
            evicted += 1
        self.evictions += evicted
        if registry is not None and evicted:
            registry.counter("cache.disk.evictions").inc(evicted)
        return evicted

    def clear(self) -> int:
        """Delete every entry; returns how many were removed."""
        removed = 0
        for path in list(self._entries()):
            try:
                os.unlink(path)
                removed += 1
            except OSError:
                continue
        return removed

    # -- introspection ---------------------------------------------------

    def entry_count(self) -> int:
        return sum(1 for _ in self._entries())

    def total_bytes(self) -> int:
        total = 0
        for path in self._entries():
            try:
                total += path.stat().st_size
            except OSError:
                continue
        return total

    def stats(self) -> Dict[str, Any]:
        """JSON-able counters plus the current on-disk footprint."""
        return {
            "root": str(self.root),
            "max_bytes": self.max_bytes,
            "entries": self.entry_count(),
            "total_bytes": self.total_bytes(),
            "hits": self.hits,
            "misses": self.misses,
            "corrupt": self.corrupt,
            "writes": self.writes,
            "write_errors": self.write_errors,
            "evictions": self.evictions,
        }
