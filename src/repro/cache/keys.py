"""Content-addressed keys for the persistent artifact cache.

Every key is the sha256 of an *exact* textual encoding of the inputs the
cached computation reads — not a sampled or probabilistic digest.  Two
calls share an entry if and only if the pure function behind the cache
would produce bit-identical output for both, which is what lets the disk
layer promise digest transparency:

* a **compile key** encodes each program block's source instruction mix
  plus the architecture's per-type expansion factors — the only inputs
  :meth:`repro.kernels.compiler.KernelCompiler.compile` reads;
* a **profile key** encodes the compiled per-block mixes, each block's
  trip count evaluated at the *actual* launch context, the launch
  geometry, the kernel's memory footprint, and the full architectural
  parameter set — the closure of
  :meth:`repro.gpu.timing.KernelTimingModel._compute_profile`;
* a **job-result key** wraps a farm job's config-hash identity with the
  repro release version, so upgrading the package invalidates (misses)
  rather than serving stale results.

Floats are encoded with :func:`repr`, which in Python 3 is the shortest
round-trip representation — exact to the bit, so keys never collide on
"close" values and never split on equal ones.

This module imports only leaf modules (``kernels.ir``); everything
heavier is imported lazily inside functions so the cache package can sit
below the compiler/timing layers without cycles.
"""

from __future__ import annotations

import hashlib
from typing import TYPE_CHECKING, Dict, List, Tuple

from ..kernels.ir import ALL_TYPES

if TYPE_CHECKING:  # pragma: no cover - annotation-only imports
    from ..gpu.arch import GPUArchitecture
    from ..kernels.compiler import CompiledKernel
    from ..kernels.ir import InstructionMix, KernelIR
    from ..kernels.launch import LaunchConfig

#: Bump when a cached computation's *formulas* change (timing model,
#: compiler lowering, job wire format): old entries then miss cleanly.
#: 1 -> 2: merged kernels gained the in-flight-H2D dependency, which
#: shifts coalesced-scenario timings.
CACHE_VERSION = "2"

#: Field separator inside key encodings (never appears in float reprs).
_SEP = "\x1f"


def _digest(parts: List[str]) -> str:
    return hashlib.sha256(_SEP.join(parts).encode()).hexdigest()


def _mix_token(mix: "InstructionMix") -> str:
    return ",".join(repr(mix[t]) for t in ALL_TYPES)


def _mapping_token(mapping) -> str:
    return ",".join(repr(float(mapping.get(t, 1.0))) for t in ALL_TYPES)


#: Strong-ref memo of per-architecture hashes.  Architectures are a
#: handful of frozen module-level constants, so the map stays tiny.
_ARCH_HASHES: Dict[int, Tuple["GPUArchitecture", str]] = {}


def arch_config_hash(arch: "GPUArchitecture") -> str:
    """sha256 over every architectural parameter the models consume."""
    cached = _ARCH_HASHES.get(id(arch))
    if cached is not None and cached[0] is arch:
        return cached[1]
    cache = arch.cache
    parts = [
        arch.name,
        str(arch.sm_count),
        str(arch.cores_per_sm),
        str(arch.schedulers_per_sm),
        repr(arch.clock_mhz),
        str(arch.max_threads_per_sm),
        str(arch.max_blocks_per_sm),
        str(arch.warp_size),
        _mapping_token(arch.warp_issue_cycles),
        str(cache.size_kb),
        str(cache.line_bytes),
        str(cache.associativity),
        repr(cache.miss_penalty_cycles),
        repr(arch.memory_bandwidth_gbps),
        repr(arch.copy_bandwidth_gbps),
        repr(arch.copy_latency_ms),
        repr(arch.kernel_launch_overhead_ms),
        repr(arch.static_power_w),
        _mapping_token(arch.instruction_energy_nj),
        repr(arch.dram_access_energy_nj),
        _mapping_token(arch.compile_expansion),
    ]
    value = _digest(parts)
    _ARCH_HASHES[id(arch)] = (arch, value)
    return value


def compile_key(kernel: "KernelIR", arch: "GPUArchitecture") -> str:
    """Key for one kernel lowering.

    Lowering reads only each block's source mix and the architecture's
    expansion factors (trip rules are dynamic, not compiled), so the key
    encodes exactly those — kernels that differ elsewhere (footprint,
    trips) correctly share the entry.
    """
    parts = ["compile", CACHE_VERSION, _mapping_token(arch.compile_expansion)]
    for block in kernel.blocks:
        parts.append(_mix_token(block.mix))
    return _digest(parts)


def profile_key(compiled: "CompiledKernel", launch: "LaunchConfig") -> str:
    """Key for one execution profile.

    Encodes the full closure of the timing model's pure computation: the
    compiled per-block mixes, each block's trip count evaluated at this
    launch's actual context (trip rules may be closures, so they are
    evaluated, not named), the launch geometry, the memory footprint,
    and the complete architecture hash.
    """
    ctx = launch.context()
    footprint = compiled.ir.footprint
    parts = [
        "profile",
        CACHE_VERSION,
        compiled.ir.name,
        arch_config_hash(compiled.arch),
        str(launch.grid_size),
        str(launch.block_size),
        str(launch.elements),
        repr(launch.problem_size),
        str(footprint.bytes_in),
        str(footprint.bytes_out),
        str(footprint.working_set_bytes),
        repr(footprint.locality),
        repr(footprint.coalesced_fraction),
    ]
    for block in compiled.blocks:
        parts.append(_mix_token(block.mix))
        parts.append(repr(block.source.trip_count(ctx)))
    return _digest(parts)


def job_result_key(job_key: str) -> str:
    """Key for one farm job's whole result value.

    ``job_key`` is the job's config-hash identity
    (:func:`repro.obs.export.config_key`); the release version rides
    along so a package upgrade misses instead of serving stale values.
    """
    import repro  # runtime import: package __init__ defines __version__ late

    version = getattr(repro, "__version__", "0")
    return _digest(["job", CACHE_VERSION, version, job_key])
