"""Persistent cross-process artifact cache (the disk layer).

The PR-1 memo caches are in-process: every fresh process — each farm
worker, every CLI invocation — starts cold and re-derives the same
compiled kernels and timing profiles.  This package adds the persistent
tier below them:

* :class:`~repro.cache.disk.DiskCache` — the content-addressed store
  (atomic write-rename, corruption-safe reads, LRU-by-mtime eviction);
* :mod:`~repro.cache.keys` — exact content keys for compiles, profiles,
  and whole farm-job results;
* this module — process-wide configuration: where the store lives,
  whether it is consulted, and the scoped overrides the bench harness
  and tests use.

Resolution order for the two knobs:

* **location** — explicit :func:`configure` root, else the
  ``REPRO_CACHE_DIR`` environment variable, else
  ``~/.cache/repro-sigmavp``;
* **enabled** — explicit :func:`set_disk_enabled` /
  :func:`configure` / :func:`disk_scope` override, else
  ``REPRO_DISK_CACHE`` (``0``/``false``/``off`` disables), else on.

The disk layer is deliberately independent of
:func:`repro.caching.caches_enabled`: that switch measures the cold
*in-memory* path, and the headline of this PR is precisely that a
memory-cold process with a warm disk cache stays fast.  Callers that
need a true seed-path cold run disable both
(``cache_scope(False)`` + ``disk_scope(False)``), which is exactly what
``repro bench``'s standard modes do.
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from pathlib import Path
from typing import Any, Dict, Optional

from .disk import DEFAULT_MAX_BYTES, DiskCache, MISS
from .keys import (
    CACHE_VERSION,
    arch_config_hash,
    compile_key,
    job_result_key,
    profile_key,
)

__all__ = [
    "CACHE_VERSION",
    "DEFAULT_MAX_BYTES",
    "DiskCache",
    "MISS",
    "arch_config_hash",
    "cache_stats",
    "clear_disk",
    "compile_key",
    "configure",
    "default_root",
    "disk_cache",
    "disk_enabled",
    "disk_scope",
    "job_result_key",
    "job_results_enabled",
    "profile_key",
    "set_disk_enabled",
    "set_job_results_enabled",
]

#: Environment overrides (read lazily, so tests may monkeypatch them).
ENV_ROOT = "REPRO_CACHE_DIR"
ENV_ENABLED = "REPRO_DISK_CACHE"

_FALSEY = {"0", "false", "off", "no", ""}

#: The lazily-created store singleton for the current configuration.
_STORE: Optional[DiskCache] = None
#: Explicit overrides; ``None`` means "resolve from the environment".
_ROOT_OVERRIDE: Optional[Path] = None
_ENABLED_OVERRIDE: Optional[bool] = None
_MAX_BYTES_OVERRIDE: Optional[int] = None
#: Whether the whole-job result layer (exec.farm.run_job) is active.
_JOB_RESULTS = True


def default_root() -> Path:
    """Where the store lives absent an explicit :func:`configure`."""
    if _ROOT_OVERRIDE is not None:
        return _ROOT_OVERRIDE
    env = os.environ.get(ENV_ROOT)
    if env:
        return Path(env)
    return Path.home() / ".cache" / "repro-sigmavp"


def disk_enabled() -> bool:
    """Whether the disk layer is consulted at all."""
    if _ENABLED_OVERRIDE is not None:
        return _ENABLED_OVERRIDE
    env = os.environ.get(ENV_ENABLED)
    if env is not None:
        return env.strip().lower() not in _FALSEY
    return True


def set_disk_enabled(enabled: Optional[bool]) -> Optional[bool]:
    """Force the disk layer on/off (``None`` restores env resolution).

    Returns the previous override so scopes can nest.
    """
    global _ENABLED_OVERRIDE
    previous = _ENABLED_OVERRIDE
    _ENABLED_OVERRIDE = None if enabled is None else bool(enabled)
    return previous


def job_results_enabled() -> bool:
    """Whether :func:`repro.exec.farm.run_job` may serve whole results."""
    return _JOB_RESULTS


def set_job_results_enabled(enabled: bool) -> bool:
    global _JOB_RESULTS
    previous = _JOB_RESULTS
    _JOB_RESULTS = bool(enabled)
    return previous


def configure(
    root: Optional[Path] = None,
    max_bytes: Optional[int] = None,
    enabled: Optional[bool] = None,
) -> None:
    """Re-point the process's store (tests, workers, CLI overrides).

    Any argument left ``None`` keeps its current resolution; the store
    singleton is dropped so the next :func:`disk_cache` rebuilds it.
    """
    global _STORE, _ROOT_OVERRIDE, _MAX_BYTES_OVERRIDE, _ENABLED_OVERRIDE
    if root is not None:
        _ROOT_OVERRIDE = Path(root)
    if max_bytes is not None:
        _MAX_BYTES_OVERRIDE = int(max_bytes)
    if enabled is not None:
        _ENABLED_OVERRIDE = bool(enabled)
    _STORE = None


def disk_cache() -> Optional[DiskCache]:
    """The process's store, or ``None`` when the disk layer is off."""
    global _STORE
    if not disk_enabled():
        return None
    if _STORE is None or _STORE.root != default_root():
        _STORE = DiskCache(
            default_root(),
            max_bytes=_MAX_BYTES_OVERRIDE or DEFAULT_MAX_BYTES,
        )
    return _STORE


@contextmanager
def disk_scope(enabled: bool, root: Optional[Path] = None):
    """Temporarily force the disk layer on/off (optionally re-rooted)."""
    global _ROOT_OVERRIDE, _STORE
    previous_enabled = set_disk_enabled(enabled)
    previous_root = _ROOT_OVERRIDE
    if root is not None:
        _ROOT_OVERRIDE = Path(root)
        _STORE = None
    try:
        yield
    finally:
        global _ENABLED_OVERRIDE
        _ENABLED_OVERRIDE = previous_enabled
        if root is not None:
            _ROOT_OVERRIDE = previous_root
            _STORE = None


def clear_disk() -> int:
    """Delete every entry under the configured root; returns the count.

    Works even while the layer is disabled — ``repro cache clear`` must
    be able to clean up a store it is not currently reading.
    """
    store = disk_cache()
    if store is None:
        store = DiskCache(default_root())
    return store.clear()


def cache_stats() -> Dict[str, Any]:
    """JSON-able snapshot of the configured store (for ``repro cache``)."""
    store = disk_cache()
    if store is None:
        store = DiskCache(default_root())
        stats = store.stats()
        stats["enabled"] = False
        return stats
    stats = store.stats()
    stats["enabled"] = True
    return stats
