"""CPU execution models for the host machine and the virtual platforms.

The paper's Table 1 compares six execution routes whose relative costs are
set by three effects:

* the raw scalar speed of the host CPU (one core of the 32-way Xeon);
* QEMU's **binary translation** slowdown when the ARM Versatile PB guest
  runs on that host (the "VP" rows);
* the extra cost of *interpreting* GPU code in software (the "CUDA
  Emul." rows), which is worse under binary translation because the
  interpreter's dispatch loop translates poorly.

The constants below are calibrated so those ratios land where Table 1
puts them (C-on-VP / C-on-CPU = 32.9x; Emul-on-VP / Emul-on-CPU = 41.0x;
Emul-on-CPU / C-on-CPU = 1.11x); the derivations are in DESIGN.md §5.
"""

from __future__ import annotations

from dataclasses import dataclass

#: Effective simple operations per millisecond of one host CPU core
#: running natively-compiled scalar code (a ~3 GHz Xeon core with typical
#: ILP ~ 9.5 GIPS).
HOST_CPU_OPS_PER_MS = 9.5e6

#: QEMU TCG binary-translation slowdown for compiled guest code,
#: calibrated from Table 1: (C on VP) / (C on CPU) = 269874.03 / 8213.09.
BINARY_TRANSLATION_SLOWDOWN = 32.86

#: Extra penalty binary translation adds to *interpreter-style* code such
#: as a GPU emulator, calibrated from Table 1:
#: (374534.34 / 9141.51) / 32.86 = 1.247.
EMULATION_BT_PENALTY = 1.247

#: Guest-side cost of one CUDA runtime call travelling through the GPU
#: user library and the virtual GPU driver (ioctl-style path), in guest
#: CPU operations.  Together with two socket crossings per synchronous
#: call this reproduces SigmaVP's per-iteration Table 1 overhead.
GUEST_DRIVER_CALL_OPS = 1.5e4

#: Host-memory copy bandwidth seen by an emulated cudaMemcpy (GB/s).
CPU_COPY_BANDWIDTH_GBPS = 6.0


@dataclass(frozen=True)
class CPUModel:
    """A scalar CPU execution model.

    ``ops_per_ms`` is the effective throughput for natively-compiled
    code; ``emulation_penalty`` multiplies the cost of interpreter-style
    workloads (software GPU emulation) on this CPU.
    """

    name: str
    ops_per_ms: float
    emulation_penalty: float = 1.0
    copy_bandwidth_gbps: float = CPU_COPY_BANDWIDTH_GBPS

    def __post_init__(self) -> None:
        if self.ops_per_ms <= 0:
            raise ValueError(f"{self.name}: ops_per_ms must be positive")
        if self.emulation_penalty < 1.0:
            raise ValueError(f"{self.name}: emulation_penalty must be >= 1")
        if self.copy_bandwidth_gbps <= 0:
            raise ValueError(f"{self.name}: copy bandwidth must be positive")

    def time_for_ops(self, ops: float) -> float:
        """Milliseconds to execute ``ops`` scalar operations."""
        if ops < 0:
            raise ValueError(f"negative op count {ops}")
        return ops / self.ops_per_ms

    def copy_time_ms(self, num_bytes: int) -> float:
        """Milliseconds for a memory copy of ``num_bytes`` on this CPU."""
        if num_bytes < 0:
            raise ValueError(f"negative byte count {num_bytes}")
        return (num_bytes / 1e9) / self.copy_bandwidth_gbps * 1e3


#: One core of the paper's 32-way Intel Xeon host.
HOST_XEON = CPUModel(name="Intel Xeon (host core)", ops_per_ms=HOST_CPU_OPS_PER_MS)

#: The QEMU ARM Versatile PB guest: host speed divided by the binary
#: translation slowdown, with the extra interpreter penalty for emulation.
QEMU_ARM_VP = CPUModel(
    name="QEMU ARM Versatile PB",
    ops_per_ms=HOST_CPU_OPS_PER_MS / BINARY_TRANSLATION_SLOWDOWN,
    emulation_penalty=EMULATION_BT_PENALTY,
    # Guest memcpys are translated load/store loops: bandwidth scales
    # down with the binary-translation slowdown.
    copy_bandwidth_gbps=CPU_COPY_BANDWIDTH_GBPS / BINARY_TRANSLATION_SLOWDOWN,
)
