"""Virtual platform substrate: guest CPU, CUDA runtime, driver, emulation."""

from .cpu import (
    BINARY_TRANSLATION_SLOWDOWN,
    CPUModel,
    EMULATION_BT_PENALTY,
    GUEST_DRIVER_CALL_OPS,
    HOST_XEON,
    QEMU_ARM_VP,
)
from .cuda_runtime import (
    AsyncResult,
    CudaRuntime,
    EmulationBackend,
    NativeGPUBackend,
    SigmaVPBackend,
)
from .driver import VirtualGPUDriver
from .emulation import EMULATION_OPS, EmulationCost, GPUEmulator
from .opencl_runtime import OpenCLRuntime
from .platform import VirtualPlatform
from .vgpu import VirtualEmbeddedGPU

__all__ = [
    "AsyncResult",
    "BINARY_TRANSLATION_SLOWDOWN",
    "CPUModel",
    "CudaRuntime",
    "EMULATION_BT_PENALTY",
    "EMULATION_OPS",
    "EmulationBackend",
    "EmulationCost",
    "GPUEmulator",
    "GUEST_DRIVER_CALL_OPS",
    "HOST_XEON",
    "NativeGPUBackend",
    "OpenCLRuntime",
    "QEMU_ARM_VP",
    "SigmaVPBackend",
    "VirtualEmbeddedGPU",
    "VirtualGPUDriver",
    "VirtualPlatform",
]
