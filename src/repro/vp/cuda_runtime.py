"""The GPU user library: a CUDA-runtime-style API with pluggable backends.

"The GPU User Library forms a layer that intercepts the requests from
user applications by providing the same APIs of the physical GPUs, e.g.
the CUDA runtime library ... the application binaries that use GPU
instructions do not need any change to run on the virtual GPUs" (paper
Section 2).

Applications are written once against :class:`CudaRuntime` and run
unchanged on three backends — exactly the paper's binary-compatibility
claim, transposed to this reproduction:

* :class:`SigmaVPBackend` — the paper's contribution: requests travel
  through the guest driver and virtual GPU model, across IPC, into the
  host Job Queue, and execute on the (modelled) host GPU;
* :class:`EmulationBackend` — the slow baseline: kernels interpreted in
  software on the local CPU (host CPU or binary-translated VP);
* :class:`NativeGPUBackend` — direct host-GPU execution with no VP in
  the loop (Table 1's reference row).

All API methods are generators: application code drives them with
``yield from`` inside a simulation process.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Dict, List, Optional, Sequence

from ..backend.api import ExecutionBackend
from ..backend.registry import default_backend
from ..core.handles import HandleTable
from ..core.ipc import IPCManager
from ..core.jobs import Job, JobKind
from ..gpu.device import HostGPU
from ..gpu.stream import GPUStream
from ..kernels.functional import REGISTRY, FunctionalRegistry
from ..kernels.ir import KernelIR
from ..kernels.launch import LaunchConfig
from ..sim import Environment
from .cpu import GUEST_DRIVER_CALL_OPS
from .driver import VirtualGPUDriver
from .emulation import GPUEmulator
from .platform import VirtualPlatform
from .vgpu import VirtualEmbeddedGPU

if TYPE_CHECKING:
    import numpy as np

#: Host-side CUDA call overhead for the native backend, in host CPU ops
#: (a ~5 microsecond driver call on the Xeon).
NATIVE_CALL_OPS = 5.0e4


class AsyncResult:
    """Holds a device-to-host result delivered at modelled copy time."""

    def __init__(self):
        self._value: Optional[np.ndarray] = None
        self._ready = False

    def _set(self, value: Any) -> None:
        self._value = value
        self._ready = True

    @property
    def ready(self) -> bool:
        return self._ready

    @property
    def value(self) -> Optional[np.ndarray]:
        if not self._ready:
            raise RuntimeError("result not ready: synchronize the stream first")
        return self._value


class GpuEvent:
    """A cudaEvent: a stream marker that captures a timestamp when the
    work enqueued before it has completed on the device."""

    def __init__(self):
        self._timestamp_ms: Optional[float] = None

    def _record(self, timestamp_ms: float) -> None:
        self._timestamp_ms = timestamp_ms

    @property
    def recorded(self) -> bool:
        return self._timestamp_ms is not None

    @property
    def timestamp_ms(self) -> float:
        if self._timestamp_ms is None:
            raise RuntimeError("event not recorded yet: synchronize first")
        return self._timestamp_ms


def event_elapsed_ms(start: GpuEvent, end: GpuEvent) -> float:
    """cudaEventElapsedTime: milliseconds between two recorded events."""
    return end.timestamp_ms - start.timestamp_ms


class InterceptingRuntime:
    """Shared count-and-delegate plumbing for the API facades.

    The CUDA- and OpenCL-flavoured runtimes intercept every call the
    same way: bump a per-call counter, then delegate to the interception
    backend.  The memcpy pair — the wrappers that used to be duplicated
    nearly verbatim between the two facades — lives here once, so both
    APIs route host<->device data movement through the same backend
    seam.  Subclasses expose the counts dict under their API's
    traditional name (``calls`` / ``commands``).
    """

    def __init__(self, backend: "CudaBackend"):
        self.backend = backend
        self._call_counts: Dict[str, int] = {}

    def __repr__(self) -> str:
        return f"<{type(self).__name__} backend={type(self.backend).__name__}>"

    def _count(self, name: str) -> None:
        self._call_counts[name] = self._call_counts.get(name, 0) + 1

    def _delegate_h2d(self, counter: str, handle: str, data: Any, sync: bool):
        """Count one host-to-device copy and route it to the backend."""
        self._count(counter)
        yield from self.backend.memcpy_h2d(handle, data, sync)

    def _delegate_d2h(
        self, counter: str, handle: str, nbytes: Optional[int], sync: bool
    ):
        """Count one device-to-host copy; returns the result holder."""
        self._count(counter)
        result = yield from self.backend.memcpy_d2h(handle, nbytes, sync)
        return result


class CudaRuntime(InterceptingRuntime):
    """The intercepting user library applications link against."""

    def __init__(self, backend: "CudaBackend"):
        super().__init__(backend)
        #: Per-API-call counts under the CUDA-side name (same dict the
        #: mixin maintains).
        self.calls = self._call_counts

    def malloc(self, nbytes: int):
        """cudaMalloc: returns an opaque device handle."""
        self._count("malloc")
        handle = yield from self.backend.malloc(nbytes)
        return handle

    def free(self, handle: str):
        """cudaFree."""
        self._count("free")
        yield from self.backend.free(handle)

    def memcpy_h2d(self, handle: str, data: "np.ndarray", sync: bool = True):
        """cudaMemcpy(..., cudaMemcpyHostToDevice) or its Async variant."""
        yield from self._delegate_h2d("memcpy_h2d", handle, data, sync)

    def memcpy_d2h(self, handle: str, nbytes: Optional[int] = None, sync: bool = True):
        """cudaMemcpy(..., cudaMemcpyDeviceToHost); returns the result."""
        result = yield from self._delegate_d2h("memcpy_d2h", handle, nbytes, sync)
        return result

    def launch_kernel(
        self,
        kernel: KernelIR,
        launch: LaunchConfig,
        args: Sequence[str] = (),
        out: Optional[str] = None,
        params: Optional[Dict[str, Any]] = None,
        sync: bool = False,
    ):
        """The <<<grid, block>>> launch; async by default, as in CUDA."""
        self._count("launch_kernel")
        yield from self.backend.launch_kernel(
            kernel, launch, tuple(args), out, dict(params or {}), sync
        )

    def synchronize(self):
        """cudaDeviceSynchronize: wait for all outstanding work."""
        self._count("synchronize")
        yield from self.backend.synchronize()

    def event_create(self):
        """cudaEventCreate (host-side only, no guest cost)."""
        self._count("event_create")
        return GpuEvent()
        yield  # pragma: no cover - generator form for API uniformity

    def event_record(self, event: GpuEvent):
        """cudaEventRecord: mark this point of the stream."""
        self._count("event_record")
        yield from self.backend.event_record(event)

    def event_synchronize(self, event: GpuEvent):
        """cudaEventSynchronize: wait until the marker has been reached."""
        self._count("event_synchronize")
        yield from self.backend.event_synchronize(event)

    def cpu_work(self, ops: float):
        """Non-CUDA application work (file I/O, OpenGL, host compute)."""
        self._count("cpu_work")
        yield from self.backend.cpu_work(ops)


class CudaBackend:
    """Interface the runtime delegates to (duck-typed; see subclasses)."""


class SigmaVPBackend(CudaBackend):
    """Forward every request through the SigmaVP pipeline.

    Guest path: user library -> virtual GPU driver -> virtual embedded
    GPU -> IPC -> host Job Queue.  Synchronous calls wait for the host's
    completion notification (one more IPC message); asynchronous calls
    return immediately and are settled by ``synchronize``.
    """

    def __init__(
        self,
        env: Environment,
        vp: VirtualPlatform,
        ipc: IPCManager,
        handles: HandleTable,
        exec_backend: Optional[ExecutionBackend] = None,
    ):
        self.env = env
        self.vp = vp
        self.ipc = ipc
        self.handles = handles
        # Guest-side host-data canonicalization (transfer sizing) uses
        # the same execution backend the host dispatcher runs on.
        self.exec_backend = (
            exec_backend if exec_backend is not None else default_backend()
        )
        self.vgpu = VirtualEmbeddedGPU(vp, ipc)
        self.driver = VirtualGPUDriver(vp, self.vgpu)
        self._outstanding: List[Job] = []

    def _job(self, kind: JobKind, sync: bool, **fields) -> Job:
        return Job(
            vp=self.vp.name,
            seq=self.vgpu.next_seq(),
            kind=kind,
            completion=self.env.event(),
            sync=sync,
            **fields,
        )

    def malloc(self, nbytes: int):
        if nbytes <= 0:
            raise ValueError(f"allocation size must be positive, got {nbytes}")
        handle = self.handles.new_handle(self.vp.name)
        job = self._job(JobKind.MALLOC, sync=False, size=nbytes, handle=handle)
        yield from self.driver.submit(job)
        # Per-VP ordering guarantees the binding exists before first use,
        # so the guest need not block on the round trip.
        self._outstanding.append(job)
        return handle

    def free(self, handle: str):
        job = self._job(JobKind.FREE, sync=False, handle=handle)
        yield from self.driver.submit(job)
        self._outstanding.append(job)

    def memcpy_h2d(self, handle: str, data: "np.ndarray", sync: bool):
        data = self.exec_backend.asarray(data)
        job = self._job(
            JobKind.COPY_H2D,
            sync=sync,
            handle=handle,
            nbytes=int(data.nbytes),
            host_data=data,
        )
        yield from self.driver.submit(job, payload_bytes=int(data.nbytes))
        if sync:
            yield job.completion
            yield from self.ipc.respond()
        else:
            self._outstanding.append(job)

    def memcpy_d2h(self, handle: str, nbytes: Optional[int], sync: bool):
        result = AsyncResult()
        size = int(nbytes) if nbytes is not None else 0
        job = self._job(
            JobKind.COPY_D2H,
            sync=sync,
            handle=handle,
            nbytes=size,
            sink=result._set,
        )
        if job.nbytes == 0 and handle in self.handles:
            job.nbytes = self.handles.buffer(handle).size
        yield from self.driver.submit(job)
        if sync:
            yield job.completion
            yield from self.ipc.respond(payload_bytes=job.nbytes)
        else:
            self._outstanding.append(job)
        return result

    def launch_kernel(self, kernel, launch, args, out, params, sync):
        job = self._job(
            JobKind.KERNEL,
            sync=sync,
            kernel=kernel,
            launch=launch,
            arg_handles=args,
            out_handle=out,
            params=params,
        )
        yield from self.driver.submit(job)
        if sync:
            yield job.completion
            yield from self.ipc.respond()
        else:
            self._outstanding.append(job)

    def synchronize(self):
        if self._outstanding:
            # Per-VP order means the last outstanding job completes last.
            last = self._outstanding[-1]
            if not last.completion.processed:
                yield last.completion
            self._outstanding.clear()
            yield from self.ipc.respond()

    def event_record(self, event):
        """Enqueue a record marker; per-VP order timestamps it after all
        previously submitted work."""
        job = self._job(JobKind.EVENT, sync=False, sink=event._record)
        yield from self.driver.submit(job)
        self._outstanding.append(job)

    def event_synchronize(self, event):
        if not event.recorded and self._outstanding:
            last = self._outstanding[-1]
            if not last.completion.processed:
                yield last.completion
            yield from self.ipc.respond()

    def cpu_work(self, ops: float):
        yield from self.vp.execute_ops(ops)


class EmulationBackend(CudaBackend):
    """Interpret GPU code in software on the local CPU (the slow path)."""

    def __init__(
        self,
        env: Environment,
        platform: VirtualPlatform,
        emulator: Optional[GPUEmulator] = None,
        registry: FunctionalRegistry = REGISTRY,
        exec_backend: Optional[ExecutionBackend] = None,
    ):
        self.env = env
        self.platform = platform
        self.emulator = emulator or GPUEmulator(platform.cpu)
        self.registry = registry
        self.exec_backend = (
            exec_backend if exec_backend is not None else default_backend(registry)
        )
        self._arrays: Dict[str, Optional["np.ndarray"]] = {}
        self._counter = 0

    def malloc(self, nbytes: int):
        if nbytes <= 0:
            raise ValueError(f"allocation size must be positive, got {nbytes}")
        yield from self.platform.execute_ops(GUEST_DRIVER_CALL_OPS / 10.0)
        handle = f"{self.platform.name}/emu{self._counter}"
        self._counter += 1
        self._arrays[handle] = None
        return handle

    def free(self, handle: str):
        yield from self.platform.execute_ops(GUEST_DRIVER_CALL_OPS / 10.0)
        self._arrays.pop(handle, None)

    def memcpy_h2d(self, handle: str, data: "np.ndarray", sync: bool):
        data = self.exec_backend.asarray(data)
        yield from self.platform.execute_ms(
            self.platform.cpu.copy_time_ms(int(data.nbytes))
        )
        self._require(handle)
        # Copy-free device "transfer": applications never mutate a
        # submitted array in place (kernels rebind, they do not write
        # through), so the zero-copy backend's read-only view is
        # bit-identical to the old defensive copy — per-launch
        # allocation eliminated, and the cleared writeable flag makes
        # any violation loud.
        self._arrays[handle] = self.exec_backend.h2d(data)

    def memcpy_d2h(self, handle: str, nbytes: Optional[int], sync: bool):
        array = self._arrays.get(handle)
        size = int(nbytes) if nbytes is not None else (
            int(array.nbytes) if array is not None else 0
        )
        yield from self.platform.execute_ms(self.platform.cpu.copy_time_ms(size))
        result = AsyncResult()
        result._set(self.exec_backend.d2h(self._arrays[handle]))
        return result

    def launch_kernel(self, kernel, launch, args, out, params, sync):
        cost = self.emulator.kernel_cost(kernel, launch)
        yield from self.platform.execute_ms(cost.total_ms)
        if out is not None:
            inputs = [self._arrays[h] for h in args]
            result = self.exec_backend.launch(kernel.signature, inputs, params)
            if result is not None:
                self._arrays[out] = result

    def synchronize(self):
        # The emulator is synchronous: nothing is ever outstanding.
        return
        yield  # pragma: no cover - makes this a generator

    def event_record(self, event):
        event._record(self.env.now)
        return
        yield  # pragma: no cover - generator form

    def event_synchronize(self, event):
        return
        yield  # pragma: no cover - generator form

    def cpu_work(self, ops: float):
        yield from self.platform.execute_ops(ops)

    def _require(self, handle: str) -> None:
        if handle not in self._arrays:
            raise KeyError(f"unknown emulated device handle {handle!r}")


class NativeGPUBackend(CudaBackend):
    """Run directly on the host GPU, no VP in the loop (Table 1 row 1)."""

    def __init__(
        self,
        env: Environment,
        gpu: HostGPU,
        host: VirtualPlatform,
        stream: Optional[GPUStream] = None,
        registry: FunctionalRegistry = REGISTRY,
        exec_backend: Optional[ExecutionBackend] = None,
    ):
        self.env = env
        self.gpu = gpu
        self.host = host
        self.stream = stream or gpu.create_stream(f"native/{host.name}")
        self.registry = registry
        self.exec_backend = (
            exec_backend if exec_backend is not None else default_backend(registry)
        )
        self._buffers: Dict[str, Any] = {}
        self._counter = 0

    def malloc(self, nbytes: int):
        yield from self.host.execute_ops(NATIVE_CALL_OPS)
        handle = f"{self.host.name}/dev{self._counter}"
        self._counter += 1
        self._buffers[handle] = self.gpu.malloc(nbytes, owner=self.host.name)
        return handle

    def free(self, handle: str):
        yield from self.host.execute_ops(NATIVE_CALL_OPS)
        self.gpu.free(self._buffers.pop(handle))

    def memcpy_h2d(self, handle: str, data: "np.ndarray", sync: bool):
        yield from self.host.execute_ops(NATIVE_CALL_OPS)
        event = self.gpu.memcpy_h2d(
            self.stream, self._buffers[handle], self.exec_backend.asarray(data)
        )
        if sync:
            yield event

    def memcpy_d2h(self, handle: str, nbytes: Optional[int], sync: bool):
        yield from self.host.execute_ops(NATIVE_CALL_OPS)
        result = AsyncResult()
        event = self.gpu.memcpy_d2h(
            self.stream, self._buffers[handle], nbytes=nbytes, sink=result._set
        )
        if sync:
            yield event
        return result

    def launch_kernel(self, kernel, launch, args, out, params, sync):
        yield from self.host.execute_ops(NATIVE_CALL_OPS)

        def apply() -> None:
            if out is None:
                return
            inputs = [self._buffers[h].payload for h in args]
            result = self.exec_backend.launch(kernel.signature, inputs, params)
            if result is not None:
                self._buffers[out].payload = result

        event = self.gpu.launch_kernel(self.stream, kernel, launch, apply=apply)
        if sync:
            yield event

    def event_record(self, event):
        self.stream.enqueue(
            self.gpu.compute_engine,
            label="EVENT",
            duration_ms=0.0,
            on_complete=lambda: event._record(self.env.now),
        )
        return
        yield  # pragma: no cover - generator form

    def event_synchronize(self, event):
        yield self.stream.synchronize()

    def synchronize(self):
        yield self.stream.synchronize()

    def cpu_work(self, ops: float):
        yield from self.host.execute_ops(ops)
