"""The virtual embedded GPU hardware model (guest side).

"The Virtual Embedded GPU Hardware Model pushes the requested kernels
into the Job Queue in the host machine through the IPC manager" (paper
Section 2).  It is the last guest-side stop: it stamps each request with
the VP's sequence number (the per-VP partial order the Re-scheduler must
preserve) and ships it across the IPC boundary.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - annotation-only imports
    from ..core.ipc import IPCManager
    from ..core.jobs import Job

from .platform import VirtualPlatform


class VirtualEmbeddedGPU:
    """The guest-visible GPU device; forwards work to the host."""

    def __init__(self, vp: VirtualPlatform, ipc: "IPCManager"):
        self.vp = vp
        self.ipc = ipc
        self._seq = 0
        self.jobs_pushed = 0

    def __repr__(self) -> str:
        return f"<VirtualEmbeddedGPU vp={self.vp.name} pushed={self.jobs_pushed}>"

    def next_seq(self) -> int:
        """The next per-VP sequence number (the partial-order stamp)."""
        seq = self._seq
        self._seq += 1
        return seq

    def push(self, job: "Job", payload_bytes: int = 0):
        """Generator: send ``job`` to the host Job Queue over IPC."""
        self.jobs_pushed += 1
        yield from self.ipc.submit(job, payload_bytes=payload_bytes)
