"""An OpenCL-flavoured runtime facade.

"Our proposed techniques can potentially be applied to various GPU
programming platforms including OpenCL and OpenACC" (paper Section 5).
This module delivers that extension: the same interception backends that
serve the CUDA runtime also serve an OpenCL-style API, so applications
written against command queues and ND-ranges run through SigmaVP (or the
emulator, or the native device) unchanged.

The mapping is the standard one:

* ``clCreateBuffer``            -> device malloc
* ``clEnqueueWriteBuffer``      -> host-to-device copy
* ``clEnqueueReadBuffer``       -> device-to-host copy
* ``clEnqueueNDRangeKernel``    -> kernel launch; the work-group size is
  the CUDA block size, and the grid covers the global work size
* ``clFinish``                  -> synchronize

Methods are generators, like the CUDA runtime's: drive them with
``yield from`` inside a simulation process.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Dict, Optional, Sequence

from ..kernels.ir import KernelIR, ceil_div
from ..kernels.launch import LaunchConfig
from .cuda_runtime import AsyncResult, CudaBackend, InterceptingRuntime

if TYPE_CHECKING:
    import numpy as np


class OpenCLRuntime(InterceptingRuntime):
    """OpenCL-style command-queue API over any interception backend.

    The count-and-delegate memcpy plumbing is shared with the CUDA
    facade via :class:`~repro.vp.cuda_runtime.InterceptingRuntime` —
    both APIs route through the same backend seam.
    """

    def __init__(self, backend: CudaBackend):
        super().__init__(backend)
        #: Per-command counts under the OpenCL-side name (same dict the
        #: mixin maintains).
        self.commands = self._call_counts

    # -- memory objects ---------------------------------------------------

    def create_buffer(self, nbytes: int):
        """clCreateBuffer: returns an opaque memory object handle."""
        self._count("clCreateBuffer")
        handle = yield from self.backend.malloc(nbytes)
        return handle

    def release_mem_object(self, handle: str):
        """clReleaseMemObject."""
        self._count("clReleaseMemObject")
        yield from self.backend.free(handle)

    # -- command queue ------------------------------------------------------

    def enqueue_write_buffer(self, handle: str, data: "np.ndarray",
                             blocking: bool = True):
        """clEnqueueWriteBuffer."""
        yield from self._delegate_h2d("clEnqueueWriteBuffer", handle, data, blocking)

    def enqueue_read_buffer(self, handle: str, nbytes: Optional[int] = None,
                            blocking: bool = True):
        """clEnqueueReadBuffer: returns the result holder."""
        result = yield from self._delegate_d2h(
            "clEnqueueReadBuffer", handle, nbytes, blocking
        )
        return result

    def enqueue_nd_range_kernel(
        self,
        kernel: KernelIR,
        global_size: int,
        local_size: int,
        args: Sequence[str] = (),
        out: Optional[str] = None,
        params: Optional[Dict[str, Any]] = None,
    ):
        """clEnqueueNDRangeKernel: asynchronous, as in OpenCL.

        ``global_size`` work items in work groups of ``local_size``; the
        launch grid covers the ND-range exactly like a CUDA grid covers
        its data.
        """
        self._count("clEnqueueNDRangeKernel")
        if global_size <= 0 or local_size <= 0:
            raise ValueError("global and local sizes must be positive")
        if local_size > global_size:
            raise ValueError("local size cannot exceed the global size")
        launch = LaunchConfig(
            grid_size=ceil_div(global_size, local_size),
            block_size=local_size,
            elements=int(global_size * kernel.elements_per_thread),
        )
        yield from self.backend.launch_kernel(
            kernel, launch, tuple(args), out, dict(params or {}), False
        )

    def finish(self):
        """clFinish: block until every enqueued command completed."""
        self._count("clFinish")
        yield from self.backend.synchronize()
