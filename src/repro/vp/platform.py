"""The virtual platform: a simulated embedded system instance.

Each :class:`VirtualPlatform` models one QEMU ARM Versatile PB instance:
a binary-translated guest CPU that runs the application's non-GPU code
and the guest side of every CUDA call.  The platform exposes the
stop/resume control the paper's VP-control submodule uses for
synchronous Kernel Interleaving: while stopped, the guest makes no
progress (its pending guest-CPU work resumes where it left off).
"""

from __future__ import annotations

from typing import Callable, List, Optional

from ..sim import Environment, Event, Process
from .cpu import CPUModel, QEMU_ARM_VP


class VirtualPlatform:
    """One simulated embedded device running on the host."""

    def __init__(
        self,
        env: Environment,
        name: str,
        cpu: CPUModel = QEMU_ARM_VP,
    ):
        self.env = env
        self.name = name
        self.cpu = cpu
        self._paused = False
        self._resume_event: Optional[Event] = None
        self._processes: List[Process] = []
        self.started_at_ms: Optional[float] = None
        self.finished_at_ms: Optional[float] = None
        self.guest_cpu_ms = 0.0
        self.stop_count = 0

    def __repr__(self) -> str:
        state = "paused" if self._paused else "running"
        return f"<VirtualPlatform {self.name} {state}>"

    # -- VP control (stop / resume) ------------------------------------------

    @property
    def paused(self) -> bool:
        return self._paused

    def stop(self) -> None:
        """Freeze guest progress (paper Fig. 4b: 'Stop')."""
        if not self._paused:
            self._paused = True
            self.stop_count += 1
            self._resume_event = self.env.event()

    def resume(self) -> None:
        """Let the guest continue (paper Fig. 4b: 'Resume')."""
        if self._paused:
            self._paused = False
            event, self._resume_event = self._resume_event, None
            event.succeed()

    def gate(self):
        """Generator: wait out any stop/resume pauses."""
        while self._paused:
            yield self._resume_event

    # -- guest CPU execution ---------------------------------------------------

    def execute_ops(self, ops: float):
        """Generator: run ``ops`` guest operations on the VP's CPU.

        Honors stop/resume: a pause before the work begins delays it.
        """
        yield from self.gate()
        duration = self.cpu.time_for_ops(ops)
        self.guest_cpu_ms += duration
        yield self.env.timeout(duration)

    def execute_ms(self, duration_ms: float):
        """Generator: occupy the guest CPU for a precomputed duration."""
        if duration_ms < 0:
            raise ValueError(f"negative duration {duration_ms}")
        yield from self.gate()
        self.guest_cpu_ms += duration_ms
        yield self.env.timeout(duration_ms)

    # -- application hosting ------------------------------------------------------

    def run_app(self, app: Callable[[], object]) -> Process:
        """Spawn an application generator on this platform.

        ``app`` is a zero-argument callable returning a generator (the
        application's main, already bound to its CUDA runtime).
        """
        def wrapper():
            if self.started_at_ms is None:
                self.started_at_ms = self.env.now
            result = yield from app()
            self.finished_at_ms = self.env.now
            return result

        process = self.env.process(wrapper(), label=f"vp:{self.name}/app")
        self._processes.append(process)
        return process

    @property
    def processes(self) -> List[Process]:
        return list(self._processes)

    @property
    def elapsed_ms(self) -> Optional[float]:
        if self.started_at_ms is None or self.finished_at_ms is None:
            return None
        return self.finished_at_ms - self.started_at_ms
