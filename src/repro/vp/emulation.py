"""Software GPU emulation — the slow baseline SigmaVP replaces.

"In order to run the GPU code, many simulators ... need to include GPU
emulation capabilities (e.g. the Mesa software backend).  The presence of
an additional software layer on top of the VP significantly deteriorates
the overall execution speed" (paper Section 1).

The emulator interprets every GPU thread-instruction serially on a CPU
model.  Interpretation cost is *instruction-type dependent*: floating-
point GPU instructions are far more expensive to emulate (QEMU-style
softfloat paths, NaN/rounding bookkeeping) than integer or control
instructions.  This is why the paper observes that "applications that
use less floating-point instructions ... have relatively lower speedups"
(Section 5) — their emulation baseline is comparatively faster.

Run on the host CPU this reproduces Table 1's ~53x slowdown for the
FP64-heavy matrixMul; run inside the binary-translated VP it reproduces
the ~2193x slowdown.
"""

from __future__ import annotations

from dataclasses import dataclass
from types import MappingProxyType
from typing import Mapping, Optional

from ..gpu.arch import GPUArchitecture, QUADRO_4000
from ..kernels.compiler import KernelCompiler
from ..kernels.ir import ALL_TYPES, InstructionType, KernelIR
from ..kernels.launch import LaunchConfig
from .cpu import CPUModel

#: CPU operations to interpret one GPU thread-instruction, per type.
#: Calibrated so the FP64-heavy matrixMul of Table 1 lands at the paper's
#: 53.5x CPU-emulation slowdown; FP costs dominate because software
#: emulators take the softfloat path for them.
EMULATION_OPS: Mapping[InstructionType, float] = MappingProxyType(
    {
        InstructionType.FP32: 6.3,
        InstructionType.FP64: 6.3,
        InstructionType.INT: 2.0,
        InstructionType.BIT: 2.0,
        InstructionType.BRANCH: 2.0,
        InstructionType.LOAD: 3.0,
        InstructionType.STORE: 3.0,
    }
)

#: Fixed interpreter cost per emulated kernel launch (state setup,
#: grid/block bookkeeping), in CPU operations.
EMULATED_LAUNCH_OPS = 2.0e5


@dataclass(frozen=True)
class EmulationCost:
    """Breakdown of an emulated kernel launch's cost."""

    instructions: float
    interpret_ms: float
    launch_ms: float

    @property
    def total_ms(self) -> float:
        return self.interpret_ms + self.launch_ms


class GPUEmulator:
    """Interprets GPU kernels on a CPU model, one thread at a time.

    ``isa_arch`` selects the instruction set the emulator interprets; the
    host-GPU ISA (Quadro 4000 by default) is what a CUDA emulator built
    against the host toolchain would see.
    """

    def __init__(
        self,
        cpu: CPUModel,
        isa_arch: GPUArchitecture = QUADRO_4000,
        compiler: Optional[KernelCompiler] = None,
    ):
        self.cpu = cpu
        self.isa_arch = isa_arch
        self.compiler = compiler or KernelCompiler()

    def __repr__(self) -> str:
        return f"GPUEmulator(cpu={self.cpu.name!r}, isa={self.isa_arch.name!r})"

    def interpretation_ops(self, kernel: KernelIR, launch: LaunchConfig) -> float:
        """CPU operations to interpret one launch's dynamic instructions."""
        compiled = self.compiler.compile(kernel, self.isa_arch)
        sigma = compiled.sigma(launch)
        return sum(sigma[itype] * EMULATION_OPS[itype] for itype in ALL_TYPES)

    def kernel_cost(self, kernel: KernelIR, launch: LaunchConfig) -> EmulationCost:
        """Cost of emulating one kernel launch on this CPU."""
        compiled = self.compiler.compile(kernel, self.isa_arch)
        instructions = compiled.sigma_total(launch)
        ops = self.interpretation_ops(kernel, launch) * self.cpu.emulation_penalty
        interpret_ms = self.cpu.time_for_ops(ops)
        launch_ms = self.cpu.time_for_ops(EMULATED_LAUNCH_OPS)
        return EmulationCost(
            instructions=instructions,
            interpret_ms=interpret_ms,
            launch_ms=launch_ms,
        )

    def kernel_time_ms(self, kernel: KernelIR, launch: LaunchConfig) -> float:
        return self.kernel_cost(kernel, launch).total_ms

    def copy_time_ms(self, num_bytes: int) -> float:
        """An emulated cudaMemcpy is a plain memory copy on this CPU."""
        return self.cpu.copy_time_ms(num_bytes)
