"""The virtual GPU device driver (guest side).

"This is a driver for the guest operating system that works as an
interface between the GPU user library and the virtual GPU hardware
model" (paper Section 2).  Every call through the driver costs guest CPU
time — an ioctl-style kernel crossing that, under binary translation,
becomes a measurable part of SigmaVP's per-call overhead.
"""

from __future__ import annotations

from .cpu import GUEST_DRIVER_CALL_OPS
from .platform import VirtualPlatform
from .vgpu import VirtualEmbeddedGPU

#: Guest ops spent in the GPU user library per intercepted call
#: (argument marshalling before the driver crossing).
USER_LIBRARY_CALL_OPS = GUEST_DRIVER_CALL_OPS / 3.0

#: Guest ops spent inside the driver per call (the kernel crossing).
DRIVER_CALL_OPS = GUEST_DRIVER_CALL_OPS - USER_LIBRARY_CALL_OPS


class VirtualGPUDriver:
    """Guest OS driver routing user-library requests to the virtual GPU."""

    def __init__(self, vp: VirtualPlatform, vgpu: VirtualEmbeddedGPU):
        self.vp = vp
        self.vgpu = vgpu
        self.calls = 0

    def __repr__(self) -> str:
        return f"<VirtualGPUDriver vp={self.vp.name} calls={self.calls}>"

    def submit(self, job, payload_bytes: int = 0):
        """Generator: carry one request from the library to the device.

        Charges the guest-side path cost (user library + driver) on the
        VP's CPU, then hands the request to the virtual GPU hardware
        model, which pushes it into the host Job Queue over IPC.
        """
        self.calls += 1
        yield from self.vp.execute_ops(USER_LIBRARY_CALL_OPS + DRIVER_CALL_OPS)
        yield from self.vgpu.push(job, payload_bytes=payload_bytes)
