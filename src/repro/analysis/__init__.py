"""Experiment regeneration: the paper's tables and figures as code."""

from .accounting import (
    JobLatency,
    VPAccount,
    job_latencies,
    kind_breakdown,
    render_accounting,
    vp_accounts,
)
from .critpath import (
    CritPathReport,
    DeviceAttribution,
    attribute,
    render_critpath,
)
from .figures import (
    CoalescingPoint,
    EstimationPoint,
    FIG11_APPS,
    InterleavingPoint,
    PAPER_FIG10A,
    PowerPoint,
    StaircasePoint,
    SuitePoint,
    fig9a_series,
    fig9b_series,
    fig10a_series,
    fig10b_series,
    fig11_series,
    fig12_series,
    fig13_series,
)
from .report_builder import build_report, write_report
from .reporting import render_series, render_table
from .sweeps import (
    DesignPoint,
    derive_architecture,
    pareto_front,
    sweep_suite,
    sweep_targets,
    tegra_scaling_candidates,
)
from .tables import PAPER_TABLE1, Table1Row, build_table1, render_table1
from .timeline import Timeline, collect_timeline, render_gantt
from .validation import ValidationResult, validate_suite, validate_workload

__all__ = [
    "CoalescingPoint",
    "EstimationPoint",
    "FIG11_APPS",
    "InterleavingPoint",
    "PAPER_FIG10A",
    "PAPER_TABLE1",
    "PowerPoint",
    "StaircasePoint",
    "SuitePoint",
    "Table1Row",
    "Timeline",
    "DesignPoint",
    "ValidationResult",
    "JobLatency",
    "VPAccount",
    "CritPathReport",
    "DeviceAttribution",
    "attribute",
    "render_critpath",
    "build_report",
    "job_latencies",
    "kind_breakdown",
    "render_accounting",
    "vp_accounts",
    "build_table1",
    "collect_timeline",
    "derive_architecture",
    "pareto_front",
    "render_gantt",
    "sweep_suite",
    "sweep_targets",
    "tegra_scaling_candidates",
    "validate_suite",
    "validate_workload",
    "write_report",
    "fig9a_series",
    "fig9b_series",
    "fig10a_series",
    "fig10b_series",
    "fig11_series",
    "fig12_series",
    "fig13_series",
    "render_series",
    "render_table",
    "render_table1",
]
