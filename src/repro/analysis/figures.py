"""Regeneration of the paper's Figures 9-13.

Each ``fig*_series`` function runs the corresponding experiment through
the full simulation stack and returns the measured series next to the
analytical/expected values the paper plots, ready for
:func:`repro.analysis.reporting.render_series`.

Every point of a figure is an independent simulation, so each series
fans its points out over the :class:`~repro.exec.ScenarioFarm`: pass
``workers=N`` to run N points concurrently in worker processes.  The
default ``workers=1`` runs the identical job functions serially
in-process, so parallel and serial series are bit-identical.  Custom
(non-catalogued) transports cannot be named across a process boundary;
those series fall back to in-process execution.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..core.ipc import IPCTransport, SHARED_MEMORY
from ..exec import jobs as farm_jobs
from ..exec.farm import ScenarioFarm
from ..gpu.arch import GPUArchitecture, GRID_K520, QUADRO_4000, TEGRA_K1
from ..gpu.timing import KernelTimingModel
from ..kernels.compiler import KernelCompiler
from ..kernels.launch import LaunchConfig
from ..workloads.catalog import ESTIMATION_APPS
from ..workloads.linalg import make_vectoradd_kernel


def _transport_workers(transport: IPCTransport, workers: int) -> int:
    """Effective worker count for a series over ``transport``.

    Catalogued transports are named across the process boundary; a
    custom one is registered for in-process resolution and forces the
    serial path (it cannot be reconstructed by name in a worker).
    """
    if transport.name not in farm_jobs.TRANSPORTS:
        farm_jobs.TRANSPORTS[transport.name] = transport
        return 1
    return workers


# ---------------------------------------------------------------------------
# Fig. 9: Kernel Interleaving
# ---------------------------------------------------------------------------


@dataclass
class InterleavingPoint:
    """One point of Fig. 9: measured vs expected speedup."""

    x: float
    measured: float
    expected: float


def fig9a_series(
    kernel_lengths_ms: Sequence[float] = (1.0, 4.0, 8.0, 13.44, 20.0, 40.0, 60.0, 80.0, 100.0),
    t_copy_ms: float = 13.44,
    transport: IPCTransport = SHARED_MEMORY,
    workers: int = 1,
) -> List[InterleavingPoint]:
    """Fig. 9(a): two interleaved programs, kernel length swept.

    The copy time is fixed at the paper's 13.44 ms; speedup peaks where
    the kernel matches it (latency hiding).
    """
    farm = ScenarioFarm(workers=_transport_workers(transport, workers))
    values = farm_jobs.fanout(
        farm,
        "repro.exec.jobs:fig9a_point",
        [
            {"t_kernel_ms": tk, "t_copy_ms": t_copy_ms,
             "transport": transport.name}
            for tk in kernel_lengths_ms
        ],
        label="fig9a",
    )
    return [InterleavingPoint(**value) for value in values]


def fig9b_series(
    program_counts: Sequence[int] = (2, 4, 8, 16, 32),
    t_phase_ms: float = 4.0,
    transport: IPCTransport = SHARED_MEMORY,
    workers: int = 1,
) -> List[InterleavingPoint]:
    """Fig. 9(b): N interleaved programs with Tk = Tm; expected = 3N/(N+2)."""
    farm = ScenarioFarm(workers=_transport_workers(transport, workers))
    values = farm_jobs.fanout(
        farm,
        "repro.exec.jobs:fig9b_point",
        [
            {"n_programs": n, "t_phase_ms": t_phase_ms,
             "transport": transport.name}
            for n in program_counts
        ],
        label="fig9b",
    )
    return [InterleavingPoint(**value) for value in values]


# ---------------------------------------------------------------------------
# Fig. 10: Kernel Coalescing
# ---------------------------------------------------------------------------


@dataclass
class CoalescingPoint:
    """One point of Fig. 10(a)."""

    batch: int
    total_ms: float
    speedup: float


#: Paper anchors for Fig. 10(a): 10.54x at 16 coalesced programs,
#: 20.48x at 64.
PAPER_FIG10A = {16: 10.54, 64: 20.48}


def fig10a_series(
    batch_degrees: Sequence[int] = (1, 2, 4, 8, 16, 32, 48, 64),
    n_programs: int = 64,
    transport: IPCTransport = SHARED_MEMORY,
    workers: int = 1,
) -> List[CoalescingPoint]:
    """Fig. 10(a): vectorAdd, 64 programs, coalescing degree swept.

    Per-program work is fixed (the total stays the same as the paper
    requires); the baseline is the same 64 programs with coalescing off.
    """
    farm = ScenarioFarm(workers=_transport_workers(transport, workers))
    batches = [1] + [b for b in batch_degrees if b > 1]
    totals = farm_jobs.fanout(
        farm,
        "repro.exec.jobs:fig10a_point",
        [
            {"batch": batch, "n_programs": n_programs,
             "transport": transport.name}
            for batch in batches
        ],
        label="fig10a",
    )
    base = totals[0]
    return [
        CoalescingPoint(batch=batch, total_ms=total, speedup=base / total)
        for batch, total in zip(batches, totals)
    ]


@dataclass
class StaircasePoint:
    grid: int
    time_ms: float


def fig10b_series(
    grids: Sequence[int] = tuple(range(1, 65)),
    block_size: int = 512,
    arch: GPUArchitecture = QUADRO_4000,
) -> List[StaircasePoint]:
    """Fig. 10(b): single-kernel time vs grid size (Eq. 9's staircase)."""
    kernel = make_vectoradd_kernel(elements_per_thread=8, fp32_per_element=4000)
    model = KernelTimingModel(arch)
    compiler = KernelCompiler()
    compiled = compiler.compile(kernel, arch)
    launches = [
        LaunchConfig(
            grid_size=grid, block_size=block_size,
            elements=grid * block_size * 8,
        )
        for grid in grids
    ]
    # The whole staircase sweep is one batch: N launches of one compiled
    # kernel priced in a single array program (scalar loop when
    # vectorized timing is disabled — results are bit-identical).
    profiles = model.execute_batch(
        [(compiled, launch) for launch in launches]
    )
    return [
        StaircasePoint(
            grid=grid,
            time_ms=arch.kernel_launch_overhead_ms + profile.time_ms,
        )
        for grid, profile in zip(grids, profiles)
    ]


# ---------------------------------------------------------------------------
# Fig. 11: the application suite
# ---------------------------------------------------------------------------


@dataclass
class SuitePoint:
    """One application's bar/lines in Fig. 11."""

    app: str
    emulation_ms: float
    multiplexing_speedup: float
    optimized_speedup: float


#: The applications Fig. 11 plots, in its x-axis order.
FIG11_APPS: Tuple[str, ...] = (
    "simpleGL",
    "Mandelbrot",
    "marchingCubes",
    "bicubicTexture",
    "VolumeFiltering",
    "recursiveGaussian",
    "SobelFilter",
    "stereoDisparity",
    "convolutionSeparable",
    "dct8x8",
    "BlackScholes",
    "MonteCarlo",
    "matrixMul",
    "mergeSort",
    "nbody",
    "smokeParticles",
    "segmentationTreeThrust",
)


def fig11_series(
    apps: Sequence[str] = FIG11_APPS,
    n_vps: int = 8,
    workers: int = 1,
) -> List[SuitePoint]:
    """Fig. 11: per-app emulation time and SigmaVP speedups on 8 VPs."""
    farm = ScenarioFarm(workers=workers)
    values = farm_jobs.fanout(
        farm,
        "repro.exec.jobs:fig11_point",
        [{"app": name, "n_vps": n_vps} for name in apps],
        label="fig11",
    )
    return [SuitePoint(**value) for value in values]


# ---------------------------------------------------------------------------
# Figs. 12 and 13: timing and power estimation
# ---------------------------------------------------------------------------


@dataclass
class EstimationPoint:
    """One app's bars in Fig. 12: everything normalized by the target
    observation."""

    app: str
    host: str
    h_normalized: float
    t_normalized: float  # 1.0 by construction
    c_normalized: float
    c_prime_normalized: float
    c_double_prime_normalized: float


def fig12_series(
    hosts: Sequence[GPUArchitecture] = (QUADRO_4000, GRID_K520),
    apps: Sequence[str] = ESTIMATION_APPS,
    target: GPUArchitecture = TEGRA_K1,
    workers: int = 1,
) -> List[EstimationPoint]:
    """Fig. 12: normalized execution times, two hosts x four apps."""
    farm = ScenarioFarm(workers=workers)
    values = farm_jobs.fanout(
        farm,
        "repro.exec.jobs:fig12_point",
        [
            {"host": host.name, "app": name, "target": target.name}
            for host in hosts
            for name in apps
        ],
        label="fig12",
    )
    return [EstimationPoint(**value) for value in values]


@dataclass
class PowerPoint:
    """One app's bars in Fig. 13: measured vs estimated target power."""

    app: str
    host: str
    measured_w: float
    estimated_w: float

    @property
    def error_pct(self) -> float:
        return 100.0 * (self.estimated_w - self.measured_w) / self.measured_w


def fig13_series(
    hosts: Sequence[GPUArchitecture] = (QUADRO_4000, GRID_K520),
    apps: Sequence[str] = ESTIMATION_APPS,
    target: GPUArchitecture = TEGRA_K1,
    workers: int = 1,
) -> List[PowerPoint]:
    """Fig. 13: normalized power, two hosts x four apps (within ~10%)."""
    farm = ScenarioFarm(workers=workers)
    values = farm_jobs.fanout(
        farm,
        "repro.exec.jobs:fig13_point",
        [
            {"host": host.name, "app": name, "target": target.name}
            for host in hosts
            for name in apps
        ],
        label="fig13",
    )
    return [PowerPoint(**value) for value in values]
