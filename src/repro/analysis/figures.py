"""Regeneration of the paper's Figures 9-13.

Each ``fig*_series`` function runs the corresponding experiment through
the full simulation stack and returns the measured series next to the
analytical/expected values the paper plots, ready for
:func:`repro.analysis.reporting.render_series`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..core.estimation import ExecutionAnalyzer
from ..core.interleaving import (
    balanced_speedup,
    expected_speedup,
)
from ..core.ipc import IPCTransport, SHARED_MEMORY
from ..core.scenarios import run_emulation, run_sigma_vp
from ..gpu.arch import GPUArchitecture, GRID_K520, QUADRO_4000, TEGRA_K1
from ..gpu.timing import KernelTimingModel
from ..kernels.compiler import KernelCompiler
from ..kernels.launch import LaunchConfig
from ..workloads.base import WorkloadSpec
from ..workloads.catalog import ESTIMATION_APPS, get_workload
from ..workloads.linalg import make_vectoradd_kernel, make_vectoradd_spec
from ..workloads.synthetic import make_phase_workload, measured_phase_times


# ---------------------------------------------------------------------------
# Fig. 9: Kernel Interleaving
# ---------------------------------------------------------------------------


@dataclass
class InterleavingPoint:
    """One point of Fig. 9: measured vs expected speedup."""

    x: float
    measured: float
    expected: float


def fig9a_series(
    kernel_lengths_ms: Sequence[float] = (1.0, 4.0, 8.0, 13.44, 20.0, 40.0, 60.0, 80.0, 100.0),
    t_copy_ms: float = 13.44,
    transport: IPCTransport = SHARED_MEMORY,
) -> List[InterleavingPoint]:
    """Fig. 9(a): two interleaved programs, kernel length swept.

    The copy time is fixed at the paper's 13.44 ms; speedup peaks where
    the kernel matches it (latency hiding).
    """
    points = []
    for t_kernel in kernel_lengths_ms:
        spec = make_phase_workload(t_kernel_ms=t_kernel, t_copy_ms=t_copy_ms)
        tm, tk = measured_phase_times(spec)
        serial = run_sigma_vp(spec, n_vps=2, interleaving=False,
                              coalescing=False, transport=transport)
        inter = run_sigma_vp(spec, n_vps=2, interleaving=True,
                             coalescing=False, transport=transport)
        points.append(
            InterleavingPoint(
                x=tk,
                measured=serial.total_ms / inter.total_ms,
                expected=expected_speedup(2, tm, tk),
            )
        )
    return points


def fig9b_series(
    program_counts: Sequence[int] = (2, 4, 8, 16, 32),
    t_phase_ms: float = 4.0,
    transport: IPCTransport = SHARED_MEMORY,
) -> List[InterleavingPoint]:
    """Fig. 9(b): N interleaved programs with Tk = Tm; expected = 3N/(N+2)."""
    points = []
    spec = make_phase_workload(t_kernel_ms=t_phase_ms, t_copy_ms=t_phase_ms)
    for n in program_counts:
        serial = run_sigma_vp(spec, n_vps=n, interleaving=False,
                              coalescing=False, transport=transport)
        inter = run_sigma_vp(spec, n_vps=n, interleaving=True,
                             coalescing=False, transport=transport)
        points.append(
            InterleavingPoint(
                x=n,
                measured=serial.total_ms / inter.total_ms,
                expected=balanced_speedup(n),
            )
        )
    return points


# ---------------------------------------------------------------------------
# Fig. 10: Kernel Coalescing
# ---------------------------------------------------------------------------


@dataclass
class CoalescingPoint:
    """One point of Fig. 10(a)."""

    batch: int
    total_ms: float
    speedup: float


#: Paper anchors for Fig. 10(a): 10.54x at 16 coalesced programs,
#: 20.48x at 64.
PAPER_FIG10A = {16: 10.54, 64: 20.48}


def fig10a_series(
    batch_degrees: Sequence[int] = (1, 2, 4, 8, 16, 32, 48, 64),
    n_programs: int = 64,
    transport: IPCTransport = SHARED_MEMORY,
) -> List[CoalescingPoint]:
    """Fig. 10(a): vectorAdd, 64 programs, coalescing degree swept.

    Per-program work is fixed (the total stays the same as the paper
    requires); the baseline is the same 64 programs with coalescing off.
    """
    spec = make_vectoradd_spec(
        elements=4096, iterations=1, block_size=512,
        elements_per_thread=8, fp32_per_element=4000,
    )
    base = run_sigma_vp(spec, n_vps=n_programs, interleaving=False,
                        coalescing=False, transport=transport).total_ms
    points = [CoalescingPoint(batch=1, total_ms=base, speedup=1.0)]
    for batch in batch_degrees:
        if batch <= 1:
            continue
        result = run_sigma_vp(spec, n_vps=n_programs, interleaving=False,
                              coalescing=True, max_batch=batch,
                              transport=transport)
        points.append(
            CoalescingPoint(
                batch=batch,
                total_ms=result.total_ms,
                speedup=base / result.total_ms,
            )
        )
    return points


@dataclass
class StaircasePoint:
    grid: int
    time_ms: float


def fig10b_series(
    grids: Sequence[int] = tuple(range(1, 65)),
    block_size: int = 512,
    arch: GPUArchitecture = QUADRO_4000,
) -> List[StaircasePoint]:
    """Fig. 10(b): single-kernel time vs grid size (Eq. 9's staircase)."""
    kernel = make_vectoradd_kernel(elements_per_thread=8, fp32_per_element=4000)
    model = KernelTimingModel(arch)
    compiler = KernelCompiler()
    compiled = compiler.compile(kernel, arch)
    points = []
    for grid in grids:
        launch = LaunchConfig(
            grid_size=grid, block_size=block_size,
            elements=grid * block_size * 8,
        )
        points.append(
            StaircasePoint(grid=grid, time_ms=model.kernel_time_ms(compiled, launch))
        )
    return points


# ---------------------------------------------------------------------------
# Fig. 11: the application suite
# ---------------------------------------------------------------------------


@dataclass
class SuitePoint:
    """One application's bar/lines in Fig. 11."""

    app: str
    emulation_ms: float
    multiplexing_speedup: float
    optimized_speedup: float


#: The applications Fig. 11 plots, in its x-axis order.
FIG11_APPS: Tuple[str, ...] = (
    "simpleGL",
    "Mandelbrot",
    "marchingCubes",
    "bicubicTexture",
    "VolumeFiltering",
    "recursiveGaussian",
    "SobelFilter",
    "stereoDisparity",
    "convolutionSeparable",
    "dct8x8",
    "BlackScholes",
    "MonteCarlo",
    "matrixMul",
    "mergeSort",
    "nbody",
    "smokeParticles",
    "segmentationTreeThrust",
)


def fig11_series(
    apps: Sequence[str] = FIG11_APPS,
    n_vps: int = 8,
) -> List[SuitePoint]:
    """Fig. 11: per-app emulation time and SigmaVP speedups on 8 VPs."""
    points = []
    for name in apps:
        spec = get_workload(name)
        emul = run_emulation(spec, n_instances=n_vps).total_ms
        base = run_sigma_vp(spec, n_vps=n_vps, interleaving=False,
                            coalescing=False).total_ms
        opt = run_sigma_vp(spec, n_vps=n_vps, interleaving=True,
                           coalescing=True).total_ms
        points.append(
            SuitePoint(
                app=name,
                emulation_ms=emul,
                multiplexing_speedup=emul / base,
                optimized_speedup=emul / opt,
            )
        )
    return points


# ---------------------------------------------------------------------------
# Figs. 12 and 13: timing and power estimation
# ---------------------------------------------------------------------------


@dataclass
class EstimationPoint:
    """One app's bars in Fig. 12: everything normalized by the target
    observation."""

    app: str
    host: str
    h_normalized: float
    t_normalized: float  # 1.0 by construction
    c_normalized: float
    c_prime_normalized: float
    c_double_prime_normalized: float


def fig12_series(
    hosts: Sequence[GPUArchitecture] = (QUADRO_4000, GRID_K520),
    apps: Sequence[str] = ESTIMATION_APPS,
    target: GPUArchitecture = TEGRA_K1,
) -> List[EstimationPoint]:
    """Fig. 12: normalized execution times, two hosts x four apps."""
    points = []
    for host in hosts:
        analyzer = ExecutionAnalyzer(host, target)
        for name in apps:
            spec = get_workload(name)
            kernel, launch = spec.kernel, spec.launch_config()
            host_profile = analyzer.profile_on_host(kernel, launch)
            truth_ms = analyzer.observe_on_target(kernel, launch).time_ms
            est = analyzer.analyze(kernel, launch, host_profile=host_profile)
            norm = lambda cycles: analyzer.estimated_time_ms(cycles) / truth_ms
            points.append(
                EstimationPoint(
                    app=name,
                    host=host.name,
                    h_normalized=host_profile.time_ms / truth_ms,
                    t_normalized=1.0,
                    c_normalized=norm(est.c_cycles),
                    c_prime_normalized=norm(est.c_prime_cycles),
                    c_double_prime_normalized=norm(est.c_double_prime_cycles),
                )
            )
    return points


@dataclass
class PowerPoint:
    """One app's bars in Fig. 13: measured vs estimated target power."""

    app: str
    host: str
    measured_w: float
    estimated_w: float

    @property
    def error_pct(self) -> float:
        return 100.0 * (self.estimated_w - self.measured_w) / self.measured_w


def fig13_series(
    hosts: Sequence[GPUArchitecture] = (QUADRO_4000, GRID_K520),
    apps: Sequence[str] = ESTIMATION_APPS,
    target: GPUArchitecture = TEGRA_K1,
) -> List[PowerPoint]:
    """Fig. 13: normalized power, two hosts x four apps (within ~10%)."""
    points = []
    for host in hosts:
        analyzer = ExecutionAnalyzer(host, target)
        for name in apps:
            spec = get_workload(name)
            kernel, launch = spec.kernel, spec.launch_config()
            host_profile = analyzer.profile_on_host(kernel, launch)
            measured = analyzer.observed_power(kernel, launch)
            estimated = analyzer.estimate_power(
                kernel, launch, host_profile=host_profile
            )
            points.append(
                PowerPoint(
                    app=name,
                    host=host.name,
                    measured_w=measured.total_w,
                    estimated_w=estimated.total_w,
                )
            )
    return points
