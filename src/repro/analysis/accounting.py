"""Latency accounting: where a simulation's time actually went.

Every job carries three timestamps — submitted (reached the host
queue), dispatched (left the queue), completed — so a finished run can
be decomposed per VP and per job kind into **queue wait** (scheduling
and coalescing holds) versus **service** (engine/host execution), next
to the guest-side CPU time the platform itself recorded.  This is the
diagnostic view behind claims like "the suite is IPC-bound at small
kernels": it shows, not guesses.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..core.framework import SigmaVP
from ..core.jobs import Job, JobKind
from .reporting import render_table


@dataclass(frozen=True)
class JobLatency:
    """One job's decomposed latency."""

    vp: str
    kind: JobKind
    queue_wait_ms: float
    service_ms: float

    @property
    def total_ms(self) -> float:
        return self.queue_wait_ms + self.service_ms


@dataclass
class VPAccount:
    """One VP's aggregate accounting."""

    vp: str
    jobs: int = 0
    queue_wait_ms: float = 0.0
    service_ms: float = 0.0
    guest_cpu_ms: float = 0.0
    elapsed_ms: Optional[float] = None

    @property
    def host_total_ms(self) -> float:
        return self.queue_wait_ms + self.service_ms


def job_latencies(dispatcher) -> List[JobLatency]:
    """Per-job latency decomposition from the dispatcher's log.

    Members of merged jobs inherit the merged job's dispatch point (they
    were absorbed, not individually dispatched); their queue wait runs
    from their own submission to that dispatch.
    """
    latencies: List[JobLatency] = []
    dispatch_point: Dict[int, float] = {}
    for job in dispatcher.completed_log:
        if job.dispatched_at_ms is not None:
            dispatch_point[job.job_id] = job.dispatched_at_ms
            for member in job.members:
                dispatch_point.setdefault(member.job_id, job.dispatched_at_ms)
    for job in dispatcher.completed_log:
        dispatched = dispatch_point.get(job.job_id)
        if dispatched is None or job.completed_at_ms is None:
            continue
        latencies.append(
            JobLatency(
                vp=job.vp,
                kind=job.kind,
                queue_wait_ms=max(0.0, dispatched - job.submitted_at_ms),
                service_ms=max(0.0, job.completed_at_ms - dispatched),
            )
        )
    return latencies


def vp_accounts(framework: SigmaVP) -> Dict[str, VPAccount]:
    """Aggregate accounting per attached VP (merged groups excluded)."""
    accounts: Dict[str, VPAccount] = {}
    for name, session in framework.sessions.items():
        accounts[name] = VPAccount(
            vp=name,
            guest_cpu_ms=session.vp.guest_cpu_ms,
            elapsed_ms=session.vp.elapsed_ms,
        )
    for latency in job_latencies(framework.dispatcher):
        account = accounts.get(latency.vp)
        if account is None:
            continue  # synthetic merged-group rows
        account.jobs += 1
        account.queue_wait_ms += latency.queue_wait_ms
        account.service_ms += latency.service_ms
    return accounts


def kind_breakdown(dispatcher) -> Dict[JobKind, JobLatency]:
    """Mean queue-wait/service per job kind."""
    sums: Dict[JobKind, List[float]] = {}
    for latency in job_latencies(dispatcher):
        bucket = sums.setdefault(latency.kind, [0.0, 0.0, 0.0])
        bucket[0] += latency.queue_wait_ms
        bucket[1] += latency.service_ms
        bucket[2] += 1
    return {
        kind: JobLatency(
            vp="*", kind=kind,
            queue_wait_ms=total_wait / count,
            service_ms=total_service / count,
        )
        for kind, (total_wait, total_service, count) in sums.items()
    }


def render_accounting(framework: SigmaVP) -> str:
    """Text report: per-VP and per-kind breakdowns."""
    accounts = vp_accounts(framework)
    per_vp = render_table(
        ["VP", "Jobs", "Queue wait (ms)", "Service (ms)",
         "Guest CPU (ms)", "Elapsed (ms)"],
        [
            (a.vp, a.jobs, a.queue_wait_ms, a.service_ms,
             a.guest_cpu_ms, a.elapsed_ms if a.elapsed_ms is not None else "-")
            for a in sorted(accounts.values(), key=lambda a: a.vp)
        ],
        title="Per-VP accounting",
    )
    kinds = kind_breakdown(framework.dispatcher)
    per_kind = render_table(
        ["Kind", "Mean queue wait (ms)", "Mean service (ms)"],
        [
            (kind.name, latency.queue_wait_ms, latency.service_ms)
            for kind, latency in sorted(kinds.items(), key=lambda kv: kv[0].name)
        ],
        title="Per-kind latency",
    )
    return per_vp + "\n\n" + per_kind
