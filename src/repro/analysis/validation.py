"""Cross-backend functional validation.

"We show that SigmaVP can be used for functional validation" (paper
Section 1).  The validation contract is binary compatibility: the same
application must produce the same numerical results whether its CUDA
calls are served by the software emulator, the native host GPU, or the
full SigmaVP pipeline.  :func:`validate_workload` runs all three routes
and compares.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from ..core.scenarios import run_emulation, run_native_gpu, run_sigma_vp
from ..kernels.functional import REGISTRY
from ..vp.cpu import HOST_XEON
from ..workloads.base import WorkloadSpec

#: The execution routes validation compares.
ROUTES = ("native-gpu", "emulation", "sigma-vp")


@dataclass(frozen=True)
class ValidationResult:
    """Outcome of one workload's cross-backend comparison."""

    workload: str
    routes: Dict[str, bool]  # route -> produced a result
    equivalent: bool
    max_abs_difference: float
    detail: str = ""

    @property
    def ok(self) -> bool:
        return self.equivalent and all(self.routes.values())


def _result_of(scenario) -> Optional[np.ndarray]:
    value = scenario.extras.get("result")
    if value is None:
        return None
    return np.asarray(value)


def validate_workload(
    spec: WorkloadSpec,
    rtol: float = 1e-5,
    atol: float = 1e-6,
) -> ValidationResult:
    """Run ``spec`` on every backend and compare the numerical results.

    The workload must have a registered functional kernel; otherwise
    there is nothing to compare and a non-equivalent result with a
    detail message is returned.
    """
    if spec.kernel.signature not in REGISTRY:
        return ValidationResult(
            workload=spec.name,
            routes={route: False for route in ROUTES},
            equivalent=False,
            max_abs_difference=float("nan"),
            detail=f"no functional kernel registered for "
                   f"{spec.kernel.signature!r}",
        )

    outputs = {
        "native-gpu": _result_of(run_native_gpu(spec, functional=True)),
        "emulation": _result_of(
            run_emulation(spec, cpu=HOST_XEON, functional=True)
        ),
        "sigma-vp": _result_of(run_sigma_vp(spec, n_vps=1, functional=True)),
    }
    produced = {route: value is not None for route, value in outputs.items()}
    if not all(produced.values()):
        missing = [route for route, ok in produced.items() if not ok]
        return ValidationResult(
            workload=spec.name,
            routes=produced,
            equivalent=False,
            max_abs_difference=float("nan"),
            detail=f"routes produced no result: {missing}",
        )

    reference = outputs["native-gpu"]
    max_diff = 0.0
    equivalent = True
    detail = ""
    for route in ("emulation", "sigma-vp"):
        other = outputs[route]
        if reference.shape != other.shape:
            equivalent = False
            detail = f"{route} shape {other.shape} != {reference.shape}"
            max_diff = float("inf")
            break
        diff = float(
            np.max(np.abs(reference.astype(np.float64)
                          - other.astype(np.float64)))
        ) if reference.size else 0.0
        max_diff = max(max_diff, diff)
        if not np.allclose(reference, other, rtol=rtol, atol=atol):
            equivalent = False
            detail = f"{route} differs from native (max |diff| = {diff:g})"
    return ValidationResult(
        workload=spec.name,
        routes=produced,
        equivalent=equivalent,
        max_abs_difference=max_diff,
        detail=detail,
    )


def validate_suite(
    specs: Sequence[WorkloadSpec],
    rtol: float = 1e-5,
) -> List[ValidationResult]:
    """Validate several workloads; returns one result per spec."""
    return [validate_workload(spec, rtol=rtol) for spec in specs]
