"""Execution timelines: what every engine did, when.

Collects the busy spans of each host-GPU engine (and basic per-VP
lifetimes) from a finished :class:`~repro.core.framework.SigmaVP` run and
renders them as an ASCII Gantt chart — the textual analog of the paper's
Fig. 3/6 engine diagrams, handy for seeing interleaving and coalescing
actually happen.

The same chart can be rebuilt from a recorded trace buffer
(:func:`timeline_from_trace`): the tracer's engine spans carry the
role/device/VP identity the chart needs, so a live framework and a trace
file on disk render through one code path — the tracer is the single
source of truth for lane data once observability is on.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence

from ..core.framework import SigmaVP
from ..gpu.engines import TimelineEntry

#: Engine roles in the paper's pipeline order (Fig. 3): the order lanes
#: appear in charts, matching :func:`collect_timeline`.
ENGINE_ROLES = ("h2d", "compute", "d2h")


@dataclass(frozen=True)
class Lane:
    """One horizontal lane of the chart: an engine and its busy spans."""

    name: str
    spans: List[TimelineEntry]

    @property
    def busy_ms(self) -> float:
        return sum(s.duration_ms for s in self.spans)


@dataclass
class Timeline:
    """All lanes of one simulation, with the overall horizon."""

    lanes: List[Lane]
    horizon_ms: float
    vp_spans: Dict[str, tuple] = field(default_factory=dict)

    def lane(self, name: str) -> Lane:
        for lane in self.lanes:
            if lane.name == name:
                return lane
        raise KeyError(f"no lane named {name!r}")

    def utilization(self, name: str) -> float:
        if self.horizon_ms <= 0:
            return 0.0
        return self.lane(name).busy_ms / self.horizon_ms

    def as_dict(self) -> dict:
        """JSON-friendly export."""
        return {
            "horizon_ms": self.horizon_ms,
            "lanes": [
                {
                    "name": lane.name,
                    "busy_ms": lane.busy_ms,
                    "spans": [
                        {"label": s.label, "start_ms": s.start_ms, "end_ms": s.end_ms}
                        for s in lane.spans
                    ],
                }
                for lane in self.lanes
            ],
            "vps": {
                name: {"start_ms": start, "end_ms": end}
                for name, (start, end) in self.vp_spans.items()
            },
        }


def collect_timeline(framework: SigmaVP) -> Timeline:
    """Extract the engine timelines from a finished framework run."""
    lanes: List[Lane] = []
    for index, gpu in enumerate(framework.gpus):
        prefix = f"gpu{index}/" if len(framework.gpus) > 1 else ""
        lanes.append(Lane(f"{prefix}h2d", list(gpu.h2d_engine.timeline)))
        lanes.append(Lane(f"{prefix}compute", list(gpu.compute_engine.timeline)))
        lanes.append(Lane(f"{prefix}d2h", list(gpu.d2h_engine.timeline)))
    vp_spans = {
        name: (session.vp.started_at_ms or 0.0,
               session.vp.finished_at_ms or framework.env.now)
        for name, session in framework.sessions.items()
    }
    return Timeline(
        lanes=lanes,
        horizon_ms=framework.env.now,
        vp_spans=vp_spans,
    )


def timeline_from_trace(source: Any) -> Timeline:
    """Rebuild a :class:`Timeline` from a tracer or its payload dict.

    Engine spans (category ``engine``) become lanes named exactly as
    :func:`collect_timeline` names them — ``h2d`` / ``compute`` / ``d2h``,
    prefixed ``gpu<i>/`` only when the trace covers more than one host
    device — and per-VP lifetime spans (category ``vp``) become
    ``vp_spans``, so a chart rendered from a trace file matches one
    rendered from the live framework.
    """
    payload = source.to_payload() if hasattr(source, "to_payload") else source
    by_device: Dict[int, Dict[str, List[TimelineEntry]]] = {}
    vp_spans: Dict[str, tuple] = {}
    horizon = 0.0
    for span in payload.get("spans", ()):
        horizon = max(horizon, span["end_ms"])
        args = span.get("args") or {}
        cat = span.get("cat")
        if cat == "vp":
            name = args.get("vp") or span["lane"].rpartition("/")[2]
            vp_spans[name] = (span["start_ms"], span["end_ms"])
            continue
        if cat != "engine":
            continue
        role = args.get("role")
        if role not in ENGINE_ROLES:
            role = next((r for r in ENGINE_ROLES if r in span["lane"]), None)
            if role is None:
                continue
        device = int(args.get("device", 0))
        entries = by_device.setdefault(device, {r: [] for r in ENGINE_ROLES})
        entries[role].append(
            TimelineEntry(span["name"], span["start_ms"], span["end_ms"])
        )
    for instant in payload.get("instants", ()):
        horizon = max(horizon, instant["ts_ms"])
    lanes: List[Lane] = []
    multi = len(by_device) > 1
    for device in sorted(by_device):
        prefix = f"gpu{device}/" if multi else ""
        for role in ENGINE_ROLES:
            lanes.append(Lane(f"{prefix}{role}", by_device[device][role]))
    return Timeline(lanes=lanes, horizon_ms=horizon, vp_spans=vp_spans)


def render_gantt(
    timeline: Timeline,
    width: int = 72,
    lanes: Optional[Sequence[str]] = None,
) -> str:
    """ASCII Gantt: one row per engine, '#' where it was busy.

    Cells are marked busy if any span overlaps them; the rightmost
    column ends at the simulation horizon.  Returns ``(empty timeline)``
    for *any* chart with nothing to draw — zero horizon, no lanes, or no
    spans in the selected lanes — not just the zero-horizon case.
    """
    selected = (
        [timeline.lane(name) for name in lanes]
        if lanes is not None
        else timeline.lanes
    )
    if (
        timeline.horizon_ms <= 0
        or not selected
        or all(not lane.spans for lane in selected)
    ):
        return "(empty timeline)"
    label_width = max((len(lane.name) for lane in selected), default=4)
    scale = timeline.horizon_ms / width
    out = [
        f"0 ms {' ' * (label_width + width - 12)} {timeline.horizon_ms:.2f} ms"
    ]
    for lane in selected:
        cells = [" "] * width
        for span in lane.spans:
            first = min(width - 1, int(span.start_ms / scale))
            last = min(width - 1, max(first, int((span.end_ms - 1e-12) / scale)))
            for cell in range(first, last + 1):
                cells[cell] = "#"
        busy_pct = 100.0 * timeline.utilization(lane.name)
        out.append(
            f"{lane.name.rjust(label_width)} |{''.join(cells)}| {busy_pct:5.1f}%"
        )
    return "\n".join(out)
