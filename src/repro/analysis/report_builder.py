"""One-shot regeneration of the full paper-vs-measured report.

``python -m repro report`` (or :func:`build_report`) reruns every
experiment and emits a self-contained markdown document in the shape of
EXPERIMENTS.md — the reproducibility artifact a reviewer would ask for.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import List, Optional, Sequence

from .figures import (
    FIG11_APPS,
    fig9a_series,
    fig9b_series,
    fig10a_series,
    fig10b_series,
    fig11_series,
    fig12_series,
    fig13_series,
)
from .tables import build_table1

#: A reduced Fig-11 app set for quick report runs.
QUICK_FIG11_APPS = ("BlackScholes", "matrixMul", "SobelFilter", "mergeSort")


def _md_table(headers: Sequence[str], rows: Sequence[Sequence[object]]) -> str:
    def fmt(cell: object) -> str:
        if isinstance(cell, float):
            return f"{cell:,.2f}" if abs(cell) >= 10 else f"{cell:.3f}"
        return str(cell)

    lines = [
        "| " + " | ".join(headers) + " |",
        "|" + "|".join("---" for _ in headers) + "|",
    ]
    for row in rows:
        lines.append("| " + " | ".join(fmt(cell) for cell in row) + " |")
    return "\n".join(lines)


@dataclass
class ReportSection:
    title: str
    body: str


def _section_table1() -> ReportSection:
    rows = build_table1()
    body = _md_table(
        ["Language", "Executed by", "Measured (ms)", "Ratio",
         "Paper (ms)", "Paper ratio"],
        [(r.language, r.executed_by, r.time_ms, r.ratio,
          r.paper_time_ms, r.paper_ratio) for r in rows],
    )
    return ReportSection("Table 1 — matrix multiplication, six routes", body)


def _section_fig9() -> ReportSection:
    a = fig9a_series(kernel_lengths_ms=(2.0, 8.0, 13.44, 30.0, 60.0))
    b = fig9b_series()
    body = (
        "**(a) speedup vs kernel length (2 programs, Tm = 13.44 ms):**\n\n"
        + _md_table(["kernel (ms)", "measured", "expected (Eq. 7)"],
                    [(f"{p.x:.2f}", p.measured, p.expected) for p in a])
        + "\n\n**(b) speedup vs N programs (Tk = Tm):**\n\n"
        + _md_table(["N", "measured", "3N/(N+2) (Eq. 8)"],
                    [(int(p.x), p.measured, p.expected) for p in b])
    )
    return ReportSection("Fig. 9 — Kernel Interleaving", body)


def _section_fig10() -> ReportSection:
    a = fig10a_series()
    stair = fig10b_series(grids=(1, 8, 9, 16, 17, 32, 33, 48, 49, 64))
    body = (
        "**(a) coalescence effectiveness (64 programs):**\n\n"
        + _md_table(["coalesced", "time (ms)", "speedup"],
                    [(p.batch, p.total_ms, p.speedup) for p in a])
        + "\n\n**(b) grid-size staircase (Eq. 9):**\n\n"
        + _md_table(["grid", "time (ms)"],
                    [(p.grid, p.time_ms) for p in stair])
    )
    return ReportSection("Fig. 10 — Kernel Coalescing", body)


def _section_fig11(apps: Sequence[str]) -> ReportSection:
    points = fig11_series(apps=apps)
    body = _md_table(
        ["app", "emulation (s)", "x multiplexing", "x optimized"],
        [(p.app, p.emulation_ms / 1e3, p.multiplexing_speedup,
          p.optimized_speedup) for p in points],
    ) + ("\n\nPaper bands: 622-2045x (multiplexing), "
         "1098-6304x (optimized).")
    return ReportSection("Fig. 11 — the application suite (8 VPs)", body)


def _section_fig12() -> ReportSection:
    points = fig12_series()
    body = _md_table(
        ["host", "app", "H", "C", "C'", "C''"],
        [(p.host, p.app, p.h_normalized, p.c_normalized,
          p.c_prime_normalized, p.c_double_prime_normalized)
         for p in points],
    ) + "\n\nAll values normalized by the Tegra K1 observation (T = 1)."
    return ReportSection("Fig. 12 — timing estimation", body)


def _section_fig13() -> ReportSection:
    points = fig13_series()
    body = _md_table(
        ["host", "app", "measured (W)", "estimate (W)", "error (%)"],
        [(p.host, p.app, p.measured_w, p.estimated_w, p.error_pct)
         for p in points],
    ) + "\n\nPaper claim: estimates within about 10% of measured."
    return ReportSection("Fig. 13 — power estimation", body)


def build_report(quick: bool = False) -> str:
    """Rerun all experiments; returns the markdown report text."""
    apps = QUICK_FIG11_APPS if quick else FIG11_APPS
    sections: List[ReportSection] = [
        _section_table1(),
        _section_fig9(),
        _section_fig10(),
        _section_fig11(apps),
        _section_fig12(),
        _section_fig13(),
    ]
    parts = [
        "# SigmaVP reproduction — regenerated experiment report",
        "",
        "Every number below was produced by this run (see EXPERIMENTS.md "
        "for the curated record and deviation notes).",
        "",
    ]
    for section in sections:
        parts.append(f"## {section.title}")
        parts.append("")
        parts.append(section.body)
        parts.append("")
    return "\n".join(parts)


def write_report(path: Path, quick: bool = False) -> Path:
    """Build the report and write it to ``path``."""
    path = Path(path)
    path.write_text(build_report(quick=quick) + "\n")
    return path
