"""Plain-text rendering of experiment results.

The benchmark harness prints the same rows and series the paper reports;
these helpers keep that output consistent and legible.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence


def render_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    title: Optional[str] = None,
) -> str:
    """Fixed-width text table."""
    materialized: List[List[str]] = [[_fmt(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in materialized:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))

    def line(cells: Sequence[str]) -> str:
        return "  ".join(cell.rjust(width) for cell, width in zip(cells, widths))

    out: List[str] = []
    if title:
        out.append(title)
        out.append("=" * len(title))
    out.append(line(list(headers)))
    out.append(line(["-" * w for w in widths]))
    for row in materialized:
        out.append(line(row))
    return "\n".join(out)


def _fmt(value: object) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000:
            return f"{value:,.0f}"
        if abs(value) >= 10:
            return f"{value:.2f}"
        return f"{value:.3f}"
    return str(value)


def render_series(
    name: str,
    xs: Sequence[object],
    series: Sequence[tuple],
    x_label: str = "x",
) -> str:
    """Render one or more (label, values) series against a shared x axis."""
    headers = [x_label] + [label for label, _values in series]
    rows = []
    for index, x in enumerate(xs):
        rows.append([x] + [values[index] for _label, values in series])
    return render_table(headers, rows, title=name)
