"""Critical-path attribution: what bounds a scenario's simulated time.

Before partitioning the event core across host threads (the ROADMAP's
intra-scenario parallelism item), we need to know *which* lane the
simulated clock is actually waiting on — compute, one of the copy
directions, IPC, or nothing at all (host-call gaps and scheduling
stalls).  "Parallelizing a modern GPU simulator" partitions along
exactly such per-domain utilization boundaries.

The attribution walks an exported trace payload (:meth:`Tracer.to_payload`
or a merged farm payload) and classifies every instant of ``[0,
horizon]`` by a fixed priority — ``compute > h2d > d2h > ipc > idle`` —
so each millisecond of simulated time lands in exactly one named bucket
and the buckets sum to the horizon (100% coverage by construction).
Priority resolves overlap: a millisecond where a kernel runs *and* a
copy streams is compute-bound — removing the copy would not shorten it.

Alongside the exclusive attribution, the report carries overlap
diagnostics (time with ≥2 engine roles active — the Kernel Interleaving
win) and the longest individual spans, the first places to look when a
category dominates.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from .reporting import render_table

#: Classification priority, most-binding first; ``idle`` is implicit.
CATEGORY_PRIORITY: Tuple[str, ...] = ("compute", "h2d", "d2h", "ipc")

#: All named buckets, in report order.
CATEGORIES: Tuple[str, ...] = CATEGORY_PRIORITY + ("idle",)


@dataclass
class DeviceAttribution:
    """One host GPU's exclusive time attribution."""

    device: str
    horizon_ms: float
    by_category: Dict[str, float] = field(default_factory=dict)
    overlap_ms: float = 0.0  # >= 2 engine roles simultaneously busy

    @property
    def bound(self) -> str:
        """The dominant category — what this device's timeline waits on."""
        return max(CATEGORIES, key=lambda c: self.by_category.get(c, 0.0))

    @property
    def busy_ms(self) -> float:
        return sum(
            self.by_category.get(c, 0.0) for c in CATEGORY_PRIORITY
        )


@dataclass
class CritPathReport:
    """Whole-scenario attribution: per device plus the overall verdict."""

    horizon_ms: float
    devices: List[DeviceAttribution] = field(default_factory=list)
    overall: Dict[str, float] = field(default_factory=dict)
    top_spans: List[Dict[str, Any]] = field(default_factory=list)
    span_count: int = 0

    @property
    def bound(self) -> str:
        return max(CATEGORIES, key=lambda c: self.overall.get(c, 0.0))

    @property
    def coverage(self) -> float:
        """Fraction of the horizon attributed to named segments.

        1.0 by construction (idle is a named segment); pinned by the
        acceptance tests rather than assumed.
        """
        if self.horizon_ms <= 0.0:
            return 1.0
        return sum(self.overall.values()) / self.horizon_ms


def _category_of(span: Dict[str, Any]) -> Optional[str]:
    """Map one span to its attribution category (None = not attributable)."""
    cat = span.get("cat")
    if cat == "engine":
        role = (span.get("args") or {}).get("role")
        if role in ("compute", "h2d", "d2h"):
            return str(role)
        # Fall back to the lane name (seed-era spans carry no role arg).
        lane = str(span.get("lane", ""))
        for candidate in ("compute", "h2d", "d2h"):
            if candidate in lane:
                return candidate
        return "compute" if "engine" in lane else None
    if cat == "ipc":
        return "ipc"
    return None


def _device_of(span: Dict[str, Any]) -> Optional[int]:
    """The host GPU a span is bound to; IPC spans are device-agnostic."""
    if span.get("cat") != "engine":
        return None
    device = (span.get("args") or {}).get("device", 0)
    try:
        return int(device)
    except (TypeError, ValueError):
        return 0


def _sweep(
    intervals: List[Tuple[float, float, str]], horizon_ms: float
) -> Tuple[Dict[str, float], float]:
    """Exclusive priority attribution of ``[0, horizon]``.

    Returns ``(by_category, overlap_ms)``; ``by_category`` includes the
    ``idle`` remainder so its values always sum to ``horizon_ms``.
    Overlap counts time where at least two *engine* roles are active
    simultaneously (the copy/compute concurrency win).
    """
    by_category = {category: 0.0 for category in CATEGORIES}
    overlap_ms = 0.0
    if horizon_ms <= 0.0:
        return by_category, overlap_ms

    events: List[Tuple[float, int, str]] = []
    for start, end, category in intervals:
        start = max(0.0, start)
        end = min(horizon_ms, end)
        if end <= start:
            continue
        events.append((start, +1, category))
        events.append((end, -1, category))
    events.sort(key=lambda e: e[0])

    active = {category: 0 for category in CATEGORY_PRIORITY}
    cursor = 0.0
    index = 0
    total = len(events)
    while index < total:
        t = events[index][0]
        if t > cursor:
            # Attribute [cursor, t) to the highest-priority active lane.
            span_ms = t - cursor
            for category in CATEGORY_PRIORITY:
                if active[category] > 0:
                    by_category[category] += span_ms
                    break
            else:
                by_category["idle"] += span_ms
            engine_active = sum(
                1 for c in ("compute", "h2d", "d2h") if active[c] > 0
            )
            if engine_active >= 2:
                overlap_ms += span_ms
            cursor = t
        while index < total and events[index][0] == t:
            _, delta, category = events[index]
            active[category] += delta
            index += 1
    if horizon_ms > cursor:
        by_category["idle"] += horizon_ms - cursor
    return by_category, overlap_ms


def attribute(
    payload: Dict[str, Any], horizon_ms: Optional[float] = None
) -> CritPathReport:
    """Attribute a trace payload's simulated time, per device and overall.

    ``horizon_ms`` defaults to the latest span end in the payload (the
    scenario's finish line).  Every device gets its own sweep over the
    *whole* horizon — IPC spans, which are device-agnostic, participate
    in each device's sweep — and the ``overall`` view sweeps all lanes
    together, answering "what bounds the scenario" host-wide.
    """
    spans = list(payload.get("spans", ()))
    if horizon_ms is None:
        horizon_ms = max(
            (float(span.get("end_ms", 0.0)) for span in spans), default=0.0
        )

    classified: List[Tuple[Optional[int], float, float, str]] = []
    for span in spans:
        category = _category_of(span)
        if category is None:
            continue
        classified.append(
            (
                _device_of(span),
                float(span["start_ms"]),
                float(span["end_ms"]),
                category,
            )
        )

    devices_seen = sorted(
        {device for device, *_ in classified if device is not None}
    )
    report = CritPathReport(horizon_ms=horizon_ms, span_count=len(classified))

    for device in devices_seen:
        intervals = [
            (start, end, category)
            for dev, start, end, category in classified
            if dev == device or dev is None  # IPC participates everywhere
        ]
        by_category, overlap_ms = _sweep(intervals, horizon_ms)
        report.devices.append(
            DeviceAttribution(
                device=f"gpu{device}",
                horizon_ms=horizon_ms,
                by_category=by_category,
                overlap_ms=overlap_ms,
            )
        )

    overall_intervals = [
        (start, end, category) for _, start, end, category in classified
    ]
    report.overall, _ = _sweep(overall_intervals, horizon_ms)

    ranked = sorted(
        (span for span in spans if _category_of(span) is not None),
        key=lambda s: float(s["end_ms"]) - float(s["start_ms"]),
        reverse=True,
    )
    report.top_spans = [
        {
            "lane": span["lane"],
            "name": span["name"],
            "category": _category_of(span),
            "duration_ms": float(span["end_ms"]) - float(span["start_ms"]),
        }
        for span in ranked[:10]
    ]
    return report


def render_critpath(report: CritPathReport) -> str:
    """Text report for ``repro trace --critpath``."""
    lines: List[str] = [
        f"horizon: {report.horizon_ms:.3f} ms over {report.span_count} spans"
        f"  (coverage {report.coverage * 100.0:.1f}%)",
        f"scenario bound: {report.bound}",
        "",
    ]
    rows: List[List[object]] = []
    for device in report.devices:
        rows.append(
            [device.device]
            + [device.by_category.get(c, 0.0) for c in CATEGORIES]
            + [device.overlap_ms, device.bound]
        )
    rows.append(
        ["overall"]
        + [report.overall.get(c, 0.0) for c in CATEGORIES]
        + ["-", report.bound]
    )
    lines.append(
        render_table(
            ["Device"] + [f"{c} (ms)" for c in CATEGORIES] + ["overlap (ms)", "bound"],
            rows,
            title="Critical-path attribution (exclusive, compute > h2d > d2h > ipc > idle)",
        )
    )
    if report.top_spans:
        lines.append("")
        lines.append(
            render_table(
                ["Lane", "Span", "Category", "Duration (ms)"],
                [
                    (s["lane"], s["name"], s["category"], s["duration_ms"])
                    for s in report.top_spans
                ],
                title="Longest attributable spans",
            )
        )
    return "\n".join(lines)
