"""Design-space exploration sweeps.

"Simulation with multiple instances of virtual platforms enables many
important design decisions as part of the process of exploring the
design space of the target systems" (paper Section 1).  This module is
that use case as a library: sweep candidate *target* GPU configurations
(clock, SM count, cache, memory bandwidth) and predict each candidate's
execution time and power for a workload — using the same profile-based
estimation flow of Section 4, so one host profiling run serves every
candidate.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence

from ..core.estimation import ExecutionAnalyzer
from ..gpu.arch import CacheGeometry, GPUArchitecture, QUADRO_4000, TEGRA_K1
from ..kernels.compiler import KernelCompiler
from ..workloads.base import WorkloadSpec


def derive_architecture(base: GPUArchitecture, name: str, **overrides) -> GPUArchitecture:
    """A candidate target: ``base`` with selected fields replaced.

    Cache fields may be overridden via ``cache_size_kb`` /
    ``cache_associativity`` / ``cache_miss_penalty_cycles`` without
    constructing a :class:`CacheGeometry` by hand.
    """
    cache_overrides = {}
    for key, field_name in (
        ("cache_size_kb", "size_kb"),
        ("cache_associativity", "associativity"),
        ("cache_miss_penalty_cycles", "miss_penalty_cycles"),
        ("cache_line_bytes", "line_bytes"),
    ):
        if key in overrides:
            cache_overrides[field_name] = overrides.pop(key)
    cache = (
        dataclasses.replace(base.cache, **cache_overrides)
        if cache_overrides
        else base.cache
    )
    return dataclasses.replace(base, name=name, cache=cache, **overrides)


@dataclass(frozen=True)
class DesignPoint:
    """One candidate target's predicted behaviour for a workload."""

    name: str
    arch: GPUArchitecture
    estimated_time_ms: float
    estimated_power_w: float

    @property
    def energy_mj(self) -> float:
        return self.estimated_power_w * self.estimated_time_ms / 1e3

    @property
    def energy_delay_product(self) -> float:
        """EDP in mJ*ms — the usual embedded design-space metric."""
        return self.energy_mj * self.estimated_time_ms


def sweep_targets(
    spec: WorkloadSpec,
    candidates: Sequence[GPUArchitecture],
    host: GPUArchitecture = QUADRO_4000,
) -> List[DesignPoint]:
    """Predict time/power for each candidate target architecture.

    The kernel is profiled once on the host; each candidate then gets
    the C'' estimate and the Eq.-6 power estimate from that one profile
    — exactly the cheap exploration loop the paper's estimation method
    enables.
    """
    kernel, launch = spec.kernel, spec.launch_config()
    compiler = KernelCompiler()
    host_profile = ExecutionAnalyzer(host, candidates[0], compiler).profile_on_host(
        kernel, launch
    )
    points = []
    for candidate in candidates:
        analyzer = ExecutionAnalyzer(host, candidate, compiler)
        cycles = analyzer.estimate_c_double_prime(kernel, launch, host_profile)
        time_ms = analyzer.estimated_time_ms(cycles)
        power = analyzer.estimate_power(
            kernel, launch, cycles=cycles, host_profile=host_profile
        )
        points.append(
            DesignPoint(
                name=candidate.name,
                arch=candidate,
                estimated_time_ms=time_ms,
                estimated_power_w=power.total_w,
            )
        )
    return points


def pareto_front(points: Sequence[DesignPoint]) -> List[DesignPoint]:
    """The time/power Pareto-optimal candidates (both minimized)."""
    front = []
    for point in points:
        dominated = any(
            other.estimated_time_ms <= point.estimated_time_ms
            and other.estimated_power_w <= point.estimated_power_w
            and (
                other.estimated_time_ms < point.estimated_time_ms
                or other.estimated_power_w < point.estimated_power_w
            )
            for other in points
        )
        if not dominated:
            front.append(point)
    return sorted(front, key=lambda p: p.estimated_time_ms)


def sweep_suite(
    apps: Sequence[str],
    sm_counts: Sequence[int] = (1, 2, 4),
    clocks_mhz: Sequence[float] = (652.0, 852.0),
    host: GPUArchitecture = QUADRO_4000,
    workers: int = 1,
) -> Dict[str, List[DesignPoint]]:
    """Sweep the Tegra-scaling candidate grid across many workloads.

    This is the farm-parallel face of the exploration loop: every
    (app, SMX count, clock) combination is one independent estimation
    job, fanned over ``workers`` processes.  Candidates are re-derived
    from their grid coordinates on both sides, so the returned
    :class:`DesignPoint` objects carry the full architecture while the
    jobs themselves stay JSON-able.
    """
    from ..exec import jobs as farm_jobs
    from ..exec.farm import ScenarioFarm

    grid = [(sm, clock) for sm in sm_counts for clock in clocks_mhz]
    farm = ScenarioFarm(workers=workers)
    values = farm_jobs.fanout(
        farm,
        "repro.exec.jobs:sweep_point",
        [
            {"app": app, "sm_count": sm, "clock_mhz": clock,
             "host": host.name}
            for app in apps
            for sm, clock in grid
        ],
        label="sweep",
    )
    results: Dict[str, List[DesignPoint]] = {}
    index = 0
    for app in apps:
        points = []
        for sm, clock in grid:
            value = values[index]
            index += 1
            candidate = tegra_scaling_candidates(
                sm_counts=(sm,), clocks_mhz=(clock,)
            )[0]
            points.append(
                DesignPoint(
                    name=value["name"],
                    arch=candidate,
                    estimated_time_ms=value["estimated_time_ms"],
                    estimated_power_w=value["estimated_power_w"],
                )
            )
        results[app] = points
    return results


def tegra_scaling_candidates(
    sm_counts: Sequence[int] = (1, 2, 4),
    clocks_mhz: Sequence[float] = (652.0, 852.0),
) -> List[GPUArchitecture]:
    """A default candidate set: Tegra-K1-derived designs.

    Scales the SMX count (with proportional static power) and the clock
    (with roughly quadratic dynamic-energy impact folded into the
    per-instruction energies via a linear voltage proxy).
    """
    candidates = []
    for sm_count in sm_counts:
        for clock in clocks_mhz:
            voltage_proxy = clock / TEGRA_K1.clock_mhz
            energies = {
                itype: value * voltage_proxy**2
                for itype, value in TEGRA_K1.instruction_energy_nj.items()
            }
            candidates.append(
                derive_architecture(
                    TEGRA_K1,
                    name=f"TegraK1-like {sm_count}SMX @{clock:.0f}MHz",
                    sm_count=sm_count,
                    clock_mhz=clock,
                    static_power_w=TEGRA_K1.static_power_w * sm_count**0.7,
                    instruction_energy_nj=energies,
                    memory_bandwidth_gbps=TEGRA_K1.memory_bandwidth_gbps
                    * min(2.0, sm_count**0.5),
                )
            )
    return candidates
