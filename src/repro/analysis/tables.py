"""Regeneration of the paper's Table 1.

"Execution time of matrix multiplication" across six execution routes,
with the native-GPU run as the ratio base.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from ..core.scenarios import (
    run_c_program,
    run_emulation,
    run_native_gpu,
    run_sigma_vp,
)
from ..vp.cpu import HOST_XEON, QEMU_ARM_VP
from ..workloads.base import WorkloadSpec
from ..workloads.catalog import get_workload
from .reporting import render_table

#: The paper's Table 1 values (time in ms, ratio to native GPU).
PAPER_TABLE1 = {
    "CUDA / GPU": (170.79, 1.00),
    "CUDA / Emul. on CPU": (9141.51, 53.52),
    "CUDA / Emul. on VP": (374534.34, 2192.95),
    "CUDA / This work": (568.12, 3.32),
    "C / CPU": (8213.09, 48.09),
    "C / VP": (269874.03, 1580.15),
}


@dataclass(frozen=True)
class Table1Row:
    language: str
    executed_by: str
    time_ms: float
    ratio: float
    paper_time_ms: float
    paper_ratio: float

    @property
    def key(self) -> str:
        return f"{self.language} / {self.executed_by}"


def build_table1(
    spec: Optional[WorkloadSpec] = None, workers: int = 1
) -> List[Table1Row]:
    """Run all six Table 1 routes and return the rows, paper-ordered.

    Each route is an independent simulation; ``workers>1`` fans the six
    routes over the scenario farm.  A spec that is not the catalogued
    object of its name cannot be rebuilt by name inside a worker, so it
    keeps the serial path.
    """
    from ..exec import jobs as farm_jobs
    from ..exec.farm import ScenarioFarm
    from ..workloads.catalog import SUITE

    spec = spec or get_workload("matrixMul")
    routes = list(PAPER_TABLE1)
    if SUITE.get(spec.name) is spec:
        farm = ScenarioFarm(workers=workers)
        times = farm_jobs.fanout(
            farm,
            "repro.exec.jobs:table1_route",
            [{"route": route, "app": spec.name} for route in routes],
            label="table1",
        )
        measured = dict(zip(routes, times))
    else:
        measured = {
            "CUDA / GPU": run_native_gpu(spec).total_ms,
            "CUDA / Emul. on CPU": run_emulation(spec, cpu=HOST_XEON).total_ms,
            "CUDA / Emul. on VP": run_emulation(spec, cpu=QEMU_ARM_VP).total_ms,
            "CUDA / This work": run_sigma_vp(spec, n_vps=1).total_ms,
            "C / CPU": run_c_program(spec, cpu=HOST_XEON).total_ms,
            "C / VP": run_c_program(spec, cpu=QEMU_ARM_VP).total_ms,
        }
    native = measured["CUDA / GPU"]
    rows = []
    for key, time_ms in measured.items():
        language, executed_by = key.split(" / ", 1)
        paper_time, paper_ratio = PAPER_TABLE1[key]
        rows.append(
            Table1Row(
                language=language,
                executed_by=executed_by,
                time_ms=time_ms,
                ratio=time_ms / native,
                paper_time_ms=paper_time,
                paper_ratio=paper_ratio,
            )
        )
    return rows


def render_table1(rows: List[Table1Row]) -> str:
    return render_table(
        ["Language", "Executed by", "Time (ms)", "Ratio",
         "Paper (ms)", "Paper ratio"],
        [
            (r.language, r.executed_by, r.time_ms, r.ratio,
             r.paper_time_ms, r.paper_ratio)
            for r in rows
        ],
        title="Table 1: Execution time of matrix multiplication",
    )
