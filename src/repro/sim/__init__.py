"""A compact deterministic discrete-event simulation kernel.

This package is the substrate for every timed component of the SigmaVP
reproduction: host GPU engines, IPC channels, virtual platforms, and the
framework orchestration all run as coroutine processes in one
:class:`~repro.sim.engine.Environment`.
"""

from .domains import DomainEdge, DomainPlan, ShardedEnvironment
from .engine import EmptySchedule, Environment, StopSimulation
from .events import (
    AllOf,
    AnyOf,
    Condition,
    Event,
    Interrupt,
    Process,
    Timeout,
)
from .resources import PriorityItem, PriorityStore, Request, Resource, Store

__all__ = [
    "AllOf",
    "AnyOf",
    "Condition",
    "DomainEdge",
    "DomainPlan",
    "EmptySchedule",
    "Environment",
    "Event",
    "ShardedEnvironment",
    "Interrupt",
    "PriorityItem",
    "PriorityStore",
    "Process",
    "Request",
    "Resource",
    "Store",
    "StopSimulation",
    "Timeout",
]
