"""The discrete-event simulation environment.

:class:`Environment` owns simulated time and the pending-event heap.  All
timed components of the SigmaVP reproduction — host GPU engines, IPC
channels, virtual platforms — are coroutine processes running inside one
environment, so a single ``env.run()`` advances the entire simulated host
machine deterministically.
"""

from __future__ import annotations

import heapq
from itertools import count
from typing import Any, Generator, Iterable, List, Optional, Tuple

from ..obs import metrics as _obs_metrics
from ..obs import timeseries as _obs_timeseries
from .events import (
    NORMAL,
    AllOf,
    AnyOf,
    Event,
    Process,
    Timeout,
)


class EmptySchedule(Exception):
    """Raised by :meth:`Environment.step` when no events remain."""


class StopSimulation(Exception):
    """Signals :meth:`Environment.run` to return early."""


class Environment:
    """Execution environment for a deterministic event-driven simulation.

    Time is a float in **milliseconds** throughout this project: the paper
    reports kernel and copy times in milliseconds, so using them natively
    keeps every number legible against the paper's figures.
    """

    def __init__(self, initial_time: float = 0.0):
        self._now = float(initial_time)
        self._queue: List[Tuple[float, int, int, Event]] = []
        # Tie-break counter for the heap; a bound ``count().__next__``
        # avoids the load/store attribute churn of ``self._eid += 1`` on
        # the hottest call of the simulation.
        self._next_eid = count().__next__
        self._active_process: Optional[Process] = None

    def __repr__(self) -> str:
        return f"<Environment now={self._now} pending={len(self._queue)}>"

    @property
    def now(self) -> float:
        """Current simulated time in milliseconds."""
        return self._now

    @property
    def pending(self) -> int:
        """Number of scheduled events that have not fired yet."""
        return len(self._queue)

    @property
    def active_process(self) -> Optional[Process]:
        return self._active_process

    # -- event construction helpers ------------------------------------

    def event(self) -> Event:
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        return Timeout(self, delay, value)

    def process(
        self, generator: Generator, label: Optional[str] = None
    ) -> Process:
        return Process(self, generator, label=label)

    def domain_of(self, label: Optional[str]) -> int:
        """Simulation domain for a new process (see ``repro.sim.domains``).

        The serial engine runs everything in domain 0; a sharded
        environment overrides this to place labeled components on their
        partition's event heap.
        """
        return 0

    def all_of(self, events: Iterable[Event]) -> AllOf:
        return AllOf(self, events)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        return AnyOf(self, events)

    # -- scheduling and the event loop ----------------------------------

    def schedule(self, event: Event, priority: int = NORMAL, delay: float = 0.0) -> None:
        """Enqueue ``event`` to fire ``delay`` ms from now."""
        heapq.heappush(
            self._queue, (self._now + delay, priority, self._next_eid(), event)
        )

    def peek(self) -> float:
        """Time of the next scheduled event, or ``inf`` if none."""
        if not self._queue:
            return float("inf")
        return self._queue[0][0]

    def step(self) -> None:
        """Process the single next event."""
        try:
            when, _priority, _eid, event = heapq.heappop(self._queue)
        except IndexError:
            raise EmptySchedule() from None

        if when < self._now:
            raise RuntimeError(
                f"event scheduled in the past: {when} < {self._now}"
            )
        self._now = when

        # Event-loop observability: one module-attribute check when the
        # registry is disabled (the loop is the simulation's hottest path).
        registry = _obs_metrics.REGISTRY
        if registry is not None:
            registry.counter("sim.events_processed").inc()
            # Time-series sampling rides inside the registry guard so the
            # telemetry-off loop stays a single attribute check; sampling
            # reads metric values at simulated-time-aligned points and is
            # therefore deterministic and digest-neutral.
            sampler = _obs_timeseries.SAMPLER
            if sampler is not None and self._now >= sampler.next_due_ms:
                sampler.sample(self._now)

        callbacks, event.callbacks = event.callbacks, None
        if callbacks is not None:
            for callback in callbacks:
                callback(event)

        if not event._ok and not getattr(event, "_defused", False):
            # An unhandled failure: surface it rather than losing it.
            exc = event._value
            raise exc

    def _run_loop(self, stop_at: float) -> None:
        """Drain all events strictly before ``stop_at``.

        ``peek() == inf`` doubles as the exhaustion check.  Subclasses
        with partitioned heaps may override this hot loop (the sharded
        environment inlines an n-way-merge drain) but must preserve its
        contract exactly: events fire in ``(time, priority, sequence)``
        order, :class:`StopSimulation` propagates to :meth:`run`, and the
        loop returns once the next event is at or past ``stop_at``.
        """
        while self.peek() < stop_at:
            self.step()

    def run(self, until: Any = None) -> Any:
        """Run until ``until`` (an event, a time, or exhaustion).

        * ``until is None`` — run until no events remain.
        * ``until`` is a number — run until simulated time reaches it.
        * ``until`` is an :class:`Event` — run until it fires and return
          its value.
        """
        stop_at = float("inf")
        stop_event: Optional[Event] = None

        if until is not None:
            if isinstance(until, Event):
                stop_event = until
                if stop_event.processed:
                    return stop_event.value
                assert stop_event.callbacks is not None
                stop_event.callbacks.append(self._stop_callback)
            else:
                stop_at = float(until)
                if stop_at <= self._now:
                    raise ValueError(
                        f"until ({stop_at}) must be greater than now ({self._now})"
                    )

        try:
            self._run_loop(stop_at)
        except StopSimulation:
            assert stop_event is not None
            if not stop_event._ok:
                raise stop_event._value
            return stop_event.value

        if stop_event is not None and not stop_event.triggered:
            raise RuntimeError(
                "simulation ran out of events before the awaited event fired"
            )
        if stop_at != float("inf"):
            self._now = stop_at
        if stop_event is not None:
            if not stop_event._ok:
                raise stop_event._value
            return stop_event.value
        return None

    @staticmethod
    def _stop_callback(event: Event) -> None:
        event._defused = True
        raise StopSimulation()
