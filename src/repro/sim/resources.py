"""Shared-resource primitives: FIFO resources and item stores.

The host GPU's copy and compute engines are modelled as capacity-1
:class:`Resource` objects, which gives non-preemptive FIFO service — the
exact behaviour the Kernel Interleaving optimization exploits by choosing
*which* job enters each engine next.  :class:`Store` provides blocking
producer/consumer queues for IPC channels and the host job queue.
"""

from __future__ import annotations

import heapq
from types import TracebackType
from typing import Any, Callable, List, Optional, Type

from .engine import Environment
from .events import Event


class Request(Event):
    """A pending claim on a :class:`Resource`; usable as a context manager."""

    def __init__(self, resource: "Resource"):
        super().__init__(resource.env)
        self.resource = resource
        resource._do_request(self)

    def __enter__(self) -> "Request":
        return self

    def __exit__(
        self,
        exc_type: Optional[Type[BaseException]],
        exc_value: Optional[BaseException],
        traceback: Optional[TracebackType],
    ) -> None:
        self.resource.release(self)

    def cancel(self) -> None:
        """Withdraw a request that has not been granted yet."""
        self.resource._cancel(self)


class Resource:
    """A capacity-limited resource with FIFO granting."""

    def __init__(self, env: Environment, capacity: int = 1):
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self.env = env
        self._capacity = capacity
        self.users: List[Request] = []
        self.queue: List[Request] = []

    @property
    def capacity(self) -> int:
        return self._capacity

    @property
    def count(self) -> int:
        """Number of users currently holding the resource."""
        return len(self.users)

    def request(self) -> Request:
        return Request(self)

    def release(self, request: Request) -> None:
        """Return the resource and grant the next queued request."""
        try:
            self.users.remove(request)
        except ValueError:
            raise RuntimeError("releasing a request that does not hold the resource")
        self._grant_pending()

    def _do_request(self, request: Request) -> None:
        if len(self.users) < self._capacity:
            self.users.append(request)
            request.succeed()
        else:
            self.queue.append(request)

    def _cancel(self, request: Request) -> None:
        if request in self.queue:
            self.queue.remove(request)
        elif request in self.users:
            self.release(request)

    def _grant_pending(self) -> None:
        while self.queue and len(self.users) < self._capacity:
            nxt = self.queue.pop(0)
            self.users.append(nxt)
            nxt.succeed()


class StorePut(Event):
    def __init__(self, store: "Store", item: Any):
        super().__init__(store.env)
        self.item = item
        store._do_put(self)


class StoreGet(Event):
    def __init__(self, store: "Store", predicate: Optional[Callable[[Any], bool]] = None):
        super().__init__(store.env)
        self.predicate = predicate
        store._do_get(self)


class Store:
    """A FIFO store of items with blocking put/get.

    ``get`` optionally takes a predicate (a *filter store* in simpy terms),
    which the IPC manager uses to let each consumer wait for messages
    addressed to it.
    """

    def __init__(self, env: Environment, capacity: float = float("inf")):
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self.env = env
        self._capacity = capacity
        self.items: List[Any] = []
        self._putters: List[StorePut] = []
        self._getters: List[StoreGet] = []

    @property
    def capacity(self) -> float:
        return self._capacity

    def __len__(self) -> int:
        return len(self.items)

    def put(self, item: Any) -> StorePut:
        return StorePut(self, item)

    def get(self, predicate: Optional[Callable[[Any], bool]] = None) -> StoreGet:
        return StoreGet(self, predicate)

    def _do_put(self, event: StorePut) -> None:
        if len(self.items) < self._capacity:
            self.items.append(event.item)
            event.succeed()
            self._serve_getters()
        else:
            self._putters.append(event)

    def _do_get(self, event: StoreGet) -> None:
        self._getters.append(event)
        self._serve_getters()
        self._serve_putters()

    def _serve_getters(self) -> None:
        remaining: List[StoreGet] = []
        for getter in self._getters:
            matched = None
            if getter.predicate is None:
                if self.items:
                    matched = self.items.pop(0)
            else:
                for index, item in enumerate(self.items):
                    if getter.predicate(item):
                        matched = self.items.pop(index)
                        break
            if matched is not None:
                getter.succeed(matched)
            else:
                remaining.append(getter)
        self._getters = remaining

    def _serve_putters(self) -> None:
        while self._putters and len(self.items) < self._capacity:
            putter = self._putters.pop(0)
            self.items.append(putter.item)
            putter.succeed()
            self._serve_getters()


class PriorityItem:
    """Wraps an item with an ordering key for :class:`PriorityStore`."""

    __slots__ = ("priority", "item")

    def __init__(self, priority: Any, item: Any):
        self.priority = priority
        self.item = item

    def __lt__(self, other: "PriorityItem") -> bool:
        return self.priority < other.priority

    def __repr__(self) -> str:
        return f"PriorityItem({self.priority!r}, {self.item!r})"


class PriorityStore(Store):
    """A store that yields the lowest-priority item first."""

    def _do_put(self, event: StorePut) -> None:
        if len(self.items) < self._capacity:
            heapq.heappush(self.items, event.item)
            event.succeed()
            self._serve_getters()
        else:
            self._putters.append(event)

    def _serve_getters(self) -> None:
        remaining: List[StoreGet] = []
        for getter in self._getters:
            if getter.predicate is not None:
                raise NotImplementedError("PriorityStore does not support predicates")
            if self.items:
                getter.succeed(heapq.heappop(self.items))
            else:
                remaining.append(getter)
        self._getters = remaining

    def _serve_putters(self) -> None:
        while self._putters and len(self.items) < self._capacity:
            putter = self._putters.pop(0)
            heapq.heappush(self.items, putter.item)
            putter.succeed()
            self._serve_getters()
