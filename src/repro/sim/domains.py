"""Time-decoupled simulation domains with conservative epoch sync.

A large ΣVP scenario is one discrete-event simulation whose components
cluster naturally: each virtual platform talks only to the host side
through IPC, and each host GPU serves only the VPs placed on it.  This
module partitions such a scenario into **domains** — disjoint groups of
components, each with its own event heap — and advances them under a
conservative epoch protocol in the style of parallel SystemC virtual
platforms and parallelized GPU simulators:

* every domain may run freely up to a **lookahead horizon** derived from
  the minimum latency of any cross-domain edge (IPC submit/respond
  latency and the coalescing-window settle period are the only edges in
  a ΣVP scenario);
* at the horizon the domains exchange boundary events and the **global
  epoch** advances.

The in-process :class:`ShardedEnvironment` keeps the protocol *exact*
rather than merely conservative: domain heaps are popped in global
``(time, priority, sequence)`` order — an n-way merge — so the observable
event order is bit-identical to the serial single-heap engine for any
partition whatsoever.  What sharding changes is the *shape* of the work:
each heap is smaller (cheaper pushes/pops), and consecutive events
overwhelmingly come from one domain at a time (the run-length locality
the epoch counters measure).  The executors in :mod:`repro.exec.shard`
go further for edge-free partitions: with no cross-domain edge the
lookahead horizon is unbounded, so each per-GPU domain can run to
completion as its own sub-simulation — sequentially in one process
(``run_sharded_inproc``) or on separate workers (``run_sharded_mp``).

Event → domain routing follows *process identity*: every
:class:`~repro.sim.events.Process` carries a domain (resolved from its
component label at spawn time, see :meth:`DomainPlan.domain_of`), and
any event scheduled while a process runs lands on that process's heap.
Events scheduled outside any process (setup code, condition callbacks)
land on the control domain 0.  Because the merge is exact, routing is a
locality decision, never a correctness one.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

from ..obs import metrics as _obs_metrics
from ..obs import timeseries as _obs_timeseries
from .engine import EmptySchedule, Environment
from .events import NORMAL, Event, Process

__all__ = [
    "DEFAULT_LOOKAHEAD_MS",
    "MIN_LOOKAHEAD_MS",
    "DomainEdge",
    "DomainPlan",
    "ShardedEnvironment",
    "scenario_plan",
]

#: Lookahead when a plan declares no cross-domain edges (a fully
#: decoupled partition could use any horizon; this keeps epoch counters
#: meaningful).
DEFAULT_LOOKAHEAD_MS = 1.0

#: Floor for the derived lookahead: a zero-latency edge would collapse
#: the epoch protocol to lockstep.
MIN_LOOKAHEAD_MS = 1e-3

#: One pending-event heap entry: (time, priority, sequence, event).
#: Sequence numbers are globally unique, so entries never compare the
#: Event object and the tuple order *is* the serial engine's pop order.
_Entry = Tuple[float, int, int, Event]


@dataclass(frozen=True)
class DomainEdge:
    """A declared cross-domain interaction and its minimum latency.

    Components declare these when a plan is attached (the IPC manager
    declares its transport latency both ways; the coalescer declares its
    settle window).  The minimum over all positive edge latencies is the
    conservative lookahead: no domain can affect another sooner than
    that, so every domain may safely run ``lookahead_ms`` past the last
    synchronization point.
    """

    src: str
    dst: str
    latency_ms: float
    kind: str = "message"

    def __post_init__(self) -> None:
        if self.latency_ms < 0:
            raise ValueError(
                f"edge {self.src}->{self.dst}: negative latency {self.latency_ms}"
            )


class DomainPlan:
    """Maps component labels to simulation domains and records edges.

    ``assign`` receives a component label (e.g. ``"vp:vp3/app"`` or
    ``"gpu:1/compute"``) and returns a domain index, or ``None`` to let
    the spawning process's domain be inherited.  Assignments are
    memoized per label so they are stable for the lifetime of a run.
    """

    def __init__(
        self,
        n_domains: int,
        assign: Optional[Callable[[str], Optional[int]]] = None,
        name: str = "custom",
    ) -> None:
        if n_domains < 1:
            raise ValueError(f"n_domains must be >= 1, got {n_domains}")
        self.n_domains = n_domains
        self.name = name
        self._assign = assign
        # Memoized per component (kind, name) prefix — labels may carry a
        # per-instance suffix (e.g. one per dispatched job), so keying on
        # the full label would grow without bound.
        self._memo: Dict[Tuple[str, str], Optional[int]] = {}
        self.edges: List[DomainEdge] = []

    def __repr__(self) -> str:
        return (
            f"<DomainPlan {self.name!r} domains={self.n_domains} "
            f"edges={len(self.edges)}>"
        )

    def domain_of(self, label: str) -> Optional[int]:
        """Domain for a labeled component, or ``None`` to inherit.

        Assignment must be a function of the ``kind:name`` component
        prefix (the part before any ``/`` suffix); it is memoized on
        that prefix so per-instance suffixes stay cheap.
        """
        key = self._component(label)
        if key in self._memo:
            return self._memo[key]
        domain: Optional[int] = None
        if self._assign is not None:
            domain = self._assign(label)
            if domain is not None:
                if not 0 <= domain < self.n_domains:
                    raise ValueError(
                        f"assign({label!r}) -> {domain} outside "
                        f"[0, {self.n_domains})"
                    )
        self._memo[key] = domain
        return domain

    def declare_edge(
        self, src: str, dst: str, latency_ms: float, kind: str = "message"
    ) -> None:
        """Record a cross-domain interaction with its minimum latency."""
        self.edges.append(DomainEdge(src, dst, latency_ms, kind))

    @property
    def lookahead_ms(self) -> float:
        """Conservative horizon: minimum positive cross-domain latency."""
        latencies = [edge.latency_ms for edge in self.edges]
        if not latencies:
            return DEFAULT_LOOKAHEAD_MS
        return max(min(latencies), MIN_LOOKAHEAD_MS)

    # -- stock partitioning rules ---------------------------------------

    @staticmethod
    def _component(label: str) -> Tuple[str, str]:
        """Split ``"vp:vp3/app"`` into ``("vp", "vp3")``; ``("", label)``
        when the label carries no ``kind:name`` prefix."""
        kind, sep, rest = label.partition(":")
        if not sep:
            return "", label
        name = rest.partition("/")[0]
        return kind, name

    @classmethod
    def round_robin(cls, n_domains: int) -> "DomainPlan":
        """VPs spread round-robin over domains 1..n-1; host side in 0.

        With ``n_domains == 1`` this is the serial engine's layout on the
        sharded loop (the shards=1 conformance case).
        """
        seen: Dict[str, int] = {}

        def assign(label: str) -> Optional[int]:
            kind, name = cls._component(label)
            if kind != "vp" or n_domains == 1:
                return 0 if kind in ("vp", "gpu", "dispatcher") else None
            if name not in seen:
                seen[name] = 1 + len(seen) % (n_domains - 1)
            return seen[name]

        return cls(n_domains, assign, name=f"round-robin({n_domains})")

    @classmethod
    def per_gpu(
        cls, n_gpus: int, device_of: Callable[[str], Optional[int]]
    ) -> "DomainPlan":
        """One domain per host GPU, plus the control domain 0.

        ``device_of`` maps a VP name to its (predicted) host device so a
        VP shares a heap with the engines that serve it; VPs it cannot
        place stay on the control domain.
        """
        n_domains = 1 + max(1, n_gpus)

        def assign(label: str) -> Optional[int]:
            kind, name = cls._component(label)
            if kind == "gpu":
                try:
                    return 1 + int(name) % n_gpus
                except ValueError:
                    return 0
            if kind == "vp":
                device = device_of(name)
                if device is None:
                    return 0
                return 1 + device % n_gpus
            if kind == "dispatcher":
                return 0
            return None

        return cls(n_domains, assign, name=f"per-gpu({n_gpus})")

    @classmethod
    def per_vp_group(cls, n_groups: int) -> "DomainPlan":
        """One domain per VP group (first-seen order), control in 0."""
        if n_groups < 1:
            raise ValueError(f"n_groups must be >= 1, got {n_groups}")
        seen: Dict[str, int] = {}

        def assign(label: str) -> Optional[int]:
            kind, name = cls._component(label)
            if kind == "vp":
                if name not in seen:
                    seen[name] = 1 + len(seen) % n_groups
                return seen[name]
            if kind in ("gpu", "dispatcher"):
                return 0
            return None

        return cls(1 + n_groups, assign, name=f"per-vp-group({n_groups})")


def scenario_plan(
    shards: object,
    n_vps: int,
    n_host_gpus: int,
    vp_names: Optional[List[str]] = None,
    default_placement: bool = True,
) -> Optional[DomainPlan]:
    """Build a :class:`DomainPlan` for a standard ΣVP scenario.

    ``shards`` is the CLI-facing spec: an integer domain count,
    ``"per-gpu"``, or ``"per-vp-group"``; ``None``/``0``/``1`` disable
    sharding (the serial engine is the shards=1 case by definition).

    ``per-gpu`` co-locates each VP with the device round-robin placement
    will bind it to (first use happens in sorted-name order, so the
    binding is position-in-sorted-order modulo device count).  With a
    non-default placement the prediction is skipped and VPs ride the
    control domain — a locality loss only, never a correctness one.
    """
    if shards in (None, 0, 1, "none", ""):
        return None
    names = sorted(vp_names if vp_names is not None else [f"vp{i}" for i in range(n_vps)])
    if shards == "per-gpu":
        device: Dict[str, int] = (
            {name: i % max(1, n_host_gpus) for i, name in enumerate(names)}
            if default_placement
            else {}
        )
        return DomainPlan.per_gpu(max(1, n_host_gpus), device.get)
    if shards == "per-vp-group":
        return DomainPlan.per_vp_group(max(1, len(names)))
    try:
        n_domains = int(shards)  # type: ignore[call-overload]
    except (TypeError, ValueError):
        raise ValueError(
            f"shards must be an int, 'per-gpu', or 'per-vp-group'; got {shards!r}"
        ) from None
    if n_domains < 1:
        raise ValueError(f"shards must be >= 1, got {n_domains}")
    return DomainPlan.round_robin(n_domains)


class ShardedEnvironment(Environment):
    """A partitioned-heap environment, exact-merged in global event order.

    Each domain owns a heap; :meth:`step` pops the globally smallest
    ``(time, priority, sequence)`` entry.  The pop loop exploits run
    lengths: while the current domain's head stays below every other
    domain's head, no scan of the other heaps is needed — the common
    case, since components interact across domains only at IPC and
    coalescing boundaries.  Epoch counters track how a conservative
    parallel execution of the same partition would synchronize.
    """

    def __init__(self, plan: DomainPlan, initial_time: float = 0.0) -> None:
        super().__init__(initial_time)
        self.plan = plan
        self._heaps: List[List[_Entry]] = [[] for _ in range(plan.n_domains)]
        #: Domain whose heap the pop loop is currently draining.
        self._current = 0
        #: Smallest head entry among all *other* domains (None if empty);
        #: maintained incrementally by schedule(), rebuilt on switches.
        self._other_min: Optional[_Entry] = None
        self._lookahead = plan.lookahead_ms
        self._horizon = initial_time + self._lookahead
        #: Conservative-sync bookkeeping.
        self.epochs = 0
        self.switches = 0
        self.boundary_events = 0
        self.events_per_domain = [0] * plan.n_domains

    def __repr__(self) -> str:
        return (
            f"<ShardedEnvironment now={self._now} domains={len(self._heaps)} "
            f"pending={self.pending} epochs={self.epochs}>"
        )

    @property
    def pending(self) -> int:
        return sum(len(heap) for heap in self._heaps)

    @property
    def lookahead_ms(self) -> float:
        """Current conservative horizon step."""
        return self._lookahead

    def refresh_lookahead(self) -> None:
        """Re-derive the lookahead after components declared their edges.

        The environment is constructed before the framework wires IPC and
        coalescing, so the plan's edge list is empty at init time; the
        framework calls this once wiring is complete.
        """
        self._lookahead = self.plan.lookahead_ms
        self._horizon = self._now + self._lookahead

    def domain_of(self, label: Optional[str]) -> int:
        if label is not None:
            domain = self.plan.domain_of(label)
            if domain is not None:
                return domain
        process = self._active_process
        if process is not None:
            return process._domain
        return 0

    # -- the partitioned event loop -------------------------------------

    def schedule(self, event: Event, priority: int = NORMAL, delay: float = 0.0) -> None:
        """Enqueue ``event`` on the active process's domain heap."""
        process = self._active_process
        domain = process._domain if process is not None else 0
        entry = (self._now + delay, priority, self._next_eid(), event)
        heapq.heappush(self._heaps[domain], entry)
        if domain != self._current:
            other = self._other_min
            if other is None or entry < other:
                self._other_min = entry

    def peek(self) -> float:
        heap = self._heaps[self._current]
        other = self._other_min
        if heap:
            head = heap[0]
            if other is not None and other < head:
                return other[0]
            return head[0]
        if other is not None:
            return other[0]
        return float("inf")

    def _switch(self) -> List[_Entry]:
        """Move to the domain holding the globally smallest head.

        Rebuilds the cached other-domain minimum; called only when the
        current domain's run ends, so its O(domains) scan amortizes over
        the run length.
        """
        best: Optional[_Entry] = None
        best_domain = self._current
        for domain, heap in enumerate(self._heaps):
            if heap and (best is None or heap[0] < best):
                best = heap[0]
                best_domain = domain
        other: Optional[_Entry] = None
        for domain, heap in enumerate(self._heaps):
            if domain != best_domain and heap and (other is None or heap[0] < other):
                other = heap[0]
        if best is not None and best_domain != self._current:
            self.switches += 1
        self._current = best_domain
        self._other_min = other
        return self._heaps[best_domain]

    def step(self) -> None:
        """Process the single globally next event (exact n-way merge)."""
        current = self._current
        heap = self._heaps[current]
        other = self._other_min
        if not heap or (other is not None and other < heap[0]):
            heap = self._switch()
            current = self._current
            if not heap:
                raise EmptySchedule()
        when, _priority, _eid, event = heapq.heappop(heap)

        if when < self._now:
            raise RuntimeError(
                f"event scheduled in the past: {when} < {self._now}"
            )
        self._now = when
        self.events_per_domain[current] += 1
        if when >= self._horizon:
            # A conservative parallel run would synchronize here: every
            # domain has drained up to the horizon, boundary events are
            # exchanged, and the next epoch's horizon opens.
            self.epochs += 1
            self._horizon = when + self._lookahead

        registry = _obs_metrics.REGISTRY
        if registry is not None:
            registry.counter("sim.events_processed").inc()
            sampler = _obs_timeseries.SAMPLER
            if sampler is not None and self._now >= sampler.next_due_ms:
                sampler.sample(self._now)

        callbacks, event.callbacks = event.callbacks, None
        if callbacks:
            if registry is not None:
                # Boundary accounting (obs-gated: it walks callbacks): an
                # event firing in one domain that resumes a process of
                # another is exactly a cross-domain boundary message.
                for callback in callbacks:
                    owner = getattr(callback, "__self__", None)
                    if (
                        isinstance(owner, Process)
                        and owner._domain != current
                    ):
                        self.boundary_events += 1
            for callback in callbacks:
                callback(event)

        if not event._ok and not getattr(event, "_defused", False):
            exc = event._value
            raise exc

    def _run_loop(self, stop_at: float) -> None:
        """Inlined n-way-merge drain (see :meth:`Environment._run_loop`).

        Semantically identical to ``while self.peek() < stop_at:
        self.step()`` but restructured around run-length locality: within
        a run the loop touches only the current domain's heap and
        re-checks the cached other-domain minimum with a single tuple
        comparison per event, instead of paying the serial loop's
        ``peek()`` + ``step()`` call overhead against a merged view.
        This is where sharding pays for its bookkeeping: heap operations
        land on smaller heaps *and* the per-event dispatch is cheaper.
        """
        heaps = self._heaps
        pop = heapq.heappop
        events = self.events_per_domain
        while True:
            heap = heaps[self._current]
            other = self._other_min
            if not heap or (other is not None and other < heap[0]):
                heap = self._switch()
                other = self._other_min
                if not heap:
                    return
            current = self._current
            # The registry check is hoisted to once per run: with
            # telemetry off the drain carries zero observability cost.
            # (A callback toggling the registry mid-run is picked up at
            # the next domain switch; enable/disable is a between-runs
            # operation everywhere in this codebase.)
            instrumented = _obs_metrics.REGISTRY is not None
            n_events = 0
            try:
                while True:
                    head = heap[0]
                    if other is not None and other < head:
                        break  # run over: another domain holds the head
                    when = head[0]
                    if when >= stop_at:
                        return
                    pop(heap)
                    event = head[3]
                    if when < self._now:
                        raise RuntimeError(
                            f"event scheduled in the past: {when} < {self._now}"
                        )
                    self._now = when
                    n_events += 1
                    if when >= self._horizon:
                        self.epochs += 1
                        self._horizon = when + self._lookahead

                    callbacks, event.callbacks = event.callbacks, None
                    if instrumented:
                        self._observe(when, current, callbacks)
                    if callbacks:
                        for callback in callbacks:
                            callback(event)

                    if not event._ok and not getattr(event, "_defused", False):
                        raise event._value
                    # Callbacks may have scheduled cross-domain work; the
                    # cached minimum is the only state that can move.
                    other = self._other_min
                    if not heap:
                        break
            finally:
                events[current] += n_events

    def _observe(
        self,
        when: float,
        current: int,
        callbacks: Optional[List[Callable[[Event], None]]],
    ) -> None:
        """Per-event observability: the instrumented half of the drain."""
        registry = _obs_metrics.REGISTRY
        if registry is None:
            return
        registry.counter("sim.events_processed").inc()
        sampler = _obs_timeseries.SAMPLER
        if sampler is not None and when >= sampler.next_due_ms:
            sampler.sample(when)
        if callbacks:
            # Boundary accounting (obs-gated: it walks callbacks): an
            # event firing in one domain that resumes a process of
            # another is exactly a cross-domain boundary message.
            for callback in callbacks:
                owner = getattr(callback, "__self__", None)
                if isinstance(owner, Process) and owner._domain != current:
                    self.boundary_events += 1

    # -- reporting -------------------------------------------------------

    def domain_stats(self) -> Dict[str, object]:
        """Epoch/boundary statistics for observability collection."""
        return {
            "plan": self.plan.name,
            "domains": len(self._heaps),
            "lookahead_ms": self._lookahead,
            "epochs": self.epochs,
            "switches": self.switches,
            "boundary_events": self.boundary_events,
            "events_per_domain": list(self.events_per_domain),
            "edges": len(self.plan.edges),
        }
