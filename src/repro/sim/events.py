"""Event primitives for the discrete-event simulation kernel.

The simulation kernel follows the classic coroutine-process style:
processes are Python generators that yield :class:`Event` objects and are
resumed when those events fire.  The design intentionally mirrors a small
subset of simpy's semantics so the behaviour is familiar, but the
implementation here is self-contained (no third-party dependency).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Callable, Generator, Iterable, List, Optional

if TYPE_CHECKING:
    from .engine import Environment

#: Sentinel for an event that has not been triggered yet.
PENDING = object()


def _annotate(exc: BaseException, note: str) -> None:
    """Attach ``note`` to ``exc`` when the runtime supports it (3.11+).

    Process crashes used to surface from :meth:`Environment.run` as a bare
    exception with no hint of *which* coroutine died; the note carries the
    owning component label and the simulated time of death.
    """
    add_note = getattr(exc, "add_note", None)
    if add_note is not None:
        existing = getattr(exc, "__notes__", None) or []
        if note not in existing:
            add_note(note)

#: Event processing priorities: URGENT events (process resumptions) run
#: before NORMAL events scheduled for the same simulated instant.
URGENT = 0
NORMAL = 1


class Interrupt(Exception):
    """Raised inside a process when another process interrupts it.

    The ``cause`` carries whatever object the interrupter passed, which the
    interrupted process can inspect to decide how to proceed.  SigmaVP's
    VP-control module uses interrupts to implement stop/resume of virtual
    platforms for synchronous kernel interleaving.
    """

    def __init__(self, cause: Any = None):
        super().__init__(cause)

    @property
    def cause(self) -> Any:
        return self.args[0]


class Event:
    """A one-shot occurrence in simulated time.

    An event starts *pending*, becomes *triggered* once scheduled with a
    value (or an exception), and *processed* once its callbacks have run.

    Events are the highest-volume objects of a simulation (every copy,
    kernel, timeout, and process resumption allocates at least one), so
    the class and its subclasses in this module carry ``__slots__``.
    Subclasses defined elsewhere may omit ``__slots__`` and regain a
    ``__dict__`` as usual.
    """

    __slots__ = ("env", "callbacks", "_value", "_ok", "_defused")

    #: Set (never read) on a failed event whose exception has been
    #: delivered to a waiter; the engine's step() re-raises undefused
    #: failures so they cannot be silently lost.
    _defused: bool

    def __init__(self, env: "Environment"):
        self.env = env
        self.callbacks: Optional[List[Callable[["Event"], None]]] = []
        self._value: Any = PENDING
        self._ok = True

    def __repr__(self) -> str:
        state = "pending"
        if self.triggered:
            state = "triggered"
        if self.processed:
            state = "processed"
        return f"<{self.__class__.__name__} {state} at {hex(id(self))}>"

    @property
    def triggered(self) -> bool:
        """True once the event has a value and is scheduled to fire."""
        return self._value is not PENDING

    @property
    def processed(self) -> bool:
        """True once callbacks have run (the event fired)."""
        return self.callbacks is None

    @property
    def ok(self) -> bool:
        """True if the event succeeded (only meaningful once triggered)."""
        return self._ok

    @property
    def value(self) -> Any:
        if self._value is PENDING:
            raise RuntimeError(f"value of {self!r} is not yet available")
        return self._value

    def succeed(self, value: Any = None) -> "Event":
        """Trigger the event successfully with ``value``."""
        if self.triggered:
            raise RuntimeError(f"{self!r} has already been triggered")
        self._ok = True
        self._value = value
        self.env.schedule(self, priority=NORMAL)
        return self

    def fail(self, exception: BaseException) -> "Event":
        """Trigger the event with an exception to be raised in waiters."""
        if self.triggered:
            raise RuntimeError(f"{self!r} has already been triggered")
        if not isinstance(exception, BaseException):
            raise TypeError(f"{exception!r} is not an exception")
        self._ok = False
        self._value = exception
        self.env.schedule(self, priority=NORMAL)
        return self


class Timeout(Event):
    """An event that fires after a fixed simulated delay."""

    __slots__ = ("_delay",)

    def __init__(self, env: "Environment", delay: float, value: Any = None):
        if delay < 0:
            raise ValueError(f"negative delay {delay}")
        super().__init__(env)
        self._delay = delay
        self._ok = True
        self._value = value
        env.schedule(self, priority=NORMAL, delay=delay)

    @property
    def delay(self) -> float:
        return self._delay


class Initialize(Event):
    """Internal event that kicks off a newly created process."""

    __slots__ = ()

    def __init__(self, env: "Environment", process: "Process"):
        super().__init__(env)
        assert self.callbacks is not None
        self.callbacks.append(process._resume)
        self._ok = True
        self._value = None
        env.schedule(self, priority=URGENT)


class Process(Event):
    """A coroutine process driven by the events it yields.

    The process itself is an event that fires when the generator finishes;
    its value is the generator's return value.  This lets processes wait on
    other processes directly (``yield env.process(...)``).
    """

    __slots__ = ("_generator", "_target", "_label", "_domain")

    def __init__(
        self,
        env: "Environment",
        generator: Generator[Event, Any, Any],
        label: Optional[str] = None,
    ):
        if not hasattr(generator, "throw"):
            raise TypeError(f"{generator!r} is not a generator")
        super().__init__(env)
        self._generator = generator
        self._target: Optional[Event] = None
        # Component identity for error reporting and domain routing; both
        # must be in place before Initialize schedules the first resume.
        self._label = label
        self._domain = env.domain_of(label)
        Initialize(env, self)

    @property
    def target(self) -> Optional[Event]:
        """The event this process is currently waiting on."""
        return self._target

    @property
    def label(self) -> Optional[str]:
        """Component label for error reporting (e.g. ``"vp:vp3/app"``)."""
        return self._label

    @property
    def domain(self) -> int:
        """Simulation domain this process's events are routed to."""
        return self._domain

    def _describe(self) -> str:
        if self._label is not None:
            return self._label
        gen = self._generator
        name = getattr(gen, "__qualname__", None) or getattr(gen, "__name__", None)
        return name if isinstance(name, str) else repr(gen)

    @property
    def is_alive(self) -> bool:
        return self._value is PENDING

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at the current time."""
        if not self.is_alive:
            raise RuntimeError(f"{self!r} has terminated and cannot be interrupted")
        if self is self.env.active_process:
            raise RuntimeError("a process is not allowed to interrupt itself")

        interrupt_event = Event(self.env)
        interrupt_event._ok = False
        interrupt_event._value = Interrupt(cause)
        interrupt_event._defused = True
        interrupt_event.callbacks = [self._resume]
        self.env.schedule(interrupt_event, priority=URGENT)
        # Detach from the old target so the original event no longer resumes
        # this process when it eventually fires.
        if self._target is not None and self._target.callbacks is not None:
            try:
                self._target.callbacks.remove(self._resume)
            except ValueError:
                pass

    def _resume(self, event: Event) -> None:
        self.env._active_process = self
        while True:
            if event._ok:
                try:
                    next_event = self._generator.send(event._value)
                except StopIteration as exc:
                    self._ok = True
                    self._value = getattr(exc, "value", None)
                    self.env.schedule(self, priority=NORMAL)
                    break
                except BaseException as exc:
                    _annotate(
                        exc,
                        f"raised in simulation process {self._describe()!r} "
                        f"at t={self.env.now}ms",
                    )
                    self._ok = False
                    self._value = exc
                    self.env.schedule(self, priority=NORMAL)
                    break
            else:
                # Mark the failure as handled: it is being delivered.
                event._defused = True
                exc = event._value
                try:
                    next_event = self._generator.throw(exc)
                except StopIteration as stop:
                    self._ok = True
                    self._value = getattr(stop, "value", None)
                    self.env.schedule(self, priority=NORMAL)
                    break
                except BaseException as raised:
                    _annotate(
                        raised,
                        f"raised in simulation process {self._describe()!r} "
                        f"at t={self.env.now}ms",
                    )
                    self._ok = False
                    self._value = raised
                    self.env.schedule(self, priority=NORMAL)
                    break

            if not isinstance(next_event, Event):
                self._generator.throw(
                    TypeError(f"process yielded a non-event: {next_event!r}")
                )
                continue
            if next_event.env is not self.env:
                self._generator.throw(
                    ValueError("process yielded an event from another environment")
                )
                continue

            if next_event.callbacks is not None:
                # Event has not fired yet: register and suspend.
                next_event.callbacks.append(self._resume)
                self._target = next_event
                break
            # Event already processed: deliver its value immediately.
            event = next_event

        self.env._active_process = None


class Condition(Event):
    """Waits on several events; fires per the ``evaluate`` predicate."""

    __slots__ = ("_evaluate", "_events", "_count")

    def __init__(
        self,
        env: "Environment",
        evaluate: Callable[[List[Event], int], bool],
        events: Iterable[Event],
    ):
        super().__init__(env)
        self._evaluate = evaluate
        self._events = list(events)
        self._count = 0

        for event in self._events:
            if event.env is not env:
                raise ValueError("events from different environments")

        if not self._events:
            self.succeed(self._collect_values())
            return

        for event in self._events:
            if event.callbacks is None:
                self._check(event)
            else:
                event.callbacks.append(self._check)

    def _collect_values(self) -> dict:
        # Only *processed* events count: a Timeout carries its value from
        # construction but has not fired until its callbacks have run.
        return {
            event: event._value
            for event in self._events
            if event.processed and event._ok
        }

    def _check(self, event: Event) -> None:
        if self.triggered:
            return
        self._count += 1
        if not event._ok:
            event._defused = True
            self.fail(event._value)
        elif self._evaluate(self._events, self._count):
            self.succeed(self._collect_values())

    @staticmethod
    def all_events(events: List[Event], count: int) -> bool:
        return len(events) == count

    @staticmethod
    def any_events(events: List[Event], count: int) -> bool:
        return count > 0 or not events


class AllOf(Condition):
    """Fires when every given event has fired."""

    __slots__ = ()

    def __init__(self, env: "Environment", events: Iterable[Event]):
        super().__init__(env, Condition.all_events, events)


class AnyOf(Condition):
    """Fires when any one of the given events has fired."""

    __slots__ = ()

    def __init__(self, env: "Environment", events: Iterable[Event]):
        super().__init__(env, Condition.any_events, events)
