"""The daemon's wire protocol: newline-delimited JSON frames.

One frame per line, UTF-8, canonical JSON.  Client requests carry an
``op`` plus op-specific fields; the daemon answers every request with at
least one frame carrying ``ok`` (``true``/``false``).  Failures are
*structured*: ``{"ok": false, "error": {"code": ..., "message": ...}}``
— a malformed line, an unknown schema version, a full queue, and an
unknown job id are all distinguishable by machine-readable code.

Ops (client -> daemon):

======== ============================================================
op        meaning
======== ============================================================
ping      liveness probe; answers with daemon identity and counts
submit    a :class:`~repro.api.RunRequest` payload under ``request``
status    one job's current record (``job_id``)
result    one job's terminal record, error if not terminal yet
wait      block until the job is terminal; answers with the record
watch     stream one event frame per state transition, then close out
cancel    cancel a queued or running job
jobs      list job records (optionally filtered by ``tenant``)
stats     queue/worker counters, metrics snapshot, Prometheus text
shutdown  graceful stop; ``drain`` finishes running jobs first
======== ============================================================

The submission payload is exactly :meth:`repro.api.RunRequest.to_dict`
— the daemon re-validates it through :meth:`RunRequest.from_dict`, so
local and remote validation cannot drift.  Protocol changes ride the
RunRequest ``schema`` field; frames themselves carry no separate
version (the socket is local, client and daemon come from one tree).
"""

from __future__ import annotations

import enum
import json
from typing import Any, Dict, Optional

__all__ = [
    "MAX_FRAME_BYTES",
    "OPS",
    "JobState",
    "ProtocolError",
    "decode_frame",
    "encode_frame",
    "error_frame",
    "ok_frame",
]

#: Hard cap on one frame's encoded size.  A RunRequest is a few hundred
#: bytes; anything near this limit is a malformed or hostile client.
MAX_FRAME_BYTES = 1 << 20

#: The ops a daemon understands (unknown ops get ``unknown-op``).
OPS = (
    "ping", "submit", "status", "result", "wait", "watch", "cancel",
    "jobs", "stats", "shutdown",
)


class JobState(str, enum.Enum):
    """Lifecycle of one submitted job.

    ``QUEUED -> RUNNING -> DONE`` is the happy path.  ``CANCELLED``
    may be entered from ``QUEUED`` or ``RUNNING``; ``FAILED`` carries a
    structured error from execution; ``FAULTED`` is the deterministic
    replay outcome for a job that was mid-run when the daemon died.
    A gracefully stopped daemon *requeues* running jobs (back to
    ``QUEUED``) before exiting, so ``FAULTED`` only ever means a crash.
    """

    QUEUED = "queued"
    RUNNING = "running"
    DONE = "done"
    FAILED = "failed"
    CANCELLED = "cancelled"
    FAULTED = "faulted"

    @property
    def terminal(self) -> bool:
        return self in (
            JobState.DONE, JobState.FAILED, JobState.CANCELLED,
            JobState.FAULTED,
        )


class ProtocolError(Exception):
    """A frame the daemon cannot act on, with a machine-readable code."""

    def __init__(self, code: str, message: str) -> None:
        super().__init__(message)
        self.code = code
        self.message = message

    def frame(self) -> Dict[str, Any]:
        return error_frame(self.code, self.message)


def encode_frame(payload: Dict[str, Any]) -> bytes:
    """One frame: canonical JSON plus the line terminator."""
    line = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    data = line.encode("utf-8") + b"\n"
    if len(data) > MAX_FRAME_BYTES:
        raise ProtocolError(
            "frame-too-large",
            f"frame of {len(data)} bytes exceeds the {MAX_FRAME_BYTES} cap",
        )
    return data


def decode_frame(line: bytes) -> Dict[str, Any]:
    """Parse one received line into a frame dict (structured errors)."""
    if len(line) > MAX_FRAME_BYTES:
        raise ProtocolError(
            "frame-too-large",
            f"frame of {len(line)} bytes exceeds the {MAX_FRAME_BYTES} cap",
        )
    try:
        payload = json.loads(line.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ProtocolError("bad-frame", f"not a JSON frame: {exc}") from None
    if not isinstance(payload, dict):
        raise ProtocolError(
            "bad-frame",
            f"frame must be a JSON object, got {type(payload).__name__}",
        )
    return payload


def ok_frame(event: str, **data: Any) -> Dict[str, Any]:
    """A success frame: ``{"ok": true, "event": ..., **data}``."""
    frame: Dict[str, Any] = {"ok": True, "event": event}
    frame.update(data)
    return frame


def error_frame(
    code: str, message: str, job_id: Optional[str] = None
) -> Dict[str, Any]:
    """A structured failure frame."""
    frame: Dict[str, Any] = {
        "ok": False,
        "error": {"code": code, "message": message},
    }
    if job_id is not None:
        frame["job_id"] = job_id
    return frame
