"""The ``repro serve`` daemon: socket server, scheduler, worker spawner.

One :class:`ServeDaemon` owns four kinds of thread plus one process per
running job:

* an **accept loop** on the Unix socket, spawning a handler thread per
  client connection (``wait``/``watch`` block their own connection, so
  thread-per-connection is the natural shape);
* a **scheduler loop** that, whenever a worker slot is free, asks the
  :class:`~repro.serve.queue.ServiceQueue` for the policy's pick among
  tenant heads and forks a worker **process** for it;
* a **reaper thread** per running job, polling the worker process and
  the job's cancel flag (cancel mid-run = ``terminate()`` — a forked
  process is the cancellation boundary the paper's farm already
  implies: scenarios are independent, so killing one cannot corrupt
  another).

Execution inside the worker is :func:`repro.api.run` — the farm's
``run_job`` with its config-hash key, deterministic seed and disk-cache
layers — so a daemon-produced digest is bit-identical to the local
path.  The daemon pre-warms the kernel compiler *before* forking; with
the ``fork`` start method every worker inherits the warm caches and
skips cold-compile cost, the service-shaped analog of the farm's pool
initializer.

Every state transition journals (append + fsync) **before** it is
acknowledged to any client, which is what makes restart recovery
deterministic: replay of the journal alone reconstructs the queue.
"""

from __future__ import annotations

import multiprocessing
import os
import queue as _thread_queue
import socketserver
import threading
import time
import traceback
from pathlib import Path
from typing import Any, Dict, List, Optional, Union

from ..api import RequestError, RunRequest
from ..obs.metrics import MetricsRegistry
from .journal import Journal, replay_journal
from .protocol import (
    OPS,
    JobState,
    ProtocolError,
    decode_frame,
    encode_frame,
    error_frame,
    ok_frame,
)
from .queue import (
    DEFAULT_MAX_DEPTH,
    DEFAULT_TENANT_QUOTA,
    QueueFullError,
    QuotaExceededError,
    ServiceJob,
    ServiceQueue,
)

__all__ = ["ServeDaemon"]

#: How often reaper threads poll a worker process for exit/cancel.
_REAP_POLL_S = 0.02

#: How often the scheduler loop re-checks for free slots / new work.
_SCHED_POLL_S = 0.02


def _worker_main(payload: Dict[str, Any], conn: Any) -> None:
    """Worker-process entry: execute one request, ship the outcome back.

    Runs in a forked child.  Uses :func:`repro.api.run` so the executed
    path (and therefore the digest) is identical to a local ``run()``.
    """
    try:
        from ..api import run

        request = RunRequest.from_dict(payload)
        outcome = run(request)
        conn.send(
            {
                "ok": True,
                "value": outcome.value,
                "digest": outcome.digest,
                "duration_s": outcome.duration_s,
                "worker_pid": os.getpid(),
            }
        )
    except BaseException as exc:  # noqa: BLE001 - must report, not raise
        conn.send(
            {
                "ok": False,
                "error": {
                    "code": "execution-error",
                    "message": f"{type(exc).__name__}: {exc}",
                    "traceback": traceback.format_exc(limit=20),
                },
            }
        )
    finally:
        conn.close()


class ServeDaemon:
    """The multi-tenant simulation service behind one Unix socket."""

    def __init__(
        self,
        socket_path: Optional[Union[str, Path]] = None,
        state_dir: Optional[Union[str, Path]] = None,
        max_depth: int = DEFAULT_MAX_DEPTH,
        tenant_quota: int = DEFAULT_TENANT_QUOTA,
        policy: str = "fair-share",
        policy_options: Optional[Dict[str, Any]] = None,
        max_workers: int = 1,
        warm: bool = True,
        fsync_journal: bool = True,
    ) -> None:
        from . import default_socket_path, default_state_dir

        if max_workers < 1:
            raise ValueError(f"max_workers must be >= 1, got {max_workers}")
        self.state_dir = (
            Path(state_dir) if state_dir is not None else default_state_dir()
        )
        self.socket_path = (
            Path(socket_path)
            if socket_path is not None
            else default_socket_path()
        )
        self.journal_path = self.state_dir / "journal.jsonl"
        self.max_workers = max_workers
        self.warm = warm
        self.queue = ServiceQueue(
            max_depth=max_depth,
            tenant_quota=tenant_quota,
            policy=policy,
            policy_options=policy_options,
        )
        #: Private registry: the daemon's own counters never clobber the
        #: process-global observability state a host test may be using.
        self.registry = MetricsRegistry()
        self._journal = Journal(self.journal_path, fsync=fsync_journal)
        self._lock = threading.RLock()
        #: Every job this daemon knows, replayed or live, by id.
        self._jobs: Dict[str, ServiceJob] = {}
        #: Jobs currently executing, by id, with their process + reaper.
        self._procs: Dict[str, multiprocessing.Process] = {}
        #: Per-job watch subscriptions (thread queues fed on transitions).
        self._watchers: Dict[str, List["_thread_queue.Queue[Dict[str, Any]]"]] = {}
        #: Signals any job state change (``wait`` op blocks on this).
        self._transition = threading.Condition(self._lock)
        self._next_job_number = 1
        self._stop = threading.Event()
        self._drain = False
        self._server: Optional[socketserver.ThreadingUnixStreamServer] = None
        self._threads: List[threading.Thread] = []
        self.started_at = 0.0
        self._recover()

    # -- recovery ----------------------------------------------------------

    def _recover(self) -> None:
        """Replay the journal: resume queued jobs, fault mid-run ones."""
        records, stats = replay_journal(self.journal_path)
        faulted = 0
        resumed = 0
        for record in records:
            job_id = record["job_id"]
            number = _job_number(job_id)
            if number is not None:
                self._next_job_number = max(self._next_job_number, number + 1)
            try:
                request = RunRequest.from_dict(record["request"])
            except RequestError:
                continue  # journaled under an older schema; unrecoverable
            job = ServiceJob(
                job_id=job_id,
                request=request,
                tenant=record["tenant"],
                qos=record["qos"],
                state=record["state"],
            )
            job.value = record["value"]
            job.digest = record["digest"]
            job.error = record["error"]
            self._jobs[job_id] = job
            if job.state is JobState.QUEUED:
                # Accepted work survives the restart: requeue bypasses
                # admission (the depth check already passed once).
                self.queue.requeue(job)
                job.requeues -= 1  # requeue() counts; recovery is not one
                resumed += 1
            elif record.get("promoted_fault"):
                # Replay decided the fault; make it durable so the next
                # restart folds to the same answer without re-deciding.
                self._journal.append(
                    {"type": "fault", "job_id": job_id, "error": job.error}
                )
                faulted += 1
        self.recovery = {
            "resumed": resumed,
            "faulted": faulted,
            "replayed": stats["records"],
            "torn": stats["torn"],
        }

    # -- lifecycle ---------------------------------------------------------

    def start(self) -> None:
        """Bind the socket and start accept + scheduler threads."""
        if self._server is not None:
            raise RuntimeError("daemon already started")
        if self.warm:
            from ..exec.farm import warm_worker

            # Warm the compiler before any fork: children inherit the
            # compiled-kernel caches instead of cold-compiling per job.
            warm_worker()
        self.socket_path.parent.mkdir(parents=True, exist_ok=True)
        if self.socket_path.exists():
            self.socket_path.unlink()
        daemon = self

        class _Handler(socketserver.StreamRequestHandler):
            def handle(self) -> None:
                daemon._serve_connection(self)

        self._server = socketserver.ThreadingUnixStreamServer(
            str(self.socket_path), _Handler
        )
        self._server.daemon_threads = True
        self.started_at = time.time()
        accept = threading.Thread(
            target=self._server.serve_forever,
            kwargs={"poll_interval": 0.05},
            name="repro-serve-accept",
            daemon=True,
        )
        sched = threading.Thread(
            target=self._scheduler_loop, name="repro-serve-sched", daemon=True
        )
        self._threads = [accept, sched]
        for thread in self._threads:
            thread.start()

    def stop(self, drain: bool = False, timeout: float = 30.0) -> None:
        """Graceful shutdown.

        ``drain=True`` lets running jobs finish; otherwise they are
        terminated and **requeued** (journaled), so no accepted work is
        lost — a restarted daemon resumes them.  Queued jobs stay queued
        in the journal either way.
        """
        with self._lock:
            self._drain = drain
        self._stop.set()
        if self._server is not None:
            self._server.shutdown()
            self._server.server_close()
            self._server = None
        deadline = time.time() + timeout
        if drain:
            while self._procs and time.time() < deadline:
                time.sleep(_REAP_POLL_S)
        with self._lock:
            running = [
                self._jobs[job_id] for job_id in list(self._procs)
            ]
        for job in running:
            proc = self._procs.get(job.job_id)
            if proc is not None and proc.is_alive():
                proc.terminate()
                proc.join(timeout=5.0)
            with self._lock:
                self._procs.pop(job.job_id, None)
                if not job.state.terminal:
                    self._journal.append(
                        {"type": "requeue", "job_id": job.job_id}
                    )
                    self.queue.requeue(job)
                    self._notify(job)
        for thread in self._threads:
            thread.join(timeout=5.0)
        self._threads = []
        self._journal.close()
        if self.socket_path.exists():
            self.socket_path.unlink()

    @property
    def running(self) -> bool:
        """True while the socket server is up (false after stop())."""
        return self._server is not None

    def __enter__(self) -> "ServeDaemon":
        self.start()
        return self

    def __exit__(self, *exc: object) -> None:
        self.stop()

    # -- scheduling and execution -----------------------------------------

    def _scheduler_loop(self) -> None:
        while not self._stop.is_set():
            launched = self._launch_next()
            if not launched:
                time.sleep(_SCHED_POLL_S)

    def _launch_next(self) -> bool:
        """Start the policy's next pick if a worker slot is free."""
        with self._lock:
            if self._stop.is_set() or len(self._procs) >= self.max_workers:
                return False
            job = self.queue.next_job()
            if job is None:
                return False
            if job.cancel_requested:
                # Cancelled while queued but popped before the cancel op
                # found it: honor the cancel instead of running.
                self.queue.mark_finished(job)
                self._finish(job, JobState.CANCELLED, error=None)
                return True
            parent_conn, child_conn = multiprocessing.Pipe(duplex=False)
            proc = multiprocessing.get_context("fork").Process(
                target=_worker_main,
                args=(job.request.to_dict(), child_conn),
                name=f"repro-serve-{job.job_id}",
                daemon=True,
            )
            job.started_at = time.time()
            self._journal.append({"type": "start", "job_id": job.job_id})
            proc.start()
            child_conn.close()
            job.worker_pid = proc.pid
            self._procs[job.job_id] = proc
            self.registry.counter("serve.jobs.started").inc()
            self._notify(job)
        reaper = threading.Thread(
            target=self._reap,
            args=(job, proc, parent_conn),
            name=f"repro-serve-reap-{job.job_id}",
            daemon=True,
        )
        reaper.start()
        return True

    def _reap(
        self,
        job: ServiceJob,
        proc: multiprocessing.Process,
        conn: Any,
    ) -> None:
        """Wait out one worker: result, failure, or mid-run cancel."""
        outcome: Optional[Dict[str, Any]] = None
        while True:
            if job.cancel_requested:
                proc.terminate()
                proc.join(timeout=5.0)
                break
            if conn.poll(_REAP_POLL_S):
                try:
                    outcome = conn.recv()
                except EOFError:
                    outcome = None
                proc.join(timeout=5.0)
                break
            if not proc.is_alive():
                # Exited without reporting: died on a signal/oom.
                break
            if self._stop.is_set() and not self._drain:
                # stop() owns termination + requeue from here.
                conn.close()
                return
        conn.close()
        with self._lock:
            self._procs.pop(job.job_id, None)
            self.queue.mark_finished(job)
            if job.cancel_requested and outcome is None:
                self._finish(job, JobState.CANCELLED, error=None)
            elif outcome is None:
                self._finish(
                    job,
                    JobState.FAILED,
                    error={
                        "code": "worker-died",
                        "message": (
                            f"worker process exited with code "
                            f"{proc.exitcode} before reporting a result"
                        ),
                    },
                )
            elif outcome.get("ok"):
                job.value = outcome["value"]
                job.digest = outcome["digest"]
                job.worker_pid = outcome.get("worker_pid", job.worker_pid)
                if job.started_at is not None:
                    self.queue.observe_duration(
                        job, time.time() - job.started_at
                    )
                self._finish(job, JobState.DONE, error=None)
            else:
                self._finish(job, JobState.FAILED, error=outcome.get("error"))

    def _finish(
        self,
        job: ServiceJob,
        state: JobState,
        error: Optional[Dict[str, Any]],
    ) -> None:
        """Journal + apply one terminal transition (caller holds lock)."""
        job.state = state
        job.error = error
        job.finished_at = time.time()
        record: Dict[str, Any] = {"job_id": job.job_id}
        if state is JobState.DONE:
            record.update(type="done", value=job.value, digest=job.digest)
        elif state is JobState.CANCELLED:
            record.update(type="cancel", where="running")
        else:
            record.update(type="fail", error=error)
        self._journal.append(record)
        self.registry.counter(f"serve.jobs.{state.value}").inc()
        self._notify(job)

    def _notify(self, job: ServiceJob) -> None:
        """Broadcast one transition to waiters and watchers."""
        frame = ok_frame("transition", **job.record(include_request=False))
        for watcher in self._watchers.get(job.job_id, []):
            watcher.put(frame)
        self._transition.notify_all()

    # -- protocol ops ------------------------------------------------------

    def _serve_connection(self, handler: socketserver.StreamRequestHandler) -> None:
        """One client connection: frames in, frames out, until EOF."""
        while not self._stop.is_set():
            try:
                line = handler.rfile.readline()
            except (OSError, ValueError):
                return
            if not line:
                return
            if line.strip() == b"":
                continue
            try:
                frames = self._dispatch(decode_frame(line), handler)
            except ProtocolError as exc:
                frames = [exc.frame()]
            except RequestError as exc:
                frames = [error_frame(exc.code, exc.message)]
            except Exception as exc:  # noqa: BLE001 - protocol boundary
                frames = [
                    error_frame(
                        "internal-error", f"{type(exc).__name__}: {exc}"
                    )
                ]
            try:
                for frame in frames:
                    handler.wfile.write(encode_frame(frame))
                handler.wfile.flush()
            except (OSError, ValueError, BrokenPipeError):
                return

    def _dispatch(
        self,
        frame: Dict[str, Any],
        handler: socketserver.StreamRequestHandler,
    ) -> List[Dict[str, Any]]:
        op = frame.get("op")
        if op not in OPS:
            raise ProtocolError(
                "unknown-op",
                f"unknown op {op!r}; this daemon speaks: {', '.join(OPS)}",
            )
        if op == "ping":
            return [self._op_ping()]
        if op == "submit":
            return [self._op_submit(frame)]
        if op == "status":
            return [ok_frame("status", **self._get_job(frame).record())]
        if op == "result":
            return [self._op_result(frame)]
        if op == "wait":
            return [self._op_wait(frame)]
        if op == "watch":
            return self._op_watch(frame, handler)
        if op == "cancel":
            return [self._op_cancel(frame)]
        if op == "jobs":
            return [self._op_jobs(frame)]
        if op == "stats":
            return [self._op_stats()]
        # shutdown
        drain = bool(frame.get("drain", False))
        threading.Thread(
            target=self.stop, kwargs={"drain": drain}, daemon=True
        ).start()
        return [ok_frame("shutdown", drain=drain)]

    def _op_ping(self) -> Dict[str, Any]:
        with self._lock:
            return ok_frame(
                "pong",
                pid=os.getpid(),
                started_at=self.started_at,
                queued=self.queue.depth(),
                running=len(self._procs),
                jobs=len(self._jobs),
                policy=self.queue.policy_name,
                max_depth=self.queue.max_depth,
                recovery=self.recovery,
            )

    def _op_submit(self, frame: Dict[str, Any]) -> Dict[str, Any]:
        payload = frame.get("request")
        request = RunRequest.from_dict(payload)  # RequestError -> error frame
        with self._lock:
            job_id = f"job-{self._next_job_number:06d}"
            self._next_job_number += 1
            job = ServiceJob(
                job_id=job_id,
                request=request,
                tenant=request.tenant,
                qos=request.qos,
            )
            job.submitted_at = time.time()
            try:
                self.queue.submit(job)
            except QueueFullError as exc:
                self.registry.counter("serve.rejected.queue_full").inc()
                return error_frame("queue-full", str(exc))
            except QuotaExceededError as exc:
                self.registry.counter("serve.rejected.quota").inc()
                return error_frame("quota-exceeded", str(exc))
            # Journal *after* admission (a rejected submit leaves no
            # trace) but before the ack (an acked job is durable).
            self._journal.append(
                {
                    "type": "submit",
                    "job_id": job_id,
                    "request": request.to_dict(),
                    "tenant": job.tenant,
                    "qos": job.qos,
                    "seq": job.seq,
                }
            )
            self._jobs[job_id] = job
            self.registry.counter("serve.jobs.submitted").inc()
            self._notify(job)
            return ok_frame("submitted", **job.record())

    def _get_job(self, frame: Dict[str, Any]) -> ServiceJob:
        job_id = frame.get("job_id")
        if not isinstance(job_id, str):
            raise ProtocolError("bad-frame", "op requires a 'job_id' string")
        with self._lock:
            job = self._jobs.get(job_id)
        if job is None:
            raise ProtocolError("unknown-job", f"no such job: {job_id}")
        return job

    def _op_result(self, frame: Dict[str, Any]) -> Dict[str, Any]:
        job = self._get_job(frame)
        with self._lock:
            if not job.state.terminal:
                return error_frame(
                    "not-finished",
                    f"job {job.job_id} is {job.state.value}; use 'wait'",
                    job_id=job.job_id,
                )
            return ok_frame("result", **job.record())

    def _op_wait(self, frame: Dict[str, Any]) -> Dict[str, Any]:
        job = self._get_job(frame)
        timeout = frame.get("timeout")
        deadline = (time.time() + float(timeout)) if timeout else None
        with self._transition:
            while not job.state.terminal:
                remaining = None
                if deadline is not None:
                    remaining = deadline - time.time()
                    if remaining <= 0:
                        return error_frame(
                            "wait-timeout",
                            f"job {job.job_id} still {job.state.value} "
                            f"after {timeout}s",
                            job_id=job.job_id,
                        )
                self._transition.wait(timeout=remaining or 1.0)
                if self._stop.is_set() and not job.state.terminal:
                    return error_frame(
                        "daemon-stopping",
                        "daemon is shutting down; job will be requeued",
                        job_id=job.job_id,
                    )
            return ok_frame("result", **job.record())

    def _op_watch(
        self,
        frame: Dict[str, Any],
        handler: socketserver.StreamRequestHandler,
    ) -> List[Dict[str, Any]]:
        """Stream a frame per transition until the job is terminal.

        Writes directly to the connection (this handler thread is
        dedicated to it), then returns the final record as the
        dispatcher's reply.
        """
        job = self._get_job(frame)
        events: "_thread_queue.Queue[Dict[str, Any]]" = _thread_queue.Queue()
        with self._lock:
            self._watchers.setdefault(job.job_id, []).append(events)
            snapshot = ok_frame(
                "transition", **job.record(include_request=False)
            )
            terminal = job.state.terminal
        try:
            handler.wfile.write(encode_frame(snapshot))
            handler.wfile.flush()
            while not terminal and not self._stop.is_set():
                try:
                    event = events.get(timeout=0.5)
                except _thread_queue.Empty:
                    continue
                handler.wfile.write(encode_frame(event))
                handler.wfile.flush()
                terminal = JobState(event["state"]).terminal
        finally:
            with self._lock:
                watchers = self._watchers.get(job.job_id, [])
                if events in watchers:
                    watchers.remove(events)
                if not watchers:
                    self._watchers.pop(job.job_id, None)
        return [ok_frame("watch-end", **job.record())]

    def _op_cancel(self, frame: Dict[str, Any]) -> Dict[str, Any]:
        job = self._get_job(frame)
        with self._lock:
            if job.state.terminal:
                return error_frame(
                    "already-finished",
                    f"job {job.job_id} already {job.state.value}",
                    job_id=job.job_id,
                )
            job.cancel_requested = True
            if job.state is JobState.QUEUED:
                removed = self.queue.cancel_queued(job.job_id)
                if removed is not None:
                    job.finished_at = time.time()
                    job.state = JobState.CANCELLED
                    self._journal.append(
                        {
                            "type": "cancel",
                            "job_id": job.job_id,
                            "where": "queued",
                        }
                    )
                    self.registry.counter("serve.jobs.cancelled").inc()
                    self._notify(job)
                    return ok_frame("cancelled", **job.record())
            # Running (or mid-pop): the reaper terminates the worker and
            # journals the cancel; the client observes it via wait/watch.
            return ok_frame("cancelling", **job.record())

    def _op_jobs(self, frame: Dict[str, Any]) -> Dict[str, Any]:
        tenant = frame.get("tenant")
        with self._lock:
            jobs = sorted(self._jobs.values(), key=lambda j: j.job_id)
            if tenant is not None:
                jobs = [j for j in jobs if j.tenant == tenant]
            return ok_frame(
                "jobs",
                jobs=[j.record(include_request=False) for j in jobs],
            )

    def _op_stats(self) -> Dict[str, Any]:
        with self._lock:
            states: Dict[str, int] = {}
            tenants: Dict[str, int] = {}
            for job in self._jobs.values():
                states[job.state.value] = states.get(job.state.value, 0) + 1
                tenants[job.tenant] = tenants.get(job.tenant, 0) + 1
            return ok_frame(
                "stats",
                queued=self.queue.depth(),
                running=len(self._procs),
                max_depth=self.queue.max_depth,
                tenant_quota=self.queue.tenant_quota,
                policy=self.queue.policy_name,
                states=states,
                tenants=tenants,
                metrics=self.registry.snapshot(),
                journal_records=self._journal.records_written,
                recovery=self.recovery,
            )


def _job_number(job_id: str) -> Optional[int]:
    """The numeric suffix of a ``job-NNNNNN`` id, if it has one."""
    prefix, _, suffix = job_id.rpartition("-")
    if prefix == "job" and suffix.isdigit():
        return int(suffix)
    return None
