"""The daemon's admission-controlled, tenant-scheduled job queue.

Admission is explicit: a full queue **rejects** (``QueueFullError``,
surfaced to the client as a ``queue-full`` error frame), it never
silently drops; per-tenant quotas (``QuotaExceededError``) keep one
chatty tenant from monopolizing the queue.

Tenant scheduling reuses the simulator's own select stage: each tenant
is represented to a registered :class:`~repro.sched.policies
.SchedulingPolicy` the way a VP is represented to the dispatcher — the
tenant's *oldest* queued job is its dispatchable head (per-tenant FIFO,
the service analog of per-VP partial order), and the policy picks among
heads.  ``fair-share`` therefore gives deficit-round-robin fairness
across tenants and ``priority-deadline`` gives QoS tiers with latency
budgets, with zero new scheduling code; the per-job ``qos`` field
threads straight into the policy's tier map.

The expected-duration oracle the duration-aware policies want is fed by
the queue itself: an exponential moving average of observed wall time
per (app, n_vps) scenario shape, so fair-share charges tenants for what
their jobs actually cost.
"""

from __future__ import annotations

import itertools
import threading
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from ..api import RunRequest
from ..core.jobs import Job, JobKind
from ..sched.backlog import EngineBacklog
from ..sched.policies import SchedulingPolicy
from ..sched.registry import make_policy
from ..sim import Environment
from .protocol import JobState

__all__ = [
    "DEFAULT_MAX_DEPTH",
    "QueueFullError",
    "QuotaExceededError",
    "ServiceJob",
    "ServiceQueue",
]

#: Default bound on queued (not yet running) jobs.
DEFAULT_MAX_DEPTH = 64

#: Default per-tenant cap on queued + running jobs (0 = unlimited).
DEFAULT_TENANT_QUOTA = 16

#: Fallback expected duration before any observation exists, in ms.
_DEFAULT_ESTIMATE_MS = 1000.0

#: EMA smoothing for observed job durations.
_ESTIMATE_ALPHA = 0.3


class QueueFullError(Exception):
    """Admission rejected a submission: the queue is at max depth."""


class QuotaExceededError(Exception):
    """Admission rejected a submission: the tenant is at its quota."""


_service_seq = itertools.count()


@dataclass
class ServiceJob:
    """One submitted job's live record inside the daemon."""

    job_id: str
    request: RunRequest
    tenant: str
    #: Effective QoS tier (request.qos, defaulted by the server config).
    qos: Optional[int]
    state: JobState = JobState.QUEUED
    #: Monotonic admission order across the daemon's lifetime.
    seq: int = field(default_factory=lambda: next(_service_seq))
    submitted_at: float = 0.0
    started_at: Optional[float] = None
    finished_at: Optional[float] = None
    worker_pid: Optional[int] = None
    value: Optional[Dict[str, Any]] = None
    digest: Optional[str] = None
    error: Optional[Dict[str, Any]] = None
    cancel_requested: bool = False
    #: Times this job was requeued by a graceful daemon stop.
    requeues: int = 0
    #: The policy-facing shim (a real scheduler Job whose ``vp`` is the
    #: tenant), minted at admission so policies see stable identities.
    shim: Optional[Job] = None

    def record(self, include_request: bool = True) -> Dict[str, Any]:
        """The JSON-able record frames and journal entries carry."""
        payload: Dict[str, Any] = {
            "job_id": self.job_id,
            "tenant": self.tenant,
            "qos": self.qos,
            "state": self.state.value,
            "seq": self.seq,
            "submitted_at": self.submitted_at,
            "started_at": self.started_at,
            "finished_at": self.finished_at,
            "worker_pid": self.worker_pid,
            "value": self.value,
            "digest": self.digest,
            "error": self.error,
            "requeues": self.requeues,
            "config_hash": self.request.config_hash,
            "label": f"{self.request.app}:{self.request.n_vps}vps",
        }
        if include_request:
            payload["request"] = self.request.to_dict()
        return payload


class ServiceQueue:
    """Bounded, journaling-agnostic queue with tenant-aware selection.

    Thread-safe: the daemon's connection handlers submit/cancel while
    the scheduler loop pops.  Persistence lives in the server (which
    journals around queue operations), so the queue itself stays a pure
    in-memory policy structure that unit tests can drive directly.
    """

    def __init__(
        self,
        max_depth: int = DEFAULT_MAX_DEPTH,
        tenant_quota: int = DEFAULT_TENANT_QUOTA,
        policy: str = "fair-share",
        policy_options: Optional[Dict[str, Any]] = None,
    ) -> None:
        if max_depth < 1:
            raise ValueError(f"max_depth must be >= 1, got {max_depth}")
        if tenant_quota < 0:
            raise ValueError(f"tenant_quota must be >= 0, got {tenant_quota}")
        self.max_depth = max_depth
        self.tenant_quota = tenant_quota
        self.policy_name = policy
        self.policy: SchedulingPolicy = make_policy(
            policy, **(policy_options or {})
        )
        self.policy.attach(self._expected_ms)
        self._lock = threading.RLock()
        #: Pending jobs per tenant, oldest (lowest seq) first.
        self._pending: Dict[str, List[ServiceJob]] = {}
        #: Jobs currently marked running (admission quota accounting).
        self._running: Dict[str, ServiceJob] = {}
        #: Dedicated event environment for policy-shim completion events.
        self._env = Environment()
        #: Backlog passed to the policy (engine-free: stays empty, which
        #: makes every policy's engine term a constant).
        self._backlog = EngineBacklog()
        #: EMA of observed wall ms per scenario shape key.
        self._estimates: Dict[str, float] = {}
        #: Shim job -> live record, for the expected-ms oracle.
        self._by_shim: Dict[int, ServiceJob] = {}

    # -- admission ---------------------------------------------------------

    def depth(self) -> int:
        """Queued (not yet running) job count."""
        with self._lock:
            return sum(len(jobs) for jobs in self._pending.values())

    def tenant_load(self, tenant: str) -> int:
        """Queued plus running jobs charged to one tenant."""
        with self._lock:
            queued = len(self._pending.get(tenant, []))
            running = sum(
                1 for job in self._running.values() if job.tenant == tenant
            )
            return queued + running

    def tenants(self) -> List[str]:
        with self._lock:
            return sorted(t for t, jobs in self._pending.items() if jobs)

    def submit(self, job: ServiceJob) -> None:
        """Admit one job, or raise the explicit rejection.

        Raises :class:`QueueFullError` at max depth and
        :class:`QuotaExceededError` past the tenant quota — both before
        any state changes, so a rejected submission leaves no trace.
        """
        with self._lock:
            if self.depth() >= self.max_depth:
                raise QueueFullError(
                    f"queue is at max depth {self.max_depth}; retry later"
                )
            if self.tenant_quota and self.tenant_load(job.tenant) >= self.tenant_quota:
                raise QuotaExceededError(
                    f"tenant {job.tenant!r} is at its quota of "
                    f"{self.tenant_quota} queued+running jobs"
                )
            self._admit(job)

    def _admit(self, job: ServiceJob) -> None:
        """Mint the policy shim and insert in per-tenant seq order."""
        if job.shim is None:
            shim = Job(
                vp=job.tenant,
                seq=job.seq,
                kind=JobKind.KERNEL,
                completion=self._env.event(),
            )
            shim.submitted_at_ms = float(job.seq)
            job.shim = shim
        self._register_qos(job)
        self._by_shim[id(job.shim)] = job
        pending = self._pending.setdefault(job.tenant, [])
        pending.append(job)
        pending.sort(key=lambda j: j.seq)
        job.state = JobState.QUEUED

    def _register_qos(self, job: ServiceJob) -> None:
        """Thread the job's QoS tier into a tier-aware policy."""
        tiers = getattr(self.policy, "tiers", None)
        if job.qos is not None and isinstance(tiers, dict):
            tiers[job.tenant] = job.qos

    def requeue(self, job: ServiceJob) -> None:
        """Put a previously running job back (graceful-stop path).

        Requeues bypass depth/quota admission — the job was already
        admitted once and rejecting it now would lose accepted work.
        """
        with self._lock:
            self._running.pop(job.job_id, None)
            job.requeues += 1
            job.started_at = None
            job.worker_pid = None
            self._admit(job)

    # -- scheduling --------------------------------------------------------

    def _expected_ms(self, shim: Job) -> float:
        job = self._by_shim.get(id(shim))
        if job is None:
            return _DEFAULT_ESTIMATE_MS
        return self._estimates.get(
            self._estimate_key(job.request), _DEFAULT_ESTIMATE_MS
        )

    @staticmethod
    def _estimate_key(request: RunRequest) -> str:
        return f"{request.app}:{request.n_vps}:{request.functional}"

    def observe_duration(self, job: ServiceJob, wall_s: float) -> None:
        """Feed one observed wall time into the per-shape EMA."""
        key = self._estimate_key(job.request)
        with self._lock:
            previous = self._estimates.get(key)
            value = wall_s * 1e3
            if previous is not None:
                value = (1 - _ESTIMATE_ALPHA) * previous + _ESTIMATE_ALPHA * value
            self._estimates[key] = value

    def next_job(self) -> Optional[ServiceJob]:
        """Pop the policy's pick among per-tenant heads (None = idle)."""
        with self._lock:
            heads = [
                jobs[0].shim
                for jobs in self._pending.values()
                if jobs and jobs[0].shim is not None
            ]
            if not heads:
                return None
            choice = self.policy.select(list(heads), self._backlog)
            if choice is None:
                return None
            job = self._by_shim[id(choice)]
            self._pending[job.tenant].remove(job)
            self._running[job.job_id] = job
            job.state = JobState.RUNNING
            return job

    def mark_finished(self, job: ServiceJob) -> None:
        """Drop a job from the running set (terminal transition)."""
        with self._lock:
            self._running.pop(job.job_id, None)
            if job.shim is not None:
                self._by_shim.pop(id(job.shim), None)

    def cancel_queued(self, job_id: str) -> Optional[ServiceJob]:
        """Remove a still-queued job; None when it is not queued here."""
        with self._lock:
            for tenant, jobs in self._pending.items():
                for job in jobs:
                    if job.job_id == job_id:
                        jobs.remove(job)
                        if job.shim is not None:
                            self._by_shim.pop(id(job.shim), None)
                        return job
        return None

    def queued_jobs(self) -> List[ServiceJob]:
        """Every queued job, in global admission order."""
        with self._lock:
            jobs = [j for pending in self._pending.values() for j in pending]
            return sorted(jobs, key=lambda j: j.seq)

    def running_jobs(self) -> List[ServiceJob]:
        with self._lock:
            return sorted(self._running.values(), key=lambda j: j.seq)
