"""Client for a running ``repro serve`` daemon.

A thin, dependency-free wrapper over the NDJSON socket protocol: one
request frame out, one (or, for ``watch``, many) frames back.  Error
frames surface as :class:`ServeError` with the daemon's machine-readable
``code`` attached, so callers branch on ``exc.code`` rather than parsing
messages.
"""

from __future__ import annotations

import socket
from pathlib import Path
from typing import Any, Dict, Iterator, List, Optional, Union

from ..api import RunRequest
from .protocol import MAX_FRAME_BYTES, JobState, decode_frame, encode_frame

__all__ = ["ServeClient", "ServeError"]

#: Default socket timeout for request/response ops, in seconds.
_DEFAULT_TIMEOUT_S = 30.0


class ServeError(Exception):
    """An error frame from the daemon, with its structured code."""

    def __init__(
        self,
        code: str,
        message: str,
        job_id: Optional[str] = None,
        frame: Optional[Dict[str, Any]] = None,
    ) -> None:
        super().__init__(f"[{code}] {message}")
        self.code = code
        self.message = message
        self.job_id = job_id
        self.frame = frame or {}


class ServeClient:
    """One connection to the daemon (usable as a context manager)."""

    def __init__(
        self, sock: socket.socket, socket_path: Path
    ) -> None:
        self._sock = sock
        self._buffer = b""
        self.socket_path = socket_path

    @classmethod
    def connect(
        cls,
        socket_path: Optional[Union[str, Path]] = None,
        timeout: float = _DEFAULT_TIMEOUT_S,
    ) -> "ServeClient":
        """Connect to the daemon's Unix socket (explicit > env > default)."""
        from . import default_socket_path

        path = default_socket_path(socket_path)
        sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        sock.settimeout(timeout)
        try:
            sock.connect(str(path))
        except OSError as exc:
            sock.close()
            raise ServeError(
                "no-daemon",
                f"cannot reach a repro serve daemon at {path}: {exc}",
            ) from None
        return cls(sock, path)

    def close(self) -> None:
        try:
            self._sock.close()
        except OSError:
            pass

    def __enter__(self) -> "ServeClient":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()

    # -- framing -----------------------------------------------------------

    def _send(self, frame: Dict[str, Any]) -> None:
        self._sock.sendall(encode_frame(frame))

    def _recv_frame(self, timeout: Optional[float] = None) -> Dict[str, Any]:
        """Read one newline-terminated frame off the socket."""
        if timeout is not None:
            self._sock.settimeout(timeout)
        while b"\n" not in self._buffer:
            if len(self._buffer) > MAX_FRAME_BYTES:
                raise ServeError(
                    "frame-too-large",
                    "daemon sent an over-long frame; protocol desync",
                )
            chunk = self._sock.recv(65536)
            if not chunk:
                raise ServeError(
                    "connection-closed",
                    "daemon closed the connection mid-response",
                )
            self._buffer += chunk
        line, self._buffer = self._buffer.split(b"\n", 1)
        return decode_frame(line)

    def _raise_on_error(self, frame: Dict[str, Any]) -> Dict[str, Any]:
        if frame.get("ok"):
            return frame
        error = frame.get("error") or {}
        raise ServeError(
            str(error.get("code", "unknown-error")),
            str(error.get("message", "daemon reported an error")),
            job_id=frame.get("job_id"),
            frame=frame,
        )

    def request(
        self,
        op: str,
        timeout: Optional[float] = None,
        **fields: Any,
    ) -> Dict[str, Any]:
        """One op round-trip; returns the raw frame (no error raising)."""
        self._send({"op": op, **fields})
        return self._recv_frame(timeout=timeout)

    # -- ops ---------------------------------------------------------------

    def ping(self) -> Dict[str, Any]:
        return self._raise_on_error(self.request("ping"))

    def submit(self, request: RunRequest) -> Dict[str, Any]:
        """Submit one request; returns the accepted job record.

        Raises :class:`ServeError` with code ``queue-full`` /
        ``quota-exceeded`` on admission rejection, ``bad-schema`` /
        ``bad-field`` / ``bad-value`` on validation rejection.
        """
        frame = self.request("submit", request=request.to_dict())
        return self._raise_on_error(frame)

    def status(self, job_id: str) -> Dict[str, Any]:
        return self._raise_on_error(self.request("status", job_id=job_id))

    def result(self, job_id: str) -> Dict[str, Any]:
        return self._raise_on_error(self.request("result", job_id=job_id))

    def wait(
        self, job_id: str, timeout: Optional[float] = None
    ) -> Dict[str, Any]:
        """Block until the job is terminal; returns its final record.

        A ``timeout`` bounds the daemon-side wait (error frame
        ``wait-timeout`` past it); ``None`` waits indefinitely — the
        socket deadline is lifted for the duration of this call.
        """
        self._send({"op": "wait", "job_id": job_id, "timeout": timeout})
        socket_budget = None if timeout is None else timeout + 5.0
        return self._raise_on_error(self._recv_frame(timeout=socket_budget))

    def watch(self, job_id: str) -> Iterator[Dict[str, Any]]:
        """Yield one record per state transition until terminal.

        The final yielded record is the terminal one; the stream then
        ends (the daemon closes it with a ``watch-end`` frame that is
        consumed here, not yielded).
        """
        self._send({"op": "watch", "job_id": job_id})
        while True:
            frame = self._raise_on_error(self._recv_frame(timeout=None))
            if frame.get("event") == "watch-end":
                return
            yield frame
            if JobState(frame["state"]).terminal:
                # Drain the closing frame so the connection stays usable.
                closing = self._raise_on_error(self._recv_frame())
                assert closing.get("event") == "watch-end"
                return

    def cancel(self, job_id: str) -> Dict[str, Any]:
        """Cancel a queued or running job (idempotent until terminal)."""
        return self._raise_on_error(self.request("cancel", job_id=job_id))

    def jobs(self, tenant: Optional[str] = None) -> List[Dict[str, Any]]:
        fields: Dict[str, Any] = {}
        if tenant is not None:
            fields["tenant"] = tenant
        frame = self._raise_on_error(self.request("jobs", **fields))
        return list(frame.get("jobs", []))

    def stats(self) -> Dict[str, Any]:
        return self._raise_on_error(self.request("stats"))

    def shutdown(self, drain: bool = False) -> Dict[str, Any]:
        """Ask the daemon to stop (``drain`` finishes running jobs)."""
        return self._raise_on_error(self.request("shutdown", drain=drain))
