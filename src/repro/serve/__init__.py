"""``repro serve``: the long-running multi-tenant simulation service.

The one-shot CLI becomes a daemon: clients submit
:class:`~repro.api.RunRequest` payloads over a local Unix socket
(newline-delimited JSON, :mod:`repro.serve.protocol`), the daemon admits
them into a bounded persistent queue (:mod:`repro.serve.queue`) with
per-tenant quotas and explicit backpressure, schedules tenants through
the *existing* :mod:`repro.sched` select policies (fair-share DRR,
priority-deadline QoS), executes each job through the scenario farm's
``run_job`` path in a cancellable worker process
(:mod:`repro.serve.server`), and streams status/result events back.

Every state transition is journaled append-only under the disk-cache
directory (:mod:`repro.serve.journal`), so a restarted daemon resumes
queued jobs and deterministically faults the ones that were mid-run at
a crash.  Because execution is the farm's ``run_job`` — same
config-hash key, same deterministic seed, same disk-cache layers — a
daemon-produced result digest is bit-identical to ``repro.api.run()``
and to the legacy ``repro run`` CLI path for the same request.
"""

from __future__ import annotations

import os
from pathlib import Path
from typing import Optional, Union

from .client import ServeClient, ServeError
from .journal import Journal, replay_journal
from .protocol import (
    MAX_FRAME_BYTES,
    JobState,
    ProtocolError,
    decode_frame,
    encode_frame,
    error_frame,
    ok_frame,
)
from .queue import QueueFullError, QuotaExceededError, ServiceJob, ServiceQueue
from .server import ServeDaemon

__all__ = [
    "Journal",
    "JobState",
    "MAX_FRAME_BYTES",
    "ProtocolError",
    "QueueFullError",
    "QuotaExceededError",
    "ServeClient",
    "ServeDaemon",
    "ServeError",
    "ServiceJob",
    "ServiceQueue",
    "decode_frame",
    "default_socket_path",
    "default_state_dir",
    "encode_frame",
    "error_frame",
    "ok_frame",
    "replay_journal",
]

#: Environment override for the daemon's Unix socket path.
ENV_SOCKET = "REPRO_SERVE_SOCKET"


def default_state_dir() -> Path:
    """Where the daemon journals its state: ``<disk-cache-root>/serve``.

    Sharing the disk-cache root means one knob (``REPRO_CACHE_DIR``)
    relocates *all* persistent state, and the journal rides the same
    crash-safe directory the whole-job result cache already lives in.
    """
    from .. import cache as repro_cache

    return Path(repro_cache.default_root()) / "serve"


def default_socket_path(explicit: Optional[Union[str, Path]] = None) -> Path:
    """Resolve the daemon socket path (explicit > env > state dir)."""
    if explicit is not None:
        return Path(explicit)
    env = os.environ.get(ENV_SOCKET)
    if env:
        return Path(env)
    return default_state_dir() / "serve.sock"
