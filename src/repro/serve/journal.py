"""The crash-safe job journal: append-only JSONL under the cache dir.

Every job state transition is one appended record, flushed (and
fsync'd) before the transition is acknowledged anywhere else.  The
journal is the daemon's *only* persistent state: replaying it from the
top deterministically reconstructs every job's final state, which is
how a restarted daemon resumes queued work and faults whatever was
mid-run when the previous process died.

Record shapes (all carry ``job_id``):

* ``submit``  — the full request payload, tenant, qos, and queue seq;
* ``start``   — execution began (worker pid);
* ``done``    — terminal success: result value + digest;
* ``fail``    — terminal failure: structured error;
* ``cancel``  — terminal cancellation (``where``: queued/running);
* ``requeue`` — a running job pushed back to the queue (graceful stop);
* ``fault``   — replay marked a mid-run-at-crash job as faulted.

A partial trailing line (the classic torn write of a crash mid-append)
is ignored, counted, and reported — never a replay error.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Any, Dict, List, Optional, TextIO, Tuple

from .protocol import JobState

__all__ = ["Journal", "replay_journal"]


class Journal:
    """Append-only JSONL writer with per-record durability."""

    def __init__(self, path: Path, fsync: bool = True) -> None:
        self.path = Path(path)
        self.fsync = fsync
        self.records_written = 0
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._fh: Optional[TextIO] = None

    def _handle(self) -> TextIO:
        if self._fh is None:
            self._fh = open(self.path, "a", encoding="utf-8")
        return self._fh

    def append(self, record: Dict[str, Any]) -> None:
        """Durably append one record (flush + fsync before returning)."""
        fh = self._handle()
        fh.write(json.dumps(record, sort_keys=True, separators=(",", ":")))
        fh.write("\n")
        fh.flush()
        if self.fsync:
            os.fsync(fh.fileno())
        self.records_written += 1

    def close(self) -> None:
        if self._fh is not None:
            self._fh.close()
            self._fh = None

    def __enter__(self) -> "Journal":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()


#: Journal record type -> the state a job lands in after that record.
_TERMINAL_STATES = {
    "done": JobState.DONE,
    "fail": JobState.FAILED,
    "cancel": JobState.CANCELLED,
    "fault": JobState.FAULTED,
}


def replay_journal(
    path: Path,
) -> Tuple[List[Dict[str, Any]], Dict[str, Any]]:
    """Fold a journal into per-job final records, deterministically.

    Returns ``(records, stats)`` where ``records`` holds one dict per
    job in original submission order with its replayed ``state``
    (``queued`` jobs are the ones a restarted daemon must resume), and
    ``stats`` counts what replay saw.  A job whose last record is
    ``start`` was mid-run at the crash: replay marks it ``faulted``
    (with a structured error) rather than silently re-running it — a
    re-run is a *policy* decision the client makes by resubmitting.

    Replay is a pure fold over the file: same journal bytes, same
    outcome, on every restart.
    """
    jobs: Dict[str, Dict[str, Any]] = {}
    order: List[str] = []
    stats = {"records": 0, "torn": 0, "unknown": 0}
    if not Path(path).exists():
        return [], stats
    with open(path, "r", encoding="utf-8") as fh:
        for raw in fh:
            line = raw.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError:
                # Torn tail write from a crash mid-append; anything
                # after it is unreachable by construction (appends are
                # sequential), so stop folding here.
                stats["torn"] += 1
                break
            if not isinstance(record, dict) or "job_id" not in record:
                stats["unknown"] += 1
                continue
            stats["records"] += 1
            kind = record.get("type")
            job_id = str(record["job_id"])
            if kind == "submit":
                jobs[job_id] = {
                    "job_id": job_id,
                    "request": record.get("request", {}),
                    "tenant": record.get("tenant", "default"),
                    "qos": record.get("qos"),
                    "seq": record.get("seq", len(order)),
                    "state": JobState.QUEUED,
                    "error": None,
                    "value": None,
                    "digest": None,
                    "promoted_fault": False,
                }
                order.append(job_id)
                continue
            job = jobs.get(job_id)
            if job is None:
                stats["unknown"] += 1
                continue
            if kind == "start":
                job["state"] = JobState.RUNNING
            elif kind == "requeue":
                job["state"] = JobState.QUEUED
            elif kind in _TERMINAL_STATES:
                job["state"] = _TERMINAL_STATES[kind]
                job["error"] = record.get("error")
                job["value"] = record.get("value")
                job["digest"] = record.get("digest")
            else:
                stats["unknown"] += 1
    records: List[Dict[str, Any]] = []
    for job_id in order:
        job = jobs[job_id]
        if job["state"] is JobState.RUNNING:
            # Mid-run at crash: deterministic fault, never a silent
            # re-run (results may have had partial side effects only
            # the client can reason about).
            job["state"] = JobState.FAULTED
            job["promoted_fault"] = True
            job["error"] = {
                "code": "daemon-crash",
                "message": "job was mid-run when the daemon stopped "
                           "uncleanly; resubmit to retry",
            }
        records.append(job)
    return records, stats
