"""Graphics workloads: simpleGL, Mandelbrot, marchingCubes, nbody,
smokeParticles.

Fig. 11's OpenGL-bound group: simpleGL, marchingCubes, nbody and
smokeParticles spend part of every frame in OpenGL rendering that
SigmaVP cannot accelerate (modelled as ``noncuda_ops`` running on the
binary-translated guest in every scenario); Mandelbrot writes its frames
to files.  nbody and smokeParticles additionally resist the two
optimizations through their interaction/particle state layouts.
"""

from __future__ import annotations

import numpy as np

from ..kernels.functional import functional_kernel
from ..kernels.ir import (
    InstructionMix,
    KernelIR,
    MemoryFootprint,
    ProgramBlock,
    uniform_kernel,
)
from .base import WorkloadSpec

_MESH = 512  # simpleGL vertex mesh edge

SIMPLE_GL = WorkloadSpec(
    name="simpleGL",
    kernel=uniform_kernel(
        "simpleGL",
        # Per vertex: sinusoidal displacement plus lighting of a
        # height field (several sin/cos polynomial expansions).
        {"fp32": 120, "load": 2, "store": 3, "int": 10, "branch": 2},
        MemoryFootprint(
            bytes_in=_MESH * _MESH * 8,
            bytes_out=_MESH * _MESH * 12,
            working_set_bytes=_MESH * _MESH * 8,
            locality=0.3,
            coalesced_fraction=1.0,
        ),
        signature="simpleGL",
    ),
    elements=_MESH * _MESH,
    input_arrays=1,
    element_bytes=8,  # (x, y) pairs
    block_size=256,
    iterations=60,  # 60 animated frames
    streaming=False,
    readback_only=True,  # every frame returns to the guest's OpenGL
    sync_every=1,        # frame-synchronous with the renderer
    noncuda_ops=4.0e7,   # OpenGL VBO rendering per run (guest-side)
    c_ops=_MESH * _MESH * 35.0 * 60,
    params={"time": 1.0},
    description="animated sine-wave height field rendered via OpenGL",
)


def _mandelbrot_kernel() -> KernelIR:
    setup = ProgramBlock(
        name="mandelbrot.setup",
        mix=InstructionMix(fp64=6, int=6),
        trips=1,
    )
    # The escape loop: z = z^2 + c in double precision; average trip
    # count is a fraction of max_iter over the frame.
    escape_loop = ProgramBlock(
        name="mandelbrot.loop",
        mix=InstructionMix(fp64=10, int=2, branch=2),
        trips=lambda ctx: max(1.0, ctx.problem_size),
    )
    writeback = ProgramBlock(
        name="mandelbrot.writeback",
        mix=InstructionMix(int=4, store=1, bit=2),
        trips=1,
    )
    return KernelIR(
        name="Mandelbrot",
        blocks=(setup, escape_loop, writeback),
        footprint=MemoryFootprint(
            bytes_in=0,
            bytes_out=1024 * 1024 * 4,
            working_set_bytes=1024 * 1024 * 4,
            locality=0.1,
            coalesced_fraction=1.0,
        ),
        signature="Mandelbrot",
    )


MANDELBROT = WorkloadSpec(
    name="Mandelbrot",
    kernel=_mandelbrot_kernel(),
    elements=1024 * 1024,
    input_arrays=0,
    element_bytes=4,
    block_size=128,
    iterations=6,  # frames of a zoom sequence
    streaming=True,
    sync_every=6,
    noncuda_ops=5.0e7,  # writes each frame to an image file
    c_ops=1024 * 1024 * 60.0 * 20 * 16,
    problem_size=48.0,  # mean escape iterations per pixel
    params={"width": 1024, "height": 1024, "max_iter": 256},
    description="Mandelbrot zoom (FP64 escape iteration); Fig. 12/13 app",
)


MARCHING_CUBES = WorkloadSpec(
    name="marchingCubes",
    kernel=uniform_kernel(
        "marchingCubes",
        {"fp32": 36, "int": 30, "load": 3, "store": 2, "branch": 8, "bit": 6},
        MemoryFootprint(
            bytes_in=128**3,
            bytes_out=16 * 1024 * 1024,
            working_set_bytes=96 * 1024,  # active voxel slab
            locality=0.85,
            coalesced_fraction=0.7,
        ),
        signature="marchingCubes",
    ),
    elements=128**3,
    input_arrays=1,
    element_bytes=1,
    block_size=128,
    iterations=20,
    streaming=False,
    readback_only=True,  # extracted mesh returns to the guest renderer
    sync_every=1,
    noncuda_ops=5.0e7,   # OpenGL mesh rendering
    c_ops=float(128**3) * 55.0 * 20,
    input_factory=lambda rng, i, spec: rng.integers(
        0, 256, spec.elements, dtype=np.uint8
    ),
    description="iso-surface extraction, rendered via OpenGL",
)


_NBODY_N = 16384

NBODY = WorkloadSpec(
    name="nbody",
    kernel=uniform_kernel(
        "nbody",
        # All-pairs gravity: the inner body-body interaction repeated
        # across the tile loop.
        {"fp32": 22, "load": 1.5, "int": 2, "branch": 0.5},
        MemoryFootprint(
            bytes_in=_NBODY_N * 16,
            bytes_out=_NBODY_N * 16,
            working_set_bytes=_NBODY_N * 16,
            locality=0.9,
            coalesced_fraction=0.95,
        ),
        trips=float(_NBODY_N) / 64.0,  # tiled interaction loop
        signature="nbody",
        coalescible=False,  # per-VP body sets interact all-pairs: no merge
    ),
    elements=_NBODY_N,
    input_arrays=1,
    element_bytes=16,  # float4 position+mass
    block_size=256,
    iterations=40,
    streaming=False,
    sync_every=1,
    noncuda_ops=8.0e7,  # OpenGL particle rendering
    c_ops=float(_NBODY_N) * _NBODY_N * 22.0 * 40 / 1000.0,
    input_factory=lambda rng, i, spec: rng.standard_normal(
        (spec.elements, 4)
    ).astype(np.float32),
    description="all-pairs N-body: FP32-dense, OpenGL-bound, non-coalescible",
)


SMOKE_PARTICLES = WorkloadSpec(
    name="smokeParticles",
    kernel=uniform_kernel(
        "smokeParticles",
        {"fp32": 180, "load": 4, "store": 3, "int": 16, "branch": 6},
        MemoryFootprint(
            bytes_in=262144 * 32,
            bytes_out=262144 * 32,
            working_set_bytes=96 * 1024,
            locality=0.7,
            coalesced_fraction=0.4,  # sorted-by-depth scattered access
        ),
        signature="smokeParticles",
        coalescible=False,
    ),
    elements=262144,
    input_arrays=1,
    element_bytes=32,
    block_size=256,
    iterations=60,
    streaming=False,
    sync_every=1,
    noncuda_ops=8.0e7,  # OpenGL smoke shading
    c_ops=262144 * 220.0 * 60,
    input_factory=lambda rng, i, spec: rng.standard_normal(
        (spec.elements, 8)
    ).astype(np.float32),
    description="particle simulation with depth-sorted shading via OpenGL",
)


# -- functional implementations --------------------------------------------------


@functional_kernel("simpleGL")
def simple_gl_fn(mesh: np.ndarray, time: float = 1.0) -> np.ndarray:
    """The SDK sample's sine-wave displacement of a (x, y) mesh."""
    xy = mesh.reshape(-1, 2)
    freq = 4.0
    w = np.sin(xy[:, 0] * freq + time) * np.cos(xy[:, 1] * freq + time) * 0.5
    return np.column_stack([xy[:, 0], w, xy[:, 1]]).astype(np.float32)


@functional_kernel("Mandelbrot")
def mandelbrot_fn(width: int = 1024, height: int = 1024, max_iter: int = 256) -> np.ndarray:
    """Escape-iteration counts over the classic viewport."""
    x = np.linspace(-2.5, 1.0, width)
    y = np.linspace(-1.25, 1.25, height)
    c = x[None, :] + 1j * y[:, None]
    z = np.zeros_like(c)
    counts = np.zeros(c.shape, dtype=np.int32)
    alive = np.ones(c.shape, dtype=bool)
    for _ in range(max_iter):
        z[alive] = z[alive] ** 2 + c[alive]
        escaped = alive & (np.abs(z) > 2.0)
        counts[escaped] = counts[escaped] + 1
        alive &= ~escaped
        counts[alive] += 1
        if not alive.any():
            break
    return counts
