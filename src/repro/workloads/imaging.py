"""Imaging workloads: dct8x8, convolutionSeparable, SobelFilter,
bicubicTexture, recursiveGaussian, VolumeFiltering, histogram.

These populate the middle of Fig. 11.  The paper singles several of them
out: convolutionSeparable, dct8x8 and SobelFilter "have kernels that are
not sped up by the two optimizations, mostly due to the way they access
and manage the memory" (modelled as ``coalescible=False`` plus a
copy-light pattern that leaves interleaving nothing to overlap), and
SobelFilter / VolumeFiltering are FP-light, so their emulation baseline
is comparatively fast and the headline speedup smaller.
"""

from __future__ import annotations

import numpy as np

from ..kernels.functional import functional_kernel
from ..kernels.ir import MemoryFootprint, uniform_kernel
from .base import WorkloadSpec

_IMG = 2048  # square image edge for the 2D filters

_IMG_ELEMENTS = _IMG * _IMG


def _image_input(rng: np.random.Generator, index: int, spec: WorkloadSpec) -> np.ndarray:
    return rng.uniform(0.0, 255.0, (_IMG, _IMG)).astype(np.float32)


DCT8X8 = WorkloadSpec(
    name="dct8x8",
    kernel=uniform_kernel(
        "dct8x8",
        # Each thread works on one pixel of an 8x8 block: two 1-D 8-point
        # DCT passes through shared memory.
        {"fp32": 44, "load": 4, "store": 2, "int": 14, "branch": 2, "bit": 2},
        MemoryFootprint(
            bytes_in=_IMG_ELEMENTS * 4,
            bytes_out=_IMG_ELEMENTS * 4,
            working_set_bytes=64 * 1024,
            locality=0.85,
            coalesced_fraction=0.9,
        ),
        signature="dct8x8",
        coalescible=False,  # block-local shared-memory layout resists merging
    ),
    elements=_IMG_ELEMENTS,
    input_arrays=1,
    element_bytes=4,
    block_size=64,
    iterations=30,
    streaming=False,
    sync_every=30,
    c_ops=_IMG_ELEMENTS * 60.0 * 30,
    input_factory=_image_input,
    description="8x8 block DCT (JPEG-style); Fig. 12/13 estimation app",
)


CONVOLUTION_SEPARABLE = WorkloadSpec(
    name="convolutionSeparable",
    kernel=uniform_kernel(
        "convolutionSeparable",
        # Two 17-tap passes, heavily shared-memory staged.
        {"fp32": 34, "load": 6, "store": 2, "int": 10, "branch": 3},
        MemoryFootprint(
            bytes_in=_IMG_ELEMENTS * 4,
            bytes_out=_IMG_ELEMENTS * 4,
            working_set_bytes=96 * 1024,
            locality=0.8,
            coalesced_fraction=0.9,
        ),
        signature="convolutionSeparable",
        coalescible=False,
    ),
    elements=_IMG_ELEMENTS,
    input_arrays=1,
    element_bytes=4,
    block_size=128,
    iterations=30,
    streaming=False,
    sync_every=30,
    c_ops=_IMG_ELEMENTS * 70.0 * 30,
    params={"radius": 8},
    input_factory=_image_input,
    description="separable 17-tap 2D convolution",
)


SOBEL_FILTER = WorkloadSpec(
    name="SobelFilter",
    kernel=uniform_kernel(
        "SobelFilter",
        # 3x3 integer gradient stencils: almost no floating point.
        {"int": 28, "fp32": 4, "load": 9, "store": 1, "branch": 3, "bit": 4},
        MemoryFootprint(
            bytes_in=_IMG_ELEMENTS,
            bytes_out=_IMG_ELEMENTS,
            working_set_bytes=48 * 1024,
            locality=0.8,
            coalesced_fraction=0.85,
        ),
        signature="SobelFilter",
        coalescible=False,
    ),
    elements=_IMG_ELEMENTS,
    input_arrays=1,
    element_bytes=1,  # 8-bit image
    block_size=256,
    iterations=40,
    streaming=False,
    sync_every=40,
    noncuda_ops=4.0e7,  # OpenGL display of the filtered frames
    c_ops=_IMG_ELEMENTS * 24.0 * 40,
    input_factory=lambda rng, i, spec: rng.integers(
        0, 256, (_IMG, _IMG), dtype=np.uint8
    ),
    description="Sobel edge detection: integer-dominated, OpenGL-bound",
)


BICUBIC_TEXTURE = WorkloadSpec(
    name="bicubicTexture",
    kernel=uniform_kernel(
        "bicubicTexture",
        {"fp32": 55, "load": 4, "store": 1, "int": 12, "branch": 2},
        MemoryFootprint(
            bytes_in=_IMG_ELEMENTS * 4,
            bytes_out=_IMG_ELEMENTS * 4,
            working_set_bytes=128 * 1024,
            locality=0.85,
            coalesced_fraction=0.7,
        ),
        signature="bicubicTexture",
    ),
    elements=_IMG_ELEMENTS,
    input_arrays=1,
    element_bytes=4,
    block_size=256,
    iterations=24,
    streaming=True,  # a new source image per iteration
    sync_every=24,
    noncuda_ops=3.0e7,  # reads source images from files
    c_ops=_IMG_ELEMENTS * 80.0 * 24,
    input_factory=_image_input,
    description="bicubic texture interpolation with file-based inputs",
)


RECURSIVE_GAUSSIAN = WorkloadSpec(
    name="recursiveGaussian",
    kernel=uniform_kernel(
        "recursiveGaussian",
        {"fp32": 40, "load": 2, "store": 2, "int": 8, "branch": 2},
        MemoryFootprint(
            bytes_in=_IMG_ELEMENTS * 4,
            bytes_out=_IMG_ELEMENTS * 4,
            working_set_bytes=_IMG * 4 * 8,  # row-recursive state
            locality=0.6,
            coalesced_fraction=0.5,  # column-order recursion
        ),
        signature="recursiveGaussian",
    ),
    elements=_IMG_ELEMENTS,
    input_arrays=1,
    element_bytes=4,
    block_size=256,
    iterations=24,
    streaming=True,
    sync_every=24,
    noncuda_ops=3.0e7,
    c_ops=_IMG_ELEMENTS * 60.0 * 24,
    input_factory=_image_input,
    description="recursive (IIR) Gaussian blur with file I/O",
)


_VOL = 256  # 256^3 volume

VOLUME_FILTERING = WorkloadSpec(
    name="VolumeFiltering",
    kernel=uniform_kernel(
        "VolumeFiltering",
        # 3D stencil: integer-and-load dominated, little arithmetic;
        # the 27-point neighbourhood hits the cache, so DRAM-visible
        # loads are few.
        {"load": 2.5, "fp32": 7, "int": 34, "store": 1, "branch": 3},
        MemoryFootprint(
            bytes_in=_VOL**3,
            bytes_out=_VOL**3,
            working_set_bytes=64 * 1024,  # active slab
            locality=0.9,
            coalesced_fraction=0.8,
        ),
        signature="VolumeFiltering",
    ),
    elements=_VOL**3,
    input_arrays=1,
    element_bytes=1,
    block_size=256,
    iterations=6,
    streaming=False,
    readback_only=True,  # filtered frames return to the guest renderer
    sync_every=1,
    noncuda_ops=6.0e7,  # OpenGL volume rendering
    c_ops=float(_VOL**3) * 30.0 * 6,
    input_factory=lambda rng, i, spec: rng.integers(
        0, 256, _VOL**3, dtype=np.uint8
    ),
    description="3D volume filtering: load-bound, FP-light, OpenGL-bound",
)


_HIST_ELEMENTS = 16 * 1024 * 1024

HISTOGRAM = WorkloadSpec(
    name="histogram",
    kernel=uniform_kernel(
        "histogram",
        {"int": 5, "bit": 3, "load": 1, "store": 1, "branch": 1},
        MemoryFootprint(
            bytes_in=_HIST_ELEMENTS,
            bytes_out=256 * 4,
            working_set_bytes=_HIST_ELEMENTS,
            locality=0.05,
            coalesced_fraction=1.0,
        ),
        trips=4.0,
        signature="histogram",
        elements_per_thread=4.0,
    ),
    elements=_HIST_ELEMENTS,
    input_arrays=1,
    output_elements=256,
    element_bytes=1,
    block_size=256,
    iterations=30,
    streaming=True,
    sync_every=30,
    c_ops=_HIST_ELEMENTS * 3.0 * 30,
    input_factory=lambda rng, i, spec: rng.integers(
        0, 256, spec.elements, dtype=np.uint8
    ),
    description="256-bin byte histogram (atomics-heavy)",
)


# -- functional implementations --------------------------------------------------


@functional_kernel("dct8x8")
def dct8x8_fn(image: np.ndarray) -> np.ndarray:
    """Blockwise 8x8 type-II DCT, orthonormal (matches the SDK math)."""
    from scipy.fft import dctn

    h, w = image.shape
    blocks = image.reshape(h // 8, 8, w // 8, 8).transpose(0, 2, 1, 3)
    transformed = dctn(blocks, axes=(2, 3), norm="ortho")
    return transformed.transpose(0, 2, 1, 3).reshape(h, w).astype(image.dtype)


@functional_kernel("convolutionSeparable")
def convolution_separable_fn(image: np.ndarray, radius: int = 8) -> np.ndarray:
    from scipy.ndimage import convolve1d

    taps = np.exp(-0.5 * (np.arange(-radius, radius + 1) / (radius / 2.0)) ** 2)
    taps = (taps / taps.sum()).astype(image.dtype)
    rows = convolve1d(image, taps, axis=0, mode="nearest")
    return convolve1d(rows, taps, axis=1, mode="nearest").astype(image.dtype)


@functional_kernel("SobelFilter")
def sobel_filter_fn(image: np.ndarray) -> np.ndarray:
    from scipy.ndimage import sobel

    img = image.astype(np.float32)
    gx = sobel(img, axis=0, mode="nearest")
    gy = sobel(img, axis=1, mode="nearest")
    magnitude = np.hypot(gx, gy)
    return np.clip(magnitude, 0, 255).astype(np.uint8)


@functional_kernel("histogram")
def histogram_fn(data: np.ndarray) -> np.ndarray:
    return np.bincount(data.ravel(), minlength=256).astype(np.int32)
