"""The aggregated benchmark suite (paper Fig. 11's application set).

Importing this module registers every workload's functional kernel and
exposes :data:`SUITE`, ordered as the paper's Fig. 11 x-axis groups the
applications.
"""

from typing import Dict

from .analytics import MERGE_SORT, SEGMENTATION_TREE, STEREO_DISPARITY
from .base import WorkloadSpec
from .finance import BLACK_SCHOLES, MONTE_CARLO
from .graphics import (
    MANDELBROT,
    MARCHING_CUBES,
    NBODY,
    SIMPLE_GL,
    SMOKE_PARTICLES,
)
from .imaging import (
    BICUBIC_TEXTURE,
    CONVOLUTION_SEPARABLE,
    DCT8X8,
    HISTOGRAM,
    RECURSIVE_GAUSSIAN,
    SOBEL_FILTER,
    VOLUME_FILTERING,
)
from .linalg import MATRIX_MUL, REDUCTION, SCALAR_PROD, TRANSPOSE, VECTOR_ADD
from .physics import PHYSX_PARTICLES

#: All catalogued workloads by name.
SUITE: Dict[str, WorkloadSpec] = {
    spec.name: spec
    for spec in (
        SIMPLE_GL,
        MANDELBROT,
        MARCHING_CUBES,
        BICUBIC_TEXTURE,
        VOLUME_FILTERING,
        RECURSIVE_GAUSSIAN,
        SOBEL_FILTER,
        STEREO_DISPARITY,
        CONVOLUTION_SEPARABLE,
        DCT8X8,
        BLACK_SCHOLES,
        MONTE_CARLO,
        MATRIX_MUL,
        MERGE_SORT,
        NBODY,
        SMOKE_PARTICLES,
        SEGMENTATION_TREE,
        VECTOR_ADD,
        SCALAR_PROD,
        TRANSPOSE,
        REDUCTION,
        HISTOGRAM,
        PHYSX_PARTICLES,
    )
}

#: The four applications of the paper's Fig. 12 / Fig. 13 estimation study.
ESTIMATION_APPS = ("BlackScholes", "matrixMul", "dct8x8", "Mandelbrot")


def get_workload(name: str) -> WorkloadSpec:
    """Look up a catalogued workload by its exact (paper) name."""
    try:
        return SUITE[name]
    except KeyError:
        known = ", ".join(sorted(SUITE)) or "<none>"
        raise KeyError(f"unknown workload {name!r}; known: {known}") from None
