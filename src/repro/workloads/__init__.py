"""The benchmark workload suite (populated by the catalog module)."""

from .base import WorkloadSpec, build_app
from .catalog import SUITE, get_workload

__all__ = ["SUITE", "WorkloadSpec", "build_app", "get_workload"]
