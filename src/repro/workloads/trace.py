"""CUDA API trace replay.

The interception layer's promise is binary compatibility: "the
application binaries that use GPU instructions do not need any change"
(paper Section 2).  The practical port of that promise to this
reproduction is *trace replay*: record the CUDA runtime calls of a real
application (any interposer can), describe them in a small JSON format,
and replay them through any backend — emulation, native, or the SigmaVP
pipeline.

Trace format (a JSON object)::

    {
      "name": "my-app",
      "calls": [
        {"op": "malloc",  "buf": "A", "nbytes": 4096},
        {"op": "h2d",     "buf": "A", "nbytes": 4096},
        {"op": "launch",  "kernel": {"name": "k", "signature": "vectorAdd",
                                      "mix": {"fp32": 1, "load": 2, "store": 1},
                                      "working_set": 8192, "locality": 0.5},
                           "grid": 4, "block": 256, "elements": 1024,
                           "args": ["A"], "out": "A"},
        {"op": "d2h",     "buf": "A", "nbytes": 4096},
        {"op": "sync"},
        {"op": "cpu",     "ops": 1e6},
        {"op": "free",    "buf": "A"}
      ]
    }

Launches may name a previously defined kernel by string instead of
redefining it.  ``h2d`` without data copies zeros (timing-only replay);
functional replay supplies arrays via ``inputs``.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Mapping, Optional, Union

import numpy as np

from ..kernels.ir import KernelIR, MemoryFootprint, uniform_kernel
from ..kernels.launch import LaunchConfig
from ..vp.cuda_runtime import CudaRuntime

VALID_OPS = ("malloc", "free", "h2d", "d2h", "launch", "sync", "cpu")


class TraceError(ValueError):
    """A malformed trace."""


@dataclass
class ApiTrace:
    """A parsed, validated API trace."""

    name: str
    calls: List[Dict[str, Any]]
    kernels: Dict[str, KernelIR] = field(default_factory=dict)

    def __len__(self) -> int:
        return len(self.calls)

    def kernel_launches(self) -> int:
        return sum(1 for call in self.calls if call["op"] == "launch")


def _kernel_from_spec(spec: Mapping[str, Any], index: int) -> KernelIR:
    try:
        mix = dict(spec["mix"])
    except KeyError:
        raise TraceError(f"launch #{index}: kernel definition needs a 'mix'")
    name = spec.get("name", f"trace-kernel-{index}")
    working_set = int(spec.get("working_set", 64 * 1024))
    bytes_in = int(spec.get("bytes_in", working_set))
    bytes_out = int(spec.get("bytes_out", working_set))
    footprint = MemoryFootprint(
        bytes_in=bytes_in,
        bytes_out=bytes_out,
        working_set_bytes=working_set,
        locality=float(spec.get("locality", 0.7)),
        coalesced_fraction=float(spec.get("coalesced", 0.9)),
    )
    return uniform_kernel(
        name,
        mix,
        footprint,
        trips=float(spec.get("trips", 1.0)),
        signature=spec.get("signature", name),
        coalescible=bool(spec.get("coalescible", True)),
        elements_per_thread=float(spec.get("elements_per_thread", 1.0)),
    )


def parse_trace(source: Union[str, Mapping[str, Any]]) -> ApiTrace:
    """Parse and validate a trace from JSON text or a dict."""
    if isinstance(source, str):
        try:
            data = json.loads(source)
        except json.JSONDecodeError as exc:
            raise TraceError(f"invalid JSON: {exc}") from exc
    else:
        data = dict(source)

    calls = data.get("calls")
    if not isinstance(calls, list) or not calls:
        raise TraceError("trace needs a non-empty 'calls' list")

    trace = ApiTrace(name=str(data.get("name", "trace")), calls=[])
    live_buffers: set = set()
    for index, raw in enumerate(calls):
        if not isinstance(raw, dict) or "op" not in raw:
            raise TraceError(f"call #{index}: every call needs an 'op'")
        call = dict(raw)
        op = call["op"]
        if op not in VALID_OPS:
            raise TraceError(f"call #{index}: unknown op {op!r}; valid: {VALID_OPS}")
        if op == "malloc":
            if int(call.get("nbytes", 0)) <= 0:
                raise TraceError(f"call #{index}: malloc needs positive 'nbytes'")
            live_buffers.add(call.get("buf"))
        elif op in ("h2d", "d2h", "free"):
            buf = call.get("buf")
            if buf not in live_buffers:
                raise TraceError(
                    f"call #{index}: {op} references unallocated buffer {buf!r}"
                )
            if op == "free":
                live_buffers.discard(buf)
        elif op == "launch":
            kernel_spec = call.get("kernel")
            if isinstance(kernel_spec, str):
                if kernel_spec not in trace.kernels:
                    raise TraceError(
                        f"call #{index}: launch references unknown kernel "
                        f"{kernel_spec!r}"
                    )
                call["kernel_ref"] = kernel_spec
            elif isinstance(kernel_spec, Mapping):
                kernel = _kernel_from_spec(kernel_spec, index)
                trace.kernels[kernel.name] = kernel
                call["kernel_ref"] = kernel.name
            else:
                raise TraceError(f"call #{index}: launch needs a 'kernel'")
            for buf in (*call.get("args", ()), call.get("out")):
                if buf is not None and buf not in live_buffers:
                    raise TraceError(
                        f"call #{index}: launch references unallocated "
                        f"buffer {buf!r}"
                    )
            if int(call.get("grid", 0)) <= 0 or int(call.get("block", 0)) <= 0:
                raise TraceError(
                    f"call #{index}: launch needs positive 'grid' and 'block'"
                )
        elif op == "cpu":
            if float(call.get("ops", -1)) < 0:
                raise TraceError(f"call #{index}: cpu needs non-negative 'ops'")
        trace.calls.append(call)
    return trace


def load_trace(path: Union[str, Path]) -> ApiTrace:
    """Load a trace from a JSON file."""
    return parse_trace(Path(path).read_text())


def replay(
    trace: ApiTrace,
    api: CudaRuntime,
    inputs: Optional[Mapping[str, np.ndarray]] = None,
):
    """Build an application generator that replays ``trace`` on ``api``.

    ``inputs`` optionally maps buffer names to the arrays their ``h2d``
    calls should carry (functional replay); unmapped buffers copy zeros.
    Returns the app callable; its return value is the last ``d2h``
    result holder (or None).
    """
    inputs = dict(inputs or {})

    def app():
        handles: Dict[str, str] = {}
        last_read = None
        for call in trace.calls:
            op = call["op"]
            if op == "malloc":
                handles[call["buf"]] = yield from api.malloc(int(call["nbytes"]))
            elif op == "free":
                yield from api.free(handles.pop(call["buf"]))
            elif op == "h2d":
                nbytes = int(call["nbytes"])
                data = inputs.get(
                    call["buf"], np.zeros(nbytes // 4, dtype=np.float32)
                )
                yield from api.memcpy_h2d(
                    handles[call["buf"]], data, sync=bool(call.get("sync", False))
                )
            elif op == "d2h":
                last_read = yield from api.memcpy_d2h(
                    handles[call["buf"]],
                    nbytes=call.get("nbytes"),
                    sync=bool(call.get("sync", False)),
                )
            elif op == "launch":
                kernel = trace.kernels[call["kernel_ref"]]
                grid, block = int(call["grid"]), int(call["block"])
                launch = LaunchConfig(
                    grid_size=grid,
                    block_size=block,
                    elements=int(call.get("elements", grid * block)),
                )
                yield from api.launch_kernel(
                    kernel,
                    launch,
                    args=[handles[b] for b in call.get("args", ())],
                    out=handles.get(call.get("out")),
                    params=dict(call.get("params", {})),
                    sync=bool(call.get("sync", False)),
                )
            elif op == "sync":
                yield from api.synchronize()
            elif op == "cpu":
                yield from api.cpu_work(float(call["ops"]))
        yield from api.synchronize()
        if last_read is not None and last_read.ready:
            return last_read.value
        return None

    return app
