"""A PhysX-style physics workload.

The paper motivates CUDA over OpenCL partly because "we plan to extend
our method to other CUDA related SDKs such as PhysX, a physics engine"
(Section 5).  This module provides that extension's workload: a
particle-dynamics step kernel (gravity integration with ground-plane
collision and damping), usable through either the CUDA or the OpenCL
runtime facade, with a numpy reference implementation for functional
validation.

State layout: one float32 array of shape (n, 4) packing
(x, y, vx, vy) per particle.
"""

from __future__ import annotations

import numpy as np

from ..kernels.functional import functional_kernel
from ..kernels.ir import MemoryFootprint, uniform_kernel
from .base import WorkloadSpec

#: Gravity (units per step^2) and restitution used by kernel and reference.
GRAVITY = -9.8e-3
RESTITUTION = 0.6

_PARTICLES = 262_144


def make_physics_kernel(particles: int = _PARTICLES):
    return uniform_kernel(
        "physxStep",
        # Integrate, test the plane, reflect: light FP32 with a branch.
        {"fp32": 14, "load": 4, "store": 4, "int": 4, "branch": 2},
        MemoryFootprint(
            bytes_in=particles * 16,
            bytes_out=particles * 16,
            working_set_bytes=min(particles * 16, 96 * 1024),
            locality=0.6,
            coalesced_fraction=1.0,
        ),
        signature="physxStep",
    )


PHYSX_PARTICLES = WorkloadSpec(
    name="physxParticles",
    kernel=make_physics_kernel(),
    elements=_PARTICLES,
    input_arrays=1,
    element_bytes=16,  # float4 (x, y, vx, vy)
    block_size=256,
    iterations=48,      # 48 simulation steps
    streaming=False,
    readback_only=True,  # each step's state returns to the guest engine
    feedback=True,       # the step kernel updates the state in place
    sync_every=1,        # the physics loop is frame-synchronous
    noncuda_ops=4.0e7,   # scene graph + rendering on the guest
    c_ops=_PARTICLES * 30.0 * 48,
    input_factory=lambda rng, i, spec: np.column_stack([
        rng.uniform(-1.0, 1.0, spec.elements),        # x
        rng.uniform(0.5, 2.0, spec.elements),         # y (above ground)
        rng.normal(0.0, 0.01, spec.elements),         # vx
        rng.normal(0.0, 0.01, spec.elements),         # vy
    ]).astype(np.float32),
    description="PhysX-style particle dynamics step (paper's planned SDK extension)",
)


@functional_kernel("physxStep")
def physx_step_fn(state: np.ndarray, dt: float = 1.0) -> np.ndarray:
    """One explicit-Euler step with ground-plane collision at y = 0."""
    state = np.asarray(state, dtype=np.float32).reshape(-1, 4)
    x, y, vx, vy = state.T.copy()
    vy = vy + GRAVITY * dt
    x = x + vx * dt
    y = y + vy * dt
    below = y < 0.0
    y = np.where(below, -y * RESTITUTION, y)
    vy = np.where(below, -vy * RESTITUTION, vy)
    vx = np.where(below, vx * RESTITUTION, vx)
    return np.column_stack([x, y, vx, vy]).astype(np.float32)
