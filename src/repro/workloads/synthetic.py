"""Synthetic microbenchmark workloads for the Fig. 9 / Fig. 10 sweeps.

Fig. 9 uses "two interleaved GPU programs, each with a loop that
iterates: a memory copy from host to device, a kernel execution, and a
memory copy from device to host", with the memory copy fixed at 13.44 ms
and the kernel's complexity swept.  :func:`make_phase_workload` builds
that program with the kernel *calibrated* to a requested duration on a
given architecture (the modelled analog of picking a kernel length).
"""

from __future__ import annotations

from ..gpu.arch import GPUArchitecture, QUADRO_4000
from ..gpu.timing import KernelTimingModel
from ..kernels.compiler import KernelCompiler
from ..kernels.ir import KernelIR, MemoryFootprint, uniform_kernel
from ..kernels.launch import LaunchConfig
from .base import WorkloadSpec

#: The paper's fixed memory-copy time in Fig. 9(a).
FIG9_COPY_MS = 13.44

#: Launch geometry for the calibrated kernels: an SM-aligned grid so the
#: duration responds linearly to the instruction count.
_CAL_GRID = 96
_CAL_BLOCK = 256


def copy_bytes_for_ms(target_ms: float, arch: GPUArchitecture = QUADRO_4000) -> int:
    """Bytes whose copy-engine transfer takes ``target_ms``."""
    if target_ms <= arch.copy_latency_ms:
        raise ValueError(
            f"target {target_ms} ms is below the copy latency "
            f"({arch.copy_latency_ms} ms)"
        )
    gb = (target_ms - arch.copy_latency_ms) / 1e3 * arch.copy_bandwidth_gbps
    return int(round(gb * 1e9))


def _phase_kernel(
    fp32_per_thread: float, nbytes: int, signature: str, elements_per_thread: float = 1.0
) -> KernelIR:
    return uniform_kernel(
        signature,
        {"fp32": max(0.0, fp32_per_thread), "int": 4, "load": 1, "store": 1},
        MemoryFootprint(
            bytes_in=nbytes,
            bytes_out=nbytes,
            working_set_bytes=64 * 1024,  # small: stall-free, linear timing
            locality=0.95,
            coalesced_fraction=1.0,
        ),
        signature=signature,
        elements_per_thread=elements_per_thread,
    )


def calibrate_fp32_count(
    target_kernel_ms: float,
    nbytes: int,
    arch: GPUArchitecture = QUADRO_4000,
    signature: str = "phase",
) -> float:
    """FP32 instructions per thread so the kernel models ``target_kernel_ms``.

    The timing model is affine in the per-thread instruction count for a
    fixed launch, so two probe evaluations determine the answer exactly.
    """
    if target_kernel_ms < 0:
        raise ValueError(f"negative target {target_kernel_ms}")
    launch = LaunchConfig(
        grid_size=_CAL_GRID, block_size=_CAL_BLOCK, elements=_CAL_GRID * _CAL_BLOCK
    )
    model = KernelTimingModel(arch)
    compiler = KernelCompiler()

    def time_for(x: float) -> float:
        kernel = _phase_kernel(x, nbytes, signature)
        return model.kernel_time_ms(compiler.compile(kernel, arch), launch)

    t0 = time_for(0.0)
    t1 = time_for(1000.0)
    slope = (t1 - t0) / 1000.0
    if target_kernel_ms <= t0:
        return 0.0
    return (target_kernel_ms - t0) / slope


def make_phase_workload(
    t_kernel_ms: float,
    t_copy_ms: float = FIG9_COPY_MS,
    iterations: int = 1,
    arch: GPUArchitecture = QUADRO_4000,
    name: str = "phase-loop",
) -> WorkloadSpec:
    """The Fig. 9 program: loop of (H2D ~t_copy, kernel ~t_kernel, D2H ~t_copy)."""
    nbytes = copy_bytes_for_ms(t_copy_ms, arch)
    fp32 = calibrate_fp32_count(t_kernel_ms, nbytes, arch, signature=name)
    # Size the data so the natural launch reproduces the calibration
    # geometry exactly (grid = _CAL_GRID, block = _CAL_BLOCK).
    threads = _CAL_GRID * _CAL_BLOCK
    elements_per_thread = max(1, (nbytes // 4) // threads)
    elements = threads * elements_per_thread
    nbytes = elements * 4
    kernel = _phase_kernel(fp32, nbytes, name, elements_per_thread=elements_per_thread)
    return WorkloadSpec(
        name=name,
        kernel=kernel,
        elements=elements,
        input_arrays=1,
        output_elements=elements,
        element_bytes=4,
        block_size=_CAL_BLOCK,
        iterations=iterations,
        streaming=True,      # copy in, kernel, copy out -- every iteration
        sync_every=iterations,
        c_ops=1.0,
        description=(
            f"synthetic phase loop: ~{t_copy_ms:.2f} ms copies, "
            f"~{t_kernel_ms:.2f} ms kernel"
        ),
    )


def measured_phase_times(
    spec: WorkloadSpec, arch: GPUArchitecture = QUADRO_4000
) -> tuple:
    """(copy_ms, kernel_ms) as the device model will actually time them."""
    copy_ms = arch.copy_time_ms(spec.input_nbytes)
    model = KernelTimingModel(arch)
    compiler = KernelCompiler()
    kernel_ms = model.kernel_time_ms(
        compiler.compile(spec.kernel, arch), spec.launch_config()
    )
    return copy_ms, kernel_ms
