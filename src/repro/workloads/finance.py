"""Financial workloads: BlackScholes and MonteCarlo.

BlackScholes is the paper's best case: 2045x speedup from plain GPU
multiplexing and 6304x with both optimizations (Section 5).  Its kernel
is almost pure FP32 transcendental arithmetic, which makes the software
emulation baseline catastrophically slow (softfloat) while the GPU eats
it — exactly the regime where SigmaVP shines.

MonteCarlo is FP-heavy too, but the paper groups it with the apps whose
file I/O limits the speedup and whose kernels resist the two
optimizations ("due to the way they access and manage the memory").
"""

from __future__ import annotations

import numpy as np

from ..kernels.functional import functional_kernel
from ..kernels.ir import MemoryFootprint, uniform_kernel
from .base import WorkloadSpec

_BS_OPTIONS = 4_000_000

BLACK_SCHOLES = WorkloadSpec(
    name="BlackScholes",
    kernel=uniform_kernel(
        "BlackScholes",
        # Per option: d1/d2, two CND evaluations (exp, polynomial) -- a
        # long straight-line FP32 sequence with trivial memory traffic.
        {"fp32": 140, "load": 3, "store": 2, "int": 8, "branch": 4, "bit": 2},
        MemoryFootprint(
            bytes_in=3 * _BS_OPTIONS * 4,
            bytes_out=2 * _BS_OPTIONS * 4,
            working_set_bytes=5 * _BS_OPTIONS * 4,
            locality=0.05,
            coalesced_fraction=1.0,
        ),
        signature="BlackScholes",
    ),
    elements=_BS_OPTIONS,
    input_arrays=3,  # spot, strike, expiry
    element_bytes=4,
    block_size=256,
    iterations=16,
    streaming=False,
    readback_only=True,  # each iteration's prices return to the guest
    sync_every=16,
    c_ops=_BS_OPTIONS * 180.0 * 16,
    params={"riskfree": 0.02, "volatility": 0.30},
    input_factory=lambda rng, i, spec: (
        rng.uniform(5.0, 30.0, spec.elements).astype(np.float32)
        if i == 0
        else rng.uniform(1.0, 100.0, spec.elements).astype(np.float32)
        if i == 1
        else rng.uniform(0.25, 10.0, spec.elements).astype(np.float32)
    ),
    description="Black-Scholes option pricing: FP32-saturated, best case",
)


_MC_PATHS = 1_048_576

MONTE_CARLO = WorkloadSpec(
    name="MonteCarlo",
    kernel=uniform_kernel(
        "MonteCarlo",
        # Path simulation: RNG (bit/int mix) + FP32 path updates, with a
        # scattered per-path state layout that defeats coalescing.
        {"fp32": 60, "bit": 18, "int": 14, "load": 8, "store": 4, "branch": 6},
        MemoryFootprint(
            bytes_in=_MC_PATHS * 4,
            bytes_out=_MC_PATHS * 4,
            working_set_bytes=96 * 1024,
            locality=0.8,
            coalesced_fraction=0.45,
        ),
        signature="MonteCarlo",
        coalescible=False,  # per-VP RNG state tables cannot be merged
    ),
    elements=_MC_PATHS,
    input_arrays=1,
    element_bytes=4,
    block_size=256,
    iterations=20,
    streaming=False,
    sync_every=20,
    # Reads option batches from input files, writes results back.
    noncuda_ops=6.0e7,
    c_ops=_MC_PATHS * 110.0 * 20,
    params={"strike": 25.0, "riskfree": 0.02},
    description="Monte Carlo option pricing: FP-heavy but file-I/O bound",
)


# -- functional implementations --------------------------------------------------


def _cnd(d: np.ndarray) -> np.ndarray:
    """Cumulative normal distribution, Abramowitz-Stegun polynomial.

    The same approximation the CUDA SDK sample uses, so results can be
    compared against a reference numpy implementation bit-for-bit in
    float32.
    """
    a1, a2, a3, a4, a5 = (
        0.31938153,
        -0.356563782,
        1.781477937,
        -1.821255978,
        1.330274429,
    )
    k = 1.0 / (1.0 + 0.2316419 * np.abs(d))
    poly = k * (a1 + k * (a2 + k * (a3 + k * (a4 + k * a5))))
    cnd = 1.0 - 1.0 / np.sqrt(2.0 * np.pi) * np.exp(-0.5 * d * d) * poly
    return np.where(d < 0, 1.0 - cnd, cnd)


@functional_kernel("BlackScholes", batched=True)
def black_scholes_fn(
    spot: np.ndarray,
    strike: np.ndarray,
    years: np.ndarray,
    riskfree: float = 0.02,
    volatility: float = 0.30,
) -> np.ndarray:
    """European call prices (the SDK sample's call output)."""
    sqrt_t = np.sqrt(years)
    d1 = (
        np.log(spot / strike) + (riskfree + 0.5 * volatility**2) * years
    ) / (volatility * sqrt_t)
    d2 = d1 - volatility * sqrt_t
    discount = np.exp(-riskfree * years)
    return spot * _cnd(d1) - strike * discount * _cnd(d2)


@functional_kernel("MonteCarlo")
def monte_carlo_fn(
    seeds: np.ndarray, strike: float = 25.0, riskfree: float = 0.02
) -> np.ndarray:
    """Deterministic per-path payoff from the seed array (reference)."""
    rng = np.random.default_rng(12345)
    noise = rng.standard_normal(seeds.shape).astype(seeds.dtype)
    terminal = np.abs(seeds) * np.exp(riskfree - 0.5 + noise)
    return np.maximum(terminal - strike, 0.0)
