"""Linear-algebra workloads: matrixMul, vectorAdd, transpose, reduction,
scalarProd.

``MATRIX_MUL`` is the paper's Table 1 workload ("a simple program that
multiplies 300 times two 320x320 matrices of double-precision numbers")
and one of the four Fig. 12/13 estimation apps.  Its kernel IR is a
three-block CFG (prologue, k-loop, epilogue) so the per-block
instruction-count machinery of paper Fig. 8 is exercised for real.
"""

from __future__ import annotations

import numpy as np

from ..kernels.functional import functional_kernel
from ..kernels.ir import (
    InstructionMix,
    KernelIR,
    MemoryFootprint,
    ProgramBlock,
    uniform_kernel,
)
from .base import WorkloadSpec

# ---------------------------------------------------------------------------
# matrixMul: 320x320 FP64, shared-memory tiled (16-wide tiles).
# ---------------------------------------------------------------------------

MATRIX_N = 320
_TILE = 16


def _matrixmul_kernel() -> KernelIR:
    n = MATRIX_N
    prologue = ProgramBlock(
        name="matrixMul.prologue",
        mix=InstructionMix(int=10, load=2, branch=1),
        trips=1,
    )
    # One trip per k index: one FP64 FMA; loads amortized over the
    # 16-wide shared-memory tile; loop control unrolled 16x.
    k_loop = ProgramBlock(
        name="matrixMul.kloop",
        mix=InstructionMix(fp64=1, int=1, load=2.0 / _TILE, branch=1.0 / _TILE),
        trips=lambda ctx: ctx.problem_size,
    )
    epilogue = ProgramBlock(
        name="matrixMul.epilogue",
        mix=InstructionMix(store=1, int=2),
        trips=1,
    )
    footprint = MemoryFootprint(
        bytes_in=2 * n * n * 8,
        bytes_out=n * n * 8,
        # Tiled access: the active working set is the tile stripe, not
        # the whole matrices.
        working_set_bytes=240 * 1024,
        locality=0.90,
        coalesced_fraction=0.95,
    )
    return KernelIR(
        name="matrixMul",
        blocks=(prologue, k_loop, epilogue),
        footprint=footprint,
        signature="matrixMul",
    )


def _matrix_input(rng: np.random.Generator, index: int, spec: WorkloadSpec) -> np.ndarray:
    return rng.standard_normal((MATRIX_N, MATRIX_N))


MATRIX_MUL = WorkloadSpec(
    name="matrixMul",
    kernel=_matrixmul_kernel(),
    elements=MATRIX_N * MATRIX_N,
    input_arrays=2,
    element_bytes=8,
    block_size=256,
    iterations=300,
    streaming=False,        # inputs copied once; 300 kernel launches
    sync_every=1,           # cudaDeviceSynchronize per multiplication
    # C implementation: n^3 * ~7.9 scalar ops per inner iteration, x300,
    # calibrated to Table 1's 8213.09 ms on the host Xeon.
    c_ops=300 * (MATRIX_N**3) * 7.9 / 1.0,
    problem_size=MATRIX_N,
    input_factory=_matrix_input,
    description="Table 1: 300 multiplications of two 320x320 FP64 matrices",
)


# ---------------------------------------------------------------------------
# vectorAdd: the Kernel Coalescing microbenchmark (Fig. 10).
# ---------------------------------------------------------------------------


def make_vectoradd_kernel(
    elements_per_thread: float = 8.0, fp32_per_element: float = 1.0
) -> KernelIR:
    """vectorAdd IR; ``fp32_per_element`` scales the per-element compute
    (the paper's coalescing microbenchmark uses long per-element kernels
    — its single-kernel times reach hundreds of milliseconds, Fig. 10b)."""
    return uniform_kernel(
        "vectorAdd",
        {"fp32": fp32_per_element, "load": 2, "store": 1, "int": 2, "branch": 0.25},
        MemoryFootprint(
            bytes_in=2 * 4, bytes_out=4, working_set_bytes=12,
            locality=0.05, coalesced_fraction=1.0,
        ),
        trips=elements_per_thread,
        signature="vectorAdd",
        elements_per_thread=elements_per_thread,
    )


def make_vectoradd_spec(
    elements: int,
    iterations: int = 1,
    block_size: int = 512,
    elements_per_thread: float = 8.0,
    fp32_per_element: float = 1.0,
    name: str = "vectorAdd",
) -> WorkloadSpec:
    """A vectorAdd instance over ``elements`` FP32 elements."""
    kernel = make_vectoradd_kernel(elements_per_thread, fp32_per_element)
    kernel = kernel.with_footprint(
        MemoryFootprint(
            bytes_in=2 * elements * 4,
            bytes_out=elements * 4,
            working_set_bytes=3 * elements * 4,
            locality=0.05,
            coalesced_fraction=1.0,
        )
    )
    return WorkloadSpec(
        name=name,
        kernel=kernel,
        elements=elements,
        input_arrays=2,
        element_bytes=4,
        block_size=block_size,
        iterations=iterations,
        streaming=True,
        sync_every=iterations,
        c_ops=elements * 6.0 * iterations,
        description="element-wise vector addition (coalescing microbenchmark)",
    )


VECTOR_ADD = make_vectoradd_spec(elements=4_194_304, iterations=8)


# ---------------------------------------------------------------------------
# transpose: bandwidth-bound, zero floating point (FP-light exemplar).
# ---------------------------------------------------------------------------

_TRANSPOSE_N = 2048

TRANSPOSE = WorkloadSpec(
    name="transpose",
    kernel=uniform_kernel(
        "transpose",
        {"load": 1, "store": 1, "int": 4, "branch": 0.25},
        MemoryFootprint(
            bytes_in=_TRANSPOSE_N * _TRANSPOSE_N * 4,
            bytes_out=_TRANSPOSE_N * _TRANSPOSE_N * 4,
            working_set_bytes=256 * 1024,  # 32x32 tile staging
            locality=0.35,
            coalesced_fraction=0.6,  # column writes are partially uncoalesced
        ),
        signature="transpose",
    ),
    elements=_TRANSPOSE_N * _TRANSPOSE_N,
    input_arrays=1,
    element_bytes=4,
    block_size=256,
    iterations=40,
    streaming=True,
    sync_every=40,
    c_ops=_TRANSPOSE_N * _TRANSPOSE_N * 4.0 * 40,
    input_factory=lambda rng, i, spec: rng.standard_normal(
        (_TRANSPOSE_N, _TRANSPOSE_N)
    ).astype(np.float32),
    description="matrix transpose: memory-bound, no floating point",
)


# ---------------------------------------------------------------------------
# reduction: parallel sum.
# ---------------------------------------------------------------------------

REDUCTION = WorkloadSpec(
    name="reduction",
    kernel=uniform_kernel(
        "reduction",
        {"fp32": 1, "load": 1, "int": 3, "branch": 1, "bit": 1},
        MemoryFootprint(
            bytes_in=8 * 1024 * 1024, bytes_out=4, working_set_bytes=8 * 1024 * 1024,
            locality=0.1, coalesced_fraction=1.0,
        ),
        trips=4.0,
        signature="reduction",
        elements_per_thread=4.0,
    ),
    elements=2_097_152,
    input_arrays=1,
    output_elements=1,
    element_bytes=4,
    block_size=256,
    iterations=64,
    streaming=True,
    sync_every=64,
    c_ops=2_097_152 * 2.0 * 64,
    description="tree reduction to a single sum",
)


# ---------------------------------------------------------------------------
# scalarProd: batched dot products.
# ---------------------------------------------------------------------------

_SCALARPROD_VECTORS = 256
_SCALARPROD_LEN = 4096

SCALAR_PROD = WorkloadSpec(
    name="scalarProd",
    kernel=uniform_kernel(
        "scalarProd",
        {"fp32": 2, "load": 2, "int": 2, "branch": 0.5},
        MemoryFootprint(
            bytes_in=2 * _SCALARPROD_VECTORS * _SCALARPROD_LEN * 4,
            bytes_out=_SCALARPROD_VECTORS * 4,
            working_set_bytes=2 * _SCALARPROD_LEN * 4,
            locality=0.4,
            coalesced_fraction=1.0,
        ),
        trips=8.0,
        signature="scalarProd",
        elements_per_thread=8.0,
    ),
    elements=_SCALARPROD_VECTORS * _SCALARPROD_LEN,
    input_arrays=2,
    output_elements=_SCALARPROD_VECTORS,
    element_bytes=4,
    block_size=256,
    iterations=32,
    streaming=True,
    sync_every=32,
    c_ops=_SCALARPROD_VECTORS * _SCALARPROD_LEN * 2.0 * 32,
    params={"vectors": _SCALARPROD_VECTORS},
    description="batch of vector dot products",
)


# ---------------------------------------------------------------------------
# Functional implementations (matrixMul and vectorAdd live in
# repro.kernels.functional as core reference kernels).
# ---------------------------------------------------------------------------


@functional_kernel("transpose")
def transpose_fn(a: np.ndarray) -> np.ndarray:
    return np.ascontiguousarray(a.T)


@functional_kernel("reduction")
def reduction_fn(a: np.ndarray) -> np.ndarray:
    return np.array([np.sum(a)], dtype=a.dtype)


@functional_kernel("scalarProd")
def scalar_prod_fn(a: np.ndarray, b: np.ndarray, vectors: int = 1) -> np.ndarray:
    return (a.reshape(vectors, -1) * b.reshape(vectors, -1)).sum(axis=1)
