"""Data-analytics workloads: mergeSort, stereoDisparity,
segmentationTreeThrust.

mergeSort is Fig. 11's most interesting data point: the *lowest*
plain-multiplexing speedup (622x — its integer/branch kernels emulate
comparatively fast) but the *largest* gain from the two optimizations
("In the best case (mergeSort) the addition of the two optimizations
yields an additional 10X speedup") because its many tiny per-pass
launches are dominated by launch overhead and unaligned grids, exactly
what coalescing eliminates.
"""

from __future__ import annotations

import numpy as np

from ..kernels.functional import functional_kernel
from ..kernels.ir import MemoryFootprint, uniform_kernel
from .base import WorkloadSpec

_SORT_N = 1_048_576

MERGE_SORT = WorkloadSpec(
    name="mergeSort",
    kernel=uniform_kernel(
        "mergeSort",
        # Comparison sort pass over a 16-element tile per thread:
        # zero floating point.
        {"int": 14, "branch": 7, "load": 1, "store": 0.5, "bit": 4},
        MemoryFootprint(
            bytes_in=_SORT_N * 4,
            bytes_out=_SORT_N * 4,
            working_set_bytes=256 * 1024,
            locality=0.75,
            coalesced_fraction=0.8,
        ),
        trips=16.0,
        signature="mergeSort",
        elements_per_thread=16.0,  # each pass's thread covers a tile
    ),
    elements=_SORT_N,
    input_arrays=1,
    element_bytes=4,
    block_size=256,
    iterations=120,  # log(n) passes x batches: many small launches
    streaming=False,
    sync_every=120,
    c_ops=_SORT_N * 20.0 * 40,  # n log n comparisons and moves
    input_factory=lambda rng, i, spec: rng.integers(
        0, 2**30, spec.elements, dtype=np.int32
    ),
    description="multi-pass merge sort: FP-free, launch-overhead bound",
)


_DISPARITY_W, _DISPARITY_H = 640, 533  # the SDK stereo pair

STEREO_DISPARITY = WorkloadSpec(
    name="stereoDisparity",
    kernel=uniform_kernel(
        "stereoDisparity",
        # Sum-of-absolute-differences over the disparity search range:
        # almost pure integer arithmetic.
        {"int": 150, "load": 8, "branch": 18, "bit": 10, "fp32": 2, "store": 1},
        MemoryFootprint(
            bytes_in=2 * _DISPARITY_W * _DISPARITY_H * 4,
            bytes_out=_DISPARITY_W * _DISPARITY_H * 4,
            working_set_bytes=192 * 1024,
            locality=0.85,
            coalesced_fraction=0.8,
        ),
        signature="stereoDisparity",
    ),
    elements=_DISPARITY_W * _DISPARITY_H,
    input_arrays=2,
    element_bytes=4,
    block_size=128,
    iterations=24,
    streaming=True,  # a fresh stereo pair per iteration
    sync_every=24,
    c_ops=_DISPARITY_W * _DISPARITY_H * 150.0 * 24,
    input_factory=lambda rng, i, spec: rng.integers(
        0, 256, spec.elements, dtype=np.int32
    ),
    description="block-matching stereo disparity: integer SAD, FP-light",
)


_SEG_PIXELS = 512 * 512

SEGMENTATION_TREE = WorkloadSpec(
    name="segmentationTreeThrust",
    kernel=uniform_kernel(
        "segmentationTreeThrust",
        # Graph-based segmentation: sort/scan/union passes via thrust.
        {"int": 80, "load": 5, "store": 2, "branch": 16, "bit": 10, "fp32": 6},
        MemoryFootprint(
            bytes_in=_SEG_PIXELS * 12,
            bytes_out=_SEG_PIXELS * 4,
            working_set_bytes=128 * 1024,
            locality=0.7,
            coalesced_fraction=0.6,
        ),
        signature="segmentationTreeThrust",
    ),
    elements=_SEG_PIXELS,
    input_arrays=1,
    element_bytes=12,  # edge list records
    block_size=256,
    iterations=40,  # many thrust passes
    streaming=False,
    sync_every=4,
    noncuda_ops=3.0e7,  # reads the image, writes the segmentation
    c_ops=_SEG_PIXELS * 90.0 * 40,
    input_factory=lambda rng, i, spec: rng.standard_normal(
        (spec.elements, 3)
    ).astype(np.float32),
    description="graph-based image segmentation (thrust passes), file I/O",
)


# -- functional implementations --------------------------------------------------


@functional_kernel("mergeSort")
def merge_sort_fn(keys: np.ndarray) -> np.ndarray:
    return np.sort(keys, kind="mergesort")


@functional_kernel("stereoDisparity")
def stereo_disparity_fn(left: np.ndarray, right: np.ndarray) -> np.ndarray:
    """Reference disparity: best of a small shift search (simplified)."""
    left = left.reshape(_DISPARITY_H, _DISPARITY_W)
    right = right.reshape(_DISPARITY_H, _DISPARITY_W)
    max_shift = 8
    best_cost = np.full(left.shape, np.iinfo(np.int64).max, dtype=np.int64)
    best_shift = np.zeros(left.shape, dtype=np.int32)
    for shift in range(max_shift):
        shifted = np.roll(right, shift, axis=1)
        cost = np.abs(left.astype(np.int64) - shifted.astype(np.int64))
        better = cost < best_cost
        best_cost = np.where(better, cost, best_cost)
        best_shift = np.where(better, shift, best_shift)
    return best_shift.ravel()
