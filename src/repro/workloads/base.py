"""Workload specifications: the benchmark applications SigmaVP simulates.

The paper evaluates "the suite of benchmark GPU applications available as
part of the CUDA SDK" (Section 5, Fig. 11).  Each application is modelled
as a :class:`WorkloadSpec`: a kernel IR with a measured-style instruction
mix, a data geometry, an iteration pattern, the scalar-op count of its C
implementation (the Table 1 comparison), and the amount of non-CUDA work
(file I/O, OpenGL) that SigmaVP cannot accelerate — the attribute that
caps the speedups of Mandelbrot, simpleGL, and friends in Fig. 11.

A spec compiles into an *application*: a generator driving the
:class:`~repro.vp.cuda_runtime.CudaRuntime` API with the canonical CUDA
loop — copy inputs in, launch, copy results out, synchronize.  The same
application runs unchanged on every backend, which is exactly the
paper's binary-compatibility story.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional

import numpy as np

from ..kernels.ir import KernelIR
from ..kernels.launch import LaunchConfig, launch_for_elements
from ..vp.cuda_runtime import CudaRuntime

#: Input factory: (rng, array_index, spec) -> numpy array.
InputFactory = Callable[[np.random.Generator, int, "WorkloadSpec"], np.ndarray]


def _default_input(rng: np.random.Generator, index: int, spec: "WorkloadSpec") -> np.ndarray:
    dtype = np.float64 if spec.element_bytes == 8 else np.float32
    return rng.standard_normal(spec.elements).astype(dtype)


@dataclass(frozen=True)
class WorkloadSpec:
    """One benchmark application, fully parameterized."""

    name: str
    kernel: KernelIR
    elements: int
    input_arrays: int = 2
    output_elements: Optional[int] = None
    element_bytes: int = 4
    block_size: int = 256
    iterations: int = 1
    streaming: bool = True
    #: Inputs copied once, but results copied back every iteration — the
    #: shape of the OpenGL apps, whose frames must return to the *guest*
    #: (where the paper's non-accelerated OpenGL rendering runs).
    readback_only: bool = False
    #: The kernel updates its first input in place (out = inputs[0]), so
    #: iterations chain: step k+1 sees step k's state.  Physics engines
    #: and other stateful simulations use this.
    feedback: bool = False
    sync_every: int = 1
    noncuda_ops: float = 0.0
    c_ops: float = 0.0
    problem_size: float = 0.0
    params: Dict[str, Any] = field(default_factory=dict)
    input_factory: InputFactory = _default_input
    description: str = ""

    def __post_init__(self) -> None:
        if self.elements <= 0:
            raise ValueError(f"{self.name}: elements must be positive")
        if self.iterations <= 0:
            raise ValueError(f"{self.name}: iterations must be positive")
        if self.input_arrays < 0:
            raise ValueError(f"{self.name}: input_arrays must be non-negative")
        if self.sync_every <= 0:
            raise ValueError(f"{self.name}: sync_every must be positive")

    # -- geometry -----------------------------------------------------------

    @property
    def out_elements(self) -> int:
        return self.output_elements if self.output_elements is not None else self.elements

    @property
    def input_nbytes(self) -> int:
        return self.elements * self.element_bytes

    @property
    def output_nbytes(self) -> int:
        return self.out_elements * self.element_bytes

    def launch_config(self) -> LaunchConfig:
        return launch_for_elements(
            self.elements,
            block_size=self.block_size,
            elements_per_thread=self.kernel.elements_per_thread,
            problem_size=self.problem_size,
        )

    def scaled_to(self, elements: int, iterations: Optional[int] = None) -> "WorkloadSpec":
        """The same app over a different data size (parameter sweeps)."""
        factor = elements / self.elements
        return WorkloadSpec(
            name=self.name,
            kernel=self.kernel.with_footprint(self.kernel.footprint.scaled(factor)),
            elements=elements,
            input_arrays=self.input_arrays,
            output_elements=(
                None if self.output_elements is None
                else max(1, int(round(self.output_elements * factor)))
            ),
            element_bytes=self.element_bytes,
            block_size=self.block_size,
            iterations=iterations if iterations is not None else self.iterations,
            streaming=self.streaming,
            readback_only=self.readback_only,
            feedback=self.feedback,
            sync_every=self.sync_every,
            noncuda_ops=self.noncuda_ops,
            c_ops=self.c_ops * factor,
            problem_size=self.problem_size,
            params=dict(self.params),
            input_factory=self.input_factory,
            description=self.description,
        )

    def build_inputs(self, seed: int = 0) -> List[np.ndarray]:
        rng = np.random.default_rng(seed)
        return [self.input_factory(rng, i, self) for i in range(self.input_arrays)]

    # -- characterization (drives the Fig. 11 narrative) -----------------------

    @property
    def fp_fraction(self) -> float:
        """Fraction of kernel instructions that are floating point."""
        ctx = self.launch_config().context()
        mix = self.kernel.per_thread_mix(ctx)
        total = mix.total
        return mix.flops / total if total else 0.0

    @property
    def uses_noncuda(self) -> bool:
        return self.noncuda_ops > 0

    @property
    def coalescible(self) -> bool:
        return self.kernel.coalescible


def build_app(spec: WorkloadSpec, api: CudaRuntime, seed: int = 0):
    """Compile a spec into an application generator for ``api``.

    The returned zero-argument callable yields the canonical CUDA loop:
    allocate, (copy in, launch, copy out) x iterations, synchronize, with
    the spec's non-CUDA work split around the GPU phase.
    """

    def app():
        inputs = spec.build_inputs(seed)
        in_handles: List[str] = []
        for array in inputs:
            handle = yield from api.malloc(int(array.nbytes))
            in_handles.append(handle)
        if spec.feedback:
            out_handle = in_handles[0]
        else:
            out_handle = yield from api.malloc(spec.output_nbytes)

        if spec.noncuda_ops:
            # Input-side non-CUDA work: file reads, scene setup.
            yield from api.cpu_work(spec.noncuda_ops / 2.0)

        launch = spec.launch_config()
        copies_in_loop = spec.streaming and not spec.readback_only
        if not copies_in_loop:
            for handle, array in zip(in_handles, inputs):
                yield from api.memcpy_h2d(handle, array, sync=False)

        result = None
        for iteration in range(spec.iterations):
            if copies_in_loop:
                for handle, array in zip(in_handles, inputs):
                    yield from api.memcpy_h2d(handle, array, sync=False)
            yield from api.launch_kernel(
                spec.kernel,
                launch,
                args=in_handles,
                out=out_handle,
                params=spec.params,
                sync=False,
            )
            if spec.streaming or spec.readback_only:
                result = yield from api.memcpy_d2h(
                    out_handle, nbytes=spec.output_nbytes, sync=False
                )
            if (iteration + 1) % spec.sync_every == 0:
                yield from api.synchronize()

        if result is None:
            result = yield from api.memcpy_d2h(
                out_handle, nbytes=spec.output_nbytes, sync=False
            )
        yield from api.synchronize()

        if spec.noncuda_ops:
            # Output-side non-CUDA work: file writes, OpenGL rendering.
            yield from api.cpu_work(spec.noncuda_ops / 2.0)

        if result is not None and result.ready:
            return result.value
        return None

    return app
