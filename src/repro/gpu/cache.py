"""Probabilistic data-cache behaviour model.

The paper's third timing estimate C'' (Eq. 5) replaces the *measured*
data-dependency stalls on the host GPU with *predicted* stalls for the
target, "calculated combining the probabilistic data-cache behavior model
[17] and the details of the host GPU architecture (e.g. the main memory
size, the cache size and associativity)".

This module implements that probabilistic model.  Given a kernel's memory
footprint and a cache geometry it predicts a hit probability and, from the
launch's total memory accesses, the expected miss count and the exposed
data-dependency stall cycles Upsilon[data]{K,T}.

The model decomposes accesses into:

* **reuse accesses** (fraction = footprint.locality) that hit when the
  working set fits in the cache, degraded by a conflict term derived from
  associativity and by a coverage term when the working set exceeds the
  cache;
* **streaming accesses** whose hits come only from spatial locality
  within a cache line, scaled by the warp-coalescing quality.

GPUs hide most memory latency by switching among resident warps, so only
a fraction of each miss's penalty is *exposed* as a pipeline stall; that
fraction shrinks with occupancy.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..kernels.ir import MemoryFootprint
from .arch import CacheGeometry, GPUArchitecture

#: Typical access granularity assumed for spatial-locality hits (bytes).
ACCESS_GRANULARITY_BYTES = 8.0

#: Resident warps per scheduler at which latency hiding saturates.
HIDING_SATURATION_WARPS = 12.0

#: Upper bound on the fraction of miss latency that warp switching hides.
MAX_HIDING = 0.92


@dataclass(frozen=True)
class CacheBehavior:
    """Predicted cache behaviour of one kernel launch on one cache."""

    accesses: float
    hit_probability: float
    hits: float
    misses: float

    def __post_init__(self) -> None:
        if not 0.0 <= self.hit_probability <= 1.0:
            raise ValueError(f"hit probability out of range: {self.hit_probability}")


def conflict_miss_probability(cache: CacheGeometry, pressure: float) -> float:
    """Probability a reuse access conflicts out despite capacity fitting.

    ``pressure`` is working-set bytes / cache bytes.  Higher associativity
    suppresses conflicts geometrically; pressure close to 1 increases them.
    """
    pressure = max(0.0, min(1.0, pressure))
    base = 1.0 / (cache.associativity + 1.0)
    return base * pressure


def hit_probability(footprint: MemoryFootprint, cache: CacheGeometry) -> float:
    """Predicted hit probability for a kernel with ``footprint``."""
    working_set = max(1, footprint.working_set_bytes)
    coverage = min(1.0, cache.size_bytes / working_set)
    pressure = min(1.0, working_set / cache.size_bytes)

    reuse_fraction = footprint.locality
    reuse_hit = coverage * (1.0 - conflict_miss_probability(cache, pressure))

    spatial_hit = footprint.coalesced_fraction * (
        1.0 - ACCESS_GRANULARITY_BYTES / cache.line_bytes
    )

    p = reuse_fraction * reuse_hit + (1.0 - reuse_fraction) * spatial_hit
    return max(0.0, min(1.0, p))


def predict_behavior(
    footprint: MemoryFootprint, cache: CacheGeometry, accesses: float
) -> CacheBehavior:
    """Expected hits/misses for ``accesses`` memory instructions."""
    if accesses < 0:
        raise ValueError(f"negative access count {accesses}")
    p = hit_probability(footprint, cache)
    hits = accesses * p
    return CacheBehavior(
        accesses=accesses, hit_probability=p, hits=hits, misses=accesses - hits
    )


def latency_hiding_fraction(arch: GPUArchitecture, block_size: int, grid_size: int) -> float:
    """Fraction of miss latency hidden by warp-level multithreading.

    More resident warps per scheduler give the SM more independent work to
    switch to while a miss is outstanding.
    """
    resident_blocks_per_sm = min(
        arch.max_blocks_per_sm,
        max(1, arch.max_threads_per_sm // block_size),
    )
    resident_blocks_per_sm = min(
        resident_blocks_per_sm, max(1, math.ceil(grid_size / arch.sm_count))
    )
    resident_warps = resident_blocks_per_sm * max(1, block_size // arch.warp_size)
    warps_per_scheduler = resident_warps / arch.schedulers_per_sm
    return min(MAX_HIDING, warps_per_scheduler / HIDING_SATURATION_WARPS)


def exposed_stall_cycles(
    arch: GPUArchitecture,
    footprint: MemoryFootprint,
    accesses: float,
    block_size: int,
    grid_size: int,
) -> float:
    """Latency component of Upsilon[data]: exposed miss-penalty stalls.

    Misses are spread over every scheduler in the device; each exposed
    miss stalls its scheduler for the unhidden part of the miss penalty.
    The returned value is in elapsed device cycles, directly comparable
    with the ideal-cycle estimates of Eq. (3).
    """
    behavior = predict_behavior(footprint, arch.cache, accesses)
    hiding = latency_hiding_fraction(arch, block_size, grid_size)
    schedulers = arch.sm_count * arch.schedulers_per_sm
    misses_per_scheduler = behavior.misses / schedulers
    return misses_per_scheduler * arch.cache.miss_penalty_cycles * (1.0 - hiding)


#: Fraction of DRAM-throughput time the SMs hide behind instruction issue
#: before it surfaces as data-dependency stalls.
BANDWIDTH_OVERLAP = 0.7


def memory_throughput_cycles(
    arch: GPUArchitecture, footprint: MemoryFootprint, accesses: float
) -> float:
    """Elapsed cycles to move the launch's DRAM traffic at peak bandwidth."""
    behavior = predict_behavior(footprint, arch.cache, accesses)
    dram_bytes = behavior.misses * arch.cache.line_bytes
    bytes_per_cycle = arch.memory_bandwidth_gbps / arch.clock_mhz * 1e3
    return dram_bytes / bytes_per_cycle


def data_stall_cycles(
    arch: GPUArchitecture,
    footprint: MemoryFootprint,
    accesses: float,
    block_size: int,
    grid_size: int,
    issue_cycles: float,
) -> float:
    """Upsilon[data]{K,T}: the full data-dependency stall model.

    Two mechanisms surface as data stalls: exposed miss *latency* (warp
    switching exhausts), and DRAM *bandwidth* saturation — memory time
    the issue stream cannot cover.  The larger of the two binds.  Both
    the reference timing model (ground truth) and the C'' estimator use
    this same function, mirroring the paper's use of one probabilistic
    cache-behaviour model on both sides of Eq. (5).
    """
    latency_stalls = exposed_stall_cycles(
        arch, footprint, accesses, block_size, grid_size
    )
    throughput = memory_throughput_cycles(arch, footprint, accesses)
    bandwidth_stalls = max(0.0, throughput - BANDWIDTH_OVERLAP * issue_cycles)
    return max(latency_stalls, bandwidth_stalls)
