"""Device memory management.

Kernel Coalescing (paper Section 3, Fig. 5) requires that the data sets of
the coalesced kernels live at *physically-contiguous* device addresses so
one kernel instance can sweep the merged region.  The allocator therefore
tracks real addresses and offers an explicit contiguous multi-buffer
allocation used by the coalescer.

Buffers optionally carry a numpy payload so the simulation doubles as a
functional model: copies move arrays, kernels transform them, and the
examples/tests can check numerical results end to end.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Dict, List, Optional, Sequence, Tuple

if TYPE_CHECKING:
    from ..backend.api import ExecutionBackend


class OutOfDeviceMemory(Exception):
    """Raised when an allocation cannot be satisfied."""


@dataclass
class DeviceBuffer:
    """A contiguous region of device memory."""

    address: int
    size: int
    owner: str = ""
    payload: Any = None
    freed: bool = False
    #: Token from the execution backend's allocation ledger, when the
    #: allocator is backend-attached.
    backend_token: Optional[int] = None

    @property
    def end(self) -> int:
        return self.address + self.size

    def __repr__(self) -> str:
        return (
            f"DeviceBuffer(addr=0x{self.address:x}, size={self.size}, "
            f"owner={self.owner!r})"
        )


class DeviceMemoryAllocator:
    """First-fit allocator over a flat device address space."""

    def __init__(
        self,
        capacity_bytes: int,
        backend: Optional["ExecutionBackend"] = None,
    ):
        if capacity_bytes <= 0:
            raise ValueError(f"capacity must be positive, got {capacity_bytes}")
        self.capacity = capacity_bytes
        #: Execution backend mirroring allocations (``exec.backend_*``
        #: accounting); the address-space bookkeeping stays here.
        self.backend = backend
        self._buffers: List[DeviceBuffer] = []  # sorted by address

    def __len__(self) -> int:
        return len(self._buffers)

    @property
    def used_bytes(self) -> int:
        return sum(b.size for b in self._buffers)

    @property
    def free_bytes(self) -> int:
        return self.capacity - self.used_bytes

    def _gaps(self) -> List[Tuple[int, int]]:
        """Free (address, size) gaps in address order."""
        gaps = []
        cursor = 0
        for buf in self._buffers:
            if buf.address > cursor:
                gaps.append((cursor, buf.address - cursor))
            cursor = max(cursor, buf.end)
        if cursor < self.capacity:
            gaps.append((cursor, self.capacity - cursor))
        return gaps

    def _insert(self, buffer: DeviceBuffer) -> None:
        index = 0
        while index < len(self._buffers) and self._buffers[index].address < buffer.address:
            index += 1
        self._buffers.insert(index, buffer)

    def allocate(self, size: int, owner: str = "") -> DeviceBuffer:
        """First-fit allocation of ``size`` bytes."""
        if size <= 0:
            raise ValueError(f"allocation size must be positive, got {size}")
        for address, gap in self._gaps():
            if gap >= size:
                buffer = DeviceBuffer(address=address, size=size, owner=owner)
                if self.backend is not None:
                    buffer.backend_token = self.backend.allocate(size, owner=owner)
                self._insert(buffer)
                return buffer
        raise OutOfDeviceMemory(
            f"cannot allocate {size} bytes (free={self.free_bytes}, "
            f"largest gap={max((g for _, g in self._gaps()), default=0)})"
        )

    def allocate_contiguous(
        self, sizes: Sequence[int], owner: str = ""
    ) -> List[DeviceBuffer]:
        """Allocate several buffers guaranteed adjacent in address order.

        This is the memory-merge primitive of Kernel Coalescing: the
        returned buffers form one physically-contiguous region, so a
        single kernel can process all of them as one data set.
        """
        if not sizes:
            raise ValueError("allocate_contiguous requires at least one size")
        for size in sizes:
            if size <= 0:
                raise ValueError(f"allocation sizes must be positive, got {size}")
        total = sum(sizes)
        for address, gap in self._gaps():
            if gap >= total:
                buffers = []
                cursor = address
                for size in sizes:
                    buffer = DeviceBuffer(address=cursor, size=size, owner=owner)
                    if self.backend is not None:
                        buffer.backend_token = self.backend.allocate(
                            size, owner=owner
                        )
                    self._insert(buffer)
                    buffers.append(buffer)
                    cursor += size
                return buffers
        raise OutOfDeviceMemory(
            f"cannot allocate {total} contiguous bytes (free={self.free_bytes})"
        )

    def free(self, buffer: DeviceBuffer) -> None:
        if buffer.freed:
            raise RuntimeError(f"double free of {buffer!r}")
        try:
            self._buffers.remove(buffer)
        except ValueError:
            raise RuntimeError(f"{buffer!r} was not allocated here") from None
        buffer.freed = True
        buffer.payload = None
        if self.backend is not None and buffer.backend_token is not None:
            self.backend.free(buffer.backend_token)
            buffer.backend_token = None

    def are_contiguous(self, buffers: Sequence[DeviceBuffer]) -> bool:
        """True if the buffers tile one gap-free address range, in order."""
        if not buffers:
            return False
        ordered = sorted(buffers, key=lambda b: b.address)
        for left, right in zip(ordered, ordered[1:]):
            if left.end != right.address:
                return False
        return True

    def owned_by(self, owner: str) -> List[DeviceBuffer]:
        return [b for b in self._buffers if b.owner == owner]

    def release_owner(self, owner: str) -> int:
        """Free every buffer belonging to ``owner``; returns bytes freed."""
        released = 0
        for buffer in list(self.owned_by(owner)):
            released += buffer.size
            self.free(buffer)
        return released
